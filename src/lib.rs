//! # vexus — umbrella crate
//!
//! Re-exports the full VEXUS stack (see the README and DESIGN.md):
//!
//! * [`data`] — schema, columnar user data, CSV ETL, streams, synthetic datasets
//! * [`mining`] — group discovery (LCM, α-MOMRI, BIRCH, stream FIM)
//! * [`index`] — Jaccard similarity index over groups
//! * [`stats`] — crossfilter-style coordinated views
//! * [`viz`] — force layout, LDA/PCA projection, SVG rendering
//! * [`core`] — feedback learning, greedy group selection, exploration sessions

pub use vexus_core as core;
pub use vexus_data as data;
pub use vexus_index as index;
pub use vexus_mining as mining;
pub use vexus_stats as stats;
pub use vexus_viz as viz;
