//! CLI driver: `experiments [id…] [--json <path>]` runs all experiments
//! (or a subset) and prints the tables EXPERIMENTS.md records. With
//! `--json`, the reports are additionally written to `path` as a JSON
//! document (`{"scale": N, "experiments": [{"id", "report", "metrics"},
//! …]}`) so CI can upload them as a build artifact; `metrics` is the
//! experiment's structured per-stage wall-clock map (milliseconds, empty
//! for most experiments — the perf experiments like `d3` fill it).

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            match it.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            }
        } else {
            ids.push(arg);
        }
    }
    let ids: Vec<&str> = if ids.is_empty() {
        vexus_bench::experiments::ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    let scale = vexus_bench::workloads::scale();
    println!("VEXUS experiment harness (scale={scale})");
    let mut reports: Vec<(&str, vexus_bench::experiments::Report)> = Vec::new();
    let mut unknown = false;
    for id in ids {
        match vexus_bench::experiments::run(id) {
            Some(report) => {
                print!("{}", report.text);
                reports.push((id, report));
            }
            None => {
                eprintln!(
                    "unknown experiment id {id:?} (known: {:?})",
                    vexus_bench::experiments::ALL
                );
                unknown = true;
            }
        }
    }
    if let Some(path) = json_path {
        let mut doc = format!("{{\"scale\":{scale},\"experiments\":[");
        for (i, (id, report)) in reports.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            let mut metrics = String::new();
            for (j, (name, value)) in report.metrics.iter().enumerate() {
                if j > 0 {
                    metrics.push(',');
                }
                metrics.push_str(&format!("\"{}\":{:.3}", json_escape(name), value));
            }
            doc.push_str(&format!(
                "{{\"id\":\"{}\",\"report\":\"{}\",\"metrics\":{{{metrics}}}}}",
                json_escape(id),
                json_escape(&report.text)
            ));
        }
        doc.push_str("]}\n");
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote JSON report to {path}");
    }
    // A typo'd or removed id must fail loudly (CI uploads the JSON as an
    // artifact; a silently missing experiment would look like coverage).
    if unknown {
        std::process::exit(2);
    }
}
