//! CLI driver: `experiments [id…]` runs all experiments (or a subset) and
//! prints the tables EXPERIMENTS.md records.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        vexus_bench::experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!(
        "VEXUS experiment harness (scale={})",
        vexus_bench::workloads::scale()
    );
    for id in ids {
        match vexus_bench::experiments::run(id) {
            Some(report) => print!("{report}"),
            None => eprintln!(
                "unknown experiment id {id:?} (known: {:?})",
                vexus_bench::experiments::ALL
            ),
        }
    }
}
