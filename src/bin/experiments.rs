//! CLI driver: `experiments [id…] [--json <path>] [--gate
//! <id>.<metric>=<min>…]` runs all experiments (or a subset) and prints
//! the tables EXPERIMENTS.md records. With `--json`, the reports are
//! additionally written to `path` as a JSON document (`{"scale": N,
//! "experiments": [{"id", "report", "metrics"}, …]}`) so CI can upload
//! them as a build artifact; `metrics` is the experiment's structured
//! per-stage map (milliseconds for the perf experiments like `d3`,
//! ratios for quality metrics like `d2`'s recall columns).
//!
//! `--gate` turns a metric into a hard pass/fail check: the run exits
//! non-zero when the named metric is missing (a renamed or dropped metric
//! must not silently pass) or below the given minimum. CI gates
//! `d2.recount_recall_min=1.0` — the sharded support-recount merge must
//! reproduce the unsharded group space exactly —
//! `d4.exchange_recall_min=1.0`, so the deduped/pruned/routed exchange
//! optimizations can never silently reintroduce a recall tail, and
//! `d5.session_determinism=1.0` — every concurrently served session's
//! display trajectory must be byte-identical to its single-threaded
//! reference, with or without the shared neighbor cache.

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A `--gate <id>.<metric>=<min>` check: the metric must exist in the
/// named experiment's report and be at least `min`.
struct Gate {
    experiment: String,
    metric: String,
    min: f64,
}

fn parse_gate(spec: &str) -> Option<Gate> {
    let (name, min) = spec.split_once('=')?;
    let (experiment, metric) = name.split_once('.')?;
    Some(Gate {
        experiment: experiment.to_string(),
        metric: metric.to_string(),
        min: min.parse().ok()?,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut gates: Vec<Gate> = Vec::new();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            match it.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            }
        } else if arg == "--gate" {
            match it.next().as_deref().map(parse_gate) {
                Some(Some(gate)) => gates.push(gate),
                _ => {
                    eprintln!("--gate requires an <id>.<metric>=<min> argument");
                    std::process::exit(2);
                }
            }
        } else {
            ids.push(arg);
        }
    }
    let ids: Vec<&str> = if ids.is_empty() {
        vexus_bench::experiments::ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    let scale = vexus_bench::workloads::scale();
    println!("VEXUS experiment harness (scale={scale})");
    let mut reports: Vec<(&str, vexus_bench::experiments::Report)> = Vec::new();
    let mut unknown = false;
    for id in ids {
        match vexus_bench::experiments::run(id) {
            Some(report) => {
                print!("{}", report.text);
                reports.push((id, report));
            }
            None => {
                eprintln!(
                    "unknown experiment id {id:?} (known: {:?})",
                    vexus_bench::experiments::ALL
                );
                unknown = true;
            }
        }
    }
    if let Some(path) = json_path {
        let mut doc = format!("{{\"scale\":{scale},\"experiments\":[");
        for (i, (id, report)) in reports.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            let mut metrics = String::new();
            for (j, (name, value)) in report.metrics.iter().enumerate() {
                if j > 0 {
                    metrics.push(',');
                }
                metrics.push_str(&format!("\"{}\":{:.3}", json_escape(name), value));
            }
            doc.push_str(&format!(
                "{{\"id\":\"{}\",\"report\":\"{}\",\"metrics\":{{{metrics}}}}}",
                json_escape(id),
                json_escape(&report.text)
            ));
        }
        doc.push_str("]}\n");
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote JSON report to {path}");
    }
    // A typo'd or removed id must fail loudly (CI uploads the JSON as an
    // artifact; a silently missing experiment would look like coverage).
    if unknown {
        std::process::exit(2);
    }
    let mut gate_failed = false;
    for gate in &gates {
        let value = reports
            .iter()
            .find(|(id, _)| *id == gate.experiment)
            .and_then(|(_, r)| {
                r.metrics
                    .iter()
                    .find(|(name, _)| *name == gate.metric)
                    .map(|&(_, v)| v)
            });
        match value {
            Some(v) if v >= gate.min => {
                eprintln!(
                    "gate {}.{} = {v} >= {} — ok",
                    gate.experiment, gate.metric, gate.min
                );
            }
            Some(v) => {
                eprintln!(
                    "gate FAILED: {}.{} = {v} < {}",
                    gate.experiment, gate.metric, gate.min
                );
                gate_failed = true;
            }
            None => {
                eprintln!(
                    "gate FAILED: metric {}.{} not found in this run",
                    gate.experiment, gate.metric
                );
                gate_failed = true;
            }
        }
    }
    if gate_failed {
        std::process::exit(3);
    }
}
