//! The incremental coordinated-views engine.
//!
//! Invariants maintained at all times (and property-tested):
//!
//! * `masks[r]` has bit `d` set iff record `r` fails dimension `d`'s brush,
//! * `selection_count == |{r : masks[r] == 0}|`,
//! * `histogram(d).counts[b] == |{r in bin b : masks[r] & !bit(d) == 0}|`
//!   — i.e. every histogram reflects all *other* filters,
//! * all of the above equal a naive from-scratch recomputation.

/// Identifier of a dimension within one [`Crossfilter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimId(pub usize);

/// Maximum dimensions per crossfilter (bits in the record mask).
pub const MAX_DIMS: usize = 32;

/// Current brush on a dimension.
#[derive(Debug, Clone, PartialEq)]
pub enum BrushState {
    /// No filtering: all records pass.
    None,
    /// Numeric half-open range `[lo, hi)` on the dimension's value.
    Range(f64, f64),
    /// Set of selected categories (bins).
    Categories(Vec<u32>),
}

enum DimKind {
    /// Numeric: raw values + record ids sorted by value + bin per record.
    Numeric {
        values: Vec<f64>,
        sorted: Vec<u32>,
        /// Current brush as an interval of `sorted` indices.
        brushed: Option<(usize, usize)>,
    },
    /// Categorical: bin id per record + per-category record lists.
    Categorical {
        /// Currently allowed categories as a bitvec (empty = no brush).
        allowed: Vec<bool>,
        /// Records per category.
        by_cat: Vec<Vec<u32>>,
        /// Whether a brush is active.
        active: bool,
    },
}

struct Dimension {
    kind: DimKind,
    /// Bin id per record (numeric dims use caller-provided binning).
    bin_of: Vec<u32>,
    n_bins: usize,
    /// Histogram counts: records in bin passing all *other* filters.
    counts: Vec<u64>,
    /// Optional per-bin sums of a weight column.
    sums: Option<(Vec<f64>, Vec<f64>)>, // (weight per record, sum per bin)
    brush: BrushState,
}

/// A histogram snapshot for one dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Count per bin of records passing every other dimension's brush.
    pub counts: Vec<u64>,
    /// Optional per-bin weight sums (same filter semantics).
    pub sums: Option<Vec<f64>>,
}

/// The crossfilter engine over `n` records.
pub struct Crossfilter {
    n: usize,
    masks: Vec<u32>,
    dims: Vec<Dimension>,
    selection_count: usize,
}

impl Crossfilter {
    /// New engine over `n` records with no dimensions.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            masks: vec![0; n],
            dims: Vec::new(),
            selection_count: n,
        }
    }

    /// Number of records.
    pub fn n_records(&self) -> usize {
        self.n
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// Add a numeric dimension with explicit bin edges (ascending). Bin `i`
    /// holds values in `[edges[i-1], edges[i])` with open outer bins,
    /// mirroring `vexus_data::Schema` numeric binning.
    ///
    /// # Panics
    /// Panics if `values.len() != n` or the dimension limit is reached.
    pub fn add_numeric(&mut self, values: Vec<f64>, edges: &[f64]) -> DimId {
        assert_eq!(values.len(), self.n, "one value per record required");
        assert!(self.dims.len() < MAX_DIMS, "dimension limit reached");
        let mut sorted: Vec<u32> = (0..self.n as u32).collect();
        sorted.sort_by(|&a, &b| {
            values[a as usize]
                .partial_cmp(&values[b as usize])
                .expect("values must not be NaN")
        });
        let n_bins = edges.len() + 1;
        let bin_of: Vec<u32> = values
            .iter()
            .map(|&v| edges.partition_point(|&e| e <= v) as u32)
            .collect();
        let counts = initial_counts(&bin_of, n_bins, self.n);
        self.dims.push(Dimension {
            kind: DimKind::Numeric {
                values,
                sorted,
                brushed: None,
            },
            bin_of,
            n_bins,
            counts,
            sums: None,
            brush: BrushState::None,
        });
        DimId(self.dims.len() - 1)
    }

    /// Add a categorical dimension: `cats[r]` is the category (= bin) of
    /// record `r`, in `0..n_cats`.
    pub fn add_categorical(&mut self, cats: Vec<u32>, n_cats: usize) -> DimId {
        assert_eq!(cats.len(), self.n, "one category per record required");
        assert!(self.dims.len() < MAX_DIMS, "dimension limit reached");
        assert!(
            cats.iter().all(|&c| (c as usize) < n_cats),
            "category out of range"
        );
        let mut by_cat: Vec<Vec<u32>> = vec![Vec::new(); n_cats];
        for (r, &c) in cats.iter().enumerate() {
            by_cat[c as usize].push(r as u32);
        }
        let counts = initial_counts(&cats, n_cats, self.n);
        self.dims.push(Dimension {
            kind: DimKind::Categorical {
                allowed: vec![true; n_cats],
                by_cat,
                active: false,
            },
            bin_of: cats,
            n_bins: n_cats,
            counts,
            sums: None,
            brush: BrushState::None,
        });
        DimId(self.dims.len() - 1)
    }

    /// Attach a weight column to a dimension: histograms then also report
    /// per-bin sums of `weights` (e.g. sum of ratings per genre).
    pub fn attach_weights(&mut self, dim: DimId, weights: Vec<f64>) {
        assert_eq!(weights.len(), self.n);
        let d = &mut self.dims[dim.0];
        let mut sums = vec![0.0; d.n_bins];
        let bit = 1u32 << dim.0;
        for (r, &w) in weights.iter().enumerate() {
            if self.masks[r] & !bit == 0 {
                sums[d.bin_of[r] as usize] += w;
            }
        }
        d.sums = Some((weights, sums));
    }

    /// Records currently passing **all** brushes.
    pub fn selection_count(&self) -> usize {
        self.selection_count
    }

    /// Ids of selected records (ascending).
    pub fn selected(&self) -> Vec<u32> {
        (0..self.n as u32)
            .filter(|&r| self.masks[r as usize] == 0)
            .collect()
    }

    /// Whether one record is selected.
    pub fn is_selected(&self, record: u32) -> bool {
        self.masks[record as usize] == 0
    }

    /// The current brush of a dimension.
    pub fn brush(&self, dim: DimId) -> &BrushState {
        &self.dims[dim.0].brush
    }

    /// Histogram of a dimension (reflecting all *other* brushes).
    pub fn histogram(&self, dim: DimId) -> Histogram {
        let d = &self.dims[dim.0];
        Histogram {
            counts: d.counts.clone(),
            sums: d.sums.as_ref().map(|(_, s)| s.clone()),
        }
    }

    /// Top-`k` selected records ordered by a numeric dimension, descending —
    /// the "updated list of selected users shown in a table".
    ///
    /// # Panics
    /// Panics if the dimension is categorical.
    pub fn top(&self, dim: DimId, k: usize) -> Vec<u32> {
        match &self.dims[dim.0].kind {
            DimKind::Numeric { sorted, .. } => sorted
                .iter()
                .rev()
                .filter(|&&r| self.masks[r as usize] == 0)
                .take(k)
                .copied()
                .collect(),
            DimKind::Categorical { .. } => panic!("top() requires a numeric dimension"),
        }
    }

    /// Brush a numeric dimension to `[lo, hi)`. Incremental: touches only
    /// records whose pass/fail status changes.
    ///
    /// # Panics
    /// Panics if the dimension is categorical.
    pub fn brush_range(&mut self, dim: DimId, lo: f64, hi: f64) {
        let bit = 1u32 << dim.0;
        let (old_interval, new_interval) = match &mut self.dims[dim.0].kind {
            DimKind::Numeric {
                values,
                sorted,
                brushed,
            } => {
                let a = sorted.partition_point(|&r| values[r as usize] < lo);
                let b = sorted.partition_point(|&r| values[r as usize] < hi);
                let old = brushed.unwrap_or((0, sorted.len()));
                *brushed = Some((a, b));
                (old, (a, b))
            }
            DimKind::Categorical { .. } => panic!("brush_range requires a numeric dimension"),
        };
        self.dims[dim.0].brush = BrushState::Range(lo, hi);
        self.apply_interval_change(dim, bit, old_interval, new_interval);
    }

    /// Brush a categorical dimension to the given allowed categories.
    ///
    /// # Panics
    /// Panics if the dimension is numeric or a category is out of range.
    pub fn brush_categories(&mut self, dim: DimId, allowed_cats: &[u32]) {
        let bit = 1u32 << dim.0;
        // Compute toggles against current allowed set.
        let toggles: Vec<(u32, bool)> = match &mut self.dims[dim.0].kind {
            DimKind::Categorical {
                allowed, active, ..
            } => {
                let mut next = vec![false; allowed.len()];
                for &c in allowed_cats {
                    next[c as usize] = true;
                }
                if !*active {
                    // Everything was implicitly allowed.
                    for a in allowed.iter_mut() {
                        *a = true;
                    }
                }
                *active = true;
                let t: Vec<(u32, bool)> = allowed
                    .iter()
                    .zip(&next)
                    .enumerate()
                    .filter(|(_, (o, n))| o != n)
                    .map(|(c, (_, &n))| (c as u32, n))
                    .collect();
                allowed.copy_from_slice(&next);
                t
            }
            DimKind::Numeric { .. } => panic!("brush_categories requires a categorical dimension"),
        };
        self.dims[dim.0].brush = BrushState::Categories(allowed_cats.to_vec());
        for (cat, now_allowed) in toggles {
            let records = match &self.dims[dim.0].kind {
                DimKind::Categorical { by_cat, .. } => by_cat[cat as usize].clone(),
                DimKind::Numeric { .. } => unreachable!(),
            };
            for r in records {
                self.toggle(r as usize, bit, !now_allowed);
            }
        }
    }

    /// Remove the brush on a dimension (all records pass it again).
    pub fn clear_brush(&mut self, dim: DimId) {
        let bit = 1u32 << dim.0;
        match &mut self.dims[dim.0].kind {
            DimKind::Numeric {
                sorted, brushed, ..
            } => {
                let old = brushed.take().unwrap_or((0, sorted.len()));
                let full = (0, sorted.len());
                self.dims[dim.0].brush = BrushState::None;
                self.apply_interval_change(dim, bit, old, full);
            }
            DimKind::Categorical {
                allowed, active, ..
            } => {
                if !*active {
                    return;
                }
                *active = false;
                let restore: Vec<u32> = allowed
                    .iter()
                    .enumerate()
                    .filter(|(_, &a)| !a)
                    .map(|(c, _)| c as u32)
                    .collect();
                for a in allowed.iter_mut() {
                    *a = true;
                }
                self.dims[dim.0].brush = BrushState::None;
                for cat in restore {
                    let records = match &self.dims[dim.0].kind {
                        DimKind::Categorical { by_cat, .. } => by_cat[cat as usize].clone(),
                        DimKind::Numeric { .. } => unreachable!(),
                    };
                    for r in records {
                        self.toggle(r as usize, bit, false);
                    }
                }
            }
        }
    }

    /// Apply the symmetric difference between two sorted-index intervals of
    /// a numeric dimension.
    fn apply_interval_change(
        &mut self,
        dim: DimId,
        bit: u32,
        (a0, b0): (usize, usize),
        (a1, b1): (usize, usize),
    ) {
        // Records leaving the brushed interval get filtered; entering get
        // unfiltered. Work over index ranges of `sorted`.
        let mut plan: Vec<(usize, usize, bool)> = Vec::with_capacity(4);
        // In old, not in new -> now filtered.
        if a0 < a1 {
            plan.push((a0, a1.min(b0), true));
        }
        if b1 < b0 {
            plan.push((b1.max(a0), b0, true));
        }
        // In new, not in old -> now passing.
        if a1 < a0 {
            plan.push((a1, a0.min(b1), false));
        }
        if b0 < b1 {
            plan.push((b0.max(a1), b1, false));
        }
        for (from, to, filtered) in plan {
            if from >= to {
                continue;
            }
            let records: Vec<u32> = match &self.dims[dim.0].kind {
                DimKind::Numeric { sorted, .. } => sorted[from..to].to_vec(),
                DimKind::Categorical { .. } => unreachable!(),
            };
            for r in records {
                self.toggle(r as usize, bit, filtered);
            }
        }
    }

    /// Set or clear one record's filter bit and propagate to every other
    /// dimension's aggregates. This is the O(1)-per-record crossfilter core.
    fn toggle(&mut self, record: usize, bit: u32, filtered: bool) {
        let old = self.masks[record];
        let new = if filtered { old | bit } else { old & !bit };
        if old == new {
            return;
        }
        self.masks[record] = new;
        if old == 0 {
            self.selection_count -= 1;
        } else if new == 0 {
            self.selection_count += 1;
        }
        // Update each dimension whose "all others pass" status flipped.
        for (i, d) in self.dims.iter_mut().enumerate() {
            let others_old = old & !(1u32 << i);
            let others_new = new & !(1u32 << i);
            let was = others_old == 0;
            let is = others_new == 0;
            if was != is {
                let bin = d.bin_of[record] as usize;
                if is {
                    d.counts[bin] += 1;
                    if let Some((w, s)) = &mut d.sums {
                        s[bin] += w[record];
                    }
                } else {
                    d.counts[bin] -= 1;
                    if let Some((w, s)) = &mut d.sums {
                        s[bin] -= w[record];
                    }
                }
            }
        }
    }

    /// Naive from-scratch recomputation of every aggregate — the baseline
    /// for the C8 experiment and the oracle for the consistency tests.
    pub fn recompute_naive(&self) -> (usize, Vec<Histogram>) {
        let selection = self.masks.iter().filter(|&&m| m == 0).count();
        let mut hists = Vec::with_capacity(self.dims.len());
        for (i, d) in self.dims.iter().enumerate() {
            let bit = 1u32 << i;
            let mut counts = vec![0u64; d.n_bins];
            let mut sums = d.sums.as_ref().map(|_| vec![0.0; d.n_bins]);
            for r in 0..self.n {
                if self.masks[r] & !bit == 0 {
                    counts[d.bin_of[r] as usize] += 1;
                    if let (Some(s), Some((w, _))) = (&mut sums, &d.sums) {
                        s[d.bin_of[r] as usize] += w[r];
                    }
                }
            }
            hists.push(Histogram { counts, sums });
        }
        (selection, hists)
    }

    /// Debug/test helper: assert all incremental state matches the naive
    /// recomputation.
    pub fn check_consistency(&self) -> bool {
        let (sel, hists) = self.recompute_naive();
        if sel != self.selection_count {
            return false;
        }
        for (i, h) in hists.iter().enumerate() {
            if h.counts != self.dims[i].counts {
                return false;
            }
            if let (Some(s), Some((_, have))) = (&h.sums, &self.dims[i].sums) {
                if s.iter().zip(have).any(|(a, b)| (a - b).abs() > 1e-6) {
                    return false;
                }
            }
        }
        true
    }
}

fn initial_counts(bin_of: &[u32], n_bins: usize, _n: usize) -> Vec<u64> {
    let mut counts = vec![0u64; n_bins];
    for &b in bin_of {
        counts[b as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// 6 records: ages and genders.
    fn fixture() -> (Crossfilter, DimId, DimId) {
        let mut cf = Crossfilter::new(6);
        let age = cf.add_numeric(
            vec![15.0, 22.0, 34.0, 45.0, 60.0, 70.0],
            &[18.0, 40.0, 65.0],
        );
        // genders: 0=f, 1=m
        let gender = cf.add_categorical(vec![0, 1, 0, 1, 0, 1], 2);
        (cf, age, gender)
    }

    #[test]
    fn initial_histograms_count_everything() {
        let (cf, age, gender) = fixture();
        assert_eq!(cf.selection_count(), 6);
        assert_eq!(cf.histogram(age).counts, vec![1, 2, 2, 1]);
        assert_eq!(cf.histogram(gender).counts, vec![3, 3]);
        assert!(cf.check_consistency());
    }

    #[test]
    fn range_brush_updates_other_dims_not_self() {
        let (mut cf, age, gender) = fixture();
        cf.brush_range(age, 18.0, 40.0); // records 1 (22) and 2 (34)
        assert_eq!(cf.selection_count(), 2);
        // Age histogram ignores its own brush.
        assert_eq!(cf.histogram(age).counts, vec![1, 2, 2, 1]);
        // Gender histogram sees only the two selected: one f (34), one m (22).
        assert_eq!(cf.histogram(gender).counts, vec![1, 1]);
        assert!(cf.check_consistency());
    }

    #[test]
    fn category_brush_composes_with_range() {
        let (mut cf, age, gender) = fixture();
        cf.brush_range(age, 18.0, 70.0); // drop record 0 (15) and keep 1..=4, drop 5? 70 excluded
        cf.brush_categories(gender, &[0]); // females only
                                           // Selected: records with age in [18,70) and gender f: r2 (34), r4 (60).
        assert_eq!(cf.selection_count(), 2);
        assert_eq!(cf.selected(), vec![2, 4]);
        // Gender histogram reflects only the age brush: f = {2,4}, m = {1,3}.
        assert_eq!(cf.histogram(gender).counts, vec![2, 2]);
        // Age histogram reflects only the gender brush: females at 15,34,60.
        assert_eq!(cf.histogram(age).counts, vec![1, 1, 1, 0]);
        assert!(cf.check_consistency());
    }

    #[test]
    fn rebrushing_moves_the_window_incrementally() {
        let (mut cf, age, _) = fixture();
        cf.brush_range(age, 0.0, 30.0);
        assert_eq!(cf.selection_count(), 2);
        cf.brush_range(age, 30.0, 80.0);
        assert_eq!(cf.selection_count(), 4);
        cf.brush_range(age, 30.0, 46.0);
        assert_eq!(cf.selection_count(), 2);
        assert!(cf.check_consistency());
    }

    #[test]
    fn clear_brush_restores_everything() {
        let (mut cf, age, gender) = fixture();
        cf.brush_range(age, 18.0, 40.0);
        cf.brush_categories(gender, &[1]);
        cf.clear_brush(age);
        cf.clear_brush(gender);
        assert_eq!(cf.selection_count(), 6);
        assert_eq!(cf.histogram(age).counts, vec![1, 2, 2, 1]);
        assert_eq!(cf.histogram(gender).counts, vec![3, 3]);
        assert!(cf.check_consistency());
        assert_eq!(*cf.brush(age), BrushState::None);
    }

    #[test]
    fn clear_without_brush_is_noop() {
        let (mut cf, age, gender) = fixture();
        cf.clear_brush(age);
        cf.clear_brush(gender);
        assert_eq!(cf.selection_count(), 6);
        assert!(cf.check_consistency());
    }

    #[test]
    fn weights_sum_per_bin() {
        let (mut cf, _, gender) = fixture();
        cf.attach_weights(gender, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let h = cf.histogram(gender);
        assert_eq!(h.sums.unwrap(), vec![1.0 + 3.0 + 5.0, 2.0 + 4.0 + 6.0]);
        let (mut cf2, age, gender2) = fixture();
        cf2.attach_weights(gender2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        cf2.brush_range(age, 18.0, 40.0);
        let h2 = cf2.histogram(gender2);
        assert_eq!(h2.sums.unwrap(), vec![3.0, 2.0]);
        assert!(cf2.check_consistency());
    }

    #[test]
    fn top_lists_selected_by_value_desc() {
        let (mut cf, age, gender) = fixture();
        cf.brush_categories(gender, &[0]);
        assert_eq!(cf.top(age, 2), vec![4, 2]); // ages 60, 34
        assert_eq!(cf.top(age, 10), vec![4, 2, 0]);
    }

    #[test]
    fn empty_crossfilter() {
        let mut cf = Crossfilter::new(0);
        let d = cf.add_numeric(vec![], &[1.0]);
        cf.brush_range(d, 0.0, 1.0);
        assert_eq!(cf.selection_count(), 0);
        assert!(cf.check_consistency());
    }

    #[test]
    #[should_panic(expected = "numeric dimension")]
    fn brush_range_on_categorical_panics() {
        let (mut cf, _, gender) = fixture();
        cf.brush_range(gender, 0.0, 1.0);
    }

    #[test]
    fn empty_category_brush_deselects_all() {
        let (mut cf, _, gender) = fixture();
        cf.brush_categories(gender, &[]);
        assert_eq!(cf.selection_count(), 0);
        assert!(cf.check_consistency());
        cf.brush_categories(gender, &[0, 1]);
        assert_eq!(cf.selection_count(), 6);
        assert!(cf.check_consistency());
    }

    // Random operation sequences must keep incremental state identical to
    // the naive recomputation — the core crossfilter invariant.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_incremental_equals_naive(
            n in 1usize..60,
            seed_vals in proptest::collection::vec(0.0f64..100.0, 60),
            seed_cats in proptest::collection::vec(0u32..4, 60),
            ops in proptest::collection::vec((0usize..4, 0.0f64..100.0, 0.0f64..100.0, proptest::collection::vec(0u32..4, 0..4)), 1..25)
        ) {
            let vals: Vec<f64> = seed_vals[..n].to_vec();
            let cats: Vec<u32> = seed_cats[..n].to_vec();
            let mut cf = Crossfilter::new(n);
            let dn = cf.add_numeric(vals, &[25.0, 50.0, 75.0]);
            let dc = cf.add_categorical(cats, 4);
            cf.attach_weights(dn, (0..n).map(|i| i as f64).collect());
            for (kind, a, b, cat_list) in ops {
                match kind {
                    0 => cf.brush_range(dn, a.min(b), a.max(b)),
                    1 => cf.brush_categories(dc, &cat_list),
                    2 => cf.clear_brush(dn),
                    _ => cf.clear_brush(dc),
                }
                prop_assert!(cf.check_consistency(), "state diverged from naive");
            }
        }
    }
}
