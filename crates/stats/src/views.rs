//! The STATS module: demographic histograms over one group's members with
//! coordinated brushing and the selected-user table.
//!
//! "Histograms will show an exhaustive list of demographic distributions in
//! STATS … The explorer can brush on histograms and constrain the set of
//! users … An updated list of selected users is shown in a table."

use crate::crossfilter::{Crossfilter, DimId, Histogram};
use std::collections::HashMap;
use vexus_data::{AttrId, UserData, UserId};

/// Coordinated demographic views over a set of users.
pub struct StatsView<'a> {
    data: &'a UserData,
    /// The users under inspection (e.g. one group's members); row `r` of the
    /// crossfilter corresponds to `users[r]`.
    users: Vec<UserId>,
    cf: Crossfilter,
    /// Attribute -> (dimension, value labels).
    dims: HashMap<AttrId, DimId>,
    /// Extra dimension over activity (number of actions), for tables like
    /// the paper's publication-count drill-down.
    activity_dim: DimId,
}

impl<'a> StatsView<'a> {
    /// Build the view over `users` (every schema attribute becomes one
    /// categorical dimension; a numeric "activity" dimension is added from
    /// the action log). The schema may hold at most 31 attributes — the
    /// demo schemas have fewer than ten.
    pub fn new(data: &'a UserData, users: Vec<UserId>) -> Self {
        let n = users.len();
        let mut cf = Crossfilter::new(n);
        let mut dims = HashMap::new();
        for (attr, _) in data.schema().iter() {
            // Missing values get their own trailing bin.
            let n_cats = data.schema().cardinality(attr) + 1;
            let missing_bin = (n_cats - 1) as u32;
            let cats: Vec<u32> = users
                .iter()
                .map(|&u| {
                    let v = data.value(u, attr);
                    if v.is_missing() {
                        missing_bin
                    } else {
                        v.raw()
                    }
                })
                .collect();
            let dim = cf.add_categorical(cats, n_cats);
            dims.insert(attr, dim);
        }
        let activity: Vec<f64> = users
            .iter()
            .map(|&u| data.user_activity(u) as f64)
            .collect();
        let activity_dim = cf.add_numeric(activity, &[1.0, 5.0, 20.0, 100.0]);
        Self {
            data,
            users,
            cf,
            dims,
            activity_dim,
        }
    }

    /// Number of users under inspection.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Number of users passing all current brushes.
    pub fn n_selected(&self) -> usize {
        self.cf.selection_count()
    }

    /// Histogram of an attribute: `(value label, count)` pairs, including a
    /// `"<missing>"` bucket when populated. Reflects brushes on all *other*
    /// dimensions.
    pub fn histogram(&self, attr: AttrId) -> Vec<(String, u64)> {
        let dim = self.dims[&attr];
        let Histogram { counts, .. } = self.cf.histogram(dim);
        let card = self.data.schema().cardinality(attr);
        let mut out = Vec::with_capacity(counts.len());
        for (bin, &c) in counts.iter().enumerate() {
            let label = if bin == card {
                if c == 0 {
                    continue;
                }
                "<missing>".to_string()
            } else {
                self.data
                    .schema()
                    .value_label(attr, vexus_data::ValueId::new(bin as u32))
                    .to_string()
            };
            out.push((label, c));
        }
        out
    }

    /// Share of selected users with the given attribute value (the paper's
    /// "62 % of its members are male" readout). Returns `None` for unknown
    /// labels.
    pub fn share(&self, attr: AttrId, label: &str) -> Option<f64> {
        let hist = self.histogram(attr);
        let total: u64 = hist.iter().map(|(_, c)| c).sum();
        if total == 0 {
            return Some(0.0);
        }
        hist.iter()
            .find(|(l, _)| l == label)
            .map(|(_, c)| *c as f64 / total as f64)
    }

    /// Brush an attribute to the given value labels ("limit the search only
    /// to females" = `brush(gender, &["female"])`). Unknown labels are
    /// ignored; an empty resolved set deselects everything.
    pub fn brush(&mut self, attr: AttrId, labels: &[&str]) {
        let dim = self.dims[&attr];
        let cats: Vec<u32> = labels
            .iter()
            .filter_map(|l| self.data.schema().value(attr, l))
            .map(|v| v.raw())
            .collect();
        self.cf.brush_categories(dim, &cats);
    }

    /// Brush the activity dimension to `[lo, hi)` actions.
    pub fn brush_activity(&mut self, lo: f64, hi: f64) {
        self.cf.brush_range(self.activity_dim, lo, hi);
    }

    /// Clear the brush on an attribute.
    pub fn clear_brush(&mut self, attr: AttrId) {
        self.cf.clear_brush(self.dims[&attr]);
    }

    /// Clear every brush.
    pub fn clear_all(&mut self) {
        let attrs: Vec<AttrId> = self.dims.keys().copied().collect();
        for a in attrs {
            self.cf.clear_brush(self.dims[&a]);
        }
        self.cf.clear_brush(self.activity_dim);
    }

    /// The table of selected users, most active first: `(user, name,
    /// activity)` rows.
    pub fn table(&self, k: usize) -> Vec<(UserId, String, usize)> {
        self.cf
            .top(self.activity_dim, k)
            .into_iter()
            .map(|r| {
                let u = self.users[r as usize];
                (
                    u,
                    self.data.user_name(u).to_string(),
                    self.data.user_activity(u),
                )
            })
            .collect()
    }

    /// Selected users (dataset ids).
    pub fn selected_users(&self) -> Vec<UserId> {
        self.cf
            .selected()
            .into_iter()
            .map(|r| self.users[r as usize])
            .collect()
    }

    /// Render all histograms as fixed-width text (for the CLI examples and
    /// the F2 render experiment).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (attr, def) in self.data.schema().iter() {
            out.push_str(&format!("[{}]\n", def.name));
            let hist = self.histogram(attr);
            let max = hist.iter().map(|(_, c)| *c).max().unwrap_or(0).max(1);
            for (label, count) in hist {
                let bar = "#".repeat(((count * 30) / max) as usize);
                out.push_str(&format!("  {label:<20} {count:>6} {bar}\n"));
            }
        }
        out.push_str(&format!(
            "selected: {} / {}\n",
            self.n_selected(),
            self.n_users()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexus_data::{Schema, UserDataBuilder};

    fn data() -> UserData {
        let mut s = Schema::new();
        let gender = s.add_categorical("gender");
        let seniority = s.add_categorical("seniority");
        let mut b = UserDataBuilder::new(s);
        let names = ["elke", "bob", "carol", "dan", "eve", "frank"];
        let genders = ["female", "male", "female", "male", "female", "male"];
        let levels = [
            "very senior",
            "junior",
            "senior",
            "very senior",
            "junior",
            "junior",
        ];
        let paper = b.item("paper", None);
        for ((name, g), l) in names.iter().zip(genders).zip(levels) {
            let u = b.user(name);
            b.set_demo(u, gender, g).unwrap();
            b.set_demo(u, seniority, l).unwrap();
            // elke is extremely active.
            let pubs = if *name == "elke" { 30 } else { 2 };
            for _ in 0..pubs {
                b.action(u, paper, 1.0);
            }
        }
        b.build()
    }

    #[test]
    fn histograms_show_demographic_distributions() {
        let d = data();
        let view = StatsView::new(&d, d.users().collect());
        let gender = d.schema().attr("gender").unwrap();
        let hist = view.histogram(gender);
        assert_eq!(
            hist,
            vec![("female".to_string(), 3), ("male".to_string(), 3)]
        );
        assert_eq!(view.share(gender, "male"), Some(0.5));
    }

    #[test]
    fn paper_drill_down_scenario() {
        // "by brushing on gender to select females and on publication rate
        // to select extremely active … the table lists Elke".
        let d = data();
        let mut view = StatsView::new(&d, d.users().collect());
        let gender = d.schema().attr("gender").unwrap();
        view.brush(gender, &["female"]);
        view.brush_activity(20.0, 1e9);
        let table = view.table(10);
        assert_eq!(table.len(), 1);
        assert_eq!(table[0].1, "elke");
        assert_eq!(table[0].2, 30);
        assert_eq!(view.n_selected(), 1);
    }

    #[test]
    fn brushing_is_coordinated_across_histograms() {
        let d = data();
        let mut view = StatsView::new(&d, d.users().collect());
        let gender = d.schema().attr("gender").unwrap();
        let seniority = d.schema().attr("seniority").unwrap();
        view.brush(gender, &["female"]);
        // Seniority histogram now reflects only females.
        let hist = view.histogram(seniority);
        let get = |l: &str| {
            hist.iter()
                .find(|(x, _)| x == l)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert_eq!(get("very senior"), 1); // elke
        assert_eq!(get("junior"), 1); // eve
        assert_eq!(get("senior"), 1); // carol
                                      // Gender histogram itself is unaffected by its own brush.
        assert_eq!(
            view.histogram(gender),
            vec![("female".to_string(), 3), ("male".to_string(), 3)]
        );
    }

    #[test]
    fn unlearn_by_clearing_brush() {
        let d = data();
        let mut view = StatsView::new(&d, d.users().collect());
        let gender = d.schema().attr("gender").unwrap();
        view.brush(gender, &["female"]);
        assert_eq!(view.n_selected(), 3);
        view.clear_brush(gender);
        assert_eq!(view.n_selected(), 6);
        view.brush(gender, &["female"]);
        view.brush_activity(20.0, 1e9);
        view.clear_all();
        assert_eq!(view.n_selected(), 6);
    }

    #[test]
    fn view_over_subset_of_users() {
        let d = data();
        // Only the first three users (a "group").
        let members: Vec<UserId> = d.users().take(3).collect();
        let view = StatsView::new(&d, members);
        assert_eq!(view.n_users(), 3);
        let gender = d.schema().attr("gender").unwrap();
        assert_eq!(
            view.histogram(gender),
            vec![("female".to_string(), 2), ("male".to_string(), 1)]
        );
    }

    #[test]
    fn missing_values_get_a_bucket() {
        let mut s = Schema::new();
        let g = s.add_categorical("gender");
        let mut b = UserDataBuilder::new(s);
        let u1 = b.user("known");
        b.set_demo(u1, g, "female").unwrap();
        b.user("anon");
        let d = b.build();
        let view = StatsView::new(&d, d.users().collect());
        let hist = view.histogram(g);
        assert!(hist.contains(&("<missing>".to_string(), 1)));
    }

    #[test]
    fn render_text_mentions_every_attribute() {
        let d = data();
        let view = StatsView::new(&d, d.users().collect());
        let text = view.render_text();
        assert!(text.contains("[gender]"));
        assert!(text.contains("[seniority]"));
        assert!(text.contains("selected: 6 / 6"));
    }

    #[test]
    fn empty_user_set() {
        let d = data();
        let view = StatsView::new(&d, Vec::new());
        assert_eq!(view.n_selected(), 0);
        let gender = d.schema().attr("gender").unwrap();
        assert_eq!(view.share(gender, "male"), Some(0.0));
        assert!(view.table(5).is_empty());
    }
}
