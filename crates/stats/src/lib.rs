//! # vexus-stats
//!
//! A from-scratch **crossfilter** engine: the coordinated-views machinery
//! behind the paper's STATS module.
//!
//! > "Histograms are implemented using Crossfilter charts. Crossfilter
//! > employs the methodology of coordinated views where a brush on one
//! > histogram updates all other statistics instantaneously. […]
//! > Crossfilter's efficiency is ensured by employing the concept of
//! > incremental queries which prevents redundant query executions by
//! > sub-setting the data under the brush, on-the-fly."
//!
//! The design mirrors square/crossfilter:
//!
//! * each record carries a **filter bitmask** with one bit per dimension;
//!   a record is *selected* when its mask is zero,
//! * each dimension keeps its records in **sorted order**, so a range brush
//!   maps to an index interval and re-brushing touches only the records in
//!   the symmetric difference of the old and new intervals,
//! * per-dimension **histograms** count records that pass every *other*
//!   dimension's filter (brushing a histogram never empties itself), and
//!   are updated incrementally, record by record, as bits toggle.
//!
//! [`Crossfilter`] is the engine; [`views::StatsView`] adapts a
//! `vexus-data` dataset (or one group's members) into a ready-made set of
//! demographic histograms plus the brushed user table shown in the demo's
//! drill-down ("62 % of this group is male … the table lists Elke A.
//! Rundensteiner").

pub mod crossfilter;
pub mod views;

pub use crossfilter::{BrushState, Crossfilter, DimId, Histogram};
pub use views::StatsView;
