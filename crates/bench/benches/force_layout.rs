//! C11 micro-bench: force-layout convergence for the paper's k ≤ 7 circles
//! (and beyond).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vexus_viz::force::{ForceConfig, ForceLayout};

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("force_layout_300_ticks");
    for k in [5usize, 7, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("k{k}")), &k, |b, &k| {
            let radii: Vec<f64> = (0..k).map(|i| 45.0 - 2.0 * i as f64).collect();
            b.iter(|| {
                let mut layout = ForceLayout::new(&radii, ForceConfig::default());
                layout.run(300);
                layout.total_overlap_area()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
