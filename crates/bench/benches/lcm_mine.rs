//! C6 micro-bench: LCM closed-group mining at decreasing support (the
//! group space grows steeply as support drops).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vexus_data::synthetic::{bookcrossing, BookCrossingConfig};
use vexus_data::Vocabulary;
use vexus_mining::transactions::TransactionDb;
use vexus_mining::LcmConfig;

fn bench_lcm(c: &mut Criterion) {
    let ds = bookcrossing(&BookCrossingConfig {
        n_users: 2_000,
        n_books: 1_500,
        n_ratings: 12_000,
        n_communities: 6,
        seed: 7,
    });
    let vocab = Vocabulary::build(&ds.data);
    let db = TransactionDb::build(&ds.data, &vocab);
    let mut group = c.benchmark_group("lcm_mine");
    group.sample_size(10);
    for min_support in [50usize, 20, 10, 5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("support_{min_support}")),
            &min_support,
            |b, &s| {
                let cfg = LcmConfig {
                    min_support: s,
                    ..Default::default()
                };
                b.iter(|| vexus_mining::mine_closed_groups(&db, &cfg));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lcm);
criterion_main!(benches);
