//! C3 micro-bench: inverted-index construction at the paper's 10 %
//! materialization vs full, serial vs parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vexus_bench::workloads;
use vexus_core::EngineConfig;
use vexus_index::{GroupIndex, IndexConfig};

fn bench_index_build(c: &mut Criterion) {
    let vexus = workloads::small_bookcrossing_engine(EngineConfig::paper());
    let groups = vexus.groups();
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for (label, fraction, threads) in [
        ("10pct_serial", 0.10, 1usize),
        ("10pct_parallel", 0.10, 0),
        ("100pct_parallel", 1.0, 0),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                GroupIndex::build(
                    groups,
                    &IndexConfig {
                        materialize_fraction: fraction,
                        threads,
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
