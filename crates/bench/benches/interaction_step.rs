//! C2 micro-bench: the O(1) interaction core — index neighbor lookup and
//! history backtrack — plus the full (greedy-capped) click for reference.

use criterion::{criterion_group, criterion_main, Criterion};
use vexus_bench::workloads;
use vexus_core::EngineConfig;

fn bench_interactions(c: &mut Criterion) {
    let vexus = workloads::small_bookcrossing_engine(EngineConfig::paper());
    let session = vexus.session().expect("session opens");
    let g = session.display()[0];

    c.bench_function("index_neighbor_lookup_k16", |b| {
        b.iter(|| std::hint::black_box(vexus.index().neighbors(vexus.groups(), g, 16)));
    });

    c.bench_function("backtrack", |b| {
        let mut session = vexus.session().expect("session opens");
        let g0 = session.display()[0];
        session.click(g0).expect("click");
        b.iter(|| {
            session.backtrack(0).expect("backtrack");
        });
    });

    let mut group = c.benchmark_group("full_click");
    group.sample_size(10);
    group.bench_function("click_100ms_budget", |b| {
        b.iter_batched(
            || vexus.session().expect("session opens"),
            |mut s| {
                let g = s.display()[0];
                s.click(g).expect("click");
                s
            },
            criterion::BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_interactions);
criterion_main!(benches);
