//! C2 micro-bench: the O(1) interaction core — index neighbor lookup
//! (direct and through the shared serving cache) and history backtrack —
//! plus the full (greedy-capped) click for reference. The click benches
//! also pin the d5 allocation cuts: a step reuses the session's greedy
//! scratch buffers and clones neither the clicked group's member list nor
//! the selection.

use criterion::{criterion_group, criterion_main, Criterion};
use vexus_bench::workloads;
use vexus_core::EngineConfig;

fn bench_interactions(c: &mut Criterion) {
    let vexus = workloads::small_bookcrossing_engine(EngineConfig::paper());
    let session = vexus.session().expect("session opens");
    let g = session.display()[0];

    c.bench_function("index_neighbor_lookup_k16", |b| {
        b.iter(|| std::hint::black_box(vexus.index().neighbors(vexus.groups(), g, 16)));
    });

    // The serving fast path: after the first query the list is an Arc
    // clone out of the shared cache instead of a fresh scan.
    if let Some(cache) = vexus.neighbor_cache() {
        c.bench_function("cached_neighbor_lookup_k16", |b| {
            b.iter(|| std::hint::black_box(cache.neighbors(vexus.index(), vexus.groups(), g, 16)));
        });
    }

    c.bench_function("backtrack", |b| {
        let mut session = vexus.session().expect("session opens");
        let g0 = session.display()[0];
        session.click(g0).expect("click");
        b.iter(|| {
            session.backtrack(0).expect("backtrack");
        });
    });

    let mut group = c.benchmark_group("full_click");
    group.sample_size(10);
    group.bench_function("click_100ms_budget", |b| {
        b.iter_batched(
            || vexus.session().expect("session opens"),
            |mut s| {
                let g = s.display()[0];
                s.click(g).expect("click");
                s
            },
            criterion::BatchSize::PerIteration,
        );
    });
    // Steady-state clicking on one long-lived session: the shape serving
    // cares about — scratch buffers and candidate vectors are warm, every
    // per-step allocation the d5 work removed would show up here.
    group.bench_function("click_steady_state", |b| {
        let mut s = vexus.session().expect("session opens");
        b.iter(|| {
            if s.display().is_empty() {
                s.backtrack(0).expect("backtrack");
            }
            let g = s.display()[0];
            s.click(g).expect("click");
        });
    });
    group.finish();
}

criterion_group!(benches, bench_interactions);
criterion_main!(benches);
