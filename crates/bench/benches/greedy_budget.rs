//! C1 micro-bench: the time-budgeted greedy selector at the paper's 100 ms
//! setting and around it. Wall-time per call should track the budget (the
//! optimizer is anytime), and the zero-budget seed path should be fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vexus_bench::workloads;
use vexus_core::greedy::{self, ScoredCandidate, SelectParams};
use vexus_core::{EngineConfig, FeedbackVector};
use vexus_mining::GroupId;

fn bench_greedy(c: &mut Criterion) {
    let vexus = workloads::small_bookcrossing_engine(EngineConfig::paper());
    let mut anchors: Vec<GroupId> = vexus.groups().ids().collect();
    anchors.sort_by_key(|&g| std::cmp::Reverse(vexus.groups().get(g).size()));
    let anchor = anchors[0];
    let candidates: Vec<ScoredCandidate> = vexus
        .index()
        .neighbors(vexus.groups(), anchor, 256)
        .into_iter()
        .map(|(id, s)| (id, s as f64))
        .collect();
    let reference = vexus.groups().get(anchor).members.clone();
    let fb = FeedbackVector::new();

    let mut group = c.benchmark_group("greedy_budget");
    group.sample_size(10);
    for budget_ms in [0u64, 10, 100] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{budget_ms}ms")),
            &budget_ms,
            |b, &ms| {
                let params = SelectParams {
                    k: 5,
                    budget: Some(Duration::from_millis(ms)),
                    min_similarity: 0.01,
                    ..Default::default()
                };
                b.iter(|| greedy::select_k(vexus.groups(), &candidates, &reference, &fb, &params));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
