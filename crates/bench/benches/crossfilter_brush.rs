//! C8 micro-bench: brush latency — incremental crossfilter vs naive
//! recomputation, at 100k records.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vexus_stats::Crossfilter;

fn build(n: usize) -> (Crossfilter, vexus_stats::DimId) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut cf = Crossfilter::new(n);
    let vals: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 100.0).collect();
    let dim = cf.add_numeric(vals, &[25.0, 50.0, 75.0]);
    let cats: Vec<u32> = (0..n).map(|_| rng.gen_range(0..8)).collect();
    cf.add_categorical(cats, 8);
    (cf, dim)
}

fn bench_brush(c: &mut Criterion) {
    let n = 100_000;
    c.bench_function("brush_incremental_100k", |b| {
        let (mut cf, dim) = build(n);
        let mut i = 0u64;
        b.iter(|| {
            let lo = (i % 90) as f64;
            cf.brush_range(dim, lo, lo + 10.0);
            i += 1;
        });
    });
    c.bench_function("brush_naive_100k", |b| {
        let (mut cf, dim) = build(n);
        let mut i = 0u64;
        b.iter(|| {
            let lo = (i % 90) as f64;
            cf.brush_range(dim, lo, lo + 10.0);
            std::hint::black_box(cf.recompute_naive());
            i += 1;
        });
    });
}

criterion_group!(benches, bench_brush);
criterion_main!(benches);
