//! D6 micro-benches: snapshot encode and load against the full rebuild.
//! `snapshot_load` is the number the format exists for — validation plus
//! slice reinterpretation of the whole engine, no discovery, no pair
//! scoring — and `snapshot_encode` is the build-host cost of producing
//! the buffer. `engine_rebuild` gives the baseline the load replaces.

use criterion::{criterion_group, criterion_main, Criterion};
use vexus_bench::workloads;
use vexus_core::{EngineConfig, Vexus};

fn bench_snapshot_codec(c: &mut Criterion) {
    let vexus = workloads::small_bookcrossing_engine(EngineConfig::paper());
    let buf = vexus.write_snapshot();

    c.bench_function("snapshot_encode", |b| {
        b.iter(|| std::hint::black_box(vexus.write_snapshot()));
    });

    c.bench_function("snapshot_load", |b| {
        b.iter(|| {
            let loaded = Vexus::from_snapshot(vexus.data().clone(), &buf, vexus.config().clone())
                .expect("valid snapshot");
            std::hint::black_box(loaded)
        });
    });

    let mut group = c.benchmark_group("rebuild_baseline");
    group.sample_size(10);
    group.bench_function("engine_rebuild", |b| {
        b.iter(|| {
            std::hint::black_box(workloads::small_bookcrossing_engine(EngineConfig::paper()))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot_codec);
criterion_main!(benches);
