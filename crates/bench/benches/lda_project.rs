//! C10 micro-bench: fitting and projecting the Focus view — LDA vs the PCA
//! baseline on one group's member features.

use criterion::{criterion_group, criterion_main, Criterion};
use vexus_bench::workloads;
use vexus_core::features::Featurizer;
use vexus_core::EngineConfig;
use vexus_data::UserId;
use vexus_mining::GroupId;
use vexus_viz::lda::Lda;
use vexus_viz::pca::Pca;

fn bench_projection(c: &mut Criterion) {
    let vexus = workloads::small_bookcrossing_engine(EngineConfig::paper());
    let mut biggest: Vec<GroupId> = vexus.groups().ids().collect();
    biggest.sort_by_key(|&g| std::cmp::Reverse(vexus.groups().get(g).size()));
    let members: Vec<UserId> = vexus
        .groups()
        .get(biggest[0])
        .members
        .iter()
        .take(300)
        .map(UserId::new)
        .collect();
    let featurizer = Featurizer::new(vexus.data());
    let points = featurizer.features_of(vexus.data(), &members);
    let attr = vexus.data().schema().attr("favorite_genre").expect("attr");
    let labels: Vec<u32> = members
        .iter()
        .map(|&u| {
            let v = vexus.data().value(u, attr);
            if v.is_missing() {
                999
            } else {
                v.raw()
            }
        })
        .collect();

    let mut group = c.benchmark_group("focus_projection");
    group.sample_size(20);
    group.bench_function("lda_fit_project", |b| {
        b.iter(|| {
            let lda = Lda::fit(&points, &labels, 2);
            lda.project_all(&points)
        });
    });
    group.bench_function("pca_fit_project", |b| {
        b.iter(|| {
            let pca = Pca::fit(&points, 2);
            pca.project_all(&points)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_projection);
criterion_main!(benches);
