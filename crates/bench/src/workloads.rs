//! Shared experiment workloads.
//!
//! Sizes default to laptop-friendly slices of the paper's datasets; the
//! `VEXUS_SCALE` environment variable multiplies user/action counts for
//! full-scale runs (e.g. `VEXUS_SCALE=14` approximates the real
//! BOOKCROSSING's 278k users). Engines are assembled through
//! [`VexusBuilder`], so every workload can run under any discovery
//! backend (see [`engine_over`]).

use vexus_core::engine::VexusBuilder;
use vexus_core::{EngineConfig, Vexus};
use vexus_data::synthetic::{
    bookcrossing, dbauthors, grocery, BookCrossingConfig, DbAuthorsConfig, GroceryConfig,
    SyntheticDataset,
};
use vexus_mining::GroupDiscovery;

/// Scale multiplier from the environment (default 1).
pub fn scale() -> usize {
    std::env::var("VEXUS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// The standard BookCrossing-like workload at a given scale multiplier.
pub fn bookcrossing_at(mult: usize) -> SyntheticDataset {
    bookcrossing(&BookCrossingConfig {
        n_users: 5_000 * mult,
        n_books: 4_000 * mult,
        n_ratings: 30_000 * mult,
        n_communities: 8,
        seed: 42,
    })
}

/// The standard DB-AUTHORS-like workload.
pub fn dbauthors_at(mult: usize) -> SyntheticDataset {
    dbauthors(&DbAuthorsConfig {
        n_authors: 4_000 * mult,
        n_publications: 30_000 * mult,
        n_communities: 6,
        seed: 42,
    })
}

/// The grocery workload for the hypothesis-validation scenario.
pub fn grocery_default() -> SyntheticDataset {
    grocery(&GroceryConfig::default())
}

/// Build an engine over any dataset with any discovery backend — the
/// plug-in seam the backend-comparison experiments use.
pub fn engine_over(
    ds: SyntheticDataset,
    backend: Box<dyn GroupDiscovery>,
    config: EngineConfig,
) -> Vexus {
    VexusBuilder::new(ds.data)
        .config(config)
        .discovery_boxed(backend)
        .build()
        .expect("non-empty group space")
}

/// Build an engine over the standard BookCrossing workload.
pub fn bookcrossing_engine(config: EngineConfig) -> (Vexus, Vec<u32>) {
    let ds = bookcrossing_at(scale());
    let latent = ds.latent.clone();
    let vexus = VexusBuilder::new(ds.data)
        .config(config)
        .build()
        .expect("non-empty group space");
    (vexus, latent)
}

/// Build an engine over the standard DB-AUTHORS workload.
pub fn dbauthors_engine(config: EngineConfig) -> (Vexus, Vec<u32>) {
    let ds = dbauthors_at(scale());
    let latent = ds.latent.clone();
    let vexus = VexusBuilder::new(ds.data)
        .config(config)
        .build()
        .expect("non-empty group space");
    (vexus, latent)
}

/// Small engine for fast criterion benches.
pub fn small_bookcrossing_engine(config: EngineConfig) -> Vexus {
    let ds = bookcrossing(&BookCrossingConfig {
        n_users: 2_000,
        n_books: 1_500,
        n_ratings: 12_000,
        n_communities: 6,
        seed: 7,
    });
    VexusBuilder::new(ds.data)
        .config(config)
        .build()
        .expect("non-empty group space")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexus_mining::BirchDiscovery;

    #[test]
    fn scale_defaults_to_one() {
        // (Environment is not set in tests.)
        assert!(scale() >= 1);
    }

    #[test]
    fn small_engine_builds() {
        let vexus = small_bookcrossing_engine(EngineConfig::default());
        assert!(vexus.build_stats().n_groups > 50);
    }

    #[test]
    fn engine_over_swaps_backends() {
        let ds = bookcrossing(&BookCrossingConfig::tiny());
        let vexus = engine_over(
            ds,
            Box::new(BirchDiscovery::default()),
            EngineConfig::default(),
        );
        assert_eq!(vexus.build_stats().discovery.algorithm, "birch");
    }
}
