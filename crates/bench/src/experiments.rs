//! One function per experiment id. Each prints the table/series DESIGN.md §3
//! maps to a paper figure or claim, and returns it as a string so the tests
//! can assert on shape.

use crate::workloads;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vexus_core::engine::{OwnedSession, VexusBuilder};
use vexus_core::greedy::{self, ScoredCandidate, SelectParams};
use vexus_core::simulate::{run_committee, run_st, CommitteeTask, Policy, StAccept};
use vexus_core::{EngineConfig, FeedbackVector};
use vexus_core::{ExplorationService, ServeError, ServiceConfig, ServiceStats, SessionId, Vexus};
use vexus_data::synthetic::{bookcrossing, BookCrossingConfig};
use vexus_data::{UserId, Vocabulary};
use vexus_index::{GroupIndex, IndexConfig};
use vexus_mining::transactions::TransactionDb;
use vexus_mining::{
    mine_closed_groups, BirchDiscovery, EnsembleDiscovery, GroupDiscovery, GroupId, GroupSet,
    LcmConfig, LcmDiscovery, MemberSet, MergeContext, MergeStrategy, MomriConfig, MomriDiscovery,
    ShardedDiscovery, StreamFimConfig, StreamFimDiscovery,
};
use vexus_stats::Crossfilter;
use vexus_viz::force::{ForceConfig, ForceLayout};
use vexus_viz::lda::Lda;
use vexus_viz::pca::{silhouette, Pca};

/// All experiment ids, in report order.
pub const ALL: &[&str] = &[
    "f1", "f2", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9", "c1", "c2", "c3", "c4", "c5",
    "c6", "c7", "c8", "c9", "c10", "c11", "c12",
];

/// One experiment's output: the human-readable table plus structured
/// per-stage wall-clock metrics. Metrics land in the `--json` document as
/// `(name, milliseconds)` pairs, the machine-readable perf trajectory CI
/// tracks across commits; most experiments report none.
pub struct Report {
    /// The printed table/series.
    pub text: String,
    /// Structured `(stage, wall-clock ms)` measurements.
    pub metrics: Vec<(String, f64)>,
}

impl From<String> for Report {
    fn from(text: String) -> Self {
        Self {
            text,
            metrics: Vec::new(),
        }
    }
}

/// Dispatch one experiment by id.
pub fn run(id: &str) -> Option<Report> {
    let out = match id {
        "f1" => f1_architecture().into(),
        "f2" => f2_views().into(),
        "d1" => d1_discovery_backends().into(),
        "d2" => d2_sharded_discovery(),
        "d3" => d3_parallel_hot_paths(),
        "d4" => d4_hot_path_cuts(),
        "d5" => d5_concurrent_serving(),
        "d6" => d6_snapshot(),
        "d7" => d7_chaos_serving(),
        "d8" => d8_live_engine(),
        "d9" => d9_durability(),
        "c1" => c1_budget_sweep().into(),
        "c2" => c2_interaction_latency().into(),
        "c3" => c3_materialization().into(),
        "c4" => c4_committee_formation().into(),
        "c5" => c5_k_sweep().into(),
        "c6" => c6_group_space().into(),
        "c7" => c7_feedback_ablation().into(),
        "c8" => c8_crossfilter().into(),
        "c9" => c9_discussion_groups().into(),
        "c10" => c10_lda_vs_pca().into(),
        "c11" => c11_force_layout().into(),
        "c12" => c12_stats_drilldown().into(),
        _ => return None,
    };
    Some(out)
}

fn header(id: &str, title: &str) -> String {
    format!("\n=== {} — {} ===\n", id.to_uppercase(), title)
}

// ---------------------------------------------------------------------------
// F1: architecture pipeline smoke (Fig. 1)
// ---------------------------------------------------------------------------

/// End-to-end pipeline over both datasets: ETL-shaped input → group
/// discovery → index generation → session open, with stage timings.
pub fn f1_architecture() -> String {
    let mut out = header("f1", "architecture pipeline (Fig. 1)");
    for (name, ds) in [
        (
            "bookcrossing",
            workloads::bookcrossing_at(workloads::scale()),
        ),
        ("dbauthors", workloads::dbauthors_at(workloads::scale())),
    ] {
        let n_users = ds.data.n_users();
        let n_actions = ds.data.n_actions();
        let vexus = VexusBuilder::new(ds.data)
            .config(EngineConfig::paper())
            .build()
            .expect("non-empty");
        let s = vexus.build_stats();
        let t0 = Instant::now();
        let session = vexus.session().expect("session opens");
        let open = t0.elapsed();
        let _ = writeln!(
            out,
            "{name:>13}: users={n_users} actions={n_actions} | discovery[{}]: {} groups in {:?} | \
             index: {} entries / {} KiB in {:?} | session open: {:?} ({} groups shown)",
            s.discovery.algorithm,
            s.n_groups,
            s.discovery.elapsed,
            s.index_entries,
            s.index_bytes / 1024,
            s.index_time,
            open,
            session.display().len()
        );
    }
    out
}

// ---------------------------------------------------------------------------
// F2: the five coordinated views (Fig. 2)
// ---------------------------------------------------------------------------

/// A scripted session rendering GROUPVIZ, CONTEXT, STATS, HISTORY, MEMO and
/// the Focus view; SVGs are written to `target/vexus-renders/`.
pub fn f2_views() -> String {
    let mut out = header("f2", "the five coordinated views (Fig. 2)");
    let (vexus, _) = workloads::dbauthors_engine(EngineConfig::paper());
    let mut session = vexus.session().expect("session opens");
    let g = session.display()[0];
    session.click(g).expect("click works");
    session
        .memo_group(session.display()[0])
        .expect("memo works");
    if let Some(u) = vexus
        .groups()
        .get(session.display()[0])
        .members
        .iter()
        .next()
    {
        session.memo_user(UserId::new(u));
    }
    out.push_str(&session.render_text());

    // STATS view of the clicked group.
    let stats = session
        .stats_view(session.display()[0])
        .expect("stats view");
    out.push_str("== STATS ==\n");
    out.push_str(&stats.render_text());

    // SVG renders.
    let render_dir = std::path::Path::new("target/vexus-renders");
    let _ = std::fs::create_dir_all(render_dir);
    let color_attr = vexus.data().schema().attr("gender").expect("gender exists");
    let circles = session.groupviz(color_attr);
    let mut doc = vexus_viz::svg::SvgDoc::new(800.0, 600.0);
    for c in &circles {
        doc.circle(c.x, c.y, c.radius, c.color, &c.label);
    }
    let groupviz_svg = doc.finish();
    let _ = std::fs::write(render_dir.join("groupviz.svg"), &groupviz_svg);

    let focus_attr = vexus.data().schema().attr("topic").expect("topic exists");
    let focus = session
        .focus_view(session.display()[0], focus_attr)
        .expect("focus view");
    let mut fdoc = vexus_viz::svg::SvgDoc::new(400.0, 400.0);
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for (_, p, _) in &focus {
        min_x = min_x.min(p[0]);
        max_x = max_x.max(p[0]);
        min_y = min_y.min(p[1]);
        max_y = max_y.max(p[1]);
    }
    let sx = 360.0 / (max_x - min_x).max(1e-9);
    let sy = 360.0 / (max_y - min_y).max(1e-9);
    for (_, p, class) in &focus {
        fdoc.point(
            20.0 + (p[0] - min_x) * sx,
            20.0 + (p[1] - min_y) * sy,
            vexus_viz::color::Palette::color(*class as usize),
        );
    }
    let _ = std::fs::write(render_dir.join("focus.svg"), fdoc.finish());

    let gender = vexus.data().schema().attr("gender").expect("gender exists");
    let hist = stats.histogram(gender);
    let _ = std::fs::write(
        render_dir.join("stats_gender.svg"),
        vexus_viz::svg::bar_chart("gender", &hist, 420.0),
    );
    let _ = writeln!(
        out,
        "SVG renders: groupviz.svg ({} circles), focus.svg ({} points), stats_gender.svg -> target/vexus-renders/",
        circles.len(),
        focus.len()
    );
    out
}

// ---------------------------------------------------------------------------
// D1: discovery backend comparison
// ---------------------------------------------------------------------------

/// The paper's pluggable discovery stage, measured: run LCM, α-MOMRI,
/// BIRCH and stream FIM over the same dataset through the builder and
/// compare group counts, coverage and end-to-end navigability.
pub fn d1_discovery_backends() -> String {
    let mut out = header(
        "d1",
        "pluggable discovery backends (LCM / α-MOMRI / BIRCH / stream FIM)",
    );
    let _ = writeln!(
        out,
        "{:>10} | {:>8} | {:>9} | {:>10} | {:>10} | {:>10}",
        "backend", "groups", "filtered", "coverage", "discovery", "steps ok"
    );
    let backends: Vec<Box<dyn GroupDiscovery>> = vec![
        Box::new(LcmDiscovery::new(LcmConfig {
            min_support: 5,
            ..Default::default()
        })),
        Box::new(MomriDiscovery::new(MomriConfig::default())),
        Box::new(BirchDiscovery::default()),
        Box::new(StreamFimDiscovery::new(StreamFimConfig {
            support: 0.02,
            epsilon: 0.004,
            max_len: 3,
        })),
    ];
    for backend in backends {
        let ds = bookcrossing(&BookCrossingConfig {
            n_users: 3_000,
            n_books: 2_000,
            n_ratings: 20_000,
            n_communities: 8,
            seed: 42,
        });
        let n_users = ds.data.n_users();
        let name = backend.name();
        let vexus = workloads::engine_over(ds, backend, EngineConfig::paper());
        let s = vexus.build_stats();
        let coverage = vexus.groups().distinct_users_covered(n_users) as f64 / n_users as f64;
        // Navigability smoke: three clicks through the space.
        let mut session = vexus.session().expect("session opens");
        let mut steps_ok = 0usize;
        for _ in 0..3 {
            let Some(&g) = session.display().first() else {
                break;
            };
            if session
                .click(g)
                .map(|next| !next.is_empty())
                .unwrap_or(false)
            {
                steps_ok += 1;
            } else {
                break;
            }
        }
        let _ = writeln!(
            out,
            "{:>10} | {:>8} | {:>9} | {:>9.1}% | {:>10?} | {:>8}/3",
            name,
            s.n_groups,
            s.filtered_out,
            coverage * 100.0,
            s.discovery.elapsed,
            steps_ok
        );
    }
    out.push_str(
        "(one builder, four backends: the offline discovery stage is a swappable plug-in)\n",
    );
    out
}

// ---------------------------------------------------------------------------
// D2: sharded discovery + merge layer + index group-count sweep
// ---------------------------------------------------------------------------

/// The shard/merge/ensemble layers, measured: run LCM and BIRCH over
/// 1/2/4/8 member-disjoint shards, report per-shard wall-clock and the
/// merge cost, sweep recall against the cross-shard closure exchange
/// round count in the oversharded regime, exercise the LCM ∪ BIRCH
/// ensemble, and sweep the `GroupIndex` build over group *count* (C3
/// sweeps only the materialization fraction). The recall of every
/// recount-merge row lands in the metrics map (`recount_recall_min` is
/// the gated minimum: CI fails the build if it drops below 1.0).
pub fn d2_sharded_discovery() -> Report {
    let mut out = header(
        "d2",
        "sharded discovery (1/2/4/8 shards), merge layer, exchange sweep, ensemble, index group-count sweep",
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let dataset = || {
        bookcrossing(&BookCrossingConfig {
            n_users: 3_000,
            n_books: 2_000,
            n_ratings: 20_000,
            n_communities: 8,
            seed: 42,
        })
    };
    let ds = dataset();
    let vocab = Vocabulary::build(&ds.data);
    let data = &ds.data;
    let min_support = 8usize;

    // Part 1: shard sweep per backend. Support-recount merge for LCM (the
    // exactness-preserving strategy), plain union for BIRCH (per-shard
    // clusters partition the members).
    let _ = writeln!(
        out,
        "{:>8} | {:>6} | {:>8} | {:>12} | {:>13} | {:>12} | {:>10}",
        "backend", "shards", "groups", "total", "slowest shard", "merge", "vs 1-shard"
    );
    let lcm_proto = || {
        LcmDiscovery::new(LcmConfig {
            min_support,
            ..Default::default()
        })
    };
    let lcm_baseline: std::collections::BTreeSet<Vec<vexus_data::TokenId>> = lcm_proto()
        .discover(data, &vocab)
        .groups
        .iter()
        .map(|(_, g)| g.description.clone())
        .collect();
    let mut recount_recall_min = f64::INFINITY;
    for shards in [1usize, 2, 4, 8] {
        let outcome = ShardedDiscovery::new(lcm_proto(), shards)
            .support_recount(min_support)
            .discover(data, &vocab);
        let slowest = outcome
            .stats
            .shards
            .iter()
            .map(|s| s.elapsed)
            .max()
            .unwrap_or_default();
        let recovered = outcome
            .groups
            .iter()
            .filter(|(_, g)| lcm_baseline.contains(&g.description))
            .count();
        let recall = recovered as f64 / lcm_baseline.len().max(1) as f64;
        recount_recall_min = recount_recall_min.min(recall);
        metrics.push((format!("lcm_recount_s{shards}_recall"), recall));
        let _ = writeln!(
            out,
            "{:>8} | {:>6} | {:>8} | {:>12?} | {:>13?} | {:>12?} | {:>6}/{:<3}",
            "lcm",
            shards,
            outcome.groups.len(),
            outcome.stats.elapsed,
            slowest,
            outcome.stats.merge_elapsed,
            recovered,
            lcm_baseline.len()
        );
    }
    metrics.push(("recount_recall_min".into(), recount_recall_min));
    for shards in [1usize, 2, 4, 8] {
        let outcome = ShardedDiscovery::new(BirchDiscovery::default(), shards)
            .with_merge(MergeStrategy::Union)
            .discover(data, &vocab);
        let slowest = outcome
            .stats
            .shards
            .iter()
            .map(|s| s.elapsed)
            .max()
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{:>8} | {:>6} | {:>8} | {:>12?} | {:>13?} | {:>12?} | {:>10}",
            "birch",
            shards,
            outcome.groups.len(),
            outcome.stats.elapsed,
            slowest,
            outcome.stats.merge_elapsed,
            "-"
        );
    }
    out.push_str(
        "(support-recount re-evaluates every candidate globally, so every sharded-LCM group is an \
         exact global closed group, and the default closure exchange round keeps recall at 1.0 at \
         any shard count — the CI gate enforces it. union keeps per-shard BIRCH partitions side \
         by side)\n",
    );

    // Part 1b: recall vs exchange rounds in the oversharded regime. With
    // the exchange off (rounds = 0) shard-local closure growth hides a
    // recall tail that deepens with the shard count; one round closes it
    // exactly and a second round is a fixpoint no-op. The exchange
    // telemetry shows what the guarantee costs.
    let _ = writeln!(
        out,
        "{:>8} | {:>6} | {:>8} | {:>10} | {:>10} | {:>12} | {:>12}",
        "exchange", "shards", "rounds", "recall", "added", "exch time", "merge time"
    );
    for shards in [8usize, 16] {
        for rounds in [0usize, 1, 2] {
            let outcome = ShardedDiscovery::new(lcm_proto(), shards)
                .support_recount(min_support)
                .with_exchange_rounds(rounds)
                .discover(data, &vocab);
            let recovered = outcome
                .groups
                .iter()
                .filter(|(_, g)| lcm_baseline.contains(&g.description))
                .count();
            let recall = recovered as f64 / lcm_baseline.len().max(1) as f64;
            metrics.push((format!("exchange_s{shards}_r{rounds}_recall"), recall));
            metrics.push((
                format!("exchange_s{shards}_r{rounds}_ms"),
                ms(outcome.stats.exchange_elapsed),
            ));
            metrics.push((
                format!("exchange_s{shards}_r{rounds}_added"),
                outcome.stats.exchange_candidates as f64,
            ));
            let _ = writeln!(
                out,
                "{:>8} | {:>6} | {:>8} | {:>10.4} | {:>10} | {:>12?} | {:>12?}",
                "lcm",
                shards,
                rounds,
                recall,
                outcome.stats.exchange_candidates,
                outcome.stats.exchange_elapsed,
                outcome.stats.merge_elapsed
            );
        }
    }
    out.push_str(
        "(the `added` column counts candidate descriptions the exchange fed to the recount \
         worklist; rounds beyond the first stop early once a round adds nothing new)\n",
    );

    // Part 2: the LCM ∪ BIRCH ensemble through the engine builder.
    {
        let ds = dataset();
        let n_users = ds.data.n_users();
        let ensemble = EnsembleDiscovery::new(MergeStrategy::Union)
            .with(lcm_proto())
            .with(BirchDiscovery::default());
        let vexus = VexusBuilder::new(ds.data)
            .config(EngineConfig::paper())
            .discovery(ensemble)
            .build()
            .expect("non-empty");
        let s = vexus.build_stats();
        let coverage = vexus.groups().distinct_users_covered(n_users) as f64 / n_users as f64;
        let parts: Vec<String> = s
            .discovery
            .shards
            .iter()
            .map(|p| {
                format!(
                    "{}: {} groups in {:?}",
                    p.algorithm, p.groups_discovered, p.elapsed
                )
            })
            .collect();
        let _ = writeln!(
            out,
            "ensemble lcm+birch: {} groups after size filter ({} merged), {:.1}% coverage [{}]",
            s.n_groups,
            s.discovery.groups_discovered,
            coverage * 100.0,
            parts.join("; ")
        );
    }

    // Part 3: GroupIndex build vs group *count* (C3 fixes the count and
    // sweeps the fraction; this sweeps the count at the paper's 10 %).
    let rich = mine_closed_groups(
        &TransactionDb::build(data, &vocab),
        &LcmConfig {
            min_support: 3,
            ..Default::default()
        },
    );
    let _ = writeln!(
        out,
        "{:>8} | {:>10} | {:>9} | {:>12} | {:>14}",
        "groups", "entries", "KiB", "build", "entries/group"
    );
    for count in [500usize, 1_000, 2_000, 4_000, 8_000] {
        if count > rich.len() {
            let _ = writeln!(
                out,
                "{:>8} | (only {} groups mined at support 3; sweep truncated)",
                count,
                rich.len()
            );
            break;
        }
        let subset = GroupSet::from_groups(
            rich.iter()
                .take(count)
                .map(|(_, g)| g.clone())
                .collect::<Vec<_>>(),
        );
        let t0 = Instant::now();
        let idx = GroupIndex::build(
            &subset,
            &IndexConfig {
                materialize_fraction: 0.10,
                threads: 0,
            },
        );
        let build = t0.elapsed();
        let s = idx.stats();
        let _ = writeln!(
            out,
            "{:>8} | {:>10} | {:>9} | {:>12?} | {:>14.1}",
            count,
            s.materialized_entries,
            s.heap_bytes / 1024,
            build,
            s.materialized_entries as f64 / count as f64
        );
    }
    out.push_str("(index cost grows superlinearly with group count — the overlapping-pair candidate scan — which is what d4's symmetric CSR scoring halves)\n");
    Report { text: out, metrics }
}

// ---------------------------------------------------------------------------
// D3: parallel merge/index hot paths — the measured perf baseline
// ---------------------------------------------------------------------------

/// The post-discovery hot paths, measured: the support-recount merge
/// (reusing one pre-built global `TransactionDb`) and `GroupIndex::build`,
/// each swept over 1/2/4/8 worker threads on the d2 workload. The parallel
/// merge must stay byte-identical to the sequential path (also pinned by
/// `tests/sharded_discovery.rs`). Structured per-stage wall-clock metrics
/// go into the `--json` report (`BENCH_d3.json` in CI) — the repo's perf
/// trajectory.
pub fn d3_parallel_hot_paths() -> Report {
    let mut out = header(
        "d3",
        "parallel recount merge + index build, 1/2/4/8-thread sweep (perf baseline)",
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let ds = bookcrossing(&BookCrossingConfig {
        n_users: 3_000,
        n_books: 2_000,
        n_ratings: 20_000,
        n_communities: 8,
        seed: 42,
    });
    let data = &ds.data;
    let min_support = 8usize;

    let t0 = Instant::now();
    let vocab = Vocabulary::build(data);
    let db = TransactionDb::build(data, &vocab);
    let db_build = t0.elapsed();
    metrics.push(("db_build_ms".into(), ms(db_build)));

    // Mine the per-shard parts once; every merge below folds the exact
    // same inputs, so the sweep isolates the recount.
    let driver = ShardedDiscovery::new(
        LcmDiscovery::new(LcmConfig {
            min_support,
            ..Default::default()
        }),
        4,
    )
    .support_recount(min_support);
    let t1 = Instant::now();
    let (parts, _) = driver.mine_parts(data, &vocab);
    let mine_parts = t1.elapsed();
    metrics.push(("mine_parts_ms".into(), ms(mine_parts)));
    let candidates: usize = parts.iter().map(GroupSet::len).sum();
    let _ = writeln!(
        out,
        "workload: {} users, {} candidate groups over 4 shards | db build {db_build:?} | shard mining {mine_parts:?}",
        data.n_users(),
        candidates,
    );

    let _ = writeln!(
        out,
        "{:>22} | {:>7} | {:>12} | {:>8} | {:>10}",
        "stage", "threads", "best-of-3", "speedup", "identical"
    );
    let strategy = MergeStrategy::SupportRecount { min_support };
    // Two merge sweeps: the pure recount (exchange off — comparable with
    // the pre-exchange perf trajectory) and the default exact merge (one
    // closure exchange round). Both must stay byte-identical across
    // thread counts.
    let mut merged_exact = GroupSet::new();
    for (label, metric, exchange_rounds) in [
        ("merge recount", "merge_recount", 0usize),
        ("merge recount+exch", "merge_exchange", 1),
    ] {
        let mut baseline: Option<(GroupSet, Duration)> = None;
        for threads in [1usize, 2, 4, 8] {
            let ctx = MergeContext::new(data, &vocab)
                .with_db(&db)
                .with_threads(threads)
                .with_exchange_rounds(exchange_rounds);
            let mut best = Duration::MAX;
            let mut merged = GroupSet::new();
            for _ in 0..3 {
                let input = parts.clone();
                let t = Instant::now();
                merged = strategy.merge_in(input, &ctx);
                best = best.min(t.elapsed());
            }
            metrics.push((format!("{metric}_t{threads}_ms"), ms(best)));
            let (identical, speedup) = match &baseline {
                None => {
                    baseline = Some((merged.clone(), best));
                    (true, 1.0)
                }
                Some((reference, t1)) => (
                    *reference == merged,
                    t1.as_secs_f64() / best.as_secs_f64().max(1e-12),
                ),
            };
            let _ = writeln!(
                out,
                "{:>22} | {:>7} | {:>12?} | {:>7.2}x | {:>10}",
                label, threads, best, speedup, identical
            );
            assert!(identical, "parallel merge diverged from sequential output");
        }
        merged_exact = baseline.expect("swept at least one thread count").0;
    }
    let merged = merged_exact;

    let mut entries = 0usize;
    for threads in [1usize, 2, 4, 8] {
        let mut best = Duration::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            let idx = GroupIndex::build(
                &merged,
                &IndexConfig {
                    materialize_fraction: 0.10,
                    threads,
                },
            );
            best = best.min(t.elapsed());
            entries = idx.stats().materialized_entries;
        }
        metrics.push((format!("index_build_t{threads}_ms"), ms(best)));
        let _ = writeln!(
            out,
            "{:>22} | {:>7} | {:>12?} | {:>8} | {:>10}",
            "index build", threads, best, "-", "-"
        );
    }
    let _ = writeln!(
        out,
        "({} merged groups, {entries} materialized index entries; merge reuses one pre-built \
         TransactionDb and fans the recount over scoped threads in deterministic chunks — output \
         is byte-identical at every thread count. Speedups reflect this machine's core count; CI \
         archives the metrics as BENCH_d3.json)",
        merged.len()
    );
    Report { text: out, metrics }
}

// ---------------------------------------------------------------------------
// D4: hot-path cuts — symmetric CSR index scoring + deduped/routed exchange
// ---------------------------------------------------------------------------

/// The two d4 optimizations, measured before/after on the d2/d3 workload.
///
/// **Index build:** the per-side reference scorer (PR-4, kept as
/// `GroupIndex::build_reference`) vs the symmetric CSR build (each
/// overlapping pair scored once from the smaller-id side), over two group
/// counts in the superlinear regime d2 exposed, plus a thread sweep — the
/// outputs are asserted byte-identical and `scored_pairs` halves.
///
/// **Closure exchange:** the PR-4 broadcast-everything exchange vs the
/// deduplicated/frequency-pruned broadcast (single global projection, the
/// in-process form) and the candidate→shard-routed form over genuine
/// per-shard projection databases, at 8 shards. Every variant's recall
/// against the unsharded mine lands in the metrics map;
/// `exchange_recall_min` is gated at 1.0 in CI so the optimizations can
/// never silently reintroduce the pre-exchange recall tail.
pub fn d4_hot_path_cuts() -> Report {
    let mut out = header(
        "d4",
        "hot-path cuts: symmetric CSR index scoring + deduped/routed closure exchange",
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let ds = bookcrossing(&BookCrossingConfig {
        n_users: 3_000,
        n_books: 2_000,
        n_ratings: 20_000,
        n_communities: 8,
        seed: 42,
    });
    let data = &ds.data;
    let vocab = Vocabulary::build(data);
    let db = TransactionDb::build(data, &vocab);
    let min_support = 8usize;

    // Part 1: index build, before (per-side) vs after (symmetric CSR).
    let rich = mine_closed_groups(
        &db,
        &LcmConfig {
            min_support: 3,
            ..Default::default()
        },
    );
    let _ = writeln!(
        out,
        "{:>8} | {:>22} | {:>7} | {:>12} | {:>12} | {:>8}",
        "groups", "index build", "threads", "best-of-3", "scored pairs", "vs before"
    );
    let same_index = |a: &GroupIndex, b: &GroupIndex, what: &str| {
        for g in 0..a.len() {
            let g = GroupId::new(g as u32);
            assert_eq!(
                a.materialized(g),
                b.materialized(g),
                "{what}: lists diverged"
            );
            assert_eq!(
                a.full_neighbor_count(g),
                b.full_neighbor_count(g),
                "{what}: full lengths diverged"
            );
        }
    };
    for count in [1_000usize, 4_000] {
        if count > rich.len() {
            let _ = writeln!(
                out,
                "{count:>8} | (only {} groups mined at support 3; cell skipped)",
                rich.len()
            );
            continue;
        }
        let subset = GroupSet::from_groups(
            rich.iter()
                .take(count)
                .map(|(_, g)| g.clone())
                .collect::<Vec<_>>(),
        );
        let cfg = |threads| IndexConfig {
            materialize_fraction: 0.10,
            threads,
        };
        let mut before = Duration::MAX;
        let mut reference = GroupIndex::build_reference(&subset, &cfg(1));
        for _ in 0..3 {
            let t = Instant::now();
            reference = GroupIndex::build_reference(&subset, &cfg(1));
            before = before.min(t.elapsed());
        }
        metrics.push((format!("index_g{count}_before_ms"), ms(before)));
        metrics.push((
            format!("index_g{count}_pairs_before"),
            reference.stats().scored_pairs as f64,
        ));
        let _ = writeln!(
            out,
            "{:>8} | {:>22} | {:>7} | {:>12?} | {:>12} | {:>8}",
            count,
            "per-side (before)",
            1,
            before,
            reference.stats().scored_pairs,
            "1.00x"
        );
        for threads in [1usize, 2, 4, 8] {
            let mut best = Duration::MAX;
            let mut idx = GroupIndex::build(&subset, &cfg(threads));
            for _ in 0..3 {
                let t = Instant::now();
                idx = GroupIndex::build(&subset, &cfg(threads));
                best = best.min(t.elapsed());
            }
            same_index(
                &idx,
                &reference,
                &format!("groups={count} threads={threads}"),
            );
            if threads == 1 {
                metrics.push((format!("index_g{count}_after_ms"), ms(best)));
                metrics.push((
                    format!("index_g{count}_pairs_after"),
                    idx.stats().scored_pairs as f64,
                ));
                metrics.push((
                    format!("index_g{count}_pairs_ratio"),
                    idx.stats().scored_pairs as f64 / reference.stats().scored_pairs.max(1) as f64,
                ));
            }
            metrics.push((format!("index_g{count}_after_t{threads}_ms"), ms(best)));
            let _ = writeln!(
                out,
                "{:>8} | {:>22} | {:>7} | {:>12?} | {:>12} | {:>7.2}x",
                count,
                "symmetric CSR (after)",
                threads,
                best,
                idx.stats().scored_pairs,
                before.as_secs_f64() / best.as_secs_f64().max(1e-12)
            );
        }
    }
    out.push_str(
        "(same lists, same full lengths, half the scored pairs: the symmetric build scores every \
         overlapping pair once from the smaller-id side and scatters both endpoints' entries \
         deterministically)\n",
    );

    // Part 2: closure exchange at 8 shards, before/after.
    let lcm_proto = || {
        LcmDiscovery::new(LcmConfig {
            min_support,
            ..Default::default()
        })
    };
    let baseline: std::collections::BTreeSet<Vec<vexus_data::TokenId>> = lcm_proto()
        .discover(data, &vocab)
        .groups
        .iter()
        .map(|(_, g)| g.description.clone())
        .collect();
    let driver = ShardedDiscovery::new(lcm_proto(), 8).support_recount(min_support);
    let (parts, _) = driver.mine_parts(data, &vocab);
    let plan = vexus_data::ShardPlan::build(data.n_users(), 8, vexus_data::ShardStrategy::Hash);
    let shard_dbs: Vec<TransactionDb> = (0..plan.n_shards())
        .map(|s| TransactionDb::build_for_members(data, &vocab, plan.members(s)))
        .collect();
    let base_ctx = MergeContext::new(data, &vocab)
        .with_db(&db)
        .with_partial_parts(true);
    let _ = writeln!(
        out,
        "{:>18} | {:>12} | {:>12} | {:>7} | {:>7} | {:>8} | {:>8}",
        "exchange", "exch best", "merge best", "added", "deduped", "skipped", "recall"
    );
    let merge = MergeStrategy::SupportRecount { min_support };
    let mut before_ms = f64::NAN;
    let mut recall_min = f64::INFINITY;
    for (label, metric, ctx) in [
        (
            "broadcast-all",
            "exchange_before",
            base_ctx.with_exchange_dedup(false),
        ),
        ("dedup+prune", "exchange_dedup", base_ctx),
        (
            "dedup+route",
            "exchange_routed",
            base_ctx.with_shard_dbs(&shard_dbs).with_shard_plan(&plan),
        ),
    ] {
        let mut best_exchange = Duration::MAX;
        let mut best_merge = Duration::MAX;
        let mut merged = GroupSet::new();
        let mut telemetry = vexus_mining::MergeTelemetry::default();
        for _ in 0..3 {
            let input = parts.clone();
            let t = Instant::now();
            let (groups, tel) = merge.merge_in_traced(input, &ctx);
            best_merge = best_merge.min(t.elapsed());
            if tel.exchange_elapsed < best_exchange {
                best_exchange = tel.exchange_elapsed;
            }
            merged = groups;
            telemetry = tel;
        }
        let recovered = merged
            .iter()
            .filter(|(_, g)| baseline.contains(&g.description))
            .count();
        let recall = recovered as f64 / baseline.len().max(1) as f64;
        recall_min = recall_min.min(recall);
        metrics.push((format!("{metric}_ms"), ms(best_exchange)));
        metrics.push((format!("{metric}_recall"), recall));
        if label == "broadcast-all" {
            before_ms = ms(best_exchange);
        }
        let _ = writeln!(
            out,
            "{:>18} | {:>12?} | {:>12?} | {:>7} | {:>7} | {:>8} | {:>8.4}",
            label,
            best_exchange,
            best_merge,
            telemetry.exchange_candidates,
            telemetry.exchange_deduped,
            telemetry.exchange_shards_skipped,
            recall
        );
        if label != "broadcast-all" {
            metrics.push((
                format!("{metric}_speedup"),
                before_ms / ms(best_exchange).max(1e-9),
            ));
        }
    }
    metrics.push(("exchange_recall_min".into(), recall_min));
    out.push_str(
        "(broadcast-all is the PR-4 reference; dedup+prune restricts every candidate to its \
         globally frequent tokens and broadcasts each distinct pruned form once; dedup+route \
         additionally re-closes only against shards holding a carrier, over genuine per-shard \
         projection databases. All three merge to the same group space — the recall gate holds \
         the optimizations to exactness)\n",
    );
    Report { text: out, metrics }
}

// ---------------------------------------------------------------------------
// D5: concurrent serving — one shared engine, many sessions, cached steps
// ---------------------------------------------------------------------------

/// Interaction steps each scripted d5 session performs.
const D5_STEPS: usize = 8;
/// The step at which each script backtracks (to history step 2) instead of
/// clicking — the restore path must stay exact under concurrency too.
const D5_BACKTRACK_AT: usize = 5;
/// Concurrency levels swept by d5.
const D5_SESSIONS: &[usize] = &[1, 8, 64, 256];

/// Session configuration for d5: the paper's settings with a greedy budget
/// that never binds, so a step's outcome depends only on the session's own
/// history — never on wall-clock noise from sibling sessions. That is what
/// makes the concurrent-vs-single-threaded determinism comparison exact.
/// The candidate pool is trimmed so the full sweep (≈5k convergent greedy
/// steps) stays CI-sized; the serving machinery under test is unchanged.
fn d5_config() -> EngineConfig {
    let mut cfg = EngineConfig::default().with_budget(Duration::from_secs(600));
    cfg.candidate_pool = 96;
    cfg
}

/// The verb a scripted session performs at one step.
enum D5Verb {
    /// Click this (currently displayed) group.
    Click(GroupId),
    /// Backtrack to this history step.
    Backtrack(usize),
    /// Nothing left to click — the script ends early.
    Done,
}

/// One scripted step for session `i`: at [`D5_BACKTRACK_AT`] backtrack to
/// history step 2, otherwise click a display slot chosen only from `(i,
/// step)` and the session's own current display.
fn d5_step(i: usize, step: usize, display: &[GroupId]) -> D5Verb {
    if step == D5_BACKTRACK_AT {
        D5Verb::Backtrack(2)
    } else if display.is_empty() {
        D5Verb::Done
    } else {
        D5Verb::Click(display[(i + step) % display.len()])
    }
}

/// The single-threaded reference: session `i`'s exact display trajectory,
/// computed with plain owned sessions (no service, no worker threads).
fn d5_reference(engine: &Arc<Vexus>, sessions: usize) -> Vec<Trajectory> {
    (0..sessions)
        .map(|i| {
            let mut s =
                OwnedSession::open_with(Arc::clone(engine), d5_config()).expect("session opens");
            let mut traj = vec![s.display().to_vec()];
            for step in 0..D5_STEPS {
                let display = traj.last().expect("non-empty trajectory").clone();
                let next = match d5_step(i, step, &display) {
                    D5Verb::Click(g) => s.click(g).expect("scripted click").to_vec(),
                    D5Verb::Backtrack(to) => s.backtrack(to).expect("scripted backtrack").to_vec(),
                    D5Verb::Done => break,
                };
                traj.push(next);
            }
            traj
        })
        .collect()
}

/// A session's display trajectory: the opening display, then the display
/// after each scripted verb.
type Trajectory = Vec<Vec<GroupId>>;

/// What one d5 worker returns: its sessions' trajectories (tagged with
/// the session index) and every step latency it measured, in ms.
type WorkerOut = (Vec<(usize, Trajectory)>, Vec<f64>);

/// One concurrent sweep: `n` sessions opened on a fresh service over the
/// shared engine, stepped to completion by a worker pool. Returns per-step
/// latencies (ms), the wall-clock of the stepping phase, and the fraction
/// of sessions whose trajectory matched the single-threaded reference.
fn d5_sweep(
    engine: &Arc<Vexus>,
    n: usize,
    config: &EngineConfig,
    reference: &[Trajectory],
) -> (Vec<f64>, Duration, f64) {
    let svc = ExplorationService::new(Arc::clone(engine));
    let mut ids = Vec::with_capacity(n);
    let mut opening = Vec::with_capacity(n);
    for _ in 0..n {
        let (id, display) = svc.open_with(config.clone()).expect("session opens");
        ids.push(id);
        opening.push(display);
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(1, n);
    let t0 = Instant::now();
    let per_worker: Vec<WorkerOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let svc = &svc;
                let ids = &ids;
                let opening = &opening;
                scope.spawn(move || {
                    // Worker `w` owns sessions i ≡ w (mod workers) and
                    // steps them round-robin, so every step contends on
                    // the shared table/cache with the other workers.
                    let mut trajs: Vec<(usize, Trajectory)> = (w..ids.len())
                        .step_by(workers)
                        .map(|i| (i, vec![opening[i].clone()]))
                        .collect();
                    let mut done: Vec<bool> = vec![false; trajs.len()];
                    let mut latencies = Vec::new();
                    for step in 0..D5_STEPS {
                        for (slot, (i, traj)) in trajs.iter_mut().enumerate() {
                            if done[slot] {
                                continue;
                            }
                            let display = traj.last().expect("non-empty").clone();
                            let verb = d5_step(*i, step, &display);
                            let t = Instant::now();
                            let next = match verb {
                                D5Verb::Click(g) => svc.click(ids[*i], g).expect("scripted click"),
                                D5Verb::Backtrack(to) => {
                                    svc.backtrack(ids[*i], to).expect("scripted backtrack")
                                }
                                D5Verb::Done => {
                                    done[slot] = true;
                                    continue;
                                }
                            };
                            latencies.push(t.elapsed().as_secs_f64() * 1e3);
                            traj.push(next);
                        }
                    }
                    (trajs, latencies)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("d5 worker"))
            .collect()
    });
    let elapsed = t0.elapsed();
    let mut latencies = Vec::new();
    let mut exact = 0usize;
    for (trajs, lat) in per_worker {
        latencies.extend(lat);
        for (i, traj) in trajs {
            if traj == reference[i] {
                exact += 1;
            }
        }
    }
    (latencies, elapsed, exact as f64 / n as f64)
}

/// Nearest-rank percentile over an unsorted sample (NaN when empty).
fn d5_percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    samples[(((samples.len() - 1) as f64) * q).round() as usize]
}

/// Concurrent serving: N scripted sessions over one shared engine, swept
/// over `N ∈ {1, 8, 64, 256}`, against the single-threaded reference.
///
/// Every session follows a deterministic script (clicks derived only from
/// its own displays, one backtrack), so the concurrent trajectories must
/// be *byte-identical* to the single-threaded ones — `session_determinism`
/// is the worst-case fraction of exact sessions over the sweep and CI
/// gates it at 1.0. Latency percentiles come from per-verb timings around
/// the service calls; the shared neighbor cache's hit rate is read per
/// sweep, and a cache-off pass (the per-session `neighbor_cache` switch on
/// the same engine) isolates what the cache buys at high concurrency.
pub fn d5_concurrent_serving() -> Report {
    let mut out = header(
        "d5",
        "concurrent serving: shared engine, session table, neighbor cache",
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let engine = Arc::new(workloads::small_bookcrossing_engine(d5_config()));
    let max_sessions = *D5_SESSIONS.iter().max().expect("non-empty sweep");
    let t_ref = Instant::now();
    let reference = d5_reference(&engine, max_sessions);
    let ref_elapsed = t_ref.elapsed();
    let ref_steps: usize = reference.iter().map(|t| t.len() - 1).sum();
    let _ = writeln!(
        out,
        "single-threaded reference: {max_sessions} sessions, {ref_steps} steps in {ref_elapsed:?}\n"
    );
    let _ = writeln!(
        out,
        "{:>9} | {:>8} | {:>6} | {:>9} | {:>9} | {:>9} | {:>6} | {:>8}",
        "sessions", "steps", "exact", "p50", "p99", "steps/s", "hits", "hit rate"
    );
    let cache_stats = || {
        engine
            .neighbor_cache()
            .map(|c| c.stats())
            .unwrap_or_default()
    };
    let mut determinism_min = f64::INFINITY;
    let mut cache_on_p50 = f64::NAN;
    for &n in D5_SESSIONS {
        let before = cache_stats();
        let (mut lat, elapsed, determinism) = d5_sweep(&engine, n, &d5_config(), &reference);
        let after = cache_stats();
        let hits = after.hits - before.hits;
        let misses = after.misses - before.misses;
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        let p50 = d5_percentile(&mut lat, 0.50);
        let p99 = d5_percentile(&mut lat, 0.99);
        let steps_per_sec = lat.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        determinism_min = determinism_min.min(determinism);
        if n == 64 {
            cache_on_p50 = p50;
        }
        metrics.push((format!("n{n}_p50_ms"), p50));
        metrics.push((format!("n{n}_p99_ms"), p99));
        metrics.push((format!("n{n}_steps_per_sec"), steps_per_sec));
        metrics.push((format!("n{n}_determinism"), determinism));
        let _ = writeln!(
            out,
            "{:>9} | {:>8} | {:>5.0}% | {:>7.2}ms | {:>7.2}ms | {:>9.1} | {:>6} | {:>7.1}%",
            n,
            lat.len(),
            determinism * 100.0,
            p50,
            p99,
            steps_per_sec,
            hits,
            hit_rate * 100.0
        );
    }
    let overall = cache_stats();
    metrics.push(("cache_hit_rate".into(), overall.hit_rate()));

    // Ablation: same engine, same scripts, sessions that bypass the shared
    // neighbor cache (per-session switch). At CI scale the step is
    // greedy-bound, so the step-level p50s land within noise of each
    // other; the determinism check is the load-bearing half (the cache
    // must not change a single display).
    let off_cfg = d5_config().with_neighbor_cache(false);
    let (mut off_lat, _, off_determinism) = d5_sweep(&engine, 64, &off_cfg, &reference);
    let off_p50 = d5_percentile(&mut off_lat, 0.50);
    determinism_min = determinism_min.min(off_determinism);
    metrics.push(("session_determinism".into(), determinism_min));
    metrics.push(("cache_on_p50_ms".into(), cache_on_p50));
    metrics.push(("cache_off_p50_ms".into(), off_p50));
    metrics.push(("cache_p50_speedup".into(), off_p50 / cache_on_p50.max(1e-9)));
    let _ = writeln!(
        out,
        "\ncache ablation @64 sessions: p50 {:.2}ms cached vs {:.2}ms uncached ({:.2}x), exact {:.0}%",
        cache_on_p50,
        off_p50,
        off_p50 / cache_on_p50.max(1e-9),
        off_determinism * 100.0
    );

    // Component view: the per-step cost the cache actually removes — the
    // index neighbor fetch that every click pays before its greedy step.
    // A direct query re-scans the index; a warm cached query is one shard
    // probe and an Arc clone, and that gap widens with the group count
    // while the greedy cost does not.
    let cache = engine.neighbor_cache().expect("engine built with a cache");
    let pool = d5_config().candidate_pool;
    let sample: Vec<GroupId> = engine.groups().ids().take(64).collect();
    let t = Instant::now();
    for _ in 0..16 {
        for &g in &sample {
            std::hint::black_box(engine.index().neighbors(engine.groups(), g, pool));
        }
    }
    let direct_us = t.elapsed().as_secs_f64() * 1e6 / (16 * sample.len()) as f64;
    for &g in &sample {
        std::hint::black_box(cache.neighbors(engine.index(), engine.groups(), g, pool));
    }
    let t = Instant::now();
    for _ in 0..16 {
        for &g in &sample {
            std::hint::black_box(cache.neighbors(engine.index(), engine.groups(), g, pool));
        }
    }
    let cached_us = t.elapsed().as_secs_f64() * 1e6 / (16 * sample.len()) as f64;
    metrics.push(("lookup_direct_us".into(), direct_us));
    metrics.push(("lookup_cached_us".into(), cached_us));
    metrics.push(("lookup_speedup".into(), direct_us / cached_us.max(1e-9)));
    let _ = writeln!(
        out,
        "neighbor fetch (pool={pool}): {direct_us:.2}us direct vs {cached_us:.3}us cached ({:.0}x)",
        direct_us / cached_us.max(1e-9)
    );
    out.push_str(
        "(every concurrent trajectory is compared verb-for-verb against the single-threaded \
         reference; the greedy budget is set far above convergence so outcomes depend only on \
         session-local state, and the shared cache stores exact index answers — determinism is \
         gated at 1.0 in CI)\n",
    );
    Report { text: out, metrics }
}

// ---------------------------------------------------------------------------
// D6: snapshots — serialize the built engine, load instead of rebuilding
// ---------------------------------------------------------------------------

/// Snapshot persistence, measured on the d2 workload: encode the built
/// engine to the flat-buffer format, load it back, and compare the load
/// against a full rebuild (discovery + size filter + index). The load is
/// validation plus slice reinterpretation — no mining, no pair scoring —
/// so it should beat the rebuild by orders of magnitude
/// (`load_speedup`). Correctness rides along as gated metrics:
/// `snapshot_roundtrip` is 1.0 only when re-encoding the loaded engine
/// reproduces the original buffer byte for byte AND the loaded group
/// space equals the built one; `loaded_serving_determinism` is 1.0 only
/// when a scripted session on the loaded engine tracks the built engine's
/// displays verb for verb. CI gates `snapshot_roundtrip` at 1.0 and
/// archives the metrics as `BENCH_d6.json`. `Vexus::heap_bytes` lands
/// next to the snapshot size so the resident-vs-at-rest cost of the
/// serving state is one table.
pub fn d6_snapshot() -> Report {
    let mut out = header(
        "d6",
        "snapshots: flat-buffer persistence, zero-copy load vs full rebuild",
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let dataset = || {
        bookcrossing(&BookCrossingConfig {
            n_users: 3_000,
            n_books: 2_000,
            n_ratings: 20_000,
            n_communities: 8,
            seed: 42,
        })
    };
    let config = EngineConfig::paper();

    // Build once; the rebuild baseline is timed after the snapshot
    // measurements so the microsecond-scale load timings don't run in the
    // allocator and thermal shadow of repeated multi-threaded builds.
    let mut built = Vexus::build(dataset().data, config.clone()).expect("non-empty");

    // Encode, best of 3.
    let mut encode = Duration::MAX;
    let mut buf = Vec::new();
    for _ in 0..3 {
        let t = Instant::now();
        buf = built.write_snapshot();
        encode = encode.min(t.elapsed());
    }

    // Load, best of 5. Each timed engine drops before the next load so
    // iterations recycle the same allocations instead of measuring fresh
    // page faults with the previous engine still resident.
    let mut load = Duration::MAX;
    for _ in 0..5 {
        let data = built.data().clone();
        let t = Instant::now();
        let l = Vexus::from_snapshot(data, &buf, config.clone()).expect("loads");
        load = load.min(t.elapsed());
        drop(l);
    }
    let loaded = Vexus::from_snapshot(built.data().clone(), &buf, config.clone()).expect("loads");

    // Rebuild baseline: the full offline pipeline, best of 3. Discovery
    // is deterministic, so the re-built engine is the one snapshotted.
    let mut rebuild = Duration::MAX;
    for _ in 0..3 {
        let ds = dataset();
        let t = Instant::now();
        built = Vexus::build(ds.data, config.clone()).expect("non-empty");
        rebuild = rebuild.min(t.elapsed());
    }
    let speedup = rebuild.as_secs_f64() / load.as_secs_f64().max(1e-12);

    // Round-trip exactness: the loaded engine re-encodes to the same
    // bytes and holds the same group space.
    let roundtrip = (loaded.write_snapshot() == buf && loaded.groups() == built.groups()) as u8;

    // Serving determinism: a scripted session must not tell the engines
    // apart (unlimited greedy budget, the d5 pin, so outcomes depend only
    // on state — never wall-clock).
    let session_cfg = EngineConfig::paper().with_budget(Duration::from_secs(600));
    let mut a = built.session_with(session_cfg.clone()).expect("session");
    let mut b = loaded.session_with(session_cfg).expect("session");
    let mut serving_exact = a.display() == b.display();
    for step in 0..6 {
        if a.display().is_empty() {
            break;
        }
        let pick = a.display()[step % a.display().len()];
        let x = a.click(pick).expect("scripted click").to_vec();
        let y = b.click(pick).expect("scripted click").to_vec();
        serving_exact &= x == y;
    }

    metrics.push(("snapshot_bytes".into(), buf.len() as f64));
    metrics.push(("encode_ms".into(), ms(encode)));
    metrics.push(("load_ms".into(), ms(load)));
    metrics.push(("rebuild_ms".into(), ms(rebuild)));
    metrics.push(("load_speedup".into(), speedup));
    metrics.push(("snapshot_roundtrip".into(), roundtrip as f64));
    metrics.push((
        "loaded_serving_determinism".into(),
        serving_exact as u8 as f64,
    ));
    metrics.push(("heap_built_bytes".into(), built.heap_bytes() as f64));
    metrics.push(("heap_loaded_bytes".into(), loaded.heap_bytes() as f64));
    metrics.push((
        "heap_groups_bytes".into(),
        built.groups().heap_bytes() as f64,
    ));
    metrics.push((
        "heap_catalog_bytes".into(),
        built.data().item_catalog().heap_bytes() as f64,
    ));
    metrics.push((
        "heap_index_bytes".into(),
        built.index().stats().heap_bytes as f64,
    ));

    let s = built.build_stats();
    let _ = writeln!(
        out,
        "workload: {} users, {} groups, {} materialized index entries",
        built.data().n_users(),
        s.n_groups,
        s.index_entries,
    );
    let _ = writeln!(
        out,
        "{:>16} | {:>12} | {:>12} | {:>12} | {:>9}",
        "stage", "fastest", "bytes", "vs rebuild", "exact"
    );
    let _ = writeln!(
        out,
        "{:>16} | {:>12?} | {:>12} | {:>12} | {:>9}",
        "rebuild", rebuild, "-", "1.00x", "-"
    );
    let _ = writeln!(
        out,
        "{:>16} | {:>12?} | {:>12} | {:>11.2}x | {:>9}",
        "snapshot encode",
        encode,
        buf.len(),
        rebuild.as_secs_f64() / encode.as_secs_f64().max(1e-12),
        "-"
    );
    let _ = writeln!(
        out,
        "{:>16} | {:>12?} | {:>12} | {:>11.2}x | {:>9}",
        "snapshot load",
        load,
        "-",
        speedup,
        roundtrip == 1 && serving_exact
    );
    let _ = writeln!(
        out,
        "heap: built {} KiB vs loaded {} KiB resident (groups {} + catalog {} + index {} KiB; \
         the loaded engine's views borrow one retained {} KiB buffer)",
        built.heap_bytes() / 1024,
        loaded.heap_bytes() / 1024,
        built.groups().heap_bytes() / 1024,
        built.data().item_catalog().heap_bytes() / 1024,
        built.index().stats().heap_bytes / 1024,
        loaded.snapshot_bytes() / 1024,
    );
    out.push_str(
        "(the load performs no discovery and scores no pairs — it validates the buffer and \
         reinterprets it in place; `snapshot_roundtrip` requires the loaded engine to re-encode \
         byte-identically and is gated at 1.0 in CI)\n",
    );
    Report { text: out, metrics }
}

// ---------------------------------------------------------------------------
// D7: chaos serving — seeded faults, quarantine containment, lifecycle
// ---------------------------------------------------------------------------

/// Concurrent scripted sessions in the d7 chaos pass.
const D7_SESSIONS: usize = 64;
/// Fraction of session ids the seeded fault selector targets.
const D7_FAULT_P: f64 = 0.2;
/// Seed of the `serve.step` fault selector.
const D7_SEED: u64 = 0xC4A05;

/// Whether the seeded selector targets session id `id` — the same
/// predicate as the `serve.step` `KeyProb` trigger, so the harness knows
/// the faulted set up front, independent of thread interleaving. Nothing
/// is targeted when the harness is compiled out.
#[cfg(feature = "failpoints")]
fn d7_faulted(id: u64) -> bool {
    vexus_core::failpoint::key_selected(D7_SEED, D7_FAULT_P, id)
}

#[cfg(not(feature = "failpoints"))]
fn d7_faulted(_id: u64) -> bool {
    false
}

/// One session's chaos outcome: the trajectory it completed plus the
/// first error that stopped it (`None` — the script ran to completion).
struct D7Outcome {
    traj: Trajectory,
    error: Option<ServeError>,
}

/// The d5 worker-pool sweep, fault-tolerant: a verb error ends that
/// session's script (recorded, not panicked) while its siblings keep
/// stepping. Returns per-session outcomes in session order, successful
/// per-verb latencies (ms), the session ids, and the service counters.
fn d7_sweep(
    engine: &Arc<Vexus>,
    n: usize,
) -> (Vec<D7Outcome>, Vec<f64>, Vec<SessionId>, ServiceStats) {
    let svc = ExplorationService::new(Arc::clone(engine));
    let mut ids = Vec::with_capacity(n);
    let mut opening = Vec::with_capacity(n);
    for _ in 0..n {
        let (id, display) = svc.open_with(d5_config()).expect("session opens");
        ids.push(id);
        opening.push(display);
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(1, n);
    let per_worker: Vec<Vec<(usize, D7Outcome, Vec<f64>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let svc = &svc;
                let ids = &ids;
                let opening = &opening;
                scope.spawn(move || {
                    let mut sessions: Vec<(usize, D7Outcome, Vec<f64>)> = (w..ids.len())
                        .step_by(workers)
                        .map(|i| {
                            let outcome = D7Outcome {
                                traj: vec![opening[i].clone()],
                                error: None,
                            };
                            (i, outcome, Vec::new())
                        })
                        .collect();
                    let mut done: Vec<bool> = vec![false; sessions.len()];
                    for step in 0..D5_STEPS {
                        for (slot, (i, outcome, lat)) in sessions.iter_mut().enumerate() {
                            if done[slot] {
                                continue;
                            }
                            let display = outcome.traj.last().expect("non-empty").clone();
                            let t = Instant::now();
                            let result = match d5_step(*i, step, &display) {
                                D5Verb::Click(g) => svc.click(ids[*i], g),
                                D5Verb::Backtrack(to) => svc.backtrack(ids[*i], to),
                                D5Verb::Done => {
                                    done[slot] = true;
                                    continue;
                                }
                            };
                            match result {
                                Ok(next) => {
                                    lat.push(t.elapsed().as_secs_f64() * 1e3);
                                    outcome.traj.push(next);
                                }
                                Err(e) => {
                                    outcome.error = Some(e);
                                    done[slot] = true;
                                }
                            }
                        }
                    }
                    sessions
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("d7 worker"))
            .collect()
    });
    let stats = svc.stats();
    let mut outcomes: Vec<Option<D7Outcome>> = (0..n).map(|_| None).collect();
    let mut latencies = Vec::new();
    for worker in per_worker {
        for (i, outcome, lat) in worker {
            outcomes[i] = Some(outcome);
            latencies.extend(lat);
        }
    }
    let outcomes = outcomes
        .into_iter()
        .map(|o| o.expect("every session has an outcome"))
        .collect();
    (outcomes, latencies, ids, stats)
}

/// Chaos serving: `D7_SESSIONS` concurrent scripted sessions with seeded
/// `serve.step` panic faults in a predicted subset of them, plus a
/// fault-free steady-state pass and a deterministic lifecycle scenario.
///
/// The containment claim is `survivor_determinism`: every session the
/// selector did *not* target must replay byte-identical to the
/// single-threaded reference even while targeted siblings panic and get
/// quarantined mid-sweep — gated at 1.0 in CI. Targeted sessions must die
/// *typed* (`SessionPoisoned`, counted by `quarantines`), never unwind a
/// worker. Without the `failpoints` feature the same experiment runs
/// fault-free (`faults_enabled` records which build produced the
/// numbers), so `idle_p50_ms`/`idle_p99_ms` measure enabled-but-idle vs
/// compiled-out across the two CI artifacts.
pub fn d7_chaos_serving() -> Report {
    let mut out = header(
        "d7",
        "chaos serving: seeded faults, quarantine containment, lifecycle",
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let engine = Arc::new(workloads::small_bookcrossing_engine(d5_config()));
    let reference = d5_reference(&engine, D7_SESSIONS);
    let faults_enabled = cfg!(feature = "failpoints");
    let cache_recoveries_before = engine
        .neighbor_cache()
        .map(|c| c.stats().recoveries)
        .unwrap_or(0);

    // Chaos pass: every verb of a targeted session panics at the
    // `serve.step` site, inside the service's catch_unwind guard.
    #[cfg(feature = "failpoints")]
    let scenario = {
        use vexus_core::failpoint as fp;
        let s = fp::FailScenario::setup();
        fp::configure(
            fp::SERVE_STEP,
            fp::Trigger::KeyProb {
                p: D7_FAULT_P,
                seed: D7_SEED,
            },
            fp::FailAction::Panic,
        );
        s
    };
    // The injected panics are all caught by the service's quarantine
    // guard; silence the default panic hook for the chaos window so the
    // expected backtraces don't bury the report.
    #[cfg(feature = "failpoints")]
    let default_hook = {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        hook
    };
    let (outcomes, _, ids, stats) = d7_sweep(&engine, D7_SESSIONS);
    #[cfg(feature = "failpoints")]
    {
        std::panic::set_hook(default_hook);
        drop(scenario);
    }

    let faulted: Vec<usize> = (0..D7_SESSIONS).filter(|&i| d7_faulted(ids[i].0)).collect();
    let survivors: Vec<usize> = (0..D7_SESSIONS)
        .filter(|&i| !d7_faulted(ids[i].0))
        .collect();
    let exact = survivors
        .iter()
        .filter(|&&i| outcomes[i].error.is_none() && outcomes[i].traj == reference[i])
        .count();
    let mut survivor_determinism = if survivors.is_empty() {
        1.0
    } else {
        exact as f64 / survivors.len() as f64
    };
    // Targeted sessions die on their first verb, typed — quarantined, not
    // unwound, and not silently successful.
    let faulted_typed = faulted.iter().all(|&i| {
        matches!(outcomes[i].error, Some(ServeError::SessionPoisoned(_)))
            && outcomes[i].traj.len() == 1
    });
    let _ = writeln!(
        out,
        "chaos pass: {} sessions, {} targeted by seed {:#x} (p={}), {} quarantined, \
         {}/{} survivors exact",
        D7_SESSIONS,
        faulted.len(),
        D7_SEED,
        D7_FAULT_P,
        stats.quarantines,
        exact,
        survivors.len(),
    );
    metrics.push(("sessions".into(), D7_SESSIONS as f64));
    metrics.push(("faulted_sessions".into(), faulted.len() as f64));
    metrics.push(("quarantines".into(), stats.quarantines as f64));
    metrics.push(("faulted_typed".into(), faulted_typed as u8 as f64));
    metrics.push(("faults_enabled".into(), faults_enabled as u8 as f64));

    // Steady-state pass: registry empty (feature build: enabled-but-idle;
    // default build: compiled out). Survivorship here is all sessions.
    let t0 = Instant::now();
    let (idle_outcomes, mut idle_lat, _, idle_stats) = d7_sweep(&engine, D7_SESSIONS);
    let idle_elapsed = t0.elapsed();
    let idle_exact = (0..D7_SESSIONS)
        .filter(|&i| idle_outcomes[i].error.is_none() && idle_outcomes[i].traj == reference[i])
        .count();
    survivor_determinism = survivor_determinism.min(idle_exact as f64 / D7_SESSIONS as f64);
    let idle_steps: usize = idle_outcomes.iter().map(|o| o.traj.len() - 1).sum();
    let idle_p50 = d5_percentile(&mut idle_lat, 0.50);
    let idle_p99 = d5_percentile(&mut idle_lat, 0.99);
    metrics.push(("survivor_determinism".into(), survivor_determinism));
    metrics.push(("idle_p50_ms".into(), idle_p50));
    metrics.push(("idle_p99_ms".into(), idle_p99));
    metrics.push((
        "idle_steps_per_sec".into(),
        idle_steps as f64 / idle_elapsed.as_secs_f64().max(1e-9),
    ));
    let _ = writeln!(
        out,
        "steady state ({}): {idle_steps} steps, p50 {idle_p50:.2}ms, p99 {idle_p99:.2}ms, \
         {}/{} exact, 0 quarantines ({} observed)",
        if faults_enabled {
            "harness enabled, idle"
        } else {
            "harness compiled out"
        },
        idle_exact,
        D7_SESSIONS,
        idle_stats.quarantines,
    );

    // Lifecycle pass: admission control and TTL eviction against the
    // logical clock — exact, deterministic counters, no faults involved.
    let svc = ExplorationService::with_config(
        Arc::clone(&engine),
        ServiceConfig::default()
            .with_max_sessions(8)
            // Generous enough that the fill's own clock ticks (one per
            // verb) never expire a session mid-scenario.
            .with_idle_ttl_steps(100),
    );
    let mut lifecycle_ok = true;
    let mut open_ids = Vec::new();
    for _ in 0..8 {
        open_ids.push(svc.open_with(d5_config()).expect("under capacity").0);
    }
    for _ in 0..4 {
        lifecycle_ok &= matches!(
            svc.open_with(d5_config()),
            Err(ServeError::AtCapacity { open: 8, max: 8 })
        );
    }
    svc.advance_clock(200);
    let swept = svc.sweep_idle();
    lifecycle_ok &= swept == 8 && svc.is_empty();
    lifecycle_ok &= matches!(svc.display(open_ids[0]), Err(ServeError::SessionExpired(_)));
    lifecycle_ok &= svc.open_with(d5_config()).is_ok();
    let ls = svc.stats();
    lifecycle_ok &= ls.rejections == 4 && ls.evictions == 8 && ls.opens == 9;
    metrics.push(("rejections".into(), ls.rejections as f64));
    metrics.push(("evictions".into(), ls.evictions as f64));
    metrics.push(("lifecycle_ok".into(), lifecycle_ok as u8 as f64));
    let cache_recoveries = engine
        .neighbor_cache()
        .map(|c| c.stats().recoveries)
        .unwrap_or(0)
        - cache_recoveries_before;
    metrics.push((
        "lock_recoveries".into(),
        (stats.recoveries + cache_recoveries) as f64,
    ));
    let _ = writeln!(
        out,
        "lifecycle: 8-session cap rejected {} opens typed, TTL swept {} sessions, \
         counters exact: {}",
        ls.rejections, ls.evictions, lifecycle_ok,
    );
    out.push_str(
        "(the fault selector is a seeded hash of the session id, so the targeted set is known \
         before any thread runs; survivors must replay byte-identical to the single-threaded \
         reference while targeted siblings panic and are quarantined — survivor_determinism is \
         gated at 1.0 in CI in both the fault-enabled and default builds)\n",
    );
    Report { text: out, metrics }
}

// ---------------------------------------------------------------------------
// D8: live engine — streaming ingestion, incremental refresh, epoch swap
// ---------------------------------------------------------------------------

/// Actions per ingested batch in the d8 staleness sweep.
const D8_BATCH: usize = 2_000;

/// Send `actions` through a bounded channel and drain them into the
/// service's ingest buffer (capacity == batch size, so the send loop
/// never blocks).
fn d8_feed(svc: &ExplorationService, actions: &[vexus_data::Action]) {
    let (tx, mut rx) = vexus_data::stream::ChannelStream::with_capacity(actions.len().max(1));
    for &a in actions {
        assert!(tx.send(a), "d8 channel closed early");
    }
    drop(tx);
    let drained = svc
        .ingest(&mut rx, usize::MAX)
        .expect("live service ingests");
    assert_eq!(drained, actions.len());
}

/// Fraction of groups whose published neighbor list is byte-identical to
/// a from-scratch [`GroupIndex::build`] over the same space — the CI-gated
/// incremental-equivalence score (must be exactly 1.0).
fn d8_equivalence(engine: &Vexus) -> f64 {
    let reference = GroupIndex::build(
        engine.groups(),
        &IndexConfig {
            materialize_fraction: engine.config().materialize_fraction,
            threads: 0,
        },
    );
    let n = engine.groups().len();
    let equal = (0..n)
        .filter(|&g| {
            let g = GroupId::new(g as u32);
            engine.index().materialized(g) == reference.materialized(g)
                && engine.index().full_neighbor_count(g) == reference.full_neighbor_count(g)
        })
        .count();
    equal as f64 / n.max(1) as f64
}

/// The live path end to end: bootstrap from a warmup prefix, stream the
/// remaining action tape through the ingest buffer, and publish epochs by
/// patching the index instead of rebuilding. Sweeps the refresh interval
/// to expose the staleness-vs-refresh-cost trade, checks the patched
/// index against a full rebuild (gated at exactly 1.0 in CI), and pins
/// epoch continuity for sessions opened before refreshes.
pub fn d8_live_engine() -> Report {
    use vexus_core::LiveEngine;
    use vexus_mining::DiscoverySelection;

    let mut out = header(
        "d8",
        "live engine: streaming ingestion, incremental index refresh, epoch-swapped serving",
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let ds = workloads::bookcrossing_at(workloads::scale());
    let (mut base, tape) = ds.data.split_actions();
    let warmup = tape.len() / 4;
    base.append_actions(&tape[..warmup]);
    let live_tape = &tape[warmup..];
    let config = EngineConfig::paper().with_discovery(DiscoverySelection::StreamFim {
        support: 0.02,
        epsilon: 0.004,
        max_len: 3,
    });
    let _ = writeln!(
        out,
        "workload: {} users, {} warmup actions, {} streamed in {}-action batches",
        base.n_users(),
        warmup,
        live_tape.len(),
        D8_BATCH,
    );

    let mut equivalence_min = 1.0f64;
    let mut pinning_ok = true;
    let mut finest_refresh_ms = 0.0f64;
    let mut finest_patch_ms = 0.0f64;
    let mut finest_engine: Option<Arc<Vexus>> = None;
    // Refresh every `interval` batches: staleness (actions waiting in the
    // buffer when a refresh finally lands) trades against per-refresh cost.
    for &interval in &[1usize, 4, 16] {
        let live = Arc::new(
            LiveEngine::bootstrap(base.clone(), config.clone()).expect("warmup mines groups"),
        );
        let svc = ExplorationService::live(Arc::clone(&live));
        let (pinned, display0) = svc.open().expect("session opens");

        let mut refresh_ms: Vec<f64> = Vec::new();
        let mut patch_ms: Vec<f64> = Vec::new();
        let mut lag_actions: Vec<usize> = Vec::new();
        let mut rescored_total = 0usize;
        let mut touched_total = 0usize;
        let batches = live_tape.chunks(D8_BATCH).count();
        for (bi, chunk) in live_tape.chunks(D8_BATCH).enumerate() {
            d8_feed(&svc, chunk);
            if (bi + 1) % interval == 0 || bi + 1 == batches {
                lag_actions.push(live.pending().expect("live"));
                let outcome = svc.refresh().expect("refresh applies");
                assert!(outcome.advanced, "non-empty cut must advance");
                refresh_ms.push(outcome.refresh_time.as_secs_f64() * 1e3);
                // The index-patch slice of the refresh (the part a full
                // rebuild would replace), as recorded by the new epoch.
                patch_ms.push(svc.engine().build_stats().index_time.as_secs_f64() * 1e3);
                rescored_total += outcome.rescored;
                touched_total +=
                    outcome.groups_added + outcome.groups_retired + outcome.groups_resized;
            }
        }
        let engine = svc.engine();
        let eq = d8_equivalence(&engine);
        equivalence_min = equivalence_min.min(eq);
        // Epoch pinning: the pre-refresh session still serves its opening
        // display — refreshes swapped the published Arc, not its engine.
        pinning_ok &= svc.display(pinned).expect("pinned session serves") == display0;
        pinning_ok &= svc.stats().epoch == refresh_ms.len() as u64;
        let mean_ms = refresh_ms.iter().sum::<f64>() / refresh_ms.len().max(1) as f64;
        let max_ms = refresh_ms.iter().cloned().fold(0.0, f64::max);
        let mean_patch = patch_ms.iter().sum::<f64>() / patch_ms.len().max(1) as f64;
        let mean_lag = lag_actions.iter().sum::<usize>() as f64 / lag_actions.len().max(1) as f64;
        let _ = writeln!(
            out,
            "interval {interval:>2} batches: {} refreshes | staleness {:>6.0} actions mean | \
             refresh {mean_ms:>6.2} ms mean / {max_ms:>6.2} ms max (patch {mean_patch:>5.2} ms) | \
             {} groups touched, {} lists rescored | equivalence {eq:.3}",
            refresh_ms.len(),
            mean_lag,
            touched_total,
            rescored_total,
        );
        if interval == 1 {
            finest_refresh_ms = mean_ms;
            finest_patch_ms = mean_patch;
            finest_engine = Some(engine);
            metrics.push(("refreshes".into(), refresh_ms.len() as f64));
            metrics.push(("refresh_mean_ms".into(), mean_ms));
            metrics.push(("refresh_max_ms".into(), max_ms));
            metrics.push(("patch_mean_ms".into(), mean_patch));
            metrics.push(("rescored_lists".into(), rescored_total as f64));
        }
    }

    // What the incremental path buys: a from-scratch rebuild of the final
    // epoch's index vs the mean per-refresh index patch (the slice of the
    // refresh a rebuild would replace; the rest of the refresh — fold,
    // discovery, publication — has no offline counterpart).
    let engine = finest_engine.expect("interval-1 sweep ran");
    let t0 = Instant::now();
    let rebuilt = GroupIndex::build(
        engine.groups(),
        &IndexConfig {
            materialize_fraction: engine.config().materialize_fraction,
            threads: 0,
        },
    );
    let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;
    let speedup = rebuild_ms / finest_patch_ms.max(1e-9);
    let _ = writeln!(
        out,
        "final epoch: {} groups, {} materialized entries | full index rebuild {rebuild_ms:.2} ms \
         vs {finest_patch_ms:.2} ms mean patch ({speedup:.1}x) within a {finest_refresh_ms:.2} ms \
         mean refresh | epoch pinning {}",
        engine.groups().len(),
        rebuilt.stats().materialized_entries,
        if pinning_ok { "exact" } else { "VIOLATED" },
    );
    metrics.push(("incremental_equivalence".into(), equivalence_min));
    metrics.push(("epoch_pinning_ok".into(), pinning_ok as u8 as f64));
    metrics.push(("full_rebuild_ms".into(), rebuild_ms));
    metrics.push(("patch_speedup".into(), speedup));
    metrics.push(("groups_final".into(), engine.groups().len() as f64));
    out.push_str(
        "(equivalence = fraction of groups whose patched neighbor list is byte-identical to a \
         from-scratch rebuild of the same epoch — gated at exactly 1.0 in CI; staleness is the \
         ingest-buffer depth the moment a refresh lands)\n",
    );
    Report { text: out, metrics }
}

// ---------------------------------------------------------------------------
// D9: durable live engine — WAL overhead, checkpoint cadence, crash recovery
// ---------------------------------------------------------------------------

/// A fresh scratch directory for one d9 durable run.
fn d9_dir(case: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vexus-bench-d9-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Feed one batch straight into a live engine's ingest buffer.
fn d9_feed(live: &vexus_core::LiveEngine, actions: &[vexus_data::Action]) {
    let (tx, mut rx) = vexus_data::stream::ChannelStream::with_capacity(actions.len().max(1));
    for &a in actions {
        assert!(tx.send(a), "d9 channel closed early");
    }
    drop(tx);
    let drained = live.ingest(&mut rx, usize::MAX).expect("live ingests");
    assert_eq!(drained, actions.len());
}

/// Bytes currently on disk in a durable directory.
fn d9_disk_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok()?.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// The durability subsystem end to end: WAL overhead next to a WAL-off
/// baseline (per-frame vs batched sync), a checkpoint-cadence sweep,
/// recovery time against surviving log length, and the crash matrix —
/// every case's recovered engine must be byte-identical to the
/// uninterrupted run at the epoch it reports (`recovery_equivalence`,
/// gated at exactly 1.0 in CI).
pub fn d9_durability() -> Report {
    use vexus_core::{DurabilityConfig, LiveEngine, WalSync};
    use vexus_data::wal as walio;
    use vexus_mining::DiscoverySelection;

    let mut out = header(
        "d9",
        "durable live engine: write-ahead log, checkpoints, crash recovery",
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let ds = workloads::bookcrossing_at(workloads::scale());
    let (mut base, tape) = ds.data.split_actions();
    let warmup = tape.len() / 4;
    base.append_actions(&tape[..warmup]);
    let live_tape = &tape[warmup..];
    let config = EngineConfig::paper().with_discovery(DiscoverySelection::StreamFim {
        support: 0.02,
        epsilon: 0.004,
        max_len: 3,
    });
    let batches: Vec<&[vexus_data::Action]> = live_tape.chunks(D8_BATCH).collect();
    let _ = writeln!(
        out,
        "workload: {} users, {} warmup actions, {} streamed in {} batches of {}",
        base.n_users(),
        warmup,
        live_tape.len(),
        batches.len(),
        D8_BATCH,
    );

    // --- The WAL-off baseline, doubling as the byte-identity oracle:
    // snapshot bytes of the published engine at every epoch.
    let reference =
        LiveEngine::bootstrap(base.clone(), config.clone()).expect("warmup mines groups");
    let mut snapshots = vec![reference.engine().write_snapshot()];
    let mut off_ms: Vec<f64> = Vec::new();
    for chunk in &batches {
        d9_feed(&reference, chunk);
        let t0 = Instant::now();
        let outcome = reference.refresh().expect("baseline refresh");
        off_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert!(outcome.advanced);
        snapshots.push(reference.engine().write_snapshot());
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let off_mean = mean(&off_ms);

    // --- WAL overhead: same stream, logging every delta before it is
    // applied, with no checkpoints in the way (`checkpoint_every: 0`).
    let mut mode_dirs: Vec<(&str, std::path::PathBuf, usize)> = Vec::new();
    for (label, sync) in [
        ("per-frame", WalSync::PerFrame),
        ("batched", WalSync::Batched),
    ] {
        let dir = d9_dir(label);
        let durability = DurabilityConfig {
            checkpoint_every: 0,
            sync,
            ..DurabilityConfig::new(&dir)
        };
        let live = LiveEngine::bootstrap_durable(base.clone(), config.clone(), durability)
            .expect("durable bootstrap");
        let mut ms: Vec<f64> = Vec::new();
        let mut wal_bytes = 0u64;
        for chunk in &batches {
            d9_feed(&live, chunk);
            let t0 = Instant::now();
            let outcome = live.refresh().expect("durable refresh");
            ms.push(t0.elapsed().as_secs_f64() * 1e3);
            assert!(outcome.wal_appended);
            wal_bytes += outcome.wal_bytes;
        }
        assert!(live.engine().write_snapshot() == snapshots[batches.len()]);
        let m = mean(&ms);
        let _ = writeln!(
            out,
            "wal {label:>9}: refresh {m:>7.2} ms mean vs {off_mean:.2} ms wal-off \
             ({:+.1}% overhead) | {wal_bytes} WAL bytes over {} frames",
            (m / off_mean.max(1e-9) - 1.0) * 100.0,
            batches.len(),
        );
        metrics.push((format!("wal_{}_refresh_ms", label.replace('-', "_")), m));
        if sync == WalSync::PerFrame {
            metrics.push(("wal_bytes".into(), wal_bytes as f64));
            metrics.push(("wal_overhead_ratio".into(), m / off_mean.max(1e-9)));
        }
        mode_dirs.push((label, dir, batches.len()));
    }
    metrics.push(("wal_off_refresh_ms".into(), off_mean));

    // --- Checkpoint cadence sweep: how often a full snapshot lands
    // trades recovery work (frames left to replay) against refresh-path
    // cost and disk footprint.
    let mut cadence_dirs: Vec<(u64, std::path::PathBuf)> = Vec::new();
    for &every in &[1u64, 4, 16] {
        let dir = d9_dir(&format!("k{every}"));
        let durability = DurabilityConfig {
            checkpoint_every: every,
            ..DurabilityConfig::new(&dir)
        };
        let live = LiveEngine::bootstrap_durable(base.clone(), config.clone(), durability)
            .expect("durable bootstrap");
        let mut ms: Vec<f64> = Vec::new();
        let mut written = 0usize;
        for chunk in &batches {
            d9_feed(&live, chunk);
            let t0 = Instant::now();
            let outcome = live.refresh().expect("durable refresh");
            ms.push(t0.elapsed().as_secs_f64() * 1e3);
            written += (outcome.checkpoint == vexus_core::CheckpointOutcome::Written) as usize;
        }
        let disk = d9_disk_bytes(&dir);
        let _ = writeln!(
            out,
            "cadence K={every:>2}: {written} checkpoints over {} refreshes | refresh \
             {:>7.2} ms mean (incl. checkpoint phase) | {} KiB on disk",
            batches.len(),
            mean(&ms),
            disk / 1024,
        );
        if every == 4 {
            metrics.push(("cadence4_refresh_ms".into(), mean(&ms)));
            metrics.push(("cadence4_checkpoints".into(), written as f64));
        }
        cadence_dirs.push((every, dir));
    }

    // --- Recovery time vs surviving log length, and the crash matrix.
    // Every directory above is a crash image (the engines were dropped
    // with no shutdown hook); add bootstrap-only and mid-stream crashes,
    // then a torn tail and a corrupt newest checkpoint. Every recovery
    // must be byte-identical to the reference at the epoch it reports.
    let mut cases_total = 0usize;
    let mut cases_ok = 0usize;
    let mut recover =
        |dir: &std::path::Path, label: &str, out: &mut String| -> Option<(usize, f64)> {
            let durability = DurabilityConfig::new(dir);
            let t0 = Instant::now();
            match LiveEngine::recover(base.clone(), config.clone(), durability) {
                Ok((rec, report)) => {
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    cases_total += 1;
                    let identical =
                        rec.engine().write_snapshot() == snapshots[report.final_epoch as usize];
                    cases_ok += identical as usize;
                    let _ = writeln!(
                        out,
                        "recover {label:>22}: watermark {} + {} frames replayed -> epoch {} in \
                     {ms:>7.2} ms | byte-identical: {}",
                        report.checkpoint_watermark,
                        report.frames_replayed,
                        report.final_epoch,
                        if identical { "yes" } else { "NO" },
                    );
                    Some((report.frames_replayed, ms))
                }
                Err(e) => {
                    cases_total += 1;
                    let _ = writeln!(out, "recover {label:>22}: FAILED ({e})");
                    None
                }
            }
        };

    // Full-log replays (K=0) and the cadence images: log length falls as
    // the cadence tightens, and recovery time falls with it.
    let mut recovery_points: Vec<(usize, f64)> = Vec::new();
    for (label, dir, _) in &mode_dirs {
        if let Some(p) = recover(dir, &format!("full log ({label})"), &mut out) {
            recovery_points.push(p);
        }
    }
    for (every, dir) in &cadence_dirs {
        if let Some(p) = recover(dir, &format!("cadence K={every}"), &mut out) {
            recovery_points.push(p);
        }
    }
    if let Some(&(frames, ms)) = recovery_points.first() {
        metrics.push(("recovery_full_frames".into(), frames as f64));
        metrics.push(("recovery_full_ms".into(), ms));
    }

    // Mid-stream crash points for both cadences in the matrix.
    for &every in &[1u64, 4] {
        for crash_after in [1usize, batches.len().div_ceil(2)] {
            let dir = d9_dir(&format!("crash-k{every}-b{crash_after}"));
            let durability = DurabilityConfig {
                checkpoint_every: every,
                ..DurabilityConfig::new(&dir)
            };
            let live = LiveEngine::bootstrap_durable(base.clone(), config.clone(), durability)
                .expect("durable bootstrap");
            for chunk in &batches[..crash_after] {
                d9_feed(&live, chunk);
                live.refresh().expect("durable refresh");
            }
            drop(live);
            recover(&dir, &format!("K={every} after {crash_after}"), &mut out);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // Bootstrap-only crash: nothing but ckpt-0 and an empty segment.
    let dir = d9_dir("crash-bootstrap");
    drop(
        LiveEngine::bootstrap_durable(base.clone(), config.clone(), DurabilityConfig::new(&dir))
            .expect("durable bootstrap"),
    );
    recover(&dir, "bootstrap only", &mut out);
    let _ = std::fs::remove_dir_all(&dir);

    // Damage cases on the K=4 image: tear the newest WAL segment
    // mid-frame, then flip a byte in the newest checkpoint (recovery
    // falls back to the previous one). Clean truncated recovery both
    // times — still byte-identical at the epoch reported.
    let k4 = &cadence_dirs[1].1;
    let mut segments: Vec<std::path::PathBuf> = std::fs::read_dir(k4)
        .expect("k4 dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "vxwl"))
        .collect();
    segments.sort();
    if let Some(seg) = segments.last() {
        let len = std::fs::metadata(seg).expect("segment").len();
        walio::truncate_at(seg, len.saturating_sub(3)).expect("tear");
        recover(k4, "torn tail (K=4)", &mut out);
    }
    let mut ckpts: Vec<std::path::PathBuf> = std::fs::read_dir(k4)
        .expect("k4 dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "vxck"))
        .collect();
    ckpts.sort();
    if ckpts.len() > 1 {
        walio::corrupt_byte_at(ckpts.last().expect("newest"), 64, 0xff).expect("corrupt");
        recover(k4, "corrupt newest ckpt", &mut out);
    }

    for (_, dir, _) in &mode_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    for (_, dir) in &cadence_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }

    let equivalence = cases_ok as f64 / cases_total.max(1) as f64;
    let _ = writeln!(
        out,
        "crash matrix: {cases_ok}/{cases_total} recoveries byte-identical to the uninterrupted \
         run at their reported epoch",
    );
    metrics.push(("recovery_cases".into(), cases_total as f64));
    metrics.push(("recovery_equivalence".into(), equivalence));
    out.push_str(
        "(recovery_equivalence = fraction of crash-matrix recoveries whose engine snapshot is \
         byte-identical to the uninterrupted run at the recovered epoch — gated at exactly 1.0 \
         in CI, with and without failpoints)\n",
    );
    Report { text: out, metrics }
}

// ---------------------------------------------------------------------------
// C1: greedy time budget vs achieved diversity/coverage
// ---------------------------------------------------------------------------

/// Paper: "We safely set the time limit to 100 ms … which enables VEXUS to
/// reach in average 90 % of diversity and 85 % of coverage."
pub fn c1_budget_sweep() -> String {
    let mut out = header(
        "c1",
        "greedy budget sweep (paper: 100 ms -> ~90 % diversity, ~85 % coverage of unbounded)",
    );
    let (vexus, _) = workloads::bookcrossing_engine(EngineConfig::paper());
    // Anchor groups: the biggest few, exploring from each.
    let mut anchors: Vec<GroupId> = vexus.groups().ids().collect();
    anchors.sort_by_key(|&g| std::cmp::Reverse(vexus.groups().get(g).size()));
    anchors.truncate(5);

    // Per anchor: candidate pool + reference.
    let pools: Vec<(Vec<ScoredCandidate>, MemberSet)> = anchors
        .iter()
        .map(|&g| {
            let neighbors = vexus.index().neighbors(vexus.groups(), g, 256);
            let cands: Vec<ScoredCandidate> = neighbors
                .into_iter()
                .map(|(id, s)| (id, s as f64))
                .collect();
            (cands, vexus.groups().get(g).members.clone())
        })
        .collect();

    // Unbounded upper bound per anchor.
    let fb = FeedbackVector::new();
    let base_params = SelectParams {
        k: 5,
        min_similarity: 0.01,
        ..Default::default()
    };
    let unbounded: Vec<(f64, f64)> = pools
        .iter()
        .map(|(cands, reference)| {
            let o = greedy::select_k_unbounded(vexus.groups(), cands, reference, &fb, &base_params);
            (o.quality.diversity.max(1e-9), o.quality.coverage.max(1e-9))
        })
        .collect();

    let _ = writeln!(
        out,
        "{:>10} | {:>10} {:>10} | {:>12} {:>12} | {:>7}",
        "budget", "diversity", "coverage", "div % of opt", "cov % of opt", "rounds"
    );
    for budget_ms in [1u64, 2, 5, 10, 25, 50, 100, 250, 500] {
        let mut div = 0.0;
        let mut cov = 0.0;
        let mut divf = 0.0;
        let mut covf = 0.0;
        let mut rounds = 0usize;
        for ((cands, reference), &(ud, uc)) in pools.iter().zip(&unbounded) {
            let params = SelectParams {
                budget: Some(Duration::from_millis(budget_ms)),
                ..base_params.clone()
            };
            let o = greedy::select_k(vexus.groups(), cands, reference, &fb, &params);
            div += o.quality.diversity;
            cov += o.quality.coverage;
            divf += (o.quality.diversity / ud).min(1.0);
            covf += (o.quality.coverage / uc).min(1.0);
            rounds += o.rounds;
        }
        let n = pools.len() as f64;
        let _ = writeln!(
            out,
            "{:>8}ms | {:>10.3} {:>10.3} | {:>11.1}% {:>11.1}% | {:>7.1}",
            budget_ms,
            div / n,
            cov / n,
            100.0 * divf / n,
            100.0 * covf / n,
            rounds as f64 / n
        );
    }
    let (ud, uc) = unbounded
        .iter()
        .fold((0.0, 0.0), |acc, &(d, c)| (acc.0 + d, acc.1 + c));
    let n = unbounded.len() as f64;
    let _ = writeln!(
        out,
        "{:>10} | {:>10.3} {:>10.3} | {:>11.1}% {:>11.1}% |",
        "unbounded",
        ud / n,
        uc / n,
        100.0,
        100.0
    );
    out
}

// ---------------------------------------------------------------------------
// C2: interaction latency vs dataset scale
// ---------------------------------------------------------------------------

/// Paper: "all interactions in VEXUS occur in O(1)" (the index lookup), with
/// the greedy capped separately. Latency must stay flat as data grows.
pub fn c2_interaction_latency() -> String {
    let mut out = header(
        "c2",
        "interaction latency vs dataset scale (claim: O(1) per step)",
    );
    let _ = writeln!(
        out,
        "{:>6} | {:>8} {:>8} | {:>14} | {:>14} | {:>14}",
        "scale", "users", "groups", "index lookup", "backtrack", "full click"
    );
    for mult in [1usize, 2, 4, 8] {
        let ds = bookcrossing(&BookCrossingConfig {
            n_users: 2_500 * mult,
            n_books: 2_000 * mult,
            n_ratings: 15_000 * mult,
            n_communities: 8,
            seed: 42,
        });
        let n_users = ds.data.n_users();
        // Support proportional to users so the group space stays comparable.
        let config = EngineConfig {
            min_group_size: (n_users / 500).max(5),
            ..EngineConfig::paper()
        };
        let vexus = VexusBuilder::new(ds.data)
            .config(config)
            .build()
            .expect("non-empty");
        let mut session = vexus.session().expect("session opens");
        // Index lookup latency (the O(1) interaction core).
        let g = session.display()[0];
        let t0 = Instant::now();
        let reps = 200;
        for _ in 0..reps {
            std::hint::black_box(vexus.index().neighbors(vexus.groups(), g, 64));
        }
        let lookup = t0.elapsed() / reps;
        // Backtrack latency (pure state restore).
        session.click(g).expect("click");
        let t1 = Instant::now();
        session.backtrack(0).expect("backtrack");
        let backtrack = t1.elapsed();
        // Full click (greedy-capped at 100 ms).
        let g = session.display()[0];
        let t2 = Instant::now();
        session.click(g).expect("click");
        let click = t2.elapsed();
        let _ = writeln!(
            out,
            "{:>5}x | {:>8} {:>8} | {:>14?} | {:>14?} | {:>14?}",
            mult,
            n_users,
            vexus.build_stats().n_groups,
            lookup,
            backtrack,
            click
        );
    }
    out.push_str(
        "(index lookup and backtrack stay flat; full click is dominated by the capped greedy)\n",
    );
    out
}

// ---------------------------------------------------------------------------
// C3: index materialization fraction
// ---------------------------------------------------------------------------

/// Paper: "we only materialize 10 % of each inverted index which is shown in
/// \[14\] to be adequate to deliver satisfying results."
pub fn c3_materialization() -> String {
    let mut out = header(
        "c3",
        "inverted-index materialization sweep (paper fixes 10 %)",
    );
    let ds = workloads::bookcrossing_at(workloads::scale());
    let vexus = VexusBuilder::new(ds.data)
        .config(EngineConfig::paper())
        .build()
        .expect("non-empty");
    let groups = vexus.groups();
    let k = 8; // neighbors a k=5 exploration step typically needs

    let _ = writeln!(
        out,
        "{:>9} | {:>10} | {:>9} | {:>10} | {:>12} | {:>12}",
        "fraction", "entries", "KiB", "build", "recall@8", "fallback %"
    );
    // Exact top-k per probe group, from the full index.
    let full = GroupIndex::build(
        groups,
        &IndexConfig {
            materialize_fraction: 1.0,
            threads: 0,
        },
    );
    let probes: Vec<GroupId> = groups.ids().step_by((groups.len() / 64).max(1)).collect();
    let exact: Vec<Vec<GroupId>> = probes
        .iter()
        .map(|&g| {
            full.materialized(g)
                .iter()
                .take(k)
                .map(|&(h, _)| h)
                .collect()
        })
        .collect();

    for fraction in [0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.00] {
        let t0 = Instant::now();
        let idx = GroupIndex::build(
            groups,
            &IndexConfig {
                materialize_fraction: fraction,
                threads: 0,
            },
        );
        let build = t0.elapsed();
        // Recall of the materialized prefix against the exact top-k, and
        // how often a k-request would need the exact fallback.
        let mut recall = 0.0;
        let mut fallbacks = 0usize;
        for (&g, exact_topk) in probes.iter().zip(&exact) {
            if idx.needs_fallback(g, k) {
                fallbacks += 1;
            }
            if exact_topk.is_empty() {
                recall += 1.0;
                continue;
            }
            let have: std::collections::HashSet<GroupId> = idx
                .materialized(g)
                .iter()
                .take(k)
                .map(|&(h, _)| h)
                .collect();
            recall += exact_topk.iter().filter(|h| have.contains(h)).count() as f64
                / exact_topk.len() as f64;
        }
        let s = idx.stats();
        let _ = writeln!(
            out,
            "{:>8.0}% | {:>10} | {:>9} | {:>10?} | {:>11.1}% | {:>11.1}%",
            fraction * 100.0,
            s.materialized_entries,
            s.heap_bytes / 1024,
            build,
            100.0 * recall / probes.len() as f64,
            100.0 * fallbacks as f64 / probes.len() as f64
        );
    }
    out.push_str("(queries beyond the materialized prefix fall back to an exact scan, so results stay correct; the fraction trades memory against fallback frequency)\n");
    out
}

// ---------------------------------------------------------------------------
// C4: PC committee formation in < 10 iterations (MT)
// ---------------------------------------------------------------------------

/// Paper: "VEXUS enables PC chairs to form committees of major conferences
/// (SIGMOD, VLDB and CIKM) in less than 10 iterations on average."
pub fn c4_committee_formation() -> String {
    let mut out = header(
        "c4",
        "expert-set formation (MT): iterations to fill a committee",
    );
    let (vexus, _) = workloads::dbauthors_engine(EngineConfig::paper());
    let venue_attr = vexus
        .data()
        .schema()
        .attr("main_venue")
        .expect("main_venue");
    let region_attr = vexus.data().schema().attr("region").expect("region");
    let data = vexus.data();
    let _ = writeln!(
        out,
        "{:>8} | {:>5} | {:>20} | {:>20}",
        "venue", "size", "informed iters/fill", "random iters/fill"
    );
    let mut informed_total = 0.0;
    let mut count = 0usize;
    for venue in ["sigmod", "vldb", "cikm"] {
        let Some(v) = data.schema().value(venue_attr, venue) else {
            continue;
        };
        let task = CommitteeTask {
            size: 12,
            brush: vec![(venue_attr, v)],
            min_activity: 8,
            inspect_limit: 15,
            max_iterations: 25,
            balance_attr: Some(region_attr),
            max_per_value: 3,
        };
        let mut session = vexus.session().expect("session opens");
        let informed = run_committee(&mut session, &task, Policy::Informed).expect("runs");
        let mut random_iters = 0.0;
        let mut random_fill = 0.0;
        let seeds = 3;
        for seed in 0..seeds {
            let mut s = vexus.session().expect("session opens");
            let r = run_committee(&mut s, &task, Policy::Random { seed }).expect("runs");
            random_iters += r.iterations as f64 / seeds as f64;
            random_fill += r.fill / seeds as f64;
        }
        let _ = writeln!(
            out,
            "{:>8} | {:>5} | {:>9} ({:>4.0}% full) | {:>9.1} ({:>4.0}% full)",
            venue,
            task.size,
            informed.iterations,
            informed.fill * 100.0,
            random_iters,
            random_fill * 100.0
        );
        informed_total += informed.iterations as f64;
        count += 1;
    }
    if count > 0 {
        let _ = writeln!(
            out,
            "mean informed iterations: {:.1} (paper claim: < 10; active researchers only, committees balanced over <= 3 per region)",
            informed_total / count as f64
        );
    }
    out
}

// ---------------------------------------------------------------------------
// C5: k sweep (P1)
// ---------------------------------------------------------------------------

/// Paper fixes k ≤ 7 for perception; the sweep shows the efficiency/success
/// trade-off around that choice.
pub fn c5_k_sweep() -> String {
    let mut out = header("c5", "k sweep (P1: limited options, k <= 7)");
    let (vexus, _) = workloads::bookcrossing_engine(EngineConfig::paper());
    // ST targets: five mid-sized groups.
    let mut targets: Vec<GroupId> = vexus
        .groups()
        .ids()
        .filter(|&g| {
            let s = vexus.groups().get(g).size();
            (20..200).contains(&s)
        })
        .collect();
    targets.truncate(5);
    let _ = writeln!(
        out,
        "{:>3} | {:>10} | {:>12} | {:>14}",
        "k", "found", "mean iters", "mean step time"
    );
    for k in [3usize, 5, 7, 9, 12] {
        let config = EngineConfig::paper().with_k(k);
        let mut found = 0usize;
        let mut iters = 0.0;
        let mut step_time = Duration::ZERO;
        let mut steps = 0u32;
        for &tg in &targets {
            let target = vexus.groups().get(tg).members.clone();
            let mut session = vexus.session_with(config.clone()).expect("session opens");
            let t0 = Instant::now();
            let o = run_st(
                &mut session,
                &target,
                StAccept::Jaccard(0.7),
                12,
                Policy::Informed,
            )
            .expect("st runs");
            let elapsed = t0.elapsed();
            let n_steps = (o.iterations as u32).max(1);
            step_time += elapsed / n_steps;
            steps += 1;
            if o.found {
                found += 1;
                iters += o.iterations as f64;
            } else {
                iters += 12.0;
            }
        }
        let _ = writeln!(
            out,
            "{:>3} | {:>6}/{:<3} | {:>12.1} | {:>14?}",
            k,
            found,
            targets.len(),
            iters / targets.len() as f64,
            step_time / steps.max(1)
        );
    }
    out
}

// ---------------------------------------------------------------------------
// C6: the exponential group space
// ---------------------------------------------------------------------------

/// Paper: "with only four demographic attributes and five values for each,
/// the number of user groups will be in the order of 10^6."
pub fn c6_group_space() -> String {
    let mut out = header(
        "c6",
        "group-space growth (claim: exponential in attributes)",
    );
    let ds = bookcrossing(&BookCrossingConfig {
        n_users: 3_000,
        n_books: 2_000,
        n_ratings: 20_000,
        n_communities: 8,
        seed: 42,
    });
    let data = &ds.data;
    let vocab = Vocabulary::build(data);
    let full_db = TransactionDb::build(data, &vocab);
    let n_attrs_total = data.schema().len();
    let _ = writeln!(
        out,
        "{:>7} | {:>9} | {:>15} | {:>15} | {:>10}",
        "#attrs", "#tokens", "combinatorial", "closed groups", "mine time"
    );
    for n_attrs in 1..=n_attrs_total {
        // Restrict transactions to the first n_attrs attributes' tokens.
        // Token ids are assigned in attribute order, so a prefix of the
        // attribute list maps to a prefix of the token space.
        let max_token: u32 = data
            .schema()
            .iter()
            .take(n_attrs)
            .map(|(attr, _)| data.schema().cardinality(attr) as u32)
            .sum();
        let transactions: Vec<Vec<vexus_data::TokenId>> = (0..full_db.n_transactions() as u32)
            .map(|u| {
                full_db
                    .transaction(u)
                    .iter()
                    .copied()
                    .filter(|t| t.raw() < max_token)
                    .collect()
            })
            .collect();
        let db = TransactionDb::from_transactions(transactions, max_token as usize);
        // Combinatorial bound: product over attributes of (cardinality + 1).
        let mut bound: f64 = 1.0;
        for (attr, _) in data.schema().iter().take(n_attrs) {
            bound *= data.schema().cardinality(attr) as f64 + 1.0;
        }
        let t0 = Instant::now();
        let gs = vexus_mining::mine_closed_groups(
            &db,
            &LcmConfig {
                min_support: 5,
                max_description: n_attrs,
                max_groups: 2_000_000,
                emit_root: false,
            },
        );
        let mine = t0.elapsed();
        let _ = writeln!(
            out,
            "{:>7} | {:>9} | {:>15.0} | {:>15} | {:>10?}",
            n_attrs,
            max_token,
            bound - 1.0,
            gs.len(),
            mine
        );
    }
    out.push_str("(closedness + support pruning keep the mined space far below the combinatorial bound, which is what makes exploration tractable)\n");
    out
}

// ---------------------------------------------------------------------------
// C7: feedback learning ablation + unlearning
// ---------------------------------------------------------------------------

/// Feedback biases navigation toward the explorer's interest; deleting a
/// learned value ("male") re-balances results.
pub fn c7_feedback_ablation() -> String {
    let mut out = header("c7", "feedback learning ablation + unlearn");
    let (vexus, _) = workloads::dbauthors_engine(EngineConfig::paper());

    // Part 1: ST iterations with and without feedback.
    let mut targets: Vec<GroupId> = vexus
        .groups()
        .ids()
        .filter(|&g| (20..300).contains(&vexus.groups().get(g).size()))
        .collect();
    targets.truncate(6);
    let mut rows = Vec::new();
    for (label, config) in [
        ("feedback on", EngineConfig::paper()),
        ("feedback off", EngineConfig::paper().without_feedback()),
    ] {
        let mut iters = 0.0;
        let mut found = 0usize;
        for &tg in &targets {
            let target = vexus.groups().get(tg).members.clone();
            let mut session = vexus.session_with(config.clone()).expect("session opens");
            let o = run_st(
                &mut session,
                &target,
                StAccept::Jaccard(0.7),
                12,
                Policy::Informed,
            )
            .expect("st runs");
            if o.found {
                found += 1;
                iters += o.iterations as f64;
            } else {
                iters += 12.0;
            }
        }
        rows.push((label, found, iters / targets.len() as f64));
    }
    // Random baseline.
    {
        let mut iters = 0.0;
        let mut found = 0usize;
        for (i, &tg) in targets.iter().enumerate() {
            let target = vexus.groups().get(tg).members.clone();
            let mut session = vexus.session().expect("session opens");
            let o = run_st(
                &mut session,
                &target,
                StAccept::Jaccard(0.7),
                12,
                Policy::Random { seed: i as u64 },
            )
            .expect("st runs");
            if o.found {
                found += 1;
                iters += o.iterations as f64;
            } else {
                iters += 12.0;
            }
        }
        rows.push(("random walk", found, iters / targets.len() as f64));
    }
    let _ = writeln!(
        out,
        "{:>13} | {:>7} | {:>10}",
        "policy", "found", "mean iters"
    );
    for (label, found, iters) in rows {
        let _ = writeln!(
            out,
            "{label:>13} | {found:>4}/{:<2} | {iters:>10.1}",
            targets.len()
        );
    }

    // Part 2: unlearning "male" re-balances the selection. We isolate the
    // feedback effect: the same anchor, the same candidates, the same
    // greedy — only the feedback vector differs (biased vs male-unlearned).
    let gender_attr = vexus.data().schema().attr("gender").expect("gender");
    let male = vexus
        .data()
        .schema()
        .value(gender_attr, "male")
        .expect("male value");
    let male_token = vexus
        .vocab()
        .token(gender_attr, male)
        .expect("token exists");
    // Bias feedback by rewarding three male-heavy groups.
    let mut fb_biased = FeedbackVector::new();
    let mut male_groups: Vec<GroupId> = vexus
        .groups()
        .iter()
        .filter(|(_, g)| g.describes(male_token) && (50..200).contains(&g.size()))
        .map(|(id, _)| id)
        .collect();
    male_groups.truncate(3);
    for &g in &male_groups {
        fb_biased.reward_group(vexus.groups().get(g));
    }
    // The chair cleans CONTEXT: she deletes the learned "male" value and
    // the male researchers it surfaced (the paper allows unlearning both
    // users and demographic values; deleting only the value would
    // renormalize its mass onto those same users).
    let mut fb_unlearned = fb_biased.clone();
    fb_unlearned.unlearn_token(male_token);
    for (u, _) in fb_biased.context_view(usize::MAX).users {
        if vexus.data().value(u, gender_attr) == male {
            fb_unlearned.unlearn_user(u);
        }
    }
    // Anchor: a large group without a gender token.
    let anchor = vexus
        .groups()
        .iter()
        .filter(|(_, g)| !g.describes(male_token) && g.description.len() == 1)
        .max_by_key(|(_, g)| g.size())
        .map(|(id, _)| id)
        .expect("a gender-neutral group exists");
    let candidates: Vec<ScoredCandidate> = vexus
        .index()
        .neighbors(vexus.groups(), anchor, 256)
        .into_iter()
        .map(|(id, s)| (id, s as f64))
        .collect();
    let params = SelectParams {
        k: 5,
        budget: None,
        min_similarity: 0.01,
        feedback_weight: 2.0,
        ..Default::default()
    };
    let reference = vexus.groups().get(anchor).members.clone();
    let male_share_of = |sel: &[GroupId]| -> f64 {
        let mut males = 0usize;
        let mut total = 0usize;
        for &g in sel {
            for u in vexus.groups().get(g).members.iter() {
                total += 1;
                if vexus.data().value(UserId::new(u), gender_attr) == male {
                    males += 1;
                }
            }
        }
        males as f64 / total.max(1) as f64
    };
    let with_bias = greedy::select_k(vexus.groups(), &candidates, &reference, &fb_biased, &params);
    let unlearned = greedy::select_k(
        vexus.groups(),
        &candidates,
        &reference,
        &fb_unlearned,
        &params,
    );
    let male_described = |sel: &[GroupId]| {
        sel.iter()
            .filter(|&&g| vexus.groups().get(g).describes(male_token))
            .count()
    };
    let _ = writeln!(
        out,
        "unlearn demo (same anchor/candidates, feedback only): with male bias learned the display is {:.1}% male ({} of 5 groups male-described); after deleting the bias from CONTEXT it is {:.1}% male ({} of 5 male-described)",
        male_share_of(&with_bias.selection) * 100.0,
        male_described(&with_bias.selection),
        male_share_of(&unlearned.selection) * 100.0,
        male_described(&unlearned.selection),
    );
    out
}

// ---------------------------------------------------------------------------
// C8: crossfilter incremental vs naive
// ---------------------------------------------------------------------------

/// Paper: coordinated views update "instantaneously" thanks to incremental
/// queries. Benchmark: brush latency, incremental vs naive recompute.
pub fn c8_crossfilter() -> String {
    let mut out = header("c8", "crossfilter brush latency: incremental vs naive");
    let _ = writeln!(
        out,
        "{:>9} | {:>14} | {:>14} | {:>8}",
        "records", "incremental", "naive", "speedup"
    );
    for n in [10_000usize, 50_000, 200_000] {
        let ds = bookcrossing(&BookCrossingConfig {
            n_users: n,
            n_books: 1_000,
            n_ratings: n, // activity spread
            n_communities: 8,
            seed: 1,
        });
        let data = &ds.data;
        let mut cf = Crossfilter::new(n);
        // Numeric dimension: activity; categorical: country.
        let activity: Vec<f64> = data.users().map(|u| data.user_activity(u) as f64).collect();
        let act = cf.add_numeric(activity, &[1.0, 3.0, 10.0, 30.0]);
        let country_attr = data.schema().attr("country").expect("country");
        let cats: Vec<u32> = data
            .users()
            .map(|u| {
                let v = data.value(u, country_attr);
                if v.is_missing() {
                    0
                } else {
                    v.raw()
                }
            })
            .collect();
        let n_cats = data.schema().cardinality(country_attr).max(1);
        let _c = cf.add_categorical(cats, n_cats);
        // Sliding window of 40 brush moves.
        let moves = 40u32;
        let t0 = Instant::now();
        for i in 0..moves {
            let lo = i as f64 * 0.5;
            cf.brush_range(act, lo, lo + 5.0);
        }
        let incremental = t0.elapsed() / moves;
        // Naive: recompute everything per move.
        let t1 = Instant::now();
        for i in 0..moves {
            let lo = i as f64 * 0.5;
            cf.brush_range(act, lo, lo + 5.0);
            std::hint::black_box(cf.recompute_naive());
        }
        let naive = t1.elapsed() / moves;
        let _ = writeln!(
            out,
            "{:>9} | {:>14?} | {:>14?} | {:>7.1}x",
            n,
            incremental,
            naive,
            naive.as_secs_f64() / incremental.as_secs_f64().max(1e-12)
        );
    }
    out.push_str("(incremental touches only records whose filter status changed; naive rescans every record per brush)\n");
    out
}

// ---------------------------------------------------------------------------
// C9: discussion groups (ST) + satisfaction proxy
// ---------------------------------------------------------------------------

/// Scenario 2: a reader finds discussion groups she agrees and disagrees
/// with; the cited user study reports 80 % satisfaction for group-based
/// exploration.
pub fn c9_discussion_groups() -> String {
    let mut out = header(
        "c9",
        "discussion groups (ST) + satisfaction proxy (cited: 80 %)",
    );
    let (vexus, _) = workloads::bookcrossing_engine(EngineConfig::paper());
    let fav_attr = vexus
        .data()
        .schema()
        .attr("favorite_genre")
        .expect("favorite_genre");
    // Readers: one per genre value; target = the closed group of users who
    // share the reader's favorite genre (the "agree" club).
    let mut runs = 0usize;
    let mut satisfied = 0usize;
    let mut iters_sum = 0.0;
    let _ = writeln!(
        out,
        "{:>12} | {:>6} | {:>6} | {:>10}",
        "reader likes", "found", "iters", "similarity"
    );
    for value_idx in 0..vexus.data().schema().cardinality(fav_attr).min(8) {
        let v = vexus_data::ValueId::new(value_idx as u32);
        let Some(token) = vexus.vocab().token(fav_attr, v) else {
            continue;
        };
        // The agree-club: the group whose description is exactly that token.
        let Some((club, _)) = vexus
            .groups()
            .iter()
            .find(|(_, g)| g.description == vec![token])
        else {
            continue;
        };
        let target = vexus.groups().get(club).members.clone();
        if target.len() < 10 {
            continue;
        }
        let mut session = vexus.session().expect("session opens");
        let o = run_st(
            &mut session,
            &target,
            StAccept::Precision {
                min_precision: 0.8,
                min_size: 15,
            },
            10,
            Policy::Informed,
        )
        .expect("st runs");
        runs += 1;
        if o.found {
            satisfied += 1;
            iters_sum += o.iterations as f64;
        } else {
            iters_sum += 10.0;
        }
        let _ = writeln!(
            out,
            "{:>12} | {:>6} | {:>6} | {:>10.2}",
            vexus.data().schema().value_label(fav_attr, v),
            o.found,
            o.iterations,
            o.best_score
        );
    }
    if runs > 0 {
        let _ = writeln!(
            out,
            "satisfaction proxy: {}/{} readers reached their club within 10 iterations ({:.0}%; cited study: 80%); mean iterations {:.1}",
            satisfied,
            runs,
            100.0 * satisfied as f64 / runs as f64,
            iters_sum / runs as f64
        );
    }
    out
}

// ---------------------------------------------------------------------------
// C10: LDA vs PCA focus view
// ---------------------------------------------------------------------------

/// Focus-view claim: similar members appear closer. Measured as silhouette
/// of latent communities in the 2-D projection, LDA vs the PCA baseline.
pub fn c10_lda_vs_pca() -> String {
    let mut out = header("c10", "focus view: LDA vs PCA separation (silhouette)");
    let (vexus, latent) = workloads::dbauthors_engine(EngineConfig::paper());
    let featurizer = vexus_core::features::Featurizer::new(vexus.data());
    // Probe the five biggest groups.
    let mut probe: Vec<GroupId> = vexus.groups().ids().collect();
    probe.sort_by_key(|&g| std::cmp::Reverse(vexus.groups().get(g).size()));
    probe.truncate(5);
    let _ = writeln!(
        out,
        "{:>6} | {:>8} | {:>9} | {:>9} | {:>9}",
        "group", "members", "classes", "LDA sil.", "PCA sil."
    );
    let mut lda_mean = 0.0;
    let mut pca_mean = 0.0;
    let mut counted = 0usize;
    for &g in &probe {
        let members: Vec<UserId> = vexus
            .groups()
            .get(g)
            .members
            .iter()
            .take(400)
            .map(UserId::new)
            .collect();
        let labels: Vec<u32> = members.iter().map(|u| latent[u.index()]).collect();
        let classes: std::collections::BTreeSet<u32> = labels.iter().copied().collect();
        if classes.len() < 2 {
            continue;
        }
        let points = featurizer.features_of(vexus.data(), &members);
        let lda = Lda::fit(&points, &labels, 2);
        let s_lda = silhouette(&lda.project_all(&points), &labels);
        let pca = Pca::fit(&points, 2);
        let s_pca = silhouette(&pca.project_all(&points), &labels);
        let _ = writeln!(
            out,
            "{:>6} | {:>8} | {:>9} | {:>9.3} | {:>9.3}",
            g.to_string(),
            members.len(),
            classes.len(),
            s_lda,
            s_pca
        );
        lda_mean += s_lda;
        pca_mean += s_pca;
        counted += 1;
    }
    if counted > 0 {
        let _ = writeln!(
            out,
            "mean: LDA {:.3} vs PCA {:.3} (supervised projection separates member profiles better)",
            lda_mean / counted as f64,
            pca_mean / counted as f64
        );
    }
    out
}

// ---------------------------------------------------------------------------
// C11: force layout clutter removal
// ---------------------------------------------------------------------------

/// GroupViz claim: the force layout "prevents visual clutter". Metric:
/// total pairwise circle-overlap area before vs after simulation.
pub fn c11_force_layout() -> String {
    let mut out = header("c11", "force layout clutter removal (overlap area)");
    let _ = writeln!(
        out,
        "{:>3} | {:>14} | {:>14} | {:>10}",
        "k", "overlap before", "overlap after", "ticks"
    );
    for k in [3usize, 5, 7, 9, 12] {
        let radii: Vec<f64> = (0..k).map(|i| 45.0 - 2.0 * i as f64).collect();
        let mut layout = ForceLayout::new(&radii, ForceConfig::default());
        let before = layout.total_overlap_area();
        let mut ticks = 0usize;
        while layout.total_overlap_area() > 1e-9 && ticks < 1000 {
            layout.tick();
            ticks += 1;
        }
        let after = layout.total_overlap_area();
        let _ = writeln!(out, "{k:>3} | {before:>14.1} | {after:>14.6} | {ticks:>10}");
    }
    out
}

// ---------------------------------------------------------------------------
// C12: the STATS drill-down example
// ---------------------------------------------------------------------------

/// Paper: "focusing on the group of 'very senior researchers in data
/// management with a very high number of publications' reveals that 62 % of
/// its members are male. … by brushing on gender to select females and on
/// publication rate to select 'extremely active', the table lists Elke A.
/// Rundensteiner…"
pub fn c12_stats_drilldown() -> String {
    let mut out = header("c12", "STATS drill-down (the 62 %-male example)");
    let (vexus, _) = workloads::dbauthors_engine(EngineConfig::paper());
    let data = vexus.data();
    let schema = data.schema();
    let seniority = schema.attr("seniority").expect("seniority");
    let topic = schema.attr("topic").expect("topic");
    let gender = schema.attr("gender").expect("gender");
    let very_senior = schema.value(seniority, "very senior").expect("value");
    let dm = schema.value(topic, "data management").expect("value");
    let vs_tok = vexus.vocab().token(seniority, very_senior).expect("token");
    let dm_tok = vexus.vocab().token(topic, dm).expect("token");
    // Find the most general closed group described by both tokens (the
    // first match may carry extra tokens, e.g. a gender, making it narrower
    // than the paper's example group).
    let target = vexus
        .groups()
        .iter()
        .filter(|(_, g)| g.describes(vs_tok) && g.describes(dm_tok))
        .max_by_key(|(_, g)| g.size());
    let Some((gid, group)) = target else {
        out.push_str("group 'very senior & data management' not frequent at this scale\n");
        return out;
    };
    let session = vexus.session().expect("session opens");
    let mut stats = session.stats_view(gid).expect("stats view");
    let male_share = stats.share(gender, "male").expect("share").max(0.0);
    let _ = writeln!(
        out,
        "group {gid}: \"{}\" with {} members",
        group.label(vexus.vocab(), schema),
        group.size()
    );
    let _ = writeln!(
        out,
        "gender histogram: male {:.0}% (paper example reported 62% male on DB-AUTHORS)",
        male_share * 100.0
    );
    // Brush to females with top publication activity.
    stats.brush(gender, &["female"]);
    stats.brush_activity(10.0, f64::MAX);
    let table = stats.table(5);
    let _ = writeln!(
        out,
        "after brushing [female] x [activity >= 10]: {} users selected; top of table:",
        stats.n_selected()
    );
    for (_, name, pubs) in &table {
        let _ = writeln!(out, "  {name:<14} {pubs} publications");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full experiment runs are exercised by the `experiments` binary and
    // the integration suite; here we smoke the cheap ones.

    #[test]
    fn dispatch_rejects_unknown_ids() {
        assert!(run("nope").is_none());
    }

    #[test]
    fn c11_reports_zero_overlap_after() {
        let report = c11_force_layout();
        assert!(report.contains("overlap after"));
        for line in report.lines().skip(3) {
            if let Some(after) = line.split('|').nth(2) {
                let v: f64 = after.trim().parse().unwrap_or(0.0);
                assert!(v < 1.0, "clutter not removed: {line}");
            }
        }
    }
}
