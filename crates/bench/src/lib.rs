//! # vexus-bench
//!
//! The experiment harness reproducing every figure and quantitative claim
//! of the VEXUS paper (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results).
//!
//! * [`workloads`] — shared engines/datasets the experiments run on,
//! * [`experiments`] — one function per experiment id (`f1`, `f2`,
//!   `c1`…`c12`), each printing the table/series the paper reports,
//! * `benches/` — criterion micro-benchmarks per hot path,
//! * `src/bin/experiments.rs` — CLI: `experiments [id…]` runs everything or
//!   a subset.

pub mod experiments;
pub mod workloads;
