//! # vexus-data
//!
//! User-data substrate for VEXUS (*Exploration of User Groups in VEXUS*,
//! ICDE 2018). The paper models user data as a combination of
//! **demographics** (age, gender, occupation, …) and **actions** under the
//! generic schema `[user, item, value]` (e.g. `[Mary, "Mr Miracle", 4]`
//! meaning Mary rated the book "Mr Miracle" with score 4).
//!
//! This crate provides everything the VEXUS pre-processing stage (Fig. 1 of
//! the paper) needs before group discovery:
//!
//! * [`schema`] — typed attribute schema with categorical dictionaries and
//!   numeric binning,
//! * [`dataset`] — columnar [`dataset::UserData`] storage plus the token
//!   vocabulary used by the mining layer,
//! * [`csv`] — a dependency-free RFC-4180-ish CSV reader/writer,
//! * [`etl`] — the cleaning pipeline (trimming, null normalization,
//!   deduplication, clamping) that precedes import,
//! * [`shard`] — member-disjoint [`shard::ShardPlan`]s (hash / contiguous)
//!   that let the discovery stage run one worker per slice of the user
//!   space,
//! * [`snapshot`] — the versioned flat-buffer snapshot format (header,
//!   section table, checksum, zero-copy [`snapshot::WordSlice`] views)
//!   plus the catalog/vocabulary codecs; higher layers add their own
//!   sections on top,
//! * [`stream`] — bounded action streams for the stream-mining path, plus
//!   the [`stream::IngestBuffer`] that cuts them into epoch-stamped
//!   deltas for the live engine,
//! * [`wal`] — the write-ahead log for those deltas: independently
//!   checksummed frames over the snapshot codec, torn-tail detection, and
//!   the torn-write simulator the crash-recovery tests drive,
//! * [`zipf`] — seeded Zipf/power-law samplers used by the generators,
//! * [`synthetic`] — seeded generators standing in for the paper's
//!   BOOKCROSSING and DB-AUTHORS datasets (see DESIGN.md §1 for the
//!   substitution rationale).

pub mod csv;
pub mod dataset;
pub mod error;
pub mod etl;
pub mod ids;
pub mod schema;
pub mod shard;
pub mod snapshot;
pub mod stream;
pub mod synthetic;
pub mod wal;
pub mod zipf;

pub use dataset::{Action, ItemCatalog, UserData, UserDataBuilder, Vocabulary};
pub use error::DataError;
pub use ids::{AttrId, ItemId, TokenId, UserId, ValueId};
pub use schema::{AttributeDef, AttributeKind, Schema};
pub use shard::{ShardPlan, ShardStrategy};
pub use snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, U32Store, WordSlice};
pub use stream::{ActionDelta, ActionStream, IngestBuffer};
pub use wal::{WalError, WalFrame, WalScan, WalSync, WalTail, WalWriter};
