//! Columnar storage for user data and the token vocabulary.
//!
//! A [`UserData`] holds, per the paper's model:
//!
//! * one row per **user** with a [`ValueId`] per schema attribute
//!   (demographics, column-major),
//! * a table of **items** (books, movies, papers, …) with an optional
//!   category,
//! * a list of **actions** `[user, item, value]` with a CSR index for
//!   per-user iteration.
//!
//! The [`Vocabulary`] flattens `(attribute, value)` pairs into dense
//! [`TokenId`]s; each user's sorted token set is the "transaction" consumed
//! by the frequent-itemset miners in `vexus-mining`, whose closed patterns
//! become the user groups VEXUS explores.

use crate::error::DataError;
use crate::ids::{AttrId, ItemId, TokenId, UserId, ValueId};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One user action under the generic `[user, item, value]` schema.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Action {
    /// Acting user.
    pub user: UserId,
    /// Target item.
    pub item: ItemId,
    /// Action value (rating score, count, …).
    pub value: f32,
}

/// The immutable item side of a dataset: names, categories and category
/// labels. Split out of [`UserData`] and shared behind an [`Arc`] so the
/// N per-shard projections of [`UserData::project_users`] reference one
/// catalog instead of holding N copies of it.
///
/// Fields are `pub(crate)` so the sibling [`crate::snapshot`] codec can
/// encode/decode the flat tables directly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ItemCatalog {
    pub(crate) item_names: Vec<String>,
    /// Per item: index into `category_labels`, `u32::MAX` = none.
    pub(crate) item_categories: Vec<u32>,
    pub(crate) category_labels: Vec<String>,
}

impl ItemCatalog {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.item_names.len()
    }

    /// Whether the catalog has no items.
    pub fn is_empty(&self) -> bool {
        self.item_names.is_empty()
    }

    /// Display name of an item.
    pub fn name(&self, item: ItemId) -> &str {
        &self.item_names[item.index()]
    }

    /// Category label of an item, if any.
    pub fn category(&self, item: ItemId) -> Option<&str> {
        let idx = self.item_categories[item.index()];
        if idx == u32::MAX {
            None
        } else {
            Some(&self.category_labels[idx as usize])
        }
    }

    /// All category labels.
    pub fn category_labels(&self) -> &[String] {
        &self.category_labels
    }

    /// Heap bytes owned by the catalog (string contents + tables).
    pub fn heap_bytes(&self) -> usize {
        string_table_bytes(&self.item_names)
            + self.item_categories.capacity() * std::mem::size_of::<u32>()
            + string_table_bytes(&self.category_labels)
    }
}

/// Heap bytes of a string table: the `Vec<String>` spine plus each
/// string's own buffer.
fn string_table_bytes(strings: &[String]) -> usize {
    std::mem::size_of_val(strings) + strings.iter().map(|s| s.capacity()).sum::<usize>()
}

/// Immutable columnar user dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UserData {
    /// Shared schema: projections hold the same `Arc`, so N per-shard
    /// projections pay for one copy of the attribute dictionaries.
    schema: Arc<Schema>,
    user_names: Vec<String>,
    /// `columns[attr][user]` = value of `attr` for `user`.
    columns: Vec<Vec<ValueId>>,
    /// Shared item tables; projections hold the same `Arc`.
    items: Arc<ItemCatalog>,
    actions: Vec<Action>,
    /// CSR offsets into `actions_by_user`: actions of user `u` are
    /// `actions_by_user[user_offsets[u] .. user_offsets[u+1]]`.
    user_offsets: Vec<u32>,
    actions_by_user: Vec<u32>,
}

impl UserData {
    /// The attribute schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.user_names.len()
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Number of actions.
    pub fn n_actions(&self) -> usize {
        self.actions.len()
    }

    /// All actions, in insertion order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Display name of a user.
    pub fn user_name(&self, user: UserId) -> &str {
        &self.user_names[user.index()]
    }

    /// Display name of an item.
    pub fn item_name(&self, item: ItemId) -> &str {
        self.items.name(item)
    }

    /// Category label of an item, if any.
    pub fn item_category(&self, item: ItemId) -> Option<&str> {
        self.items.category(item)
    }

    /// All item-category labels.
    pub fn item_category_labels(&self) -> &[String] {
        self.items.category_labels()
    }

    /// The shared item catalog. Projections of this dataset return the
    /// same `Arc` (pointer-equal), so holding many projections costs one
    /// catalog.
    pub fn item_catalog(&self) -> &Arc<ItemCatalog> {
        &self.items
    }

    /// The shared schema handle (pointer-equal across projections).
    pub fn schema_arc(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Replace the item catalog, keeping everything else. Snapshot load
    /// uses this to install the decoded catalog so a loaded engine's item
    /// tables come from the snapshot, not from whatever dataset the caller
    /// happened to pair with it.
    pub fn with_item_catalog(mut self, items: Arc<ItemCatalog>) -> UserData {
        self.items = items;
        self
    }

    /// Value of `attr` for `user`.
    pub fn value(&self, user: UserId, attr: AttrId) -> ValueId {
        self.columns[attr.index()][user.index()]
    }

    /// The full column of `attr` (one entry per user).
    pub fn column(&self, attr: AttrId) -> &[ValueId] {
        &self.columns[attr.index()]
    }

    /// Iterate over a user's actions.
    pub fn user_actions(&self, user: UserId) -> impl Iterator<Item = &Action> + '_ {
        let lo = self.user_offsets[user.index()] as usize;
        let hi = self.user_offsets[user.index() + 1] as usize;
        self.actions_by_user[lo..hi]
            .iter()
            .map(move |&i| &self.actions[i as usize])
    }

    /// Number of actions by `user`.
    pub fn user_activity(&self, user: UserId) -> usize {
        (self.user_offsets[user.index() + 1] - self.user_offsets[user.index()]) as usize
    }

    /// Iterate over all user ids.
    pub fn users(&self) -> impl Iterator<Item = UserId> {
        (0..self.user_names.len() as u32).map(UserId::new)
    }

    /// Project the dataset onto a subset of users — e.g. one shard of a
    /// [`crate::shard::ShardPlan`]. `members` must be strictly ascending
    /// global user ids; they become the projection's dense local ids
    /// `0..members.len()` in the same order. The schema, items and category
    /// tables are carried over unchanged (so `ValueId`s — and hence any
    /// global `Vocabulary` — stay valid); actions are filtered to the kept
    /// users and the CSR index is rebuilt.
    ///
    /// The item catalog is *shared*, not cloned: the projection holds the
    /// same [`Arc<ItemCatalog>`], so N concurrent shard projections of a
    /// huge catalog cost one copy of the item tables.
    pub fn project_users(&self, members: &[u32]) -> UserData {
        debug_assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must be strictly ascending"
        );
        let mut local = vec![u32::MAX; self.n_users()];
        for (i, &g) in members.iter().enumerate() {
            local[g as usize] = i as u32;
        }
        let user_names = members
            .iter()
            .map(|&g| self.user_names[g as usize].clone())
            .collect();
        let columns = self
            .columns
            .iter()
            .map(|col| members.iter().map(|&g| col[g as usize]).collect())
            .collect();
        let actions: Vec<Action> = self
            .actions
            .iter()
            .filter(|a| local[a.user.index()] != u32::MAX)
            .map(|a| Action {
                user: UserId::new(local[a.user.index()]),
                ..*a
            })
            .collect();
        let (user_offsets, actions_by_user) = csr_index(members.len(), &actions);
        UserData {
            schema: Arc::clone(&self.schema),
            user_names,
            columns,
            items: Arc::clone(&self.items),
            actions,
            user_offsets,
            actions_by_user,
        }
    }

    /// Split off every action, leaving a demographics-only dataset with an
    /// empty (but valid) CSR action index. The returned actions are in
    /// insertion order, so replaying them through
    /// [`UserData::append_actions`] — in any batching — reconstructs this
    /// dataset exactly. This is the live-deployment splitter: demographics
    /// are known up front, actions arrive over an
    /// [`crate::stream::ActionStream`].
    pub fn split_actions(mut self) -> (UserData, Vec<Action>) {
        let actions = std::mem::take(&mut self.actions);
        let (user_offsets, actions_by_user) = csr_index(self.n_users(), &[]);
        self.user_offsets = user_offsets;
        self.actions_by_user = actions_by_user;
        (self, actions)
    }

    /// Append a batch of actions, patching the CSR per-user index in place
    /// instead of rebuilding it. Actions referencing unknown users or items
    /// are skipped (a live stream may race ahead of the demographic
    /// universe); the number of actions actually applied is returned.
    ///
    /// The result is indistinguishable from rebuilding: appending in any
    /// batching yields the same dataset as building with all actions at
    /// once (appended actions keep insertion order, so within each user
    /// they land after every existing action — exactly where the full
    /// CSR-index rebuild would put them). Pinned by tests below.
    pub fn append_actions(&mut self, batch: &[Action]) -> usize {
        let n_users = self.n_users();
        let n_items = self.n_items();
        let applied_from = self.actions.len();
        self.actions.extend(
            batch
                .iter()
                .filter(|a| a.user.index() < n_users && a.item.index() < n_items),
        );
        let applied = &self.actions[applied_from..];
        if applied.is_empty() {
            return 0;
        }

        // Per-user addition counts → new offsets (old + running additions).
        let mut added = vec![0u32; n_users];
        for a in applied {
            added[a.user.index()] += 1;
        }
        let old_offsets = std::mem::take(&mut self.user_offsets);
        let mut new_offsets = Vec::with_capacity(n_users + 1);
        let mut shift = 0u32;
        new_offsets.push(0);
        for u in 0..n_users {
            shift += added[u];
            new_offsets.push(old_offsets[u + 1] + shift);
        }

        // Shift existing per-user slices toward the back, last user first:
        // every destination is at or past its source, so the descending
        // walk never overwrites a slice it still has to move.
        self.actions_by_user
            .resize(self.actions_by_user.len() + applied.len(), 0);
        for u in (0..n_users).rev() {
            let src = old_offsets[u] as usize..old_offsets[u + 1] as usize;
            let dst = new_offsets[u] as usize;
            if dst != src.start && !src.is_empty() {
                self.actions_by_user.copy_within(src, dst);
            }
        }

        // Scatter the new action indices into each user's tail slot, in
        // insertion order (the same order the full rebuild preserves).
        let mut cursor: Vec<u32> = (0..n_users)
            .map(|u| new_offsets[u] + (old_offsets[u + 1] - old_offsets[u]))
            .collect();
        for (i, a) in applied.iter().enumerate() {
            let slot = cursor[a.user.index()];
            self.actions_by_user[slot as usize] = (applied_from + i) as u32;
            cursor[a.user.index()] += 1;
        }
        self.user_offsets = new_offsets;
        applied.len()
    }

    /// Human-readable `attr=value` description for a user's demographics.
    pub fn describe_user(&self, user: UserId) -> String {
        let mut parts = Vec::with_capacity(self.schema.len());
        for (attr, def) in self.schema.iter() {
            let v = self.value(user, attr);
            if !v.is_missing() {
                parts.push(format!("{}={}", def.name, self.schema.value_label(attr, v)));
            }
        }
        parts.join(", ")
    }
}

/// Build the CSR per-user action index: offsets plus action indices grouped
/// by user (insertion order preserved within a user).
fn csr_index(n_users: usize, actions: &[Action]) -> (Vec<u32>, Vec<u32>) {
    let mut counts = vec![0u32; n_users + 1];
    for a in actions {
        counts[a.user.index() + 1] += 1;
    }
    for i in 1..=n_users {
        counts[i] += counts[i - 1];
    }
    let user_offsets = counts.clone();
    let mut cursor = counts;
    let mut actions_by_user = vec![0u32; actions.len()];
    for (i, a) in actions.iter().enumerate() {
        let slot = cursor[a.user.index()];
        actions_by_user[slot as usize] = i as u32;
        cursor[a.user.index()] += 1;
    }
    (user_offsets, actions_by_user)
}

/// Builder for [`UserData`]. Users, items and actions may be added in any
/// interleaving; `build` finalizes the CSR action index.
#[derive(Debug, Default)]
pub struct UserDataBuilder {
    schema: Schema,
    user_names: Vec<String>,
    user_by_name: HashMap<String, UserId>,
    columns: Vec<Vec<ValueId>>,
    item_names: Vec<String>,
    item_by_name: HashMap<String, ItemId>,
    item_categories: Vec<u32>,
    item_category_labels: Vec<String>,
    item_category_ids: HashMap<String, u32>,
    actions: Vec<Action>,
}

impl UserDataBuilder {
    /// Start building over `schema`. The schema may still grow value
    /// dictionaries during ingestion.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.len()).map(|_| Vec::new()).collect();
        Self {
            schema,
            columns,
            ..Default::default()
        }
    }

    /// Access the evolving schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of users added so far.
    pub fn n_users(&self) -> usize {
        self.user_names.len()
    }

    /// Add (or look up) a user by name. New users start with all attributes
    /// missing.
    pub fn user(&mut self, name: &str) -> UserId {
        if let Some(&u) = self.user_by_name.get(name) {
            return u;
        }
        let u = UserId::new(self.user_names.len() as u32);
        self.user_by_name.insert(name.to_string(), u);
        self.user_names.push(name.to_string());
        for col in &mut self.columns {
            col.push(ValueId::MISSING);
        }
        u
    }

    /// Look up an existing user.
    pub fn find_user(&self, name: &str) -> Option<UserId> {
        self.user_by_name.get(name).copied()
    }

    /// Set a demographic from a raw string (interned/binned per the schema).
    pub fn set_demo(&mut self, user: UserId, attr: AttrId, raw: &str) -> Result<(), DataError> {
        let v = self.schema.intern_value(attr, raw)?;
        self.columns[attr.index()][user.index()] = v;
        Ok(())
    }

    /// Set a demographic to an already-interned value id.
    pub fn set_demo_id(&mut self, user: UserId, attr: AttrId, value: ValueId) {
        self.columns[attr.index()][user.index()] = value;
    }

    /// Set a numeric demographic (binned per the schema).
    pub fn set_demo_numeric(&mut self, user: UserId, attr: AttrId, x: f64) {
        let v = self.schema.bin_numeric(attr, x);
        self.columns[attr.index()][user.index()] = v;
    }

    /// Add (or look up) an item; `category` is recorded on first sight.
    pub fn item(&mut self, name: &str, category: Option<&str>) -> ItemId {
        if let Some(&i) = self.item_by_name.get(name) {
            return i;
        }
        let i = ItemId::new(self.item_names.len() as u32);
        self.item_by_name.insert(name.to_string(), i);
        self.item_names.push(name.to_string());
        let cat = match category {
            None => u32::MAX,
            Some(c) => match self.item_category_ids.get(c) {
                Some(&id) => id,
                None => {
                    let id = self.item_category_labels.len() as u32;
                    self.item_category_ids.insert(c.to_string(), id);
                    self.item_category_labels.push(c.to_string());
                    id
                }
            },
        };
        self.item_categories.push(cat);
        i
    }

    /// Record one `[user, item, value]` action.
    pub fn action(&mut self, user: UserId, item: ItemId, value: f32) {
        self.actions.push(Action { user, item, value });
    }

    /// Derive a new attribute whose per-user value is computed by `f` from
    /// the user's actions (e.g. "favorite genre", "activity level"). The
    /// attribute must already exist in the schema; `f` returns a raw string
    /// to intern (empty string = missing).
    pub fn derive_attribute<F>(&mut self, attr: AttrId, mut f: F) -> Result<(), DataError>
    where
        F: FnMut(UserId, &[Action]) -> String,
    {
        // Group actions per user (transiently) so `f` sees a slice.
        let mut per_user: Vec<Vec<Action>> = vec![Vec::new(); self.user_names.len()];
        for a in &self.actions {
            per_user[a.user.index()].push(*a);
        }
        for (u, acts) in per_user.iter().enumerate() {
            let user = UserId::new(u as u32);
            let raw = f(user, acts);
            let v = self.schema.intern_value(attr, &raw)?;
            self.columns[attr.index()][user.index()] = v;
        }
        Ok(())
    }

    /// Finalize into an immutable [`UserData`].
    pub fn build(self) -> UserData {
        let (user_offsets, actions_by_user) = csr_index(self.user_names.len(), &self.actions);
        UserData {
            schema: Arc::new(self.schema),
            user_names: self.user_names,
            columns: self.columns,
            items: Arc::new(ItemCatalog {
                item_names: self.item_names,
                item_categories: self.item_categories,
                category_labels: self.item_category_labels,
            }),
            actions: self.actions,
            user_offsets,
            actions_by_user,
        }
    }
}

/// Dense vocabulary of `(attribute, value)` tokens.
///
/// The paper's inverted-index and mining layers treat every demographic
/// value a user carries as an "item" in a transaction; the vocabulary is the
/// bijection between those pairs and dense token ids.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Vocabulary {
    pub(crate) token_of: HashMap<(AttrId, ValueId), TokenId>,
    pub(crate) pairs: Vec<(AttrId, ValueId)>,
}

impl Vocabulary {
    /// Build the vocabulary over every `(attr, value)` pair that actually
    /// occurs in `data` (missing values excluded). Token ids are assigned in
    /// `(attr, value)` order, so they are deterministic for a given dataset.
    pub fn build(data: &UserData) -> Self {
        let mut pairs: Vec<(AttrId, ValueId)> = Vec::new();
        for (attr, _) in data.schema().iter() {
            let mut seen = vec![false; data.schema().cardinality(attr)];
            for &v in data.column(attr) {
                if !v.is_missing() {
                    seen[v.index()] = true;
                }
            }
            for (i, s) in seen.iter().enumerate() {
                if *s {
                    pairs.push((attr, ValueId::new(i as u32)));
                }
            }
        }
        let token_of = pairs
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, TokenId::new(i as u32)))
            .collect();
        Self { token_of, pairs }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Token for an `(attr, value)` pair, if it occurs in the data.
    pub fn token(&self, attr: AttrId, value: ValueId) -> Option<TokenId> {
        self.token_of.get(&(attr, value)).copied()
    }

    /// The `(attr, value)` pair behind a token.
    pub fn pair(&self, token: TokenId) -> (AttrId, ValueId) {
        self.pairs[token.index()]
    }

    /// Human-readable `attr=value` label of a token.
    pub fn label(&self, token: TokenId, schema: &Schema) -> String {
        let (a, v) = self.pair(token);
        format!("{}={}", schema.attr_name(a), schema.value_label(a, v))
    }

    /// The sorted token set ("transaction") of one user.
    pub fn user_tokens(&self, data: &UserData, user: UserId) -> Vec<TokenId> {
        let mut out = Vec::with_capacity(data.schema().len());
        for (attr, _) in data.schema().iter() {
            let v = data.value(user, attr);
            if !v.is_missing() {
                if let Some(t) = self.token(attr, v) {
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// All users' transactions, indexable by `UserId`.
    pub fn all_transactions(&self, data: &UserData) -> Vec<Vec<TokenId>> {
        data.users().map(|u| self.user_tokens(data, u)).collect()
    }

    /// The transactions of a subset of users, in `members` order — the
    /// projection-local view a per-shard re-closure needs, without paying
    /// for a full [`UserData::project_users`] copy (columns, actions and
    /// the CSR index stay untouched). `members` are global user ids;
    /// tokens stay in this (global) vocabulary, so the result can back a
    /// shard-local transaction database that shares the global token
    /// universe.
    pub fn member_transactions(&self, data: &UserData, members: &[u32]) -> Vec<Vec<TokenId>> {
        members
            .iter()
            .map(|&u| self.user_tokens(data, UserId::new(u)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> UserData {
        let mut s = Schema::new();
        let gender = s.add_categorical("gender");
        let age = s.add_numeric_labeled("age", &[30.0], &["young", "old"]);
        let mut b = UserDataBuilder::new(s);
        let mary = b.user("mary");
        let bob = b.user("bob");
        b.set_demo(mary, gender, "female").unwrap();
        b.set_demo(bob, gender, "male").unwrap();
        b.set_demo_numeric(mary, age, 25.0);
        b.set_demo_numeric(bob, age, 45.0);
        let book = b.item("Mr Miracle", Some("fiction"));
        let other = b.item("Dune", Some("scifi"));
        b.action(mary, book, 4.0);
        b.action(bob, book, 2.0);
        b.action(mary, other, 5.0);
        b.build()
    }

    #[test]
    fn builder_round_trips_demographics() {
        let d = small();
        let gender = d.schema().attr("gender").unwrap();
        let mary = UserId::new(0);
        assert_eq!(
            d.schema().value_label(gender, d.value(mary, gender)),
            "female"
        );
        assert_eq!(d.describe_user(mary), "gender=female, age=young");
    }

    #[test]
    fn csr_action_index_is_correct() {
        let d = small();
        let mary = UserId::new(0);
        let bob = UserId::new(1);
        let mary_actions: Vec<_> = d.user_actions(mary).collect();
        assert_eq!(mary_actions.len(), 2);
        assert!(mary_actions.iter().all(|a| a.user == mary));
        assert_eq!(d.user_activity(bob), 1);
        assert_eq!(d.n_actions(), 3);
    }

    #[test]
    fn items_and_categories() {
        let d = small();
        assert_eq!(d.n_items(), 2);
        assert_eq!(d.item_name(ItemId::new(0)), "Mr Miracle");
        assert_eq!(d.item_category(ItemId::new(0)), Some("fiction"));
        assert_eq!(d.item_category_labels(), &["fiction", "scifi"]);
    }

    #[test]
    fn duplicate_user_and_item_names_dedupe() {
        let mut b = UserDataBuilder::new(Schema::new());
        let a = b.user("x");
        let a2 = b.user("x");
        assert_eq!(a, a2);
        let i = b.item("y", None);
        let i2 = b.item("y", Some("ignored-on-second-sight"));
        assert_eq!(i, i2);
        let d = b.build();
        assert_eq!(d.n_users(), 1);
        assert_eq!(d.item_category(i), None);
    }

    #[test]
    fn vocabulary_is_bijective_and_deterministic() {
        let d = small();
        let v = Vocabulary::build(&d);
        // gender has 2 values, age has 2 used bins.
        assert_eq!(v.len(), 4);
        for t in 0..v.len() as u32 {
            let tok = TokenId::new(t);
            let (a, val) = v.pair(tok);
            assert_eq!(v.token(a, val), Some(tok));
        }
        let v2 = Vocabulary::build(&d);
        assert_eq!(v.len(), v2.len());
        for t in 0..v.len() as u32 {
            assert_eq!(v.pair(TokenId::new(t)), v2.pair(TokenId::new(t)));
        }
    }

    #[test]
    fn user_tokens_are_sorted_and_complete() {
        let d = small();
        let v = Vocabulary::build(&d);
        for u in d.users() {
            let toks = v.user_tokens(&d, u);
            assert_eq!(toks.len(), 2); // gender + age, none missing
            assert!(toks.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn missing_values_are_skipped_in_tokens() {
        let mut s = Schema::new();
        let g = s.add_categorical("gender");
        let mut b = UserDataBuilder::new(s);
        let u = b.user("anon");
        let known = b.user("known");
        b.set_demo(known, g, "female").unwrap();
        let d = b.build();
        let v = Vocabulary::build(&d);
        assert!(v.user_tokens(&d, u).is_empty());
        assert_eq!(v.user_tokens(&d, known).len(), 1);
    }

    #[test]
    fn derive_attribute_from_actions() {
        let mut s = Schema::new();
        let _g = s.add_categorical("gender");
        let act = s.add_categorical("activity");
        let mut b = UserDataBuilder::new(s);
        let u1 = b.user("reader");
        let u0 = b.user("lurker");
        let i = b.item("book", None);
        b.action(u1, i, 5.0);
        b.action(u1, i, 4.0);
        b.derive_attribute(act, |_, acts| {
            if acts.len() >= 2 {
                "active".into()
            } else {
                "inactive".into()
            }
        })
        .unwrap();
        let d = b.build();
        assert_eq!(d.schema().value_label(act, d.value(u1, act)), "active");
        assert_eq!(d.schema().value_label(act, d.value(u0, act)), "inactive");
    }

    #[test]
    fn member_transactions_project_without_copying_the_dataset() {
        let d = small();
        let vocab = Vocabulary::build(&d);
        let all = vocab.all_transactions(&d);
        // A member subset yields exactly those users' transactions, in
        // member order, with tokens still in the global vocabulary.
        let subset = vocab.member_transactions(&d, &[1]);
        assert_eq!(subset, vec![all[1].clone()]);
        let both = vocab.member_transactions(&d, &[0, 1]);
        assert_eq!(both, all);
        assert!(vocab.member_transactions(&d, &[]).is_empty());
        // Equivalent to tokenizing a full projection, without the copy.
        let projected = d.project_users(&[1]);
        assert_eq!(subset, vocab.all_transactions(&projected));
    }

    #[test]
    fn describe_user_skips_missing_values() {
        let mut s = Schema::new();
        let g = s.add_categorical("gender");
        let _c = s.add_categorical("city");
        let mut b = UserDataBuilder::new(s);
        let u = b.user("half-known");
        b.set_demo(u, g, "female").unwrap();
        let d = b.build();
        assert_eq!(d.describe_user(u), "gender=female");
    }

    #[test]
    fn user_with_no_actions_iterates_empty() {
        let mut b = UserDataBuilder::new(Schema::new());
        let idle = b.user("idle");
        let busy = b.user("busy");
        let i = b.item("x", None);
        b.action(busy, i, 1.0);
        let d = b.build();
        assert_eq!(d.user_actions(idle).count(), 0);
        assert_eq!(d.user_activity(idle), 0);
        assert_eq!(d.user_actions(busy).count(), 1);
    }

    #[test]
    fn project_users_keeps_demographics_actions_and_vocab() {
        let d = small();
        // Keep only mary (global id 0).
        let p = d.project_users(&[0]);
        assert_eq!(p.n_users(), 1);
        assert_eq!(p.user_name(UserId::new(0)), "mary");
        assert_eq!(
            p.describe_user(UserId::new(0)),
            d.describe_user(UserId::new(0))
        );
        // Items are shared; only mary's two actions survive, re-indexed.
        assert_eq!(p.n_items(), d.n_items());
        assert_eq!(p.n_actions(), 2);
        assert!(p
            .user_actions(UserId::new(0))
            .all(|a| a.user == UserId::new(0)));
        // The *global* vocabulary still tokenizes projected users: value
        // ids are shared because the schema is shared.
        let vocab = Vocabulary::build(&d);
        assert_eq!(
            vocab.user_tokens(&p, UserId::new(0)),
            vocab.user_tokens(&d, UserId::new(0))
        );
        // Projecting everything is an identity on the visible surface.
        let all = d.project_users(&[0, 1]);
        assert_eq!(all.n_users(), d.n_users());
        assert_eq!(all.n_actions(), d.n_actions());
        // Empty projection is valid.
        let none = d.project_users(&[]);
        assert_eq!(none.n_users(), 0);
        assert_eq!(none.n_actions(), 0);
    }

    #[test]
    fn projections_share_one_item_catalog() {
        let d = small();
        let a = d.project_users(&[0]);
        let b = d.project_users(&[1]);
        // One catalog, three owners — no per-projection clones.
        assert!(Arc::ptr_eq(d.item_catalog(), a.item_catalog()));
        assert!(Arc::ptr_eq(a.item_catalog(), b.item_catalog()));
        // Nested projections still share it.
        let aa = a.project_users(&[0]);
        assert!(Arc::ptr_eq(d.item_catalog(), aa.item_catalog()));
        // The shared catalog serves the same answers as the delegating API.
        assert_eq!(a.item_catalog().len(), a.n_items());
        assert_eq!(a.item_catalog().name(ItemId::new(0)), "Mr Miracle");
        assert_eq!(a.item_catalog().category(ItemId::new(1)), Some("scifi"));
    }

    #[test]
    fn projections_share_one_schema() {
        let d = small();
        let a = d.project_users(&[0]);
        let b = a.project_users(&[0]);
        // The schema rides along by refcount, not by clone — the carried
        // projection seam, partially closed: schema + catalog are shared,
        // user columns/actions are still copied (see ROADMAP).
        assert!(Arc::ptr_eq(d.schema_arc(), a.schema_arc()));
        assert!(Arc::ptr_eq(d.schema_arc(), b.schema_arc()));
        assert_eq!(a.schema().attr("gender"), d.schema().attr("gender"));
    }

    #[test]
    fn catalog_heap_bytes_counts_strings_and_tables() {
        let d = small();
        let cat = d.item_catalog();
        let floor = cat
            .item_names
            .iter()
            .chain(cat.category_labels.iter())
            .map(|s| s.len())
            .sum::<usize>();
        assert!(cat.heap_bytes() >= floor + 2 * std::mem::size_of::<u32>());
        assert_eq!(ItemCatalog::default().heap_bytes(), 0);
    }

    #[test]
    fn with_item_catalog_swaps_only_the_catalog() {
        let d = small();
        let replacement = Arc::new(d.item_catalog().as_ref().clone());
        let swapped = d.clone().with_item_catalog(Arc::clone(&replacement));
        assert!(Arc::ptr_eq(swapped.item_catalog(), &replacement));
        assert!(!Arc::ptr_eq(swapped.item_catalog(), d.item_catalog()));
        assert_eq!(swapped.n_users(), d.n_users());
        assert_eq!(swapped.n_actions(), d.n_actions());
        assert_eq!(swapped.item_name(ItemId::new(0)), "Mr Miracle");
    }

    /// The in-place CSR patch must be indistinguishable from a full
    /// rebuild over the concatenated action list.
    fn assert_csr_matches_rebuild(d: &UserData) {
        let (offsets, by_user) = csr_index(d.n_users(), &d.actions);
        assert_eq!(d.user_offsets, offsets, "offsets != full rebuild");
        assert_eq!(d.actions_by_user, by_user, "index != full rebuild");
    }

    #[test]
    fn split_then_replay_reconstructs_the_dataset() {
        let d = small();
        let full = d.clone();
        let (mut bare, actions) = d.split_actions();
        assert_eq!(bare.n_actions(), 0);
        assert_eq!(bare.n_users(), full.n_users());
        assert!(bare.users().all(|u| bare.user_activity(u) == 0));
        assert_eq!(actions.len(), full.n_actions());
        // Replay in two uneven batches.
        assert_eq!(bare.append_actions(&actions[..1]), 1);
        assert_eq!(bare.append_actions(&actions[1..]), actions.len() - 1);
        assert_eq!(bare.actions(), full.actions());
        assert_eq!(bare.user_offsets, full.user_offsets);
        assert_eq!(bare.actions_by_user, full.actions_by_user);
    }

    #[test]
    fn append_actions_patches_the_csr_in_place() {
        let mut d = small();
        let dune = ItemId::new(1);
        let batch = [
            Action {
                user: UserId::new(1),
                item: dune,
                value: 3.0,
            },
            Action {
                user: UserId::new(0),
                item: dune,
                value: 1.0,
            },
            Action {
                user: UserId::new(1),
                item: ItemId::new(0),
                value: 5.0,
            },
        ];
        assert_eq!(d.append_actions(&batch), 3);
        assert_eq!(d.n_actions(), 6);
        assert_csr_matches_rebuild(&d);
        // Per-user order: old actions first, then the batch in order.
        let bob: Vec<f32> = d.user_actions(UserId::new(1)).map(|a| a.value).collect();
        assert_eq!(bob, vec![2.0, 3.0, 5.0]);
        // Appending nothing is a no-op.
        assert_eq!(d.append_actions(&[]), 0);
        assert_csr_matches_rebuild(&d);
    }

    #[test]
    fn append_actions_skips_unknown_users_and_items() {
        let mut d = small();
        let batch = [
            Action {
                user: UserId::new(99),
                item: ItemId::new(0),
                value: 1.0,
            },
            Action {
                user: UserId::new(0),
                item: ItemId::new(99),
                value: 1.0,
            },
            Action {
                user: UserId::new(0),
                item: ItemId::new(0),
                value: 2.5,
            },
        ];
        assert_eq!(d.append_actions(&batch), 1);
        assert_eq!(d.n_actions(), 4);
        assert_csr_matches_rebuild(&d);
    }

    #[test]
    fn append_in_any_batching_equals_building_at_once() {
        // Seeded pseudo-random action tape over a few users/items, applied
        // in several batch splits; every split must equal the full build.
        let mut s = Schema::new();
        let g = s.add_categorical("gender");
        let mut b = UserDataBuilder::new(s);
        for i in 0..7 {
            let u = b.user(&format!("u{i}"));
            b.set_demo(u, g, if i % 2 == 0 { "female" } else { "male" })
                .unwrap();
        }
        for i in 0..3 {
            b.item(&format!("i{i}"), None);
        }
        let base = b.build();
        let mut x = 0x9e37u32;
        let tape: Vec<Action> = (0..64)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                Action {
                    user: UserId::new((x >> 8) % 7),
                    item: ItemId::new((x >> 16) % 3),
                    value: (x % 5) as f32,
                }
            })
            .collect();
        let mut at_once = base.clone();
        at_once.append_actions(&tape);
        for split in [1usize, 3, 17, 64] {
            let mut inc = base.clone();
            for chunk in tape.chunks(split) {
                inc.append_actions(chunk);
            }
            assert_eq!(inc.actions(), at_once.actions(), "split={split}");
            assert_eq!(inc.user_offsets, at_once.user_offsets, "split={split}");
            assert_eq!(
                inc.actions_by_user, at_once.actions_by_user,
                "split={split}"
            );
            assert_csr_matches_rebuild(&inc);
        }
    }

    #[test]
    fn empty_dataset_builds() {
        let d = UserDataBuilder::new(Schema::new()).build();
        assert_eq!(d.n_users(), 0);
        assert_eq!(d.n_actions(), 0);
        assert!(Vocabulary::build(&d).is_empty());
    }
}
