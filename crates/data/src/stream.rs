//! Action streams: the second intake path of Fig. 1 ("as a data stream").
//!
//! A stream delivers [`Action`]s in batches. Three sources are provided:
//!
//! * [`ReplayStream`] — replays a finished dataset's action log (used by
//!   the stream-mining benchmarks so batch content is reproducible),
//! * [`ChannelStream`] — a bounded crossbeam channel for live producers
//!   running on other threads,
//! * [`codec`] — a length-free fixed-width binary frame codec
//!   (`user:u32 item:u32 value:f32`, little-endian) for wire ingestion.
//!
//! [`IngestBuffer`] sits between any stream and the live engine: it
//! drains batches into a pending buffer and cuts epoch-stamped
//! [`ActionDelta`]s on demand, so refresh cadence is decoupled from
//! arrival cadence.

use crate::dataset::{Action, UserData};
use crate::ids::{ItemId, UserId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};

/// A pull-based source of action batches.
pub trait ActionStream {
    /// Pull up to `max` actions into `out`. Returns the number delivered;
    /// `0` means the stream is exhausted (for finite sources) or currently
    /// dry (for live sources — check [`ActionStream::is_live`]).
    fn next_batch(&mut self, max: usize, out: &mut Vec<Action>) -> usize;

    /// Whether the source may still deliver actions in the future even
    /// after returning an empty batch.
    fn is_live(&self) -> bool {
        false
    }
}

/// Replays a dataset's action log in insertion order.
#[derive(Debug, Clone)]
pub struct ReplayStream<'a> {
    actions: &'a [Action],
    pos: usize,
}

impl<'a> ReplayStream<'a> {
    /// Stream over all actions of `data`.
    pub fn new(data: &'a UserData) -> Self {
        Self {
            actions: data.actions(),
            pos: 0,
        }
    }

    /// Stream over an arbitrary action slice — e.g. one recovered WAL
    /// frame's delta, replayed through the normal ingest path.
    pub fn from_actions(actions: &'a [Action]) -> Self {
        Self { actions, pos: 0 }
    }

    /// Remaining undelivered actions.
    pub fn remaining(&self) -> usize {
        self.actions.len() - self.pos
    }
}

impl ActionStream for ReplayStream<'_> {
    fn next_batch(&mut self, max: usize, out: &mut Vec<Action>) -> usize {
        let n = max.min(self.remaining());
        out.extend_from_slice(&self.actions[self.pos..self.pos + n]);
        self.pos += n;
        n
    }
}

/// Live stream backed by a bounded channel. Producers hold a
/// [`StreamProducer`]; dropping every producer ends the stream.
pub struct ChannelStream {
    rx: Receiver<Action>,
    closed: bool,
}

/// Sending half of a [`ChannelStream`].
#[derive(Clone)]
pub struct StreamProducer {
    tx: Sender<Action>,
}

impl StreamProducer {
    /// Send one action, blocking if the channel is full.
    ///
    /// Returns `false` if the consumer is gone.
    pub fn send(&self, action: Action) -> bool {
        self.tx.send(action).is_ok()
    }
}

impl ChannelStream {
    /// Create a stream with the given channel capacity.
    pub fn with_capacity(capacity: usize) -> (StreamProducer, Self) {
        let (tx, rx) = bounded(capacity);
        (StreamProducer { tx }, Self { rx, closed: false })
    }
}

impl ActionStream for ChannelStream {
    fn next_batch(&mut self, max: usize, out: &mut Vec<Action>) -> usize {
        let mut n = 0;
        while n < max {
            match self.rx.try_recv() {
                Ok(a) => {
                    out.push(a);
                    n += 1;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.closed = true;
                    break;
                }
            }
        }
        n
    }

    fn is_live(&self) -> bool {
        !self.closed
    }
}

/// One epoch's worth of ingested actions, cut from an [`IngestBuffer`].
///
/// The epoch stamp is the buffer's cut counter, starting at 0. The engine
/// layer publishes one engine version per applied non-empty delta on top
/// of the bootstrap engine (epoch 0), so the first published engine
/// reflecting a delta stamped `n` is engine epoch `n + 1`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActionDelta {
    /// The cut ordinal this delta was stamped with.
    pub epoch: u64,
    /// The actions, in arrival order.
    pub actions: Vec<Action>,
}

impl ActionDelta {
    /// Number of actions in the delta.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the delta carries no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// Accumulates actions drained from any [`ActionStream`] and cuts them
/// into epoch-stamped [`ActionDelta`]s.
///
/// The buffer is the seam between arrival cadence (producers push whenever
/// they like) and refresh cadence (the engine applies a delta when it
/// decides to): [`IngestBuffer::pull`] drains a stream without applying
/// anything, [`IngestBuffer::cut`] hands the pending actions over as one
/// stamped delta.
#[derive(Debug, Default)]
pub struct IngestBuffer {
    pending: Vec<Action>,
    next_epoch: u64,
    drained: u64,
}

impl IngestBuffer {
    /// Empty buffer starting at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer whose next cut is stamped `next_epoch` — how recovery
    /// resumes the epoch sequence after replaying a checkpoint and its
    /// surviving WAL frames.
    pub fn resume(next_epoch: u64) -> Self {
        Self {
            next_epoch,
            ..Self::default()
        }
    }

    /// Drain up to `max` actions from `stream` into the pending buffer,
    /// looping over batches until the stream runs dry (or `max` is hit).
    /// Returns the number drained by this call.
    pub fn pull(&mut self, stream: &mut dyn ActionStream, max: usize) -> usize {
        let mut drained = 0;
        while drained < max {
            let got = stream.next_batch(max - drained, &mut self.pending);
            if got == 0 {
                break;
            }
            drained += got;
        }
        self.drained += drained as u64;
        drained
    }

    /// Actions buffered but not yet cut into a delta.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The buffered actions themselves, in arrival order — what the next
    /// cut will carry. The durable engine logs exactly this slice (stamped
    /// [`IngestBuffer::next_epoch`]) to the WAL *before* cutting, so a
    /// crash between the append and the apply replays the same delta.
    pub fn pending_actions(&self) -> &[Action] {
        &self.pending
    }

    /// Total actions drained over the buffer's lifetime.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// The epoch stamp the next non-empty cut will carry.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Cut the pending actions into one stamped delta. An empty cut does
    /// not consume an epoch (the engine publishes nothing for it).
    pub fn cut(&mut self) -> ActionDelta {
        let actions = std::mem::take(&mut self.pending);
        let epoch = self.next_epoch;
        if !actions.is_empty() {
            self.next_epoch += 1;
        }
        ActionDelta { epoch, actions }
    }

    /// Drive a fallible drain step (typically a live-engine refresh that
    /// applies this buffer) with a capped retry budget: `step` runs until
    /// it succeeds, fails non-transiently, or has failed `attempts` times.
    ///
    /// The live engine's fail-point contract makes injected ingest faults
    /// *pre-mutation* — an error leaves the buffer and the engine state
    /// untouched — which is exactly what makes blind re-invocation safe.
    /// `transient` classifies errors: `true` retries, `false` returns the
    /// error immediately (a halted engine, say, never heals by retrying).
    /// The last transient error is returned once attempts are exhausted.
    ///
    /// # Panics
    /// Panics if `attempts` is zero (a drain that may never run is a
    /// caller bug, not an error condition).
    pub fn drain_with_retry<T, E>(
        attempts: usize,
        transient: impl Fn(&E) -> bool,
        mut step: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        assert!(attempts > 0, "drain_with_retry needs at least one attempt");
        let mut last = None;
        for _ in 0..attempts {
            match step() {
                Ok(v) => return Ok(v),
                Err(e) if transient(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("attempts > 0 so at least one step ran"))
    }
}

/// Fixed-width binary frame codec for actions on the wire.
pub mod codec {
    use super::*;

    /// Bytes per encoded action.
    pub const FRAME_LEN: usize = 12;

    /// Encode a slice of actions into a fresh buffer.
    pub fn encode(actions: &[Action]) -> Bytes {
        let mut buf = BytesMut::with_capacity(actions.len() * FRAME_LEN);
        for a in actions {
            buf.put_u32_le(a.user.raw());
            buf.put_u32_le(a.item.raw());
            buf.put_f32_le(a.value);
        }
        buf.freeze()
    }

    /// Decode as many whole frames as `buf` contains, consuming them.
    /// Trailing partial frames are left in the buffer for the next call.
    pub fn decode(buf: &mut BytesMut, out: &mut Vec<Action>) -> usize {
        let mut n = 0;
        while buf.len() >= FRAME_LEN {
            let user = UserId::new(buf.get_u32_le());
            let item = ItemId::new(buf.get_u32_le());
            let value = buf.get_f32_le();
            out.push(Action { user, item, value });
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::UserDataBuilder;
    use crate::schema::Schema;

    fn sample_data(n_actions: usize) -> UserData {
        let mut b = UserDataBuilder::new(Schema::new());
        let u = b.user("u");
        let i = b.item("i", None);
        for k in 0..n_actions {
            b.action(u, i, k as f32);
        }
        b.build()
    }

    #[test]
    fn replay_delivers_everything_in_order() {
        let d = sample_data(10);
        let mut s = ReplayStream::new(&d);
        let mut out = Vec::new();
        assert_eq!(s.next_batch(4, &mut out), 4);
        assert_eq!(s.next_batch(4, &mut out), 4);
        assert_eq!(s.next_batch(4, &mut out), 2);
        assert_eq!(s.next_batch(4, &mut out), 0);
        assert!(!s.is_live());
        assert_eq!(out.len(), 10);
        for (k, a) in out.iter().enumerate() {
            assert_eq!(a.value, k as f32);
        }
    }

    #[test]
    fn channel_stream_live_then_closed() {
        let (tx, mut stream) = ChannelStream::with_capacity(8);
        let u = UserId::new(0);
        let i = ItemId::new(0);
        assert!(tx.send(Action {
            user: u,
            item: i,
            value: 1.0
        }));
        assert!(tx.send(Action {
            user: u,
            item: i,
            value: 2.0
        }));
        let mut out = Vec::new();
        assert_eq!(stream.next_batch(10, &mut out), 2);
        assert!(stream.is_live());
        drop(tx);
        assert_eq!(stream.next_batch(10, &mut out), 0);
        assert!(!stream.is_live());
    }

    #[test]
    fn channel_stream_across_threads() {
        let (tx, mut stream) = ChannelStream::with_capacity(4);
        let handle = std::thread::spawn(move || {
            for k in 0..100 {
                tx.send(Action {
                    user: UserId::new(k),
                    item: ItemId::new(0),
                    value: k as f32,
                });
            }
        });
        let mut out = Vec::new();
        while stream.is_live() || !matches!(stream.next_batch(16, &mut out), 0) {
            stream.next_batch(16, &mut out);
            if out.len() >= 100 {
                break;
            }
            std::thread::yield_now();
        }
        handle.join().unwrap();
        stream.next_batch(usize::MAX, &mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn codec_round_trips() {
        let actions = vec![
            Action {
                user: UserId::new(1),
                item: ItemId::new(2),
                value: 3.5,
            },
            Action {
                user: UserId::new(u32::MAX),
                item: ItemId::new(0),
                value: -1.0,
            },
        ];
        let encoded = codec::encode(&actions);
        assert_eq!(encoded.len(), 2 * codec::FRAME_LEN);
        let mut buf = BytesMut::from(&encoded[..]);
        let mut out = Vec::new();
        assert_eq!(codec::decode(&mut buf, &mut out), 2);
        assert_eq!(out, actions);
        assert!(buf.is_empty());
    }

    #[test]
    fn codec_keeps_partial_frames() {
        let actions = vec![Action {
            user: UserId::new(7),
            item: ItemId::new(8),
            value: 9.0,
        }];
        let encoded = codec::encode(&actions);
        let mut buf = BytesMut::new();
        let mut out = Vec::new();
        // Feed all but the last byte: nothing decodes.
        buf.extend_from_slice(&encoded[..codec::FRAME_LEN - 1]);
        assert_eq!(codec::decode(&mut buf, &mut out), 0);
        assert_eq!(buf.len(), codec::FRAME_LEN - 1);
        // Feed the final byte: one frame decodes.
        buf.extend_from_slice(&encoded[codec::FRAME_LEN - 1..]);
        assert_eq!(codec::decode(&mut buf, &mut out), 1);
        assert_eq!(out[0], actions[0]);
    }

    /// The `is_live` contract: a dry live stream (producers still holding
    /// the sender) answers `0` but stays live; only disconnection makes an
    /// empty batch mean "exhausted".
    #[test]
    fn channel_stream_dry_vs_exhausted() {
        let (tx, mut stream) = ChannelStream::with_capacity(4);
        let mut out = Vec::new();
        // Dry, not exhausted: nothing sent yet, producer alive.
        assert_eq!(stream.next_batch(10, &mut out), 0);
        assert!(stream.is_live(), "dry stream with a producer is live");
        // Still live after delivering and draining.
        assert!(tx.send(Action {
            user: UserId::new(0),
            item: ItemId::new(0),
            value: 1.0
        }));
        assert_eq!(stream.next_batch(10, &mut out), 1);
        assert_eq!(stream.next_batch(10, &mut out), 0);
        assert!(stream.is_live(), "drained stream with a producer is live");
        // Exhausted: every producer gone, empty batch flips is_live.
        drop(tx);
        assert_eq!(stream.next_batch(10, &mut out), 0);
        assert!(!stream.is_live(), "disconnected stream is exhausted");
    }

    #[test]
    fn ingest_buffer_pulls_and_cuts_epoch_stamped_deltas() {
        let d = sample_data(10);
        let mut stream = ReplayStream::new(&d);
        let mut buf = IngestBuffer::new();
        // Pull caps at `max` even when the stream has more.
        assert_eq!(buf.pull(&mut stream, 4), 4);
        assert_eq!(buf.pending(), 4);
        let first = buf.cut();
        assert_eq!((first.epoch, first.len()), (0, 4));
        assert_eq!(buf.pending(), 0);
        // An empty cut consumes no epoch.
        let empty = buf.cut();
        assert!(empty.is_empty());
        assert_eq!(buf.next_epoch(), 1);
        // Pull loops across multiple underlying batches up to max.
        assert_eq!(buf.pull(&mut stream, usize::MAX), 6);
        let second = buf.cut();
        assert_eq!((second.epoch, second.len()), (1, 6));
        assert_eq!(buf.drained(), 10);
        // Delta contents preserve arrival order.
        let all: Vec<f32> = first
            .actions
            .iter()
            .chain(second.actions.iter())
            .map(|a| a.value)
            .collect();
        assert_eq!(all, (0..10).map(|k| k as f32).collect::<Vec<_>>());
    }

    #[test]
    fn resume_continues_the_epoch_sequence() {
        let d = sample_data(4);
        let mut stream = ReplayStream::from_actions(&d.actions()[1..]);
        assert_eq!(stream.remaining(), 3);
        let mut buf = IngestBuffer::resume(7);
        assert_eq!(buf.next_epoch(), 7);
        buf.pull(&mut stream, usize::MAX);
        assert_eq!(buf.pending_actions().len(), 3);
        assert_eq!(buf.pending_actions()[0].value, 1.0);
        let delta = buf.cut();
        assert_eq!((delta.epoch, delta.len()), (7, 3));
        assert_eq!(buf.next_epoch(), 8);
    }

    #[test]
    fn drain_with_retry_caps_attempts_and_passes_hard_errors() {
        // Transient failures are retried up to the cap…
        let mut calls = 0;
        let out: Result<u32, &str> = IngestBuffer::drain_with_retry(
            3,
            |e| *e == "transient",
            || {
                calls += 1;
                if calls < 3 {
                    Err("transient")
                } else {
                    Ok(99)
                }
            },
        );
        assert_eq!((out, calls), (Ok(99), 3));
        // …exhaustion returns the last transient error…
        let mut calls = 0;
        let out: Result<u32, &str> = IngestBuffer::drain_with_retry(
            2,
            |e| *e == "transient",
            || {
                calls += 1;
                Err("transient")
            },
        );
        assert_eq!((out, calls), (Err("transient"), 2));
        // …and a non-transient error short-circuits on the first hit.
        let mut calls = 0;
        let out: Result<u32, &str> = IngestBuffer::drain_with_retry(
            5,
            |e| *e == "transient",
            || {
                calls += 1;
                Err("halted")
            },
        );
        assert_eq!((out, calls), (Err("halted"), 1));
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// encode → arbitrary byte-split feeding → decode is the identity:
        /// however the wire fragments frames, the decoded action sequence
        /// equals the input and nothing is left over.
        #[test]
        fn prop_codec_round_trips_across_frame_splits(
            raw in proptest::collection::vec((0u32..1000, 0u32..1000, -100i32..100), 0..40),
            cuts in proptest::collection::vec(1usize..37, 0..12)
        ) {
            let actions: Vec<Action> = raw
                .iter()
                .map(|&(u, i, v)| Action {
                    user: UserId::new(u),
                    item: ItemId::new(i),
                    value: v as f32,
                })
                .collect();
            let encoded = codec::encode(&actions);
            prop_assert_eq!(encoded.len(), actions.len() * codec::FRAME_LEN);
            // Feed the wire bytes in arbitrary fragments; partial frames
            // must buffer across calls.
            let mut buf = BytesMut::new();
            let mut out = Vec::new();
            let mut pos = 0;
            for &cut in &cuts {
                let end = (pos + cut).min(encoded.len());
                buf.extend_from_slice(&encoded[pos..end]);
                codec::decode(&mut buf, &mut out);
                prop_assert!(buf.len() < codec::FRAME_LEN);
                pos = end;
            }
            buf.extend_from_slice(&encoded[pos..]);
            codec::decode(&mut buf, &mut out);
            prop_assert_eq!(out, actions);
            prop_assert!(buf.is_empty());
        }
    }
}
