//! Action streams: the second intake path of Fig. 1 ("as a data stream").
//!
//! A stream delivers [`Action`]s in batches. Three sources are provided:
//!
//! * [`ReplayStream`] — replays a finished dataset's action log (used by
//!   the stream-mining benchmarks so batch content is reproducible),
//! * [`ChannelStream`] — a bounded crossbeam channel for live producers
//!   running on other threads,
//! * [`codec`] — a length-free fixed-width binary frame codec
//!   (`user:u32 item:u32 value:f32`, little-endian) for wire ingestion.

use crate::dataset::{Action, UserData};
use crate::ids::{ItemId, UserId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};

/// A pull-based source of action batches.
pub trait ActionStream {
    /// Pull up to `max` actions into `out`. Returns the number delivered;
    /// `0` means the stream is exhausted (for finite sources) or currently
    /// dry (for live sources — check [`ActionStream::is_live`]).
    fn next_batch(&mut self, max: usize, out: &mut Vec<Action>) -> usize;

    /// Whether the source may still deliver actions in the future even
    /// after returning an empty batch.
    fn is_live(&self) -> bool {
        false
    }
}

/// Replays a dataset's action log in insertion order.
#[derive(Debug, Clone)]
pub struct ReplayStream<'a> {
    actions: &'a [Action],
    pos: usize,
}

impl<'a> ReplayStream<'a> {
    /// Stream over all actions of `data`.
    pub fn new(data: &'a UserData) -> Self {
        Self {
            actions: data.actions(),
            pos: 0,
        }
    }

    /// Remaining undelivered actions.
    pub fn remaining(&self) -> usize {
        self.actions.len() - self.pos
    }
}

impl ActionStream for ReplayStream<'_> {
    fn next_batch(&mut self, max: usize, out: &mut Vec<Action>) -> usize {
        let n = max.min(self.remaining());
        out.extend_from_slice(&self.actions[self.pos..self.pos + n]);
        self.pos += n;
        n
    }
}

/// Live stream backed by a bounded channel. Producers hold a
/// [`StreamProducer`]; dropping every producer ends the stream.
pub struct ChannelStream {
    rx: Receiver<Action>,
    closed: bool,
}

/// Sending half of a [`ChannelStream`].
#[derive(Clone)]
pub struct StreamProducer {
    tx: Sender<Action>,
}

impl StreamProducer {
    /// Send one action, blocking if the channel is full.
    ///
    /// Returns `false` if the consumer is gone.
    pub fn send(&self, action: Action) -> bool {
        self.tx.send(action).is_ok()
    }
}

impl ChannelStream {
    /// Create a stream with the given channel capacity.
    pub fn with_capacity(capacity: usize) -> (StreamProducer, Self) {
        let (tx, rx) = bounded(capacity);
        (StreamProducer { tx }, Self { rx, closed: false })
    }
}

impl ActionStream for ChannelStream {
    fn next_batch(&mut self, max: usize, out: &mut Vec<Action>) -> usize {
        let mut n = 0;
        while n < max {
            match self.rx.try_recv() {
                Ok(a) => {
                    out.push(a);
                    n += 1;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.closed = true;
                    break;
                }
            }
        }
        n
    }

    fn is_live(&self) -> bool {
        !self.closed
    }
}

/// Fixed-width binary frame codec for actions on the wire.
pub mod codec {
    use super::*;

    /// Bytes per encoded action.
    pub const FRAME_LEN: usize = 12;

    /// Encode a slice of actions into a fresh buffer.
    pub fn encode(actions: &[Action]) -> Bytes {
        let mut buf = BytesMut::with_capacity(actions.len() * FRAME_LEN);
        for a in actions {
            buf.put_u32_le(a.user.raw());
            buf.put_u32_le(a.item.raw());
            buf.put_f32_le(a.value);
        }
        buf.freeze()
    }

    /// Decode as many whole frames as `buf` contains, consuming them.
    /// Trailing partial frames are left in the buffer for the next call.
    pub fn decode(buf: &mut BytesMut, out: &mut Vec<Action>) -> usize {
        let mut n = 0;
        while buf.len() >= FRAME_LEN {
            let user = UserId::new(buf.get_u32_le());
            let item = ItemId::new(buf.get_u32_le());
            let value = buf.get_f32_le();
            out.push(Action { user, item, value });
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::UserDataBuilder;
    use crate::schema::Schema;

    fn sample_data(n_actions: usize) -> UserData {
        let mut b = UserDataBuilder::new(Schema::new());
        let u = b.user("u");
        let i = b.item("i", None);
        for k in 0..n_actions {
            b.action(u, i, k as f32);
        }
        b.build()
    }

    #[test]
    fn replay_delivers_everything_in_order() {
        let d = sample_data(10);
        let mut s = ReplayStream::new(&d);
        let mut out = Vec::new();
        assert_eq!(s.next_batch(4, &mut out), 4);
        assert_eq!(s.next_batch(4, &mut out), 4);
        assert_eq!(s.next_batch(4, &mut out), 2);
        assert_eq!(s.next_batch(4, &mut out), 0);
        assert!(!s.is_live());
        assert_eq!(out.len(), 10);
        for (k, a) in out.iter().enumerate() {
            assert_eq!(a.value, k as f32);
        }
    }

    #[test]
    fn channel_stream_live_then_closed() {
        let (tx, mut stream) = ChannelStream::with_capacity(8);
        let u = UserId::new(0);
        let i = ItemId::new(0);
        assert!(tx.send(Action {
            user: u,
            item: i,
            value: 1.0
        }));
        assert!(tx.send(Action {
            user: u,
            item: i,
            value: 2.0
        }));
        let mut out = Vec::new();
        assert_eq!(stream.next_batch(10, &mut out), 2);
        assert!(stream.is_live());
        drop(tx);
        assert_eq!(stream.next_batch(10, &mut out), 0);
        assert!(!stream.is_live());
    }

    #[test]
    fn channel_stream_across_threads() {
        let (tx, mut stream) = ChannelStream::with_capacity(4);
        let handle = std::thread::spawn(move || {
            for k in 0..100 {
                tx.send(Action {
                    user: UserId::new(k),
                    item: ItemId::new(0),
                    value: k as f32,
                });
            }
        });
        let mut out = Vec::new();
        while stream.is_live() || !matches!(stream.next_batch(16, &mut out), 0) {
            stream.next_batch(16, &mut out);
            if out.len() >= 100 {
                break;
            }
            std::thread::yield_now();
        }
        handle.join().unwrap();
        stream.next_batch(usize::MAX, &mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn codec_round_trips() {
        let actions = vec![
            Action {
                user: UserId::new(1),
                item: ItemId::new(2),
                value: 3.5,
            },
            Action {
                user: UserId::new(u32::MAX),
                item: ItemId::new(0),
                value: -1.0,
            },
        ];
        let encoded = codec::encode(&actions);
        assert_eq!(encoded.len(), 2 * codec::FRAME_LEN);
        let mut buf = BytesMut::from(&encoded[..]);
        let mut out = Vec::new();
        assert_eq!(codec::decode(&mut buf, &mut out), 2);
        assert_eq!(out, actions);
        assert!(buf.is_empty());
    }

    #[test]
    fn codec_keeps_partial_frames() {
        let actions = vec![Action {
            user: UserId::new(7),
            item: ItemId::new(8),
            value: 9.0,
        }];
        let encoded = codec::encode(&actions);
        let mut buf = BytesMut::new();
        let mut out = Vec::new();
        // Feed all but the last byte: nothing decodes.
        buf.extend_from_slice(&encoded[..codec::FRAME_LEN - 1]);
        assert_eq!(codec::decode(&mut buf, &mut out), 0);
        assert_eq!(buf.len(), codec::FRAME_LEN - 1);
        // Feed the final byte: one frame decodes.
        buf.extend_from_slice(&encoded[codec::FRAME_LEN - 1..]);
        assert_eq!(codec::decode(&mut buf, &mut out), 1);
        assert_eq!(out[0], actions[0]);
    }
}
