//! Attribute schema for user demographics and derived action attributes.
//!
//! VEXUS groups are described by conjunctions of `attribute = value` pairs
//! ("young professionals in Paris"). The schema fixes the attribute universe
//! and, per attribute, a dictionary of categorical values. Numeric
//! attributes (age, publication count, …) are discretized into labeled bins
//! at schema-definition time, matching how the paper's group descriptions
//! use qualitative levels ("very senior", "extremely active").

use crate::error::DataError;
use crate::ids::{AttrId, ValueId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How raw values of an attribute map into the categorical dictionary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeKind {
    /// Free categorical values; the dictionary grows as values are observed
    /// (up to an optional cap, after which values map to `"<other>"`).
    Categorical {
        /// Maximum dictionary size; `None` = unbounded.
        max_values: Option<usize>,
    },
    /// Numeric values discretized into `edges.len() + 1` bins. Bin `i`
    /// covers `[edges[i-1], edges[i])`; the first bin is `(-inf, edges[0])`
    /// and the last `[edges.last(), +inf)`.
    Numeric {
        /// Ascending bin edges.
        edges: Vec<f64>,
        /// Human-readable labels, one per bin (`edges.len() + 1` entries).
        labels: Vec<String>,
    },
}

/// Definition of a single attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Attribute name, unique within the schema (e.g. `"gender"`, `"age"`).
    pub name: String,
    /// Parsing/bucketing behaviour.
    pub kind: AttributeKind,
}

/// The attribute universe plus per-attribute value dictionaries.
///
/// Dictionaries are mutable while data is ingested (`intern_value`) and
/// frozen implicitly afterwards; lookups never mutate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<AttributeDef>,
    attr_by_name: HashMap<String, AttrId>,
    /// Per attribute: value label -> ValueId.
    value_ids: Vec<HashMap<String, ValueId>>,
    /// Per attribute: ValueId -> value label.
    value_labels: Vec<Vec<String>>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a categorical attribute with unbounded dictionary.
    pub fn add_categorical(&mut self, name: impl Into<String>) -> AttrId {
        self.add_attribute(AttributeDef {
            name: name.into(),
            kind: AttributeKind::Categorical { max_values: None },
        })
    }

    /// Add a numeric attribute binned at `edges`, with generated labels
    /// (`"<e0"`, `"e0..e1"`, …, `">=en"`).
    pub fn add_numeric_binned(&mut self, name: impl Into<String>, edges: &[f64]) -> AttrId {
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "bin edges must be strictly ascending"
        );
        let mut labels = Vec::with_capacity(edges.len() + 1);
        if edges.is_empty() {
            labels.push("all".to_string());
        } else {
            labels.push(format!("<{}", edges[0]));
            for w in edges.windows(2) {
                labels.push(format!("{}..{}", w[0], w[1]));
            }
            labels.push(format!(">={}", edges[edges.len() - 1]));
        }
        self.add_attribute(AttributeDef {
            name: name.into(),
            kind: AttributeKind::Numeric {
                edges: edges.to_vec(),
                labels,
            },
        })
    }

    /// Add a numeric attribute with caller-provided bin labels.
    pub fn add_numeric_labeled(
        &mut self,
        name: impl Into<String>,
        edges: &[f64],
        labels: &[&str],
    ) -> AttrId {
        assert_eq!(labels.len(), edges.len() + 1, "need edges.len()+1 labels");
        self.add_attribute(AttributeDef {
            name: name.into(),
            kind: AttributeKind::Numeric {
                edges: edges.to_vec(),
                labels: labels.iter().map(|s| s.to_string()).collect(),
            },
        })
    }

    /// Add a fully specified attribute definition; returns its id.
    ///
    /// # Panics
    /// Panics if the name is already taken — schemas are built by code, not
    /// untrusted input.
    pub fn add_attribute(&mut self, def: AttributeDef) -> AttrId {
        assert!(
            !self.attr_by_name.contains_key(&def.name),
            "duplicate attribute name {:?}",
            def.name
        );
        let id = AttrId::new(self.attrs.len() as u16);
        self.attr_by_name.insert(def.name.clone(), id);
        // Numeric attributes get a pre-populated, fixed dictionary: one
        // value per bin label.
        match &def.kind {
            AttributeKind::Numeric { labels, .. } => {
                let mut ids = HashMap::with_capacity(labels.len());
                for (i, l) in labels.iter().enumerate() {
                    ids.insert(l.clone(), ValueId::new(i as u32));
                }
                self.value_ids.push(ids);
                self.value_labels.push(labels.clone());
            }
            AttributeKind::Categorical { .. } => {
                self.value_ids.push(HashMap::new());
                self.value_labels.push(Vec::new());
            }
        }
        self.attrs.push(def);
        id
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterate over `(AttrId, &AttributeDef)`.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttributeDef)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, d)| (AttrId::new(i as u16), d))
    }

    /// Look up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.attr_by_name.get(name).copied()
    }

    /// Like [`Schema::attr`] but returns a [`DataError`] for `?`-chaining.
    pub fn require_attr(&self, name: &str) -> Result<AttrId, DataError> {
        self.attr(name)
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// The definition of `attr`.
    pub fn def(&self, attr: AttrId) -> &AttributeDef {
        &self.attrs[attr.index()]
    }

    /// Attribute name.
    pub fn attr_name(&self, attr: AttrId) -> &str {
        &self.attrs[attr.index()].name
    }

    /// Number of distinct values currently interned for `attr`.
    pub fn cardinality(&self, attr: AttrId) -> usize {
        self.value_labels[attr.index()].len()
    }

    /// The label of a value of `attr`.
    ///
    /// Returns `"<missing>"` for the missing sentinel.
    pub fn value_label(&self, attr: AttrId, value: ValueId) -> &str {
        if value.is_missing() {
            return "<missing>";
        }
        &self.value_labels[attr.index()][value.index()]
    }

    /// Look up a value id by label without interning.
    pub fn value(&self, attr: AttrId, label: &str) -> Option<ValueId> {
        self.value_ids[attr.index()].get(label).copied()
    }

    /// Intern a raw string value of `attr`, returning its [`ValueId`].
    ///
    /// * Categorical attributes grow their dictionary (respecting
    ///   `max_values`, overflow maps to `"<other>"`).
    /// * Numeric attributes parse the string as `f64` and return the bin;
    ///   unparseable input yields [`DataError::BadValue`].
    /// * Empty strings yield [`ValueId::MISSING`].
    pub fn intern_value(&mut self, attr: AttrId, raw: &str) -> Result<ValueId, DataError> {
        if raw.is_empty() {
            return Ok(ValueId::MISSING);
        }
        match &self.attrs[attr.index()].kind {
            AttributeKind::Numeric { .. } => {
                let x: f64 = raw.parse().map_err(|_| DataError::BadValue {
                    attribute: self.attrs[attr.index()].name.clone(),
                    value: raw.to_string(),
                })?;
                Ok(self.bin_numeric(attr, x))
            }
            AttributeKind::Categorical { max_values } => {
                let max = *max_values;
                let table = &mut self.value_ids[attr.index()];
                if let Some(&id) = table.get(raw) {
                    return Ok(id);
                }
                let labels = &mut self.value_labels[attr.index()];
                if let Some(cap) = max {
                    if labels.len() >= cap {
                        // Map overflow values onto a shared "<other>" bucket.
                        if let Some(&id) = table.get("<other>") {
                            return Ok(id);
                        }
                        let id = ValueId::new(labels.len() as u32);
                        table.insert("<other>".to_string(), id);
                        labels.push("<other>".to_string());
                        return Ok(id);
                    }
                }
                let id = ValueId::new(labels.len() as u32);
                table.insert(raw.to_string(), id);
                labels.push(raw.to_string());
                Ok(id)
            }
        }
    }

    /// Bin a numeric value of a `Numeric` attribute.
    ///
    /// # Panics
    /// Panics if `attr` is categorical.
    pub fn bin_numeric(&self, attr: AttrId, x: f64) -> ValueId {
        match &self.attrs[attr.index()].kind {
            AttributeKind::Numeric { edges, .. } => {
                let bin = edges.partition_point(|&e| e <= x);
                ValueId::new(bin as u32)
            }
            AttributeKind::Categorical { .. } => {
                panic!("bin_numeric called on categorical attribute")
            }
        }
    }

    /// Total number of `(attribute, value)` pairs across all dictionaries —
    /// an upper bound for token-universe sizing.
    pub fn total_values(&self) -> usize {
        self.value_labels.iter().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_interning_is_stable() {
        let mut s = Schema::new();
        let g = s.add_categorical("gender");
        let a = s.intern_value(g, "female").unwrap();
        let b = s.intern_value(g, "male").unwrap();
        let a2 = s.intern_value(g, "female").unwrap();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(s.cardinality(g), 2);
        assert_eq!(s.value_label(g, a), "female");
        assert_eq!(s.value(g, "male"), Some(b));
    }

    #[test]
    fn categorical_cap_overflows_to_other() {
        let mut s = Schema::new();
        let c = s.add_attribute(AttributeDef {
            name: "city".into(),
            kind: AttributeKind::Categorical {
                max_values: Some(2),
            },
        });
        s.intern_value(c, "paris").unwrap();
        s.intern_value(c, "grenoble").unwrap();
        let o1 = s.intern_value(c, "lyon").unwrap();
        let o2 = s.intern_value(c, "porto alegre").unwrap();
        assert_eq!(o1, o2);
        assert_eq!(s.value_label(c, o1), "<other>");
        assert_eq!(s.cardinality(c), 3);
    }

    #[test]
    fn numeric_binning_covers_full_range() {
        let mut s = Schema::new();
        let age = s.add_numeric_labeled(
            "age",
            &[18.0, 30.0, 50.0, 65.0],
            &["minor", "young", "middle-age", "senior", "elder"],
        );
        assert_eq!(s.value_label(age, s.bin_numeric(age, 5.0)), "minor");
        assert_eq!(s.value_label(age, s.bin_numeric(age, 18.0)), "young");
        assert_eq!(s.value_label(age, s.bin_numeric(age, 29.9)), "young");
        assert_eq!(s.value_label(age, s.bin_numeric(age, 42.0)), "middle-age");
        assert_eq!(s.value_label(age, s.bin_numeric(age, 64.999)), "senior");
        assert_eq!(s.value_label(age, s.bin_numeric(age, 65.0)), "elder");
        assert_eq!(s.value_label(age, s.bin_numeric(age, 200.0)), "elder");
        assert_eq!(s.cardinality(age), 5);
    }

    #[test]
    fn numeric_intern_parses_and_rejects() {
        let mut s = Schema::new();
        let age = s.add_numeric_binned("age", &[18.0, 65.0]);
        let v = s.intern_value(age, "40").unwrap();
        assert_eq!(s.value_label(age, v), "18..65");
        assert!(matches!(
            s.intern_value(age, "forty"),
            Err(DataError::BadValue { .. })
        ));
    }

    #[test]
    fn empty_string_is_missing() {
        let mut s = Schema::new();
        let g = s.add_categorical("gender");
        assert_eq!(s.intern_value(g, "").unwrap(), ValueId::MISSING);
        assert_eq!(s.value_label(g, ValueId::MISSING), "<missing>");
    }

    #[test]
    fn generated_bin_labels() {
        let mut s = Schema::new();
        let a = s.add_numeric_binned("pubs", &[10.0, 100.0]);
        assert_eq!(s.value_label(a, ValueId::new(0)), "<10");
        assert_eq!(s.value_label(a, ValueId::new(1)), "10..100");
        assert_eq!(s.value_label(a, ValueId::new(2)), ">=100");
    }

    #[test]
    fn require_attr_errors_on_unknown() {
        let s = Schema::new();
        assert!(matches!(
            s.require_attr("nope"),
            Err(DataError::UnknownAttribute(_))
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attribute_panics() {
        let mut s = Schema::new();
        s.add_categorical("gender");
        s.add_categorical("gender");
    }

    #[test]
    fn total_values_sums_dictionaries() {
        let mut s = Schema::new();
        let g = s.add_categorical("gender");
        s.add_numeric_binned("age", &[30.0]); // 2 bins
        s.intern_value(g, "m").unwrap();
        s.intern_value(g, "f").unwrap();
        assert_eq!(s.total_values(), 4);
    }
}
