//! Seeded synthetic datasets standing in for the paper's corpora.
//!
//! The paper evaluates on two private-ish datasets: **DB-AUTHORS** (a crawl
//! of database researchers; the published download link is dead) and
//! **BOOKCROSSING** (public, but not shippable inside this offline repo).
//! Per DESIGN.md §1 we substitute seeded generators that reproduce the
//! *shape* the exploration stack depends on:
//!
//! * the same attribute schemas and cardinalities,
//! * Zipf-skewed activity and popularity,
//! * latent **communities** that induce the attribute co-occurrence
//!   structure group discovery feeds on (without correlations there would
//!   be no interesting groups to explore), and
//! * ground-truth labels (`latent`) that evaluation code may use to score
//!   projections and simulated explorers — the VEXUS engine itself never
//!   sees them.
//!
//! All generators are deterministic in their seed.

use crate::dataset::{UserData, UserDataBuilder};
use crate::schema::Schema;
use crate::zipf::{weighted_choice, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated dataset plus evaluation-only ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The user data as the VEXUS pipeline sees it.
    pub data: UserData,
    /// Latent community per user (ground truth for evaluation only).
    pub latent: Vec<u32>,
    /// Name of the generator, for reports.
    pub name: &'static str,
}

// ---------------------------------------------------------------------------
// BOOKCROSSING
// ---------------------------------------------------------------------------

/// Configuration for the BookCrossing-like generator.
///
/// Defaults are a laptop-scale slice (20k users / 15k books / 120k ratings)
/// of the paper's 278,858-user / 271,379-book / ~1.05M-rating snapshot; the
/// full scale is reachable by raising the fields.
#[derive(Debug, Clone)]
pub struct BookCrossingConfig {
    /// Number of users.
    pub n_users: usize,
    /// Number of books.
    pub n_books: usize,
    /// Number of ratings.
    pub n_ratings: usize,
    /// Number of latent reader communities.
    pub n_communities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BookCrossingConfig {
    fn default() -> Self {
        Self {
            n_users: 20_000,
            n_books: 15_000,
            n_ratings: 120_000,
            n_communities: 8,
            seed: 42,
        }
    }
}

impl BookCrossingConfig {
    /// A small configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            n_users: 300,
            n_books: 200,
            n_ratings: 2_000,
            n_communities: 4,
            seed: 7,
        }
    }
}

const GENRES: &[&str] = &[
    "fiction",
    "romance",
    "thriller",
    "mystery",
    "scifi",
    "fantasy",
    "history",
    "biography",
    "selfhelp",
    "children",
    "poetry",
    "cooking",
];

const COUNTRIES: &[&str] = &[
    "usa",
    "canada",
    "uk",
    "germany",
    "france",
    "spain",
    "italy",
    "brazil",
    "australia",
    "netherlands",
    "portugal",
    "india",
    "japan",
    "mexico",
    "argentina",
    "sweden",
];

const OCCUPATIONS: &[&str] = &[
    "student",
    "engineer",
    "teacher",
    "nurse",
    "manager",
    "artist",
    "retired",
    "librarian",
    "lawyer",
    "scientist",
];

/// Generate a BookCrossing-like rating dataset.
///
/// Schema: demographics `age` (5 bins), `country`, `occupation`, plus the
/// action-derived attributes `favorite_genre` and `activity`. Books carry a
/// genre category; ratings run 1–10 and are "mostly high" as the paper notes
/// of the real data (readers rate what they like).
pub fn bookcrossing(cfg: &BookCrossingConfig) -> SyntheticDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut schema = Schema::new();
    let age = schema.add_numeric_labeled(
        "age",
        &[18.0, 30.0, 45.0, 65.0],
        &["teen", "young", "adult", "middle-age", "senior"],
    );
    let country = schema.add_categorical("country");
    let occupation = schema.add_categorical("occupation");
    let favorite = schema.add_categorical("favorite_genre");
    let activity = schema.add_categorical("activity");

    let mut b = UserDataBuilder::new(schema);

    // Communities: each has a genre preference profile, a country tilt and
    // an age center. They are what makes groups like "young readers in
    // Germany who like fantasy" discoverable.
    let n_comm = cfg.n_communities.max(1);
    struct Community {
        genre_weights: Vec<f64>,
        country_weights: Vec<f64>,
        age_mean: f64,
        age_sd: f64,
    }
    let communities: Vec<Community> = (0..n_comm)
        .map(|c| {
            let mut genre_weights = vec![1.0; GENRES.len()];
            // Two signature genres per community get a strong boost.
            genre_weights[c % GENRES.len()] = 12.0;
            genre_weights[(c * 5 + 3) % GENRES.len()] = 6.0;
            let mut country_weights = vec![1.0; COUNTRIES.len()];
            country_weights[c % COUNTRIES.len()] = 8.0;
            country_weights[(c * 3 + 1) % COUNTRIES.len()] = 4.0;
            Community {
                genre_weights,
                country_weights,
                age_mean: 22.0 + 7.0 * (c as f64),
                age_sd: 6.0,
            }
        })
        .collect();
    let comm_pick = Zipf::new(n_comm, 0.5);

    // Books: genre zipf-skewed toward popular genres, popularity zipf.
    let genre_pop = Zipf::new(GENRES.len(), 0.7);
    let mut book_genre = Vec::with_capacity(cfg.n_books);
    for i in 0..cfg.n_books {
        let g = genre_pop.sample(&mut rng);
        book_genre.push(g);
        b.item(&format!("book-{i:06}"), Some(GENRES[g]));
    }
    // Per-genre book lists for preference-driven rating.
    let mut books_of_genre: Vec<Vec<u32>> = vec![Vec::new(); GENRES.len()];
    for (i, &g) in book_genre.iter().enumerate() {
        books_of_genre[g].push(i as u32);
    }
    let book_pop = Zipf::new(cfg.n_books.max(1), 0.9);

    // Users.
    let mut latent = Vec::with_capacity(cfg.n_users);
    let mut user_comm = Vec::with_capacity(cfg.n_users);
    for u in 0..cfg.n_users {
        let c = comm_pick.sample(&mut rng);
        latent.push(c as u32);
        user_comm.push(c);
        let comm = &communities[c];
        let user = b.user(&format!("user-{u:06}"));
        // Box-Muller normal age sample.
        let (r1, r2): (f64, f64) = (rng.gen::<f64>().max(1e-12), rng.gen());
        let normal = (-2.0 * r1.ln()).sqrt() * (std::f64::consts::TAU * r2).cos();
        let age_val = (comm.age_mean + comm.age_sd * normal).clamp(12.0, 90.0);
        b.set_demo_numeric(user, age, age_val);
        let ctry = weighted_choice(&mut rng, &comm.country_weights);
        b.set_demo(user, country, COUNTRIES[ctry])
            .expect("country interns");
        let occ = weighted_choice(
            &mut rng,
            &[3.0, 2.0, 2.0, 1.5, 1.5, 1.0, 1.5, 0.7, 0.8, 1.0],
        );
        b.set_demo(user, occupation, OCCUPATIONS[occ])
            .expect("occupation interns");
    }

    // Ratings: rater drawn Zipf (few heavy readers), book drawn from the
    // rater's community genre profile 70% of the time, global popularity
    // otherwise. Scores 1-10, high for in-preference books.
    let rater_pick = Zipf::new(cfg.n_users.max(1), 0.8);
    for _ in 0..cfg.n_ratings {
        let u = rater_pick.sample(&mut rng);
        let comm = &communities[user_comm[u]];
        let book = if rng.gen::<f64>() < 0.7 {
            let g = weighted_choice(&mut rng, &comm.genre_weights);
            let pool = &books_of_genre[g];
            if pool.is_empty() {
                book_pop.sample(&mut rng) as u32
            } else {
                pool[rng.gen_range(0..pool.len())]
            }
        } else {
            book_pop.sample(&mut rng) as u32
        };
        let preferred = comm.genre_weights[book_genre[book as usize]] > 1.0;
        let score = if preferred {
            *[7.0, 8.0, 8.0, 9.0, 9.0, 10.0].select(&mut rng)
        } else {
            *[2.0, 4.0, 5.0, 6.0, 7.0, 8.0].select(&mut rng)
        };
        let user = b.find_user(&format!("user-{u:06}")).expect("user exists");
        let item = b.item(&format!("book-{book:06}"), None);
        b.action(user, item, score);
    }

    // Derived attributes: favorite genre (modal rated genre) and activity.
    let genre_names: Vec<&str> = GENRES.to_vec();
    let book_genre_copy = book_genre.clone();
    b.derive_attribute(favorite, move |_, acts| {
        if acts.is_empty() {
            return String::new();
        }
        let mut counts = vec![0usize; genre_names.len()];
        for a in acts {
            counts[book_genre_copy[a.item.index()]] += 1;
        }
        let best = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .expect("non-empty counts");
        genre_names[best].to_string()
    })
    .expect("derive favorite_genre");
    b.derive_attribute(activity, |_, acts| {
        match acts.len() {
            0 => "silent",
            1..=3 => "casual",
            4..=15 => "regular",
            _ => "avid",
        }
        .to_string()
    })
    .expect("derive activity");

    SyntheticDataset {
        data: b.build(),
        latent,
        name: "bookcrossing",
    }
}

// ---------------------------------------------------------------------------
// DB-AUTHORS
// ---------------------------------------------------------------------------

/// Configuration for the DB-AUTHORS-like generator.
#[derive(Debug, Clone)]
pub struct DbAuthorsConfig {
    /// Number of researchers.
    pub n_authors: usize,
    /// Number of publication actions (author, paper-at-venue).
    pub n_publications: usize,
    /// Number of latent research communities.
    pub n_communities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DbAuthorsConfig {
    fn default() -> Self {
        Self {
            n_authors: 8_000,
            n_publications: 60_000,
            n_communities: 6,
            seed: 42,
        }
    }
}

impl DbAuthorsConfig {
    /// A small configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            n_authors: 250,
            n_publications: 1_500,
            n_communities: 4,
            seed: 7,
        }
    }
}

/// Research topics in the DB-AUTHORS universe.
pub const TOPICS: &[&str] = &[
    "data management",
    "web search",
    "data mining",
    "machine learning",
    "information retrieval",
    "databases theory",
    "visualization",
    "crowdsourcing",
];

/// Publication venues in the DB-AUTHORS universe.
pub const VENUES: &[&str] = &[
    "sigmod", "vldb", "cikm", "icde", "kdd", "sigir", "edbt", "www", "pkdd", "dsaa",
];

const REGIONS: &[&str] = &[
    "north-america",
    "europe",
    "south-america",
    "asia",
    "oceania",
    "africa",
];

/// Generate a DB-AUTHORS-like researcher dataset.
///
/// Schema: `gender` (the population is ~64 % male, matching the paper's
/// "62 % of this group is male" drill-down example), `seniority` (years
/// active, 4 levels), `region`, `topic`, `main_venue`, and the derived
/// `publication_rate` ("inactive" … "extremely active"). Actions are
/// publications: `[author, paper, year_weight]`, papers carry their venue as
/// category.
pub fn dbauthors(cfg: &DbAuthorsConfig) -> SyntheticDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut schema = Schema::new();
    let gender = schema.add_categorical("gender");
    let seniority = schema.add_numeric_labeled(
        "seniority",
        &[5.0, 12.0, 22.0],
        &["junior", "mid-career", "senior", "very senior"],
    );
    let region = schema.add_categorical("region");
    let topic = schema.add_categorical("topic");
    let main_venue = schema.add_categorical("main_venue");
    let pub_rate = schema.add_categorical("publication_rate");

    let mut b = UserDataBuilder::new(schema);

    let n_comm = cfg.n_communities.max(1);
    struct Community {
        topic_weights: Vec<f64>,
        venue_weights: Vec<f64>,
        region_weights: Vec<f64>,
    }
    let communities: Vec<Community> = (0..n_comm)
        .map(|c| {
            let mut topic_weights = vec![0.6; TOPICS.len()];
            topic_weights[c % TOPICS.len()] = 10.0;
            topic_weights[(c * 3 + 2) % TOPICS.len()] = 4.0;
            let mut venue_weights = vec![0.8; VENUES.len()];
            venue_weights[c % VENUES.len()] = 9.0;
            venue_weights[(c * 2 + 1) % VENUES.len()] = 5.0;
            let mut region_weights = vec![1.0; REGIONS.len()];
            region_weights[c % REGIONS.len()] = 6.0;
            Community {
                topic_weights,
                venue_weights,
                region_weights,
            }
        })
        .collect();
    let comm_pick = Zipf::new(n_comm, 0.4);

    let mut latent = Vec::with_capacity(cfg.n_authors);
    let mut author_comm = Vec::with_capacity(cfg.n_authors);
    let mut author_years = Vec::with_capacity(cfg.n_authors);
    for a in 0..cfg.n_authors {
        let c = comm_pick.sample(&mut rng);
        latent.push(c as u32);
        author_comm.push(c);
        let comm = &communities[c];
        let author = b.user(&format!("author-{a:05}"));
        // ~64% male population.
        let g = if rng.gen::<f64>() < 0.64 {
            "male"
        } else {
            "female"
        };
        b.set_demo(author, gender, g).expect("gender interns");
        // Years active: exponential-ish, most juniors.
        let years = (-12.0 * (1.0 - rng.gen::<f64>()).ln()).clamp(1.0, 45.0);
        author_years.push(years);
        b.set_demo_numeric(author, seniority, years);
        let r = weighted_choice(&mut rng, &comm.region_weights);
        b.set_demo(author, region, REGIONS[r])
            .expect("region interns");
        let t = weighted_choice(&mut rng, &comm.topic_weights);
        b.set_demo(author, topic, TOPICS[t]).expect("topic interns");
        let v = weighted_choice(&mut rng, &comm.venue_weights);
        b.set_demo(author, main_venue, VENUES[v])
            .expect("venue interns");
    }

    // Publications: productivity grows with seniority (a "very senior
    // researcher with a very high number of publications" exists, like the
    // paper's Elke Rundensteiner example with 325 papers over 26 years).
    // Author picked proportional to years * zipf-ish noise.
    let weights: Vec<f64> = author_years
        .iter()
        .map(|&y| y * (1.0 + 4.0 * rng.gen::<f64>().powi(3)))
        .collect();
    let total_w: f64 = weights.iter().sum();
    let mut cum = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total_w;
        cum.push(acc);
    }
    if let Some(last) = cum.last_mut() {
        *last = 1.0;
    }
    for paper_counter in 0..cfg.n_publications {
        let u: f64 = rng.gen();
        let a = cum.partition_point(|&c| c < u).min(cfg.n_authors - 1);
        let comm = &communities[author_comm[a]];
        let v = weighted_choice(&mut rng, &comm.venue_weights);
        let paper = b.item(&format!("paper-{paper_counter:06}"), Some(VENUES[v]));
        let author = b
            .find_user(&format!("author-{a:05}"))
            .expect("author exists");
        b.action(author, paper, 1.0);
    }

    b.derive_attribute(pub_rate, |_, acts| {
        match acts.len() {
            0 => "inactive",
            1..=4 => "occasional",
            5..=15 => "active",
            16..=40 => "very active",
            _ => "extremely active",
        }
        .to_string()
    })
    .expect("derive publication_rate");

    SyntheticDataset {
        data: b.build(),
        latent,
        name: "dbauthors",
    }
}

// ---------------------------------------------------------------------------
// GROCERY (hypothesis-validation workload)
// ---------------------------------------------------------------------------

/// Configuration for the grocery-receipts generator.
#[derive(Debug, Clone)]
pub struct GroceryConfig {
    /// Number of shoppers.
    pub n_users: usize,
    /// Number of purchase actions.
    pub n_purchases: usize,
    /// Strength of the planted "young professionals buy organic" effect,
    /// as the organic-purchase probability for that segment (baseline 0.15).
    pub organic_affinity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GroceryConfig {
    fn default() -> Self {
        Self {
            n_users: 5_000,
            n_purchases: 50_000,
            organic_affinity: 0.45,
            seed: 42,
        }
    }
}

const PRODUCTS: &[(&str, bool)] = &[
    ("milk", false),
    ("organic-milk", true),
    ("bread", false),
    ("organic-bread", true),
    ("beer", false),
    ("kombucha", true),
    ("chips", false),
    ("organic-kale", true),
    ("soda", false),
    ("organic-quinoa", true),
    ("coffee", false),
    ("organic-coffee", true),
    ("frozen-pizza", false),
    ("organic-tofu", true),
    ("candy", false),
    ("organic-granola", true),
];

/// Generate a grocery dataset with a planted "young professionals are more
/// inclined to buying organic food" effect (the paper's example hypothesis
/// from \[12\]).
pub fn grocery(cfg: &GroceryConfig) -> SyntheticDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut schema = Schema::new();
    let age = schema.add_numeric_labeled(
        "age",
        &[25.0, 40.0, 60.0],
        &["student-age", "young", "middle-age", "senior"],
    );
    let occupation = schema.add_categorical("occupation");
    let city = schema.add_categorical("city");
    let organic_share = schema.add_categorical("organic_share");

    let mut b = UserDataBuilder::new(schema);
    for (i, &(p, _)) in PRODUCTS.iter().enumerate() {
        let cat = if PRODUCTS[i].1 {
            "organic"
        } else {
            "conventional"
        };
        b.item(p, Some(cat));
        let _ = p;
    }

    let cities = ["paris", "grenoble", "lyon", "marseille", "toulouse"];
    let occupations = ["professional", "student", "retired", "trades", "unemployed"];
    let mut is_yp = Vec::with_capacity(cfg.n_users);
    let mut latent = Vec::with_capacity(cfg.n_users);
    for u in 0..cfg.n_users {
        let user = b.user(&format!("shopper-{u:05}"));
        let age_val = 18.0 + 60.0 * rng.gen::<f64>();
        b.set_demo_numeric(user, age, age_val);
        let occ = occupations[weighted_choice(&mut rng, &[2.5, 1.5, 1.5, 1.2, 0.5])];
        b.set_demo(user, occupation, occ)
            .expect("occupation interns");
        let c = cities[weighted_choice(&mut rng, &[4.0, 1.0, 2.0, 1.5, 1.0])];
        b.set_demo(user, city, c).expect("city interns");
        let young_professional = (25.0..40.0).contains(&age_val) && occ == "professional";
        is_yp.push(young_professional);
        latent.push(u32::from(young_professional));
    }

    let shopper_pick = Zipf::new(cfg.n_users.max(1), 0.6);
    let organic_products: Vec<usize> = PRODUCTS
        .iter()
        .enumerate()
        .filter(|(_, p)| p.1)
        .map(|(i, _)| i)
        .collect();
    let conventional: Vec<usize> = PRODUCTS
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.1)
        .map(|(i, _)| i)
        .collect();
    for _ in 0..cfg.n_purchases {
        let u = shopper_pick.sample(&mut rng);
        let p_org = if is_yp[u] { cfg.organic_affinity } else { 0.15 };
        let pool = if rng.gen::<f64>() < p_org {
            &organic_products
        } else {
            &conventional
        };
        let p = pool[rng.gen_range(0..pool.len())];
        let user = b
            .find_user(&format!("shopper-{u:05}"))
            .expect("user exists");
        let item = b.item(PRODUCTS[p].0, None);
        b.action(user, item, 1.0);
    }

    let organic_flags: Vec<bool> = PRODUCTS.iter().map(|p| p.1).collect();
    b.derive_attribute(organic_share, move |_, acts| {
        if acts.is_empty() {
            return String::new();
        }
        let organic = acts
            .iter()
            .filter(|a| organic_flags[a.item.index()])
            .count();
        let share = organic as f64 / acts.len() as f64;
        if share >= 0.5 {
            "mostly-organic"
        } else if share >= 0.2 {
            "mixed"
        } else {
            "conventional"
        }
        .to_string()
    })
    .expect("derive organic_share");

    SyntheticDataset {
        data: b.build(),
        latent,
        name: "grocery",
    }
}

// Small helper: uniform pick from a const slice.
trait Select<T> {
    fn select<R: Rng + ?Sized>(&self, rng: &mut R) -> &T;
}

impl<T> Select<T> for [T] {
    fn select<R: Rng + ?Sized>(&self, rng: &mut R) -> &T {
        &self[rng.gen_range(0..self.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bookcrossing_tiny_has_expected_shape() {
        let ds = bookcrossing(&BookCrossingConfig::tiny());
        let d = &ds.data;
        assert_eq!(d.n_users(), 300);
        assert_eq!(ds.latent.len(), 300);
        assert_eq!(d.n_actions(), 2_000);
        assert!(d.n_items() >= 200); // all books pre-created
        assert_eq!(d.schema().len(), 5);
        // Ratings lie in 1..=10.
        assert!(d.actions().iter().all(|a| (1.0..=10.0).contains(&a.value)));
    }

    #[test]
    fn bookcrossing_is_deterministic() {
        let a = bookcrossing(&BookCrossingConfig::tiny());
        let b = bookcrossing(&BookCrossingConfig::tiny());
        assert_eq!(a.latent, b.latent);
        assert_eq!(a.data.n_actions(), b.data.n_actions());
        for (x, y) in a.data.actions().iter().zip(b.data.actions()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn bookcrossing_different_seeds_differ() {
        let a = bookcrossing(&BookCrossingConfig::tiny());
        let b = bookcrossing(&BookCrossingConfig {
            seed: 8,
            ..BookCrossingConfig::tiny()
        });
        assert_ne!(
            a.data.actions().iter().map(|x| x.value).sum::<f32>(),
            b.data.actions().iter().map(|x| x.value).sum::<f32>()
        );
    }

    #[test]
    fn bookcrossing_ratings_skew_high() {
        let ds = bookcrossing(&BookCrossingConfig::tiny());
        let mean: f32 =
            ds.data.actions().iter().map(|a| a.value).sum::<f32>() / ds.data.n_actions() as f32;
        assert!(mean > 5.5, "mean rating {mean} should skew high");
    }

    #[test]
    fn bookcrossing_communities_shape_demographics() {
        // Users in the same community should share their favorite genre far
        // more often than users in different communities.
        let ds = bookcrossing(&BookCrossingConfig {
            n_users: 600,
            n_books: 300,
            n_ratings: 8_000,
            n_communities: 3,
            seed: 5,
        });
        let d = &ds.data;
        let fav = d.schema().attr("favorite_genre").unwrap();
        let mut same = 0.0;
        let mut same_hits = 0.0;
        let mut diff = 0.0;
        let mut diff_hits = 0.0;
        let users: Vec<_> = d.users().collect();
        for i in (0..users.len()).step_by(7) {
            for j in (i + 1..users.len()).step_by(11) {
                let (a, b) = (users[i], users[j]);
                let (va, vb) = (d.value(a, fav), d.value(b, fav));
                if va.is_missing() || vb.is_missing() {
                    continue;
                }
                if ds.latent[i] == ds.latent[j] {
                    same += 1.0;
                    if va == vb {
                        same_hits += 1.0;
                    }
                } else {
                    diff += 1.0;
                    if va == vb {
                        diff_hits += 1.0;
                    }
                }
            }
        }
        assert!(same > 0.0 && diff > 0.0);
        assert!(
            same_hits / same > diff_hits / diff,
            "within-community favorite-genre agreement {} should exceed cross {}",
            same_hits / same,
            diff_hits / diff
        );
    }

    #[test]
    fn dbauthors_tiny_has_expected_shape() {
        let ds = dbauthors(&DbAuthorsConfig::tiny());
        let d = &ds.data;
        assert_eq!(d.n_users(), 250);
        assert_eq!(d.n_actions(), 1_500);
        assert_eq!(d.schema().len(), 6);
        let gender = d.schema().attr("gender").unwrap();
        let males = d
            .users()
            .filter(|&u| d.schema().value_label(gender, d.value(u, gender)) == "male")
            .count();
        let share = males as f64 / d.n_users() as f64;
        assert!(
            (0.5..0.8).contains(&share),
            "male share {share} should be near 0.64"
        );
    }

    #[test]
    fn dbauthors_seniority_correlates_with_output() {
        let ds = dbauthors(&DbAuthorsConfig {
            n_authors: 500,
            n_publications: 8_000,
            ..DbAuthorsConfig::tiny()
        });
        let d = &ds.data;
        let sen = d.schema().attr("seniority").unwrap();
        let mut junior = (0usize, 0usize);
        let mut very_senior = (0usize, 0usize);
        for u in d.users() {
            let label = d.schema().value_label(sen, d.value(u, sen)).to_string();
            let acts = d.user_activity(u);
            if label == "junior" {
                junior = (junior.0 + acts, junior.1 + 1);
            } else if label == "very senior" {
                very_senior = (very_senior.0 + acts, very_senior.1 + 1);
            }
        }
        assert!(junior.1 > 0 && very_senior.1 > 0);
        let j = junior.0 as f64 / junior.1 as f64;
        let v = very_senior.0 as f64 / very_senior.1 as f64;
        assert!(v > j, "very senior mean pubs {v} should exceed junior {j}");
    }

    #[test]
    fn grocery_plants_the_hypothesis() {
        let ds = grocery(&GroceryConfig {
            n_users: 1_000,
            n_purchases: 20_000,
            ..Default::default()
        });
        let d = &ds.data;
        // Organic purchase rate for young professionals vs others.
        let mut yp = (0usize, 0usize);
        let mut other = (0usize, 0usize);
        for (i, u) in d.users().enumerate() {
            for a in d.user_actions(u) {
                let organic = d.item_category(a.item) == Some("organic");
                if ds.latent[i] == 1 {
                    yp = (yp.0 + usize::from(organic), yp.1 + 1);
                } else {
                    other = (other.0 + usize::from(organic), other.1 + 1);
                }
            }
        }
        assert!(yp.1 > 100 && other.1 > 100);
        let yp_rate = yp.0 as f64 / yp.1 as f64;
        let other_rate = other.0 as f64 / other.1 as f64;
        assert!(
            yp_rate > other_rate + 0.1,
            "young-professional organic rate {yp_rate} vs others {other_rate}"
        );
    }

    #[test]
    fn generators_fill_derived_attributes() {
        let ds = bookcrossing(&BookCrossingConfig::tiny());
        let d = &ds.data;
        let act = d.schema().attr("activity").unwrap();
        // Every user has an activity level (even "silent").
        assert!(d.users().all(|u| !d.value(u, act).is_missing()));
    }
}
