//! ETL pipeline: the cleaning stage that, per Fig. 1 of the paper,
//! "precedes the data import to prepare data for analysis".
//!
//! The pipeline is a sequence of declarative [`CleanOp`]s applied to a
//! [`crate::csv::CsvTable`], followed by typed import into a
//! [`crate::dataset::UserData`] via column bindings. Every op records what
//! it changed in an [`EtlReport`] so that data-quality issues are visible
//! rather than silently swallowed.

use crate::csv::CsvTable;
use crate::dataset::{UserData, UserDataBuilder};
use crate::error::DataError;
use crate::schema::Schema;
use std::collections::HashSet;

/// One cleaning operation over the raw string table.
#[derive(Debug, Clone)]
pub enum CleanOp {
    /// Trim ASCII whitespace from every field.
    TrimWhitespace,
    /// Lowercase a named column (for case-insensitive categorical values).
    Lowercase(String),
    /// Replace any of the given null-ish tokens (case-insensitive) with the
    /// empty string (= missing).
    NormalizeNulls(Vec<String>),
    /// Drop records whose width differs from the header width.
    DropRagged,
    /// Drop exact duplicate records.
    DropDuplicates,
    /// Drop records where the named column is empty.
    RequireNonEmpty(String),
    /// Clamp a numeric column into `[min, max]`; non-numeric values are
    /// blanked to missing.
    ClampNumeric {
        /// Column to clamp.
        column: String,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
}

/// Counters describing what the pipeline changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EtlReport {
    /// Records seen in the raw input.
    pub records_in: usize,
    /// Records surviving cleaning.
    pub records_out: usize,
    /// Records dropped for raggedness.
    pub dropped_ragged: usize,
    /// Records dropped as duplicates.
    pub dropped_duplicates: usize,
    /// Records dropped by `RequireNonEmpty`.
    pub dropped_missing_required: usize,
    /// Fields rewritten to missing by `NormalizeNulls`.
    pub nulls_normalized: usize,
    /// Fields clamped by `ClampNumeric`.
    pub values_clamped: usize,
    /// Non-numeric fields blanked by `ClampNumeric`.
    pub values_unparseable: usize,
}

/// Apply `ops` in order, mutating `table` and accumulating a report.
pub fn clean(table: &mut CsvTable, ops: &[CleanOp]) -> EtlReport {
    let mut report = EtlReport {
        records_in: table.records.len(),
        ..Default::default()
    };
    for op in ops {
        apply(table, op, &mut report);
    }
    report.records_out = table.records.len();
    report
}

fn apply(table: &mut CsvTable, op: &CleanOp, report: &mut EtlReport) {
    match op {
        CleanOp::TrimWhitespace => {
            for rec in &mut table.records {
                for f in rec.iter_mut() {
                    let trimmed = f.trim();
                    if trimmed.len() != f.len() {
                        *f = trimmed.to_string();
                    }
                }
            }
        }
        CleanOp::Lowercase(col) => {
            if let Some(c) = table.column(col) {
                for rec in &mut table.records {
                    if let Some(f) = rec.get_mut(c) {
                        if f.chars().any(|ch| ch.is_ascii_uppercase()) {
                            *f = f.to_ascii_lowercase();
                        }
                    }
                }
            }
        }
        CleanOp::NormalizeNulls(tokens) => {
            let lowered: Vec<String> = tokens.iter().map(|t| t.to_ascii_lowercase()).collect();
            for rec in &mut table.records {
                for f in rec.iter_mut() {
                    if !f.is_empty() && lowered.iter().any(|t| f.eq_ignore_ascii_case(t)) {
                        f.clear();
                        report.nulls_normalized += 1;
                    }
                }
            }
        }
        CleanOp::DropRagged => {
            let width = table.header.len();
            if width == 0 {
                return;
            }
            let before = table.records.len();
            table.records.retain(|r| r.len() == width);
            report.dropped_ragged += before - table.records.len();
        }
        CleanOp::DropDuplicates => {
            let mut seen: HashSet<u64> = HashSet::with_capacity(table.records.len());
            let before = table.records.len();
            table.records.retain(|r| {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                r.hash(&mut h);
                seen.insert(h.finish())
            });
            report.dropped_duplicates += before - table.records.len();
        }
        CleanOp::RequireNonEmpty(col) => {
            if let Some(c) = table.column(col) {
                let before = table.records.len();
                table
                    .records
                    .retain(|r| r.get(c).is_some_and(|f| !f.is_empty()));
                report.dropped_missing_required += before - table.records.len();
            }
        }
        CleanOp::ClampNumeric { column, min, max } => {
            if let Some(c) = table.column(column) {
                for rec in &mut table.records {
                    if let Some(f) = rec.get_mut(c) {
                        if f.is_empty() {
                            continue;
                        }
                        match f.parse::<f64>() {
                            Ok(x) if x < *min => {
                                *f = fmt_num(*min);
                                report.values_clamped += 1;
                            }
                            Ok(x) if x > *max => {
                                *f = fmt_num(*max);
                                report.values_clamped += 1;
                            }
                            Ok(_) => {}
                            Err(_) => {
                                f.clear();
                                report.values_unparseable += 1;
                            }
                        }
                    }
                }
            }
        }
    }
}

fn fmt_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Binding from CSV columns to the `[user, item, value]` action schema plus
/// demographic columns.
#[derive(Debug, Clone, Default)]
pub struct ImportSpec {
    /// Column naming the acting user (required).
    pub user_column: String,
    /// Column naming the item, if this table carries actions.
    pub item_column: Option<String>,
    /// Column carrying the action value; absent means value `1.0`
    /// (presence-only actions like "bought").
    pub value_column: Option<String>,
    /// Column carrying the item category, if any.
    pub item_category_column: Option<String>,
    /// `(csv column, schema attribute)` demographic bindings.
    pub demographics: Vec<(String, String)>,
}

/// Import a cleaned table into `builder` per `spec`.
///
/// Unknown schema attributes error; unparseable demographic values are
/// counted and left missing (a single bad cell must not abort a million-row
/// import).
pub fn import(
    table: &CsvTable,
    spec: &ImportSpec,
    builder: &mut UserDataBuilder,
) -> Result<ImportStats, DataError> {
    let user_col = table
        .column(&spec.user_column)
        .ok_or_else(|| DataError::UnknownAttribute(spec.user_column.clone()))?;
    let item_col = match &spec.item_column {
        Some(c) => Some(
            table
                .column(c)
                .ok_or_else(|| DataError::UnknownAttribute(c.clone()))?,
        ),
        None => None,
    };
    let value_col = match &spec.value_column {
        Some(c) => Some(
            table
                .column(c)
                .ok_or_else(|| DataError::UnknownAttribute(c.clone()))?,
        ),
        None => None,
    };
    let cat_col = match &spec.item_category_column {
        Some(c) => Some(
            table
                .column(c)
                .ok_or_else(|| DataError::UnknownAttribute(c.clone()))?,
        ),
        None => None,
    };
    let mut demo_cols = Vec::with_capacity(spec.demographics.len());
    for (csv_col, attr_name) in &spec.demographics {
        let c = table
            .column(csv_col)
            .ok_or_else(|| DataError::UnknownAttribute(csv_col.clone()))?;
        let a = builder.schema().require_attr(attr_name)?;
        demo_cols.push((c, a));
    }

    let mut stats = ImportStats::default();
    for rec in &table.records {
        let Some(user_name) = rec.get(user_col) else {
            continue;
        };
        if user_name.is_empty() {
            stats.skipped_rows += 1;
            continue;
        }
        let user = builder.user(user_name);
        for &(c, a) in &demo_cols {
            let raw = rec.get(c).map(String::as_str).unwrap_or("");
            match builder.set_demo(user, a, raw) {
                Ok(()) => {}
                Err(DataError::BadValue { .. }) => stats.bad_demographics += 1,
                Err(e) => return Err(e),
            }
        }
        if let Some(ic) = item_col {
            let Some(item_name) = rec.get(ic) else {
                continue;
            };
            if item_name.is_empty() {
                stats.skipped_rows += 1;
                continue;
            }
            let category = cat_col
                .and_then(|cc| rec.get(cc))
                .filter(|s| !s.is_empty())
                .map(String::as_str);
            let item = builder.item(item_name, category);
            let value = match value_col {
                None => 1.0,
                Some(vc) => match rec.get(vc).map(String::as_str).unwrap_or("") {
                    "" => {
                        stats.default_values += 1;
                        1.0
                    }
                    raw => match raw.parse::<f32>() {
                        Ok(x) => x,
                        Err(_) => {
                            stats.bad_values += 1;
                            continue;
                        }
                    },
                },
            };
            builder.action(user, item, value);
            stats.actions_imported += 1;
        }
    }
    Ok(stats)
}

/// Counters from [`import`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Actions successfully imported.
    pub actions_imported: usize,
    /// Rows skipped (missing user or item key).
    pub skipped_rows: usize,
    /// Demographic cells that failed to parse (left missing).
    pub bad_demographics: usize,
    /// Action values that failed to parse (action dropped).
    pub bad_values: usize,
    /// Action values defaulted to 1.0 because the cell was empty.
    pub default_values: usize,
}

/// Convenience: parse CSV text, clean it with a default pipeline, and import
/// it into a fresh dataset.
pub fn load_csv(
    text: &str,
    opts: crate::csv::CsvOptions,
    schema: Schema,
    spec: &ImportSpec,
) -> Result<(UserData, EtlReport, ImportStats), DataError> {
    let mut table = crate::csv::parse(text, opts)?;
    let report = clean(
        &mut table,
        &[
            CleanOp::TrimWhitespace,
            CleanOp::NormalizeNulls(vec![
                "null".into(),
                "n/a".into(),
                "na".into(),
                "none".into(),
                "-".into(),
            ]),
            CleanOp::DropRagged,
            CleanOp::DropDuplicates,
        ],
    );
    let mut builder = UserDataBuilder::new(schema);
    let stats = import(&table, spec, &mut builder)?;
    Ok((builder.build(), report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::{parse, CsvOptions};

    fn ratings_csv() -> &'static str {
        "user,age,gender,book,genre,rating\n\
         mary, 25 ,F,Mr Miracle,fiction,4\n\
         bob,45,M,Dune,scifi,5\n\
         mary,25,F,Dune,scifi,3\n\
         mary,25,F,Dune,scifi,3\n\
         carol,NULL,F,Emma,fiction,5\n\
         dave,200,M,Dune,scifi,oops\n"
    }

    fn spec() -> ImportSpec {
        ImportSpec {
            user_column: "user".into(),
            item_column: Some("book".into()),
            value_column: Some("rating".into()),
            item_category_column: Some("genre".into()),
            demographics: vec![
                ("age".into(), "age".into()),
                ("gender".into(), "gender".into()),
            ],
        }
    }

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_numeric_labeled("age", &[30.0, 60.0], &["young", "middle", "senior"]);
        s.add_categorical("gender");
        s
    }

    #[test]
    fn full_pipeline_cleans_and_imports() {
        let mut table = parse(ratings_csv(), CsvOptions::default()).unwrap();
        let report = clean(
            &mut table,
            &[
                CleanOp::TrimWhitespace,
                CleanOp::NormalizeNulls(vec!["null".into()]),
                CleanOp::DropDuplicates,
                CleanOp::ClampNumeric {
                    column: "age".into(),
                    min: 0.0,
                    max: 120.0,
                },
            ],
        );
        assert_eq!(report.records_in, 6);
        assert_eq!(report.dropped_duplicates, 1);
        assert_eq!(report.nulls_normalized, 1);
        assert_eq!(report.values_clamped, 1); // dave's 200 -> 120
        assert_eq!(report.records_out, 5);

        let mut b = UserDataBuilder::new(schema());
        let stats = import(&table, &spec(), &mut b).unwrap();
        // dave's rating "oops" is dropped.
        assert_eq!(stats.actions_imported, 4);
        assert_eq!(stats.bad_values, 1);
        let d = b.build();
        assert_eq!(d.n_users(), 4);
        let age = d.schema().attr("age").unwrap();
        let mary = crate::ids::UserId::new(0);
        assert_eq!(d.schema().value_label(age, d.value(mary, age)), "young");
        // carol's age was normalized to missing.
        let carol = (0..d.n_users() as u32)
            .map(crate::ids::UserId::new)
            .find(|&u| d.user_name(u) == "carol")
            .unwrap();
        assert!(d.value(carol, age).is_missing());
    }

    #[test]
    fn trim_whitespace() {
        let mut t = parse("a\n  x  \n", CsvOptions::default()).unwrap();
        clean(&mut t, &[CleanOp::TrimWhitespace]);
        assert_eq!(t.records[0][0], "x");
    }

    #[test]
    fn lowercase_targets_one_column() {
        let mut t = parse("a,b\nFoo,Bar\n", CsvOptions::default()).unwrap();
        clean(&mut t, &[CleanOp::Lowercase("a".into())]);
        assert_eq!(t.records[0], vec!["foo".to_string(), "Bar".to_string()]);
    }

    #[test]
    fn drop_ragged_uses_header_width() {
        let mut t = parse("a,b\n1,2\n1\n1,2,3\n", CsvOptions::default()).unwrap();
        let r = clean(&mut t, &[CleanOp::DropRagged]);
        assert_eq!(r.dropped_ragged, 2);
        assert_eq!(t.records.len(), 1);
    }

    #[test]
    fn require_non_empty() {
        let mut t = parse("user,x\nmary,1\n,2\n", CsvOptions::default()).unwrap();
        let r = clean(&mut t, &[CleanOp::RequireNonEmpty("user".into())]);
        assert_eq!(r.dropped_missing_required, 1);
        assert_eq!(t.records.len(), 1);
    }

    #[test]
    fn clamp_numeric_blank_on_unparseable() {
        let mut t = parse("x\n5\nhello\n-3\n", CsvOptions::default()).unwrap();
        let r = clean(
            &mut t,
            &[CleanOp::ClampNumeric {
                column: "x".into(),
                min: 0.0,
                max: 4.0,
            }],
        );
        assert_eq!(r.values_clamped, 2);
        assert_eq!(r.values_unparseable, 1);
        assert_eq!(t.records[0][0], "4");
        assert_eq!(t.records[1][0], "");
        assert_eq!(t.records[2][0], "0");
    }

    #[test]
    fn import_errors_on_unknown_columns() {
        let table = parse("u\nx\n", CsvOptions::default()).unwrap();
        let mut b = UserDataBuilder::new(Schema::new());
        let spec = ImportSpec {
            user_column: "nope".into(),
            ..Default::default()
        };
        assert!(matches!(
            import(&table, &spec, &mut b),
            Err(DataError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn presence_only_actions_default_to_one() {
        let table = parse("user,item\nmary,bread\n", CsvOptions::default()).unwrap();
        let mut b = UserDataBuilder::new(Schema::new());
        let spec = ImportSpec {
            user_column: "user".into(),
            item_column: Some("item".into()),
            ..Default::default()
        };
        let stats = import(&table, &spec, &mut b).unwrap();
        assert_eq!(stats.actions_imported, 1);
        let d = b.build();
        assert_eq!(d.actions()[0].value, 1.0);
    }

    #[test]
    fn load_csv_end_to_end() {
        let (d, report, stats) =
            load_csv(ratings_csv(), CsvOptions::default(), schema(), &spec()).unwrap();
        assert!(report.records_out <= report.records_in);
        assert!(stats.actions_imported >= 4);
        assert_eq!(d.n_users(), 4);
        assert!(d.n_items() >= 2);
    }

    #[test]
    fn empty_table_imports_to_empty_dataset() {
        let (d, report, stats) = load_csv(
            "user,item,rating\n",
            CsvOptions::default(),
            Schema::new(),
            &ImportSpec {
                user_column: "user".into(),
                item_column: Some("item".into()),
                value_column: Some("rating".into()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.records_in, 0);
        assert_eq!(stats.actions_imported, 0);
        assert_eq!(d.n_users(), 0);
    }
}
