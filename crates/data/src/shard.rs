//! Member-disjoint sharding of the user space.
//!
//! A [`ShardPlan`] splits the dense user-id range `0..n` into N disjoint,
//! covering shards so the offline discovery stage can run one worker per
//! shard (see `vexus-mining`'s `ShardedDiscovery`). Two strategies:
//!
//! * [`ShardStrategy::Hash`] — each member goes to
//!   `splitmix64(member) % n_shards`. Shards are statistically similar
//!   slices of the population, which keeps per-shard group structure close
//!   to the global one — the right default for partition-style mining.
//! * [`ShardStrategy::Contiguous`] — members are split into consecutive
//!   ranges of near-equal length. Cache- and mmap-friendly, and the natural
//!   choice when user ids already encode arrival order (stream replays).
//!
//! Plans are deterministic: the same `(n_members, n_shards, strategy)`
//! always yields the same partition, so sharded discovery stays
//! reproducible (the engine's determinism tests rely on it).

/// How members are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Deterministic integer hash of the member id modulo the shard count.
    #[default]
    Hash,
    /// Consecutive near-equal ranges of the member-id space.
    Contiguous,
}

/// A member-disjoint, covering partition of `0..n_members` into shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    strategy: ShardStrategy,
    /// Sorted member ids per shard.
    shards: Vec<Vec<u32>>,
    n_members: usize,
}

/// SplitMix64 finalizer — a cheap, well-mixed deterministic integer hash.
#[inline]
fn spread(x: u32) -> u64 {
    let mut z = (x as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ShardPlan {
    /// Partition `0..n_members` into `n_shards` shards (clamped to at least
    /// one) under `strategy`.
    pub fn build(n_members: usize, n_shards: usize, strategy: ShardStrategy) -> Self {
        let k = n_shards.max(1);
        let mut shards: Vec<Vec<u32>> = vec![Vec::new(); k];
        match strategy {
            ShardStrategy::Hash => {
                for m in 0..n_members as u32 {
                    shards[(spread(m) % k as u64) as usize].push(m);
                }
            }
            ShardStrategy::Contiguous => {
                let base = n_members / k;
                let rem = n_members % k;
                let mut next = 0u32;
                for (s, shard) in shards.iter_mut().enumerate() {
                    let len = base + usize::from(s < rem);
                    shard.extend(next..next + len as u32);
                    next += len as u32;
                }
            }
        }
        Self {
            strategy,
            shards,
            n_members,
        }
    }

    /// Hash-partition shorthand.
    pub fn hash(n_members: usize, n_shards: usize) -> Self {
        Self::build(n_members, n_shards, ShardStrategy::Hash)
    }

    /// Contiguous-partition shorthand.
    pub fn contiguous(n_members: usize, n_shards: usize) -> Self {
        Self::build(n_members, n_shards, ShardStrategy::Contiguous)
    }

    /// The strategy the plan was built with.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Number of shards (≥ 1; shards may be empty when members are scarce).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total members covered by the plan.
    pub fn n_members(&self) -> usize {
        self.n_members
    }

    /// Sorted member ids of one shard.
    pub fn members(&self, shard: usize) -> &[u32] {
        &self.shards[shard]
    }

    /// Iterate shard member lists in shard order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.shards.iter().map(Vec::as_slice)
    }

    /// Fraction of all members held by one shard (`0.0` for an empty plan).
    pub fn fraction(&self, shard: usize) -> f64 {
        if self.n_members == 0 {
            return 0.0;
        }
        self.shards[shard].len() as f64 / self.n_members as f64
    }

    /// The shards containing at least one of `members`, ascending. This is
    /// the candidate→shard routing primitive of the merge layer's closure
    /// exchange: a candidate description only needs re-closing against
    /// shards that hold a carrier of one of its tokens, and those shards
    /// are computable from the plan's member ranges/hashes plus a global
    /// tidlist — no per-shard data structures required.
    pub fn shards_containing(&self, members: impl IntoIterator<Item = u32>) -> Vec<usize> {
        let mut seen = vec![false; self.shards.len()];
        for m in members {
            seen[self.shard_of(m)] = true;
        }
        seen.iter()
            .enumerate()
            .filter_map(|(s, &hit)| hit.then_some(s))
            .collect()
    }

    /// The shard a member belongs to (O(1); recomputed from the strategy).
    pub fn shard_of(&self, member: u32) -> usize {
        debug_assert!((member as usize) < self.n_members, "member out of plan");
        let k = self.shards.len();
        match self.strategy {
            ShardStrategy::Hash => (spread(member) % k as u64) as usize,
            ShardStrategy::Contiguous => {
                let base = self.n_members / k;
                let rem = self.n_members % k;
                let m = member as usize;
                let fat = rem * (base + 1);
                if m < fat {
                    m / (base + 1)
                } else {
                    // `m >= fat` forces `base > 0`: with `base == 0` (more
                    // shards than members) every member sits in one of the
                    // first `rem` singleton shards, i.e. `m < fat`.
                    debug_assert!(base > 0);
                    rem + (m - fat) / base
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(plan: &ShardPlan, n: usize) {
        let mut seen = vec![false; n];
        for (s, members) in plan.iter().enumerate() {
            assert!(members.windows(2).all(|w| w[0] < w[1]), "unsorted shard");
            for &m in members {
                assert!(!seen[m as usize], "member {m} in two shards");
                seen[m as usize] = true;
                assert_eq!(plan.shard_of(m), s, "shard_of disagrees for {m}");
            }
        }
        assert!(seen.iter().all(|&b| b), "member not covered");
    }

    #[test]
    fn contiguous_is_a_balanced_partition() {
        for (n, k) in [(10, 3), (100, 8), (7, 7), (5, 1), (0, 4), (3, 5)] {
            let plan = ShardPlan::contiguous(n, k);
            assert_partition(&plan, n);
            let sizes: Vec<usize> = plan.iter().map(<[u32]>::len).collect();
            let (min, max) = (
                sizes.iter().min().copied().unwrap(),
                sizes.iter().max().copied().unwrap(),
            );
            assert!(max - min <= 1, "unbalanced contiguous shards: {sizes:?}");
        }
    }

    #[test]
    fn hash_is_a_partition_and_roughly_balanced() {
        let plan = ShardPlan::hash(10_000, 8);
        assert_partition(&plan, 10_000);
        for members in plan.iter() {
            let len = members.len();
            assert!(
                (1_000..1_600).contains(&len),
                "hash shard badly skewed: {len}"
            );
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let a = ShardPlan::hash(500, 4);
        let b = ShardPlan::hash(500, 4);
        for s in 0..4 {
            assert_eq!(a.members(s), b.members(s));
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let plan = ShardPlan::build(10, 0, ShardStrategy::Hash);
        assert_eq!(plan.n_shards(), 1);
        assert_eq!(plan.members(0).len(), 10);
        assert!((plan.fraction(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shards_containing_routes_members_to_their_shards() {
        for strategy in [ShardStrategy::Hash, ShardStrategy::Contiguous] {
            let plan = ShardPlan::build(100, 4, strategy);
            // Every member routes to exactly its own shard.
            for m in 0..100u32 {
                assert_eq!(plan.shards_containing([m]), vec![plan.shard_of(m)]);
            }
            // A spread-out set covers several shards, ascending and deduped.
            let all = plan.shards_containing(0..100u32);
            assert_eq!(all, vec![0, 1, 2, 3]);
            // Duplicates collapse; the empty set routes nowhere.
            assert_eq!(plan.shards_containing([7, 7, 7]), vec![plan.shard_of(7)]);
            assert!(plan.shards_containing([]).is_empty());
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let plan = ShardPlan::hash(1234, 5);
        let total: f64 = (0..plan.n_shards()).map(|s| plan.fraction(s)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
