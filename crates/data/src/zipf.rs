//! Seeded Zipf and power-law samplers used by the synthetic dataset
//! generators.
//!
//! Real user data — ratings per user, popularity per book, publications per
//! author — is heavily skewed; the paper's BOOKCROSSING snapshot has ~1M
//! ratings spread over 278k users, i.e. a long tail of near-inactive users.
//! The generators reproduce that shape with Zipf-distributed assignment.
//!
//! Implementation: inverse-CDF over a precomputed cumulative table. For the
//! universe sizes we use (≤ a few hundred thousand ranks) the table is
//! exact, cheap (one `partition_point` per sample) and deterministic.

use rand::Rng;

/// A Zipf(α) distribution over ranks `0..n` (rank 0 most probable), sampled
/// by inverse CDF over a precomputed table.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf distribution over `n` ranks with exponent `alpha`.
    ///
    /// `alpha = 0` degenerates to uniform; typical user-data skew is
    /// `alpha ∈ [0.6, 1.2]`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over empty universe");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is degenerate (always returns rank 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

/// Sample from a discrete distribution given by (unnormalized) weights.
///
/// Used for small categorical marginals (gender shares, seniority levels…).
pub fn weighted_choice<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12, "pmf({k}) = {}", z.pmf(k));
        }
    }

    #[test]
    fn rank_zero_dominates_with_skew() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(100));
        // Harmonic: p(0)/p(1) == 2 for alpha=1.
        assert!((z.pmf(0) / z.pmf(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp}, pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn sample_is_deterministic_for_seed() {
        let z = Zipf::new(100, 0.8);
        let a: Vec<usize> = (0..50)
            .map(|_| z.sample(&mut StdRng::seed_from_u64(3)))
            .collect();
        let b: Vec<usize> = (0..50)
            .map(|_| z.sample(&mut StdRng::seed_from_u64(3)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn cdf_reaches_one() {
        let z = Zipf::new(3, 1.5);
        assert_eq!(*z.cdf.last().unwrap(), 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "empty universe")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_choice(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }
}
