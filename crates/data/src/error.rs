//! Error types for the data substrate.

use std::fmt;

/// Errors raised while parsing, cleaning or assembling user data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A CSV record was structurally malformed.
    Csv {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A record referenced an attribute not present in the schema.
    UnknownAttribute(String),
    /// A record referenced a user outside the dataset.
    UnknownUser(String),
    /// A value could not be coerced to the attribute's kind.
    BadValue {
        /// Attribute whose parse failed.
        attribute: String,
        /// The raw offending value.
        value: String,
    },
    /// The dataset under construction is internally inconsistent.
    Inconsistent(String),
    /// An I/O error, stringified (kept `Clone`/`Eq` for test ergonomics).
    Io(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DataError::UnknownAttribute(a) => write!(f, "unknown attribute: {a}"),
            DataError::UnknownUser(u) => write!(f, "unknown user: {u}"),
            DataError::BadValue { attribute, value } => {
                write!(f, "bad value {value:?} for attribute {attribute:?}")
            }
            DataError::Inconsistent(m) => write!(f, "inconsistent dataset: {m}"),
            DataError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = DataError::Csv {
            line: 3,
            message: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("unterminated quote"));
        let e = DataError::BadValue {
            attribute: "age".into(),
            value: "abc".into(),
        };
        assert!(e.to_string().contains("age"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: DataError = io.into();
        assert!(matches!(e, DataError::Io(_)));
    }
}
