//! Write-ahead log for the live engine's epoch-stamped action deltas.
//!
//! A WAL segment is a flat file: an 8-byte segment header (`"VXWL"` +
//! version) followed by length-prefixed **frames**. Each frame's payload
//! is a complete [`crate::snapshot`] buffer — magic, version, section
//! table, word-wise checksum — carrying one [`crate::stream::ActionDelta`] in two
//! sections (`0x60` frame META, `0x61` packed actions). Reusing the
//! snapshot codec means every frame is *independently* validated: a torn
//! tail (partial length word, partial payload, or a payload failing any
//! snapshot check) is detected at the exact frame boundary and reported as
//! [`WalTail::Torn`] — a typed outcome, never a panic — so recovery can
//! truncate to the last whole frame and resume.
//!
//! [`WalWriter`] appends under a two-phase `append`/`commit` discipline:
//! `append` stages the frame bytes, `commit` makes them part of the log
//! (flushing per [`WalSync`]); any failure between the two rolls the file
//! back to its committed length, so a failed append can be retried without
//! duplicating frames. [`read_wal`] scans a segment into frames plus a
//! tail verdict; [`truncate_at`]/[`corrupt_byte_at`] are the torn-write
//! simulator the crash tests drive.
//!
//! Section tags `0x6x` are reserved for WAL frames; `0x7x` for the live
//! checkpoint sections layered on by `vexus-mining`/`vexus-core`.

use crate::dataset::Action;
use crate::ids::{ItemId, UserId};
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Segment-file magic (first four bytes of every WAL segment).
pub const WAL_MAGIC: [u8; 4] = *b"VXWL";
/// Segment format version.
pub const WAL_VERSION: u32 = 1;
/// Bytes of segment header preceding the first frame.
pub const WAL_HEADER_BYTES: u64 = 8;

/// Frame META section: `[epoch_lo, epoch_hi, n_actions]`.
pub const TAG_WAL_FRAME: u32 = 0x60;
/// Frame payload: `[user, item, value_bits]` per action.
pub const TAG_WAL_ACTIONS: u32 = 0x61;

/// When appended frames are forced to stable storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WalSync {
    /// `fdatasync` on every [`WalWriter::commit`] — a committed frame
    /// survives a crash. The durable default.
    #[default]
    PerFrame,
    /// Commits only flush to the OS; [`WalWriter::sync`] (called at
    /// checkpoint time) forces stability. A crash may lose frames since
    /// the last sync — the cheap knob the `d9` experiment measures.
    Batched,
}

/// Typed WAL failures. IO errors are flattened to `(op, ErrorKind)` so the
/// type stays `Clone + PartialEq` for assertions and counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An OS-level file operation failed.
    Io {
        /// Which operation (`"open"`, `"append"`, `"sync"`, …).
        op: &'static str,
        /// The underlying [`std::io::ErrorKind`].
        kind: std::io::ErrorKind,
    },
    /// The segment header is not a WAL of a supported version. The file is
    /// left untouched — a foreign file is never truncated.
    BadHeader {
        /// What was wrong.
        what: &'static str,
    },
    /// A frame payload failed snapshot validation where a hard error (not
    /// a torn-tail verdict) was required.
    Frame(SnapshotError),
    /// A rollback after a failed append could not restore the committed
    /// length; the writer refuses further appends.
    Poisoned,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { op, kind } => write!(f, "wal {op} failed: {kind}"),
            WalError::BadHeader { what } => write!(f, "not a wal segment: {what}"),
            WalError::Frame(e) => write!(f, "wal frame rejected: {e}"),
            WalError::Poisoned => write!(f, "wal writer poisoned by a failed rollback"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for WalError {
    fn from(e: SnapshotError) -> Self {
        WalError::Frame(e)
    }
}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> WalError {
    move |e| WalError::Io { op, kind: e.kind() }
}

/// Pack actions into snapshot words (`[user, item, value_bits]` each).
pub fn action_words(actions: &[Action]) -> impl Iterator<Item = u32> + '_ {
    actions
        .iter()
        .flat_map(|a| [a.user.raw(), a.item.raw(), a.value.to_bits()])
}

/// Unpack a `[user, item, value_bits]` word run written by
/// [`action_words`]. `tag` labels the section in errors.
pub fn actions_from_words(tag: u32, words: &[u32]) -> Result<Vec<Action>, SnapshotError> {
    if !words.len().is_multiple_of(3) {
        return Err(SnapshotError::Malformed {
            tag,
            what: "action payload is not a whole number of [user, item, value] triples",
        });
    }
    Ok(words
        .chunks_exact(3)
        .map(|c| Action {
            user: UserId::new(c[0]),
            item: ItemId::new(c[1]),
            value: f32::from_bits(c[2]),
        })
        .collect())
}

/// One decoded WAL frame: an epoch-stamped action delta.
#[derive(Debug, Clone, PartialEq)]
pub struct WalFrame {
    /// The delta's epoch stamp (the ingest buffer's cut ordinal).
    pub epoch: u64,
    /// The delta's actions, in arrival order.
    pub actions: Vec<Action>,
}

/// Encode one frame payload (a self-validating snapshot buffer).
pub fn encode_frame(epoch: u64, actions: &[Action]) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.section_words(
        TAG_WAL_FRAME,
        &[epoch as u32, (epoch >> 32) as u32, actions.len() as u32],
    );
    w.section_word_iter(TAG_WAL_ACTIONS, action_words(actions));
    w.finish()
}

/// Decode one frame payload written by [`encode_frame`].
pub fn decode_frame(bytes: &[u8]) -> Result<WalFrame, WalError> {
    let r = SnapshotReader::load(bytes)?;
    let meta = r.section_words(TAG_WAL_FRAME)?;
    let meta = meta.as_slice();
    if meta.len() != 3 {
        return Err(SnapshotError::Malformed {
            tag: TAG_WAL_FRAME,
            what: "frame META is not three words",
        }
        .into());
    }
    let epoch = meta[0] as u64 | ((meta[1] as u64) << 32);
    let payload = r.section_words(TAG_WAL_ACTIONS)?;
    let actions = actions_from_words(TAG_WAL_ACTIONS, payload.as_slice())?;
    if actions.len() != meta[2] as usize {
        return Err(SnapshotError::Malformed {
            tag: TAG_WAL_FRAME,
            what: "frame META action count disagrees with the payload",
        }
        .into());
    }
    Ok(WalFrame { epoch, actions })
}

/// Where a segment scan ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte of the segment belongs to a whole, valid frame.
    Clean,
    /// The segment ends in (or contains) bytes that do not form a valid
    /// frame: a crash mid-append, a torn write, or corruption. Frames
    /// before `valid_bytes` are intact; everything after is unreachable
    /// (the length-prefix chain is broken) and safe to truncate.
    Torn {
        /// Segment length up to and including the last valid frame.
        valid_bytes: u64,
        /// Bytes past the valid prefix.
        lost_bytes: u64,
    },
}

/// Result of scanning one WAL segment.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// Whole, valid frames in file order.
    pub frames: Vec<WalFrame>,
    /// Tail verdict.
    pub tail: WalTail,
    /// Total bytes in the segment file.
    pub bytes: u64,
}

impl WalScan {
    /// Segment length up to the last valid frame (what a writer reopening
    /// the segment truncates to).
    pub fn valid_bytes(&self) -> u64 {
        match self.tail {
            WalTail::Clean => self.bytes,
            WalTail::Torn { valid_bytes, .. } => valid_bytes,
        }
    }
}

/// Scan in-memory segment bytes into frames plus a tail verdict.
///
/// A file shorter than the header is treated as torn at offset zero (a
/// crash before the header landed); a wrong magic or version is a hard
/// [`WalError::BadHeader`] — the file is not a WAL and must not be
/// truncated or appended to.
pub fn scan_wal(bytes: &[u8]) -> Result<WalScan, WalError> {
    let total = bytes.len() as u64;
    if bytes.len() < WAL_HEADER_BYTES as usize {
        return Ok(WalScan {
            frames: Vec::new(),
            tail: WalTail::Torn {
                valid_bytes: 0,
                lost_bytes: total,
            },
            bytes: total,
        });
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(WalError::BadHeader {
            what: "bad magic (expected \"VXWL\")",
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("checked length"));
    if version != WAL_VERSION {
        return Err(WalError::BadHeader {
            what: "unsupported wal version",
        });
    }
    let mut frames = Vec::new();
    let mut pos = WAL_HEADER_BYTES as usize;
    let torn_at = loop {
        if pos == bytes.len() {
            break None;
        }
        if bytes.len() - pos < 4 {
            break Some(pos);
        }
        let len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("checked length")) as usize;
        if len == 0 || !len.is_multiple_of(4) || bytes.len() - pos - 4 < len {
            break Some(pos);
        }
        match decode_frame(&bytes[pos + 4..pos + 4 + len]) {
            Ok(f) => frames.push(f),
            Err(_) => break Some(pos),
        }
        pos += 4 + len;
    };
    Ok(WalScan {
        frames,
        tail: match torn_at {
            None => WalTail::Clean,
            Some(at) => WalTail::Torn {
                valid_bytes: at as u64,
                lost_bytes: total - at as u64,
            },
        },
        bytes: total,
    })
}

/// Read and scan a segment file.
pub fn read_wal(path: &Path) -> Result<WalScan, WalError> {
    let bytes = std::fs::read(path).map_err(io_err("read"))?;
    scan_wal(&bytes)
}

/// Appends frames to one WAL segment under the two-phase
/// `append`/`commit` discipline (see the module docs).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    sync: WalSync,
    /// Valid log length: every byte below this is a whole committed frame
    /// (or the header). Rollback truncates to it.
    committed: u64,
    /// Bytes staged by `append` since the last `commit`.
    staged: u64,
    poisoned: bool,
    frames: u64,
}

impl WalWriter {
    /// Create a fresh segment at `path` (fails if the file exists) and
    /// write its header.
    pub fn create(path: &Path, sync: WalSync) -> Result<Self, WalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(io_err("create"))?;
        file.write_all(&WAL_MAGIC).map_err(io_err("create"))?;
        file.write_all(&WAL_VERSION.to_le_bytes())
            .map_err(io_err("create"))?;
        file.sync_data().map_err(io_err("sync"))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            sync,
            committed: WAL_HEADER_BYTES,
            staged: 0,
            poisoned: false,
            frames: 0,
        })
    }

    /// Reopen an existing segment for appending: scan it, physically
    /// truncate any torn tail, and position at the end of the valid
    /// prefix. Returns the scan so the caller sees the surviving frames.
    pub fn open(path: &Path, sync: WalSync) -> Result<(Self, WalScan), WalError> {
        let scan = read_wal(path)?;
        let file = OpenOptions::new()
            .write(true)
            .read(true)
            .open(path)
            .map_err(io_err("open"))?;
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            sync,
            committed: scan.valid_bytes().max(WAL_HEADER_BYTES),
            staged: 0,
            poisoned: false,
            frames: 0,
        };
        w.file.set_len(w.committed).map_err(io_err("truncate"))?;
        if scan.bytes < WAL_HEADER_BYTES {
            // The crash landed before the header: rewrite it.
            w.file.seek(SeekFrom::Start(0)).map_err(io_err("seek"))?;
            w.file.write_all(&WAL_MAGIC).map_err(io_err("open"))?;
            w.file
                .write_all(&WAL_VERSION.to_le_bytes())
                .map_err(io_err("open"))?;
        }
        w.file
            .seek(SeekFrom::Start(w.committed))
            .map_err(io_err("seek"))?;
        w.file.sync_data().map_err(io_err("sync"))?;
        Ok((w, scan))
    }

    /// Stage one frame after the committed prefix. Nothing is part of the
    /// log until [`WalWriter::commit`]; on error the file is rolled back
    /// so the append can be retried without duplication.
    pub fn append(&mut self, epoch: u64, actions: &[Action]) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        let payload = encode_frame(epoch, actions);
        let res = self
            .file
            .write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|()| self.file.write_all(&payload));
        match res {
            Ok(()) => {
                self.staged += 4 + payload.len() as u64;
                Ok(())
            }
            Err(e) => {
                self.rollback();
                Err(WalError::Io {
                    op: "append",
                    kind: e.kind(),
                })
            }
        }
    }

    /// Commit the staged frame: flush it (and `fdatasync` under
    /// [`WalSync::PerFrame`]) and extend the valid log length. Returns the
    /// frame bytes committed. On error the staged bytes are rolled back.
    pub fn commit(&mut self) -> Result<u64, WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        let staged = self.staged;
        let res = match self.sync {
            WalSync::PerFrame => self.file.sync_data(),
            WalSync::Batched => self.file.flush(),
        };
        if let Err(e) = res {
            self.rollback();
            return Err(WalError::Io {
                op: "commit",
                kind: e.kind(),
            });
        }
        self.committed += staged;
        self.staged = 0;
        if staged > 0 {
            self.frames += 1;
        }
        Ok(staged)
    }

    /// Discard staged-but-uncommitted bytes, restoring the file to its
    /// committed length. Idempotent; a failed truncate poisons the writer
    /// (subsequent appends report [`WalError::Poisoned`]).
    pub fn rollback(&mut self) {
        self.staged = 0;
        if self
            .file
            .set_len(self.committed)
            .and_then(|()| self.file.seek(SeekFrom::Start(self.committed)).map(|_| ()))
            .is_err()
        {
            self.poisoned = true;
        }
    }

    /// Force every committed frame to stable storage (the checkpoint-time
    /// barrier for [`WalSync::Batched`] writers).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data().map_err(io_err("sync"))
    }

    /// Valid log length in bytes (header plus committed frames).
    pub fn committed_bytes(&self) -> u64 {
        self.committed
    }

    /// Frames committed through this writer.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Torn-write simulator: cut `path` to `len` bytes, as a crash mid-write
/// would.
pub fn truncate_at(path: &Path, len: u64) -> Result<(), WalError> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(io_err("open"))?;
    file.set_len(len).map_err(io_err("truncate"))
}

/// Torn-write simulator: XOR one byte of `path` at `offset` (`xor` must be
/// non-zero so the byte actually changes).
pub fn corrupt_byte_at(path: &Path, offset: u64, xor: u8) -> Result<(), WalError> {
    assert!(xor != 0, "corrupting with xor 0 is a no-op");
    let mut bytes = std::fs::read(path).map_err(io_err("read"))?;
    let at = (offset as usize).min(bytes.len().saturating_sub(1));
    if bytes.is_empty() {
        return Ok(());
    }
    bytes[at] ^= xor;
    std::fs::write(path, bytes).map_err(io_err("write"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(u: u32, i: u32, v: f32) -> Action {
        Action {
            user: UserId::new(u),
            item: ItemId::new(i),
            value: v,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vexus-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal-0.vxwl")
    }

    fn sample_frames() -> Vec<(u64, Vec<Action>)> {
        vec![
            (0, vec![act(0, 1, 1.0), act(2, 3, -0.5)]),
            (1, vec![act(4, 5, 2.0)]),
            (2, vec![act(6, 7, 0.0), act(8, 9, 9.5), act(1, 1, 3.0)]),
        ]
    }

    fn write_sample(path: &Path, sync: WalSync) -> WalWriter {
        let mut w = WalWriter::create(path, sync).unwrap();
        for (e, actions) in sample_frames() {
            w.append(e, &actions).unwrap();
            w.commit().unwrap();
        }
        w
    }

    #[test]
    fn frames_round_trip_through_a_segment() {
        let path = tmp("roundtrip");
        let w = write_sample(&path, WalSync::PerFrame);
        assert_eq!(w.frames(), 3);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.bytes, w.committed_bytes());
        let expect: Vec<WalFrame> = sample_frames()
            .into_iter()
            .map(|(epoch, actions)| WalFrame { epoch, actions })
            .collect();
        assert_eq!(scan.frames, expect);
        // Large epochs survive the two-word split.
        let path2 = path.with_file_name("wal-big.vxwl");
        let mut w2 = WalWriter::create(&path2, WalSync::Batched).unwrap();
        w2.append(u64::MAX - 1, &[act(0, 0, 1.0)]).unwrap();
        w2.commit().unwrap();
        w2.sync().unwrap();
        assert_eq!(read_wal(&path2).unwrap().frames[0].epoch, u64::MAX - 1);
    }

    #[test]
    fn every_truncation_is_a_clean_torn_tail() {
        let path = tmp("truncate");
        let w = write_sample(&path, WalSync::PerFrame);
        let full = w.committed_bytes();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..full {
            let scan = scan_wal(&bytes[..cut as usize]).unwrap();
            // Frames are whole or absent, and the valid prefix never
            // exceeds the cut. A cut landing exactly on a frame boundary
            // is a (shorter) clean log; anywhere else is torn.
            assert!(scan.frames.len() <= 3);
            assert!(scan.valid_bytes() <= cut);
            if scan.tail == WalTail::Clean {
                assert_eq!(scan.valid_bytes(), cut);
            }
            for (k, f) in scan.frames.iter().enumerate() {
                assert_eq!(f.epoch, k as u64);
            }
        }
    }

    #[test]
    fn reopen_truncates_the_torn_tail_and_appends() {
        let path = tmp("reopen");
        let w = write_sample(&path, WalSync::PerFrame);
        let full = w.committed_bytes();
        drop(w);
        // Tear the last frame in half.
        truncate_at(&path, full - 7).unwrap();
        let (mut w, scan) = WalWriter::open(&path, WalSync::PerFrame).unwrap();
        assert_eq!(scan.frames.len(), 2);
        assert!(matches!(scan.tail, WalTail::Torn { .. }));
        w.append(2, &[act(7, 7, 7.0)]).unwrap();
        w.commit().unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.frames[2].actions, vec![act(7, 7, 7.0)]);
    }

    #[test]
    fn corruption_is_torn_never_silent() {
        let path = tmp("corrupt");
        let w = write_sample(&path, WalSync::PerFrame);
        let full = w.committed_bytes();
        drop(w);
        let pristine = std::fs::read(&path).unwrap();
        let clean = scan_wal(&pristine).unwrap();
        for off in WAL_HEADER_BYTES..full {
            let mut bytes = pristine.clone();
            bytes[off as usize] ^= 0x40;
            let scan = scan_wal(&bytes).unwrap();
            // A flipped byte can only cost frames from its own frame on:
            // surviving frames are byte-identical to the pristine prefix.
            assert!(scan.frames.len() < clean.frames.len() || scan.tail == WalTail::Clean);
            for (f, orig) in scan.frames.iter().zip(&clean.frames) {
                assert_eq!(f, orig, "corruption at {off} silently altered a frame");
            }
        }
    }

    #[test]
    fn rollback_discards_staged_frames() {
        let path = tmp("rollback");
        let mut w = WalWriter::create(&path, WalSync::PerFrame).unwrap();
        w.append(0, &[act(1, 1, 1.0)]).unwrap();
        w.commit().unwrap();
        let committed = w.committed_bytes();
        // Stage a frame, then abandon it (the wal.sync fail-point path).
        w.append(1, &[act(2, 2, 2.0)]).unwrap();
        w.rollback();
        assert_eq!(w.committed_bytes(), committed);
        // The retried append lands exactly once.
        w.append(1, &[act(2, 2, 2.0)]).unwrap();
        w.commit().unwrap();
        drop(w);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[1].epoch, 1);
    }

    #[test]
    fn foreign_files_are_rejected_not_truncated() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a wal segment").unwrap();
        assert!(matches!(
            read_wal(&path).unwrap_err(),
            WalError::BadHeader { .. }
        ));
        assert!(matches!(
            WalWriter::open(&path, WalSync::PerFrame).unwrap_err(),
            WalError::BadHeader { .. }
        ));
        // Untouched.
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"definitely not a wal segment"
        );
    }

    #[test]
    fn sub_header_files_reopen_cleanly() {
        let path = tmp("subheader");
        std::fs::write(&path, b"VXW").unwrap();
        let scan = read_wal(&path).unwrap();
        assert!(scan.frames.is_empty());
        assert!(matches!(scan.tail, WalTail::Torn { valid_bytes: 0, .. }));
        let (mut w, _) = WalWriter::open(&path, WalSync::PerFrame).unwrap();
        w.append(0, &[act(0, 0, 1.0)]).unwrap();
        w.commit().unwrap();
        drop(w);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.frames.len(), 1);
    }

    #[test]
    fn empty_delta_frames_are_legal() {
        let f = decode_frame(&encode_frame(41, &[])).unwrap();
        assert_eq!(f.epoch, 41);
        assert!(f.actions.is_empty());
    }
}
