//! Versioned flat-buffer snapshot format: the build-once-serve-many seam.
//!
//! A snapshot is one contiguous little-endian buffer with a fixed header
//! (magic, version, flags, section count, checksum), a section offset
//! table, and 4-byte-aligned sections that are plain `u32` arrays (or raw
//! byte blobs for string tables). The layout mirrors the in-memory shape
//! of the built engine — flat CSR arrays, offset tables, sorted id lists —
//! so loading is bounds/alignment/checksum **validation plus slice
//! reinterpretation**, not a field-by-field deserialize walk:
//!
//! ```text
//! word 0      MAGIC  ("VXSN")
//! word 1      VERSION
//! word 2      flags  (must be 0 in version 1)
//! word 3      n_sections
//! word 4      checksum (FNV-1a over the whole buffer, this word zeroed)
//! words 5..   section table: n_sections × [tag, byte_offset, byte_len]
//! then        sections, each starting on a 4-byte boundary
//! ```
//!
//! [`SnapshotReader::load`] copies the input bytes **once** into a shared
//! word-aligned allocation (`Arc<[u32]>`) — the price of staying free of
//! `unsafe` pointer casts while the input may be an arbitrarily aligned
//! `&[u8]`; an mmap-backed page-aligned buffer could skip it — and every
//! consumer then holds [`WordSlice`] range views into that one buffer.
//! A loaded member list, CSR, or offset table is an `Arc` refcount bump
//! plus two indices: zero per-structure copies, zero per-group heap
//! allocations.
//!
//! Every validation failure is a typed [`SnapshotError`]; `load` and the
//! section accessors never panic on corrupt input (fuzzed by
//! `tests/snapshot_roundtrip.rs`).
//!
//! Section **tags** are allocated in ranges so independent codecs cannot
//! collide: `0x1x` engine meta (vexus-core), `0x2x` group set
//! (vexus-mining), `0x3x` member→groups CSR + inverted index
//! (vexus-index), `0x4x` item catalog, `0x5x` vocabulary (this crate).

use crate::dataset::{ItemCatalog, Vocabulary};
use crate::ids::{AttrId, TokenId, ValueId};
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// `"VXSN"` as a little-endian word.
pub const MAGIC: u32 = u32::from_le_bytes(*b"VXSN");
/// Current format version. Readers reject anything else.
pub const VERSION: u32 = 1;
/// Header size in words (magic, version, flags, n_sections, checksum).
pub const HEADER_WORDS: usize = 5;
/// Words per section-table entry (tag, byte offset, byte length).
pub const TABLE_ENTRY_WORDS: usize = 3;

/// Item-catalog sections: name offsets, name bytes, category ids,
/// category-label offsets, category-label bytes.
pub const TAG_CATALOG_NAME_OFFSETS: u32 = 0x40;
pub const TAG_CATALOG_NAME_BYTES: u32 = 0x41;
pub const TAG_CATALOG_CATEGORIES: u32 = 0x42;
pub const TAG_CATALOG_LABEL_OFFSETS: u32 = 0x43;
pub const TAG_CATALOG_LABEL_BYTES: u32 = 0x44;
/// Vocabulary section: `(attr, value)` word pairs in token order.
pub const TAG_VOCAB_PAIRS: u32 = 0x50;

/// A typed snapshot decode failure. Corrupt input of any shape — truncated,
/// bit-flipped, hostile — must surface as one of these, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer is shorter than the structure it claims to hold.
    Truncated { needed: usize, got: usize },
    /// The buffer length is not a whole number of 32-bit words.
    UnalignedLength { len: usize },
    /// The magic word is not [`MAGIC`] — not a snapshot at all.
    BadMagic { got: u32 },
    /// A version this reader does not understand.
    UnsupportedVersion { got: u32 },
    /// Flags bits this reader does not understand.
    UnsupportedFlags { got: u32 },
    /// The stored checksum does not match the buffer contents.
    ChecksumMismatch { stored: u32, computed: u32 },
    /// A section-table entry points outside the buffer (or into the
    /// header/table region).
    SectionOutOfBounds { tag: u32, offset: usize, len: usize },
    /// A section does not start on a 4-byte boundary.
    MisalignedSection { tag: u32, offset: usize },
    /// A section the decoder requires is absent.
    MissingSection { tag: u32 },
    /// The same tag appears twice in the section table.
    DuplicateSection { tag: u32 },
    /// A section is internally inconsistent (non-monotone offsets, ids out
    /// of range, unsorted members, invalid UTF-8, …).
    Malformed { tag: u32, what: &'static str },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, got } => {
                write!(f, "snapshot truncated: need {needed} bytes, have {got}")
            }
            SnapshotError::UnalignedLength { len } => {
                write!(f, "snapshot length {len} is not a multiple of 4")
            }
            SnapshotError::BadMagic { got } => {
                write!(f, "bad snapshot magic {got:#010x} (expected {MAGIC:#010x})")
            }
            SnapshotError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported snapshot version {got} (reader supports {VERSION})"
                )
            }
            SnapshotError::UnsupportedFlags { got } => {
                write!(f, "unsupported snapshot flags {got:#010x}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::SectionOutOfBounds { tag, offset, len } => write!(
                f,
                "section {tag:#x} out of bounds (offset {offset}, len {len})"
            ),
            SnapshotError::MisalignedSection { tag, offset } => {
                write!(f, "section {tag:#x} misaligned at byte offset {offset}")
            }
            SnapshotError::MissingSection { tag } => write!(f, "missing section {tag:#x}"),
            SnapshotError::DuplicateSection { tag } => write!(f, "duplicate section {tag:#x}"),
            SnapshotError::Malformed { tag, what } => {
                write!(f, "malformed section {tag:#x}: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Integrity hash over the buffer with the checksum word (word 4) treated
/// as zero, so the stamp can live inside the region it protects.
///
/// Eight interleaved word-wise FNV-1a lanes, folded FNV-style with the
/// buffer length. One lane per word position in a 32-byte stripe breaks
/// the serial xor-multiply dependency chain that makes classic byte-wise
/// FNV ~1.6 ns/byte — this form checksums the same megabyte in a fraction
/// of the time, and any bit flip still lands in exactly one lane (and so
/// in the fold). Loading is dominated by this pass, so its cost is the
/// floor on snapshot load latency.
pub fn checksum(buf: &[u8]) -> u32 {
    const OFFSET: u32 = 0x811c_9dc5;
    const PRIME: u32 = 0x0100_0193;
    let mut lanes = [OFFSET; 8];
    let mut stripes = buf.chunks_exact(32);
    let mut first = true;
    for stripe in &mut stripes {
        let mut ws = [0u32; 8];
        for (j, w) in stripe.chunks_exact(4).enumerate() {
            ws[j] = u32::from_le_bytes(w.try_into().expect("4-byte chunk"));
        }
        if first {
            // The checksum word lives in the first stripe.
            ws[4] = 0;
            first = false;
        }
        for j in 0..8 {
            lanes[j] = (lanes[j] ^ ws[j]).wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    for lane in lanes {
        h = (h ^ lane).wrapping_mul(PRIME);
    }
    let tail = stripes.remainder();
    for (i, &b) in tail.iter().enumerate() {
        // Byte-wise tail; covers the checksum bytes themselves when the
        // whole buffer is shorter than one stripe.
        let at = buf.len() - tail.len() + i;
        let b = if (16..20).contains(&at) { 0 } else { b };
        h = (h ^ b as u32).wrapping_mul(PRIME);
    }
    (h ^ buf.len() as u32).wrapping_mul(PRIME)
}

/// [`checksum`] computed from the already-parsed little-endian words of a
/// whole-word buffer — bit-identical to `checksum(bytes)` whenever
/// `len_bytes == words.len() * 4`. The loader uses this right after the
/// byte→word copy so the integrity pass reads the cache-warm words
/// instead of re-parsing the raw bytes.
fn checksum_of_words(words: &[u32], len_bytes: usize) -> u32 {
    const OFFSET: u32 = 0x811c_9dc5;
    const PRIME: u32 = 0x0100_0193;
    debug_assert_eq!(len_bytes, words.len() * 4);
    let mut lanes = [OFFSET; 8];
    let mut stripes = words.chunks_exact(8);
    let mut first = true;
    for stripe in &mut stripes {
        let mut ws: [u32; 8] = stripe.try_into().expect("8-word stripe");
        if first {
            ws[4] = 0;
            first = false;
        }
        for j in 0..8 {
            lanes[j] = (lanes[j] ^ ws[j]).wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    for lane in lanes {
        h = (h ^ lane).wrapping_mul(PRIME);
    }
    let tail_words = stripes.remainder();
    let tail_start = len_bytes - tail_words.len() * 4;
    for (k, &w) in tail_words.iter().enumerate() {
        for (i, &b) in w.to_le_bytes().iter().enumerate() {
            let at = tail_start + k * 4 + i;
            let b = if (16..20).contains(&at) { 0 } else { b };
            h = (h ^ b as u32).wrapping_mul(PRIME);
        }
    }
    (h ^ len_bytes as u32).wrapping_mul(PRIME)
}

/// Recompute and stamp the checksum word of a serialized snapshot. The
/// writer calls this last; corruption tests reuse it to re-seal a buffer
/// after a targeted mutation so structural validation (not the checksum)
/// is what rejects it.
pub fn restamp(buf: &mut [u8]) {
    if buf.len() >= 20 {
        let sum = checksum(buf);
        buf[16..20].copy_from_slice(&sum.to_le_bytes());
    }
}

/// Incremental snapshot writer: append tagged sections, then [`finish`]
/// into one checksummed buffer. Encoding is canonical — a given set of
/// sections always produces identical bytes — which is what lets tests pin
/// `encode(decode(buf)) == buf`.
///
/// [`finish`]: SnapshotWriter::finish
#[derive(Default)]
pub struct SnapshotWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u32`-array section.
    pub fn section_words(&mut self, tag: u32, words: &[u32]) {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.sections.push((tag, bytes));
    }

    /// Append a `u32`-array section from an iterator (avoids collecting a
    /// temporary `Vec<u32>` for derived arrays).
    pub fn section_word_iter(&mut self, tag: u32, words: impl Iterator<Item = u32>) {
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.sections.push((tag, bytes));
    }

    /// Append a raw byte section (string blobs). The recorded length is
    /// exact; the next section is padded to the following word boundary.
    pub fn section_bytes(&mut self, tag: u32, bytes: &[u8]) {
        self.sections.push((tag, bytes.to_vec()));
    }

    /// Lay out header + table + sections and stamp the checksum.
    pub fn finish(self) -> Vec<u8> {
        let n = self.sections.len();
        let table_bytes = (HEADER_WORDS + n * TABLE_ENTRY_WORDS) * 4;
        let mut out = Vec::with_capacity(
            table_bytes
                + self
                    .sections
                    .iter()
                    .map(|(_, b)| b.len().div_ceil(4) * 4)
                    .sum::<usize>(),
        );
        for w in [MAGIC, VERSION, 0, n as u32, 0] {
            out.extend_from_slice(&w.to_le_bytes());
        }
        // Section table: offsets are assigned sequentially, each section
        // starting on a word boundary.
        let mut cursor = table_bytes;
        for (tag, bytes) in &self.sections {
            for w in [*tag, cursor as u32, bytes.len() as u32] {
                out.extend_from_slice(&w.to_le_bytes());
            }
            cursor += bytes.len().div_ceil(4) * 4;
        }
        for (_, bytes) in &self.sections {
            out.extend_from_slice(bytes);
            out.resize(out.len().div_ceil(4) * 4, 0);
        }
        restamp(&mut out);
        out
    }
}

/// A zero-copy `&[u32]` view into the shared snapshot buffer: an `Arc`
/// refcount bump plus a word range. Cloning is cheap; the underlying
/// buffer lives as long as any view does.
#[derive(Clone)]
pub struct WordSlice {
    words: Arc<[u32]>,
    start: usize,
    len: usize,
}

impl WordSlice {
    /// The viewed words.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.words[self.start..self.start + self.len]
    }

    /// A sub-view of this view, if in range.
    pub fn slice(&self, start: usize, len: usize) -> Option<WordSlice> {
        if start.checked_add(len)? > self.len {
            return None;
        }
        Some(WordSlice {
            words: Arc::clone(&self.words),
            start: self.start + start,
            len,
        })
    }
}

impl Deref for WordSlice {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        self.as_slice()
    }
}

impl fmt::Debug for WordSlice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WordSlice[{} words]", self.len)
    }
}

impl PartialEq for WordSlice {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for WordSlice {}

/// Borrowed-or-owned `u32` array storage: the built engine owns its arrays
/// (`Owned`), a snapshot-loaded engine views the shared buffer (`Shared`).
/// Query code reads through [`Deref`] and cannot tell the difference.
#[derive(Clone, Debug)]
pub enum U32Store {
    /// Heap-owned array (the built form).
    Owned(Vec<u32>),
    /// View into a loaded snapshot buffer (the zero-copy form).
    Shared(WordSlice),
}

impl U32Store {
    /// Heap bytes owned by this store. A `Shared` view owns nothing — the
    /// snapshot buffer is accounted once at the engine level.
    pub fn heap_bytes(&self) -> usize {
        match self {
            U32Store::Owned(v) => v.capacity() * std::mem::size_of::<u32>(),
            U32Store::Shared(_) => 0,
        }
    }
}

impl Deref for U32Store {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        match self {
            U32Store::Owned(v) => v,
            U32Store::Shared(s) => s.as_slice(),
        }
    }
}

impl From<Vec<u32>> for U32Store {
    fn from(v: Vec<u32>) -> Self {
        U32Store::Owned(v)
    }
}

impl From<WordSlice> for U32Store {
    fn from(s: WordSlice) -> Self {
        U32Store::Shared(s)
    }
}

impl Default for U32Store {
    fn default() -> Self {
        U32Store::Owned(Vec::new())
    }
}

impl PartialEq for U32Store {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

/// A validated, loaded snapshot: the shared word buffer plus the parsed
/// section table. All section accessors hand out [`WordSlice`] views (or
/// decoded byte blobs for string sections) over the one buffer.
#[derive(Debug)]
pub struct SnapshotReader {
    words: Arc<[u32]>,
    /// `(tag, byte_offset, byte_len)` per section, table order.
    sections: Vec<(u32, usize, usize)>,
}

impl SnapshotReader {
    /// Validate and load a snapshot buffer: length/word alignment, magic,
    /// version, flags, section-table bounds, checksum, then per-section
    /// bounds/alignment/duplicate checks. The input is copied once into a
    /// word-aligned shared allocation; everything after that is view
    /// construction.
    pub fn load(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_WORDS * 4 {
            return Err(SnapshotError::Truncated {
                needed: HEADER_WORDS * 4,
                got: bytes.len(),
            });
        }
        if !bytes.len().is_multiple_of(4) {
            return Err(SnapshotError::UnalignedLength { len: bytes.len() });
        }
        // The one copy: arbitrary-alignment input bytes → word-aligned
        // shared buffer every view borrows from.
        let words: Arc<[u32]> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let [magic, version, flags, n_sections] = [words[0], words[1], words[2], words[3]];
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { got: magic });
        }
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion { got: version });
        }
        if flags != 0 {
            return Err(SnapshotError::UnsupportedFlags { got: flags });
        }
        let n = n_sections as usize;
        let table_end_words = HEADER_WORDS
            .checked_add(
                n.checked_mul(TABLE_ENTRY_WORDS)
                    .ok_or(SnapshotError::Truncated {
                        needed: usize::MAX,
                        got: bytes.len(),
                    })?,
            )
            .ok_or(SnapshotError::Truncated {
                needed: usize::MAX,
                got: bytes.len(),
            })?;
        if table_end_words > words.len() {
            return Err(SnapshotError::Truncated {
                needed: table_end_words * 4,
                got: bytes.len(),
            });
        }
        let stored = words[4];
        let computed = checksum_of_words(&words, bytes.len());
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let mut sections = Vec::with_capacity(n);
        for i in 0..n {
            let at = HEADER_WORDS + i * TABLE_ENTRY_WORDS;
            let (tag, offset, len) = (words[at], words[at + 1] as usize, words[at + 2] as usize);
            if offset % 4 != 0 {
                return Err(SnapshotError::MisalignedSection { tag, offset });
            }
            let end = offset
                .checked_add(len)
                .ok_or(SnapshotError::SectionOutOfBounds { tag, offset, len })?;
            if offset < table_end_words * 4 || end > bytes.len() {
                return Err(SnapshotError::SectionOutOfBounds { tag, offset, len });
            }
            if sections.iter().any(|&(t, _, _)| t == tag) {
                return Err(SnapshotError::DuplicateSection { tag });
            }
            sections.push((tag, offset, len));
        }
        Ok(Self { words, sections })
    }

    /// Tags present, in table order.
    pub fn tags(&self) -> impl Iterator<Item = u32> + '_ {
        self.sections.iter().map(|&(t, _, _)| t)
    }

    /// Total buffer size in bytes.
    pub fn buffer_bytes(&self) -> usize {
        self.words.len() * 4
    }

    fn find(&self, tag: u32) -> Result<(usize, usize), SnapshotError> {
        self.sections
            .iter()
            .find(|&&(t, _, _)| t == tag)
            .map(|&(_, o, l)| (o, l))
            .ok_or(SnapshotError::MissingSection { tag })
    }

    /// A `u32`-array section as a zero-copy view.
    pub fn section_words(&self, tag: u32) -> Result<WordSlice, SnapshotError> {
        let (offset, len) = self.find(tag)?;
        if len % 4 != 0 {
            return Err(SnapshotError::Malformed {
                tag,
                what: "u32 section length not a multiple of 4",
            });
        }
        Ok(WordSlice {
            words: Arc::clone(&self.words),
            start: offset / 4,
            len: len / 4,
        })
    }

    /// A raw byte section, decoded to an owned blob (string tables; their
    /// contents become owned `String`s anyway).
    pub fn section_bytes_owned(&self, tag: u32) -> Result<Vec<u8>, SnapshotError> {
        let (offset, len) = self.find(tag)?;
        let mut out = Vec::with_capacity(len);
        let start = offset / 4;
        let full = len / 4;
        for &w in &self.words[start..start + full] {
            out.extend_from_slice(&w.to_le_bytes());
        }
        if len % 4 != 0 {
            out.extend_from_slice(&self.words[start + full].to_le_bytes()[..len % 4]);
        }
        Ok(out)
    }
}

/// Validate that `offsets` is a monotone offset table ending exactly at
/// `total` (`offsets[0] == 0`, non-decreasing, `offsets.last() == total`).
/// Shared by every offsets-plus-payload section decoder.
pub fn validate_offsets(
    tag: u32,
    offsets: &[u32],
    total: usize,
    what: &'static str,
) -> Result<(), SnapshotError> {
    if offsets.is_empty() || offsets[0] != 0 {
        return Err(SnapshotError::Malformed { tag, what });
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Malformed { tag, what });
    }
    if *offsets.last().expect("non-empty") as usize != total {
        return Err(SnapshotError::Malformed { tag, what });
    }
    Ok(())
}

/// True iff every word stays below `bound`. A pure `max` reduction the
/// compiler vectorizes, instead of a per-element compare-and-branch.
pub fn all_bounded(words: &[u32], bound: usize) -> bool {
    words.is_empty() || (words.iter().fold(0u32, |m, &w| m.max(w)) as usize) < bound
}

/// True iff every run of `items` delimited by the (monotone, validated)
/// `offsets` table is internally sorted, where `violates(a, b)` flags an
/// adjacent pair that breaks the order.
///
/// Counts violating adjacent pairs across the whole flat array — one
/// tight pass with no per-run loop setup — and compares against the
/// violations landing exactly on run boundaries, the only positions a
/// violation is permitted. The counts agree iff no run holds one.
pub fn runs_sorted<T>(items: &[T], offsets: &[u32], violates: impl Fn(&T, &T) -> bool) -> bool {
    let total = items.windows(2).filter(|w| violates(&w[0], &w[1])).count();
    let mut at_boundaries = 0usize;
    let mut prev = 0usize;
    for &o in offsets
        .get(1..offsets.len().saturating_sub(1))
        .unwrap_or(&[])
    {
        let b = o as usize;
        if b == prev || b == 0 || b >= items.len() {
            prev = b;
            continue;
        }
        if violates(&items[b - 1], &items[b]) {
            at_boundaries += 1;
        }
        prev = b;
    }
    total == at_boundaries
}

/// Encode a string table as an offsets section plus a UTF-8 blob section.
fn encode_strings(w: &mut SnapshotWriter, offsets_tag: u32, bytes_tag: u32, strings: &[String]) {
    let mut offsets = Vec::with_capacity(strings.len() + 1);
    let mut blob = Vec::new();
    offsets.push(0u32);
    for s in strings {
        blob.extend_from_slice(s.as_bytes());
        offsets.push(blob.len() as u32);
    }
    w.section_words(offsets_tag, &offsets);
    w.section_bytes(bytes_tag, &blob);
}

/// Decode a string table written by [`encode_strings`].
fn decode_strings(
    r: &SnapshotReader,
    offsets_tag: u32,
    bytes_tag: u32,
) -> Result<Vec<String>, SnapshotError> {
    let offsets = r.section_words(offsets_tag)?;
    let blob = r.section_bytes_owned(bytes_tag)?;
    validate_offsets(offsets_tag, &offsets, blob.len(), "bad string offsets")?;
    // One bulk UTF-8 validation over the whole blob, then O(1) char-
    // boundary checks at each split point: a substring of valid UTF-8 cut
    // at char boundaries is valid UTF-8, so this accepts exactly what
    // per-string validation would.
    let utf8_err = SnapshotError::Malformed {
        tag: bytes_tag,
        what: "string table is not UTF-8",
    };
    let blob = std::str::from_utf8(&blob).map_err(|_| utf8_err.clone())?;
    let mut out = Vec::with_capacity(offsets.len() - 1);
    for pair in offsets.windows(2) {
        let (a, b) = (pair[0] as usize, pair[1] as usize);
        if !blob.is_char_boundary(a) {
            return Err(utf8_err);
        }
        out.push(blob[a..b].to_string());
    }
    Ok(out)
}

/// Encode the item catalog (names, per-item category ids, category
/// labels) into its `0x4x` sections.
pub fn encode_item_catalog(cat: &ItemCatalog, w: &mut SnapshotWriter) {
    encode_strings(
        w,
        TAG_CATALOG_NAME_OFFSETS,
        TAG_CATALOG_NAME_BYTES,
        &cat.item_names,
    );
    w.section_words(TAG_CATALOG_CATEGORIES, &cat.item_categories);
    encode_strings(
        w,
        TAG_CATALOG_LABEL_OFFSETS,
        TAG_CATALOG_LABEL_BYTES,
        &cat.category_labels,
    );
}

/// Decode the item catalog written by [`encode_item_catalog`].
pub fn decode_item_catalog(r: &SnapshotReader) -> Result<ItemCatalog, SnapshotError> {
    let item_names = decode_strings(r, TAG_CATALOG_NAME_OFFSETS, TAG_CATALOG_NAME_BYTES)?;
    let category_labels = decode_strings(r, TAG_CATALOG_LABEL_OFFSETS, TAG_CATALOG_LABEL_BYTES)?;
    let categories = r.section_words(TAG_CATALOG_CATEGORIES)?;
    if categories.len() != item_names.len() {
        return Err(SnapshotError::Malformed {
            tag: TAG_CATALOG_CATEGORIES,
            what: "one category id per item required",
        });
    }
    if categories
        .iter()
        .any(|&c| c != u32::MAX && c as usize >= category_labels.len())
    {
        return Err(SnapshotError::Malformed {
            tag: TAG_CATALOG_CATEGORIES,
            what: "category id out of range",
        });
    }
    Ok(ItemCatalog {
        item_names,
        item_categories: categories.to_vec(),
        category_labels,
    })
}

/// Encode the vocabulary as `(attr, value)` word pairs in token order.
pub fn encode_vocabulary(vocab: &Vocabulary, w: &mut SnapshotWriter) {
    w.section_word_iter(
        TAG_VOCAB_PAIRS,
        vocab
            .pairs
            .iter()
            .flat_map(|&(a, v)| [a.raw() as u32, v.raw()]),
    );
}

/// Decode the vocabulary written by [`encode_vocabulary`].
pub fn decode_vocabulary(r: &SnapshotReader) -> Result<Vocabulary, SnapshotError> {
    let words = r.section_words(TAG_VOCAB_PAIRS)?;
    if words.len() % 2 != 0 {
        return Err(SnapshotError::Malformed {
            tag: TAG_VOCAB_PAIRS,
            what: "odd pair-word count",
        });
    }
    let mut pairs = Vec::with_capacity(words.len() / 2);
    for chunk in words.chunks_exact(2) {
        if chunk[0] > u16::MAX as u32 {
            return Err(SnapshotError::Malformed {
                tag: TAG_VOCAB_PAIRS,
                what: "attr id exceeds u16",
            });
        }
        pairs.push((AttrId::new(chunk[0] as u16), ValueId::new(chunk[1])));
    }
    // Token ids are positional; the reverse map is rebuilt (it is the one
    // non-flat structure in the vocabulary, and it is tiny).
    let token_of = pairs
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, TokenId::new(i as u32)))
        .collect();
    Ok(Vocabulary { token_of, pairs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_section_buf() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section_words(0x1, &[1, 2, 3]);
        w.section_bytes(0x2, b"hello");
        w.finish()
    }

    #[test]
    fn writer_reader_round_trip() {
        let buf = two_section_buf();
        assert_eq!(buf.len() % 4, 0);
        let r = SnapshotReader::load(&buf).unwrap();
        assert_eq!(r.tags().collect::<Vec<_>>(), vec![0x1, 0x2]);
        assert_eq!(r.section_words(0x1).unwrap().as_slice(), &[1, 2, 3]);
        assert_eq!(r.section_bytes_owned(0x2).unwrap(), b"hello");
        assert_eq!(r.buffer_bytes(), buf.len());
    }

    #[test]
    fn encoding_is_canonical() {
        assert_eq!(two_section_buf(), two_section_buf());
    }

    #[test]
    fn missing_and_mistyped_sections_are_typed_errors() {
        let buf = two_section_buf();
        let r = SnapshotReader::load(&buf).unwrap();
        assert_eq!(
            r.section_words(0x9).unwrap_err(),
            SnapshotError::MissingSection { tag: 0x9 }
        );
        // The byte section has length 5 — not a valid u32 array.
        assert!(matches!(
            r.section_words(0x2).unwrap_err(),
            SnapshotError::Malformed { tag: 0x2, .. }
        ));
    }

    #[test]
    fn truncation_bad_magic_version_flags() {
        let buf = two_section_buf();
        assert!(matches!(
            SnapshotReader::load(&buf[..8]).unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
        assert!(matches!(
            SnapshotReader::load(&buf[..buf.len() - 3]).unwrap_err(),
            SnapshotError::UnalignedLength { .. }
        ));
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        restamp(&mut bad);
        assert!(matches!(
            SnapshotReader::load(&bad).unwrap_err(),
            SnapshotError::BadMagic { .. }
        ));
        let mut bad = buf.clone();
        bad[4] = 99;
        restamp(&mut bad);
        assert!(matches!(
            SnapshotReader::load(&bad).unwrap_err(),
            SnapshotError::UnsupportedVersion { got: 99 }
        ));
        let mut bad = buf.clone();
        bad[8] = 1;
        restamp(&mut bad);
        assert!(matches!(
            SnapshotReader::load(&bad).unwrap_err(),
            SnapshotError::UnsupportedFlags { got: 1 }
        ));
    }

    #[test]
    fn checksum_catches_any_flip() {
        let buf = two_section_buf();
        for at in [20, 24, buf.len() - 1] {
            let mut bad = buf.clone();
            bad[at] ^= 0x10;
            assert!(matches!(
                SnapshotReader::load(&bad).unwrap_err(),
                SnapshotError::ChecksumMismatch { .. }
            ));
        }
        // Flipping the checksum itself also mismatches.
        let mut bad = buf.clone();
        bad[16] ^= 0x1;
        assert!(matches!(
            SnapshotReader::load(&bad).unwrap_err(),
            SnapshotError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn checksum_of_words_matches_byte_checksum() {
        // The word form must agree with the byte form for every
        // whole-word length, including sub-stripe buffers where the tail
        // covers the checksum bytes themselves.
        for n_words in [5usize, 6, 7, 8, 9, 15, 16, 17, 64, 257] {
            let bytes: Vec<u8> = (0..n_words * 4).map(|i| (i * 37 + 11) as u8).collect();
            let words: Vec<u32> = bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            assert_eq!(
                checksum_of_words(&words, bytes.len()),
                checksum(&bytes),
                "disagrees at {n_words} words"
            );
        }
    }

    #[test]
    fn out_of_bounds_and_misaligned_sections() {
        // Section offset beyond the buffer (restamped so the checksum is
        // valid and the structural check is what fires).
        let mut bad = two_section_buf();
        let huge = (bad.len() as u32 + 4).to_le_bytes();
        bad[24..28].copy_from_slice(&huge); // first table entry's offset
        restamp(&mut bad);
        assert!(matches!(
            SnapshotReader::load(&bad).unwrap_err(),
            SnapshotError::SectionOutOfBounds { tag: 0x1, .. }
        ));
        // Misaligned offset.
        let mut bad = two_section_buf();
        bad[24] += 2;
        restamp(&mut bad);
        assert!(matches!(
            SnapshotReader::load(&bad).unwrap_err(),
            SnapshotError::MisalignedSection { tag: 0x1, .. }
        ));
        // Offset pointing into the header region.
        let mut bad = two_section_buf();
        bad[24..28].copy_from_slice(&4u32.to_le_bytes());
        restamp(&mut bad);
        assert!(matches!(
            SnapshotReader::load(&bad).unwrap_err(),
            SnapshotError::SectionOutOfBounds { tag: 0x1, .. }
        ));
    }

    #[test]
    fn duplicate_sections_rejected() {
        let mut w = SnapshotWriter::new();
        w.section_words(0x7, &[1]);
        w.section_words(0x7, &[2]);
        let buf = w.finish();
        assert_eq!(
            SnapshotReader::load(&buf).unwrap_err(),
            SnapshotError::DuplicateSection { tag: 0x7 }
        );
    }

    #[test]
    fn word_slice_views_share_one_buffer() {
        let buf = two_section_buf();
        let r = SnapshotReader::load(&buf).unwrap();
        let v = r.section_words(0x1).unwrap();
        let sub = v.slice(1, 2).unwrap();
        assert_eq!(sub.as_slice(), &[2, 3]);
        assert!(v.slice(2, 2).is_none());
        assert_eq!(v.slice(3, 0).unwrap().as_slice(), &[] as &[u32]);
        // A store over the view owns no heap.
        let store: U32Store = sub.into();
        assert_eq!(store.heap_bytes(), 0);
        assert_eq!(&*store, &[2, 3]);
        let owned: U32Store = vec![2, 3].into();
        assert_eq!(owned, store);
        assert!(owned.heap_bytes() >= 8);
    }

    #[test]
    fn offsets_validation() {
        assert!(validate_offsets(0x1, &[0, 2, 5], 5, "x").is_ok());
        assert!(validate_offsets(0x1, &[], 0, "x").is_err());
        assert!(validate_offsets(0x1, &[1, 2], 2, "x").is_err());
        assert!(validate_offsets(0x1, &[0, 3, 2], 2, "x").is_err());
        assert!(validate_offsets(0x1, &[0, 2], 3, "x").is_err());
    }

    #[test]
    fn catalog_and_vocab_round_trip() {
        use crate::schema::Schema;
        use crate::UserDataBuilder;
        let mut s = Schema::new();
        let g = s.add_categorical("gender");
        let mut b = UserDataBuilder::new(s);
        let u = b.user("mary");
        b.set_demo(u, g, "female").unwrap();
        b.item("Mr Miracle", Some("fiction"));
        b.item("Dune", None);
        let data = b.build();
        let vocab = Vocabulary::build(&data);
        let mut w = SnapshotWriter::new();
        encode_item_catalog(data.item_catalog(), &mut w);
        encode_vocabulary(&vocab, &mut w);
        let buf = w.finish();
        let r = SnapshotReader::load(&buf).unwrap();
        let cat = decode_item_catalog(&r).unwrap();
        assert_eq!(&cat, data.item_catalog().as_ref());
        let v2 = decode_vocabulary(&r).unwrap();
        assert_eq!(v2.pairs, vocab.pairs);
        assert_eq!(v2.token_of, vocab.token_of);
    }

    #[test]
    fn catalog_category_ids_validated() {
        let cat = ItemCatalog {
            item_names: vec!["a".into()],
            item_categories: vec![3],
            category_labels: vec!["only".into()],
        };
        let mut w = SnapshotWriter::new();
        encode_item_catalog(&cat, &mut w);
        let buf = w.finish();
        let r = SnapshotReader::load(&buf).unwrap();
        assert!(matches!(
            decode_item_catalog(&r).unwrap_err(),
            SnapshotError::Malformed {
                tag: TAG_CATALOG_CATEGORIES,
                ..
            }
        ));
    }
}
