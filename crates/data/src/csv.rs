//! Dependency-free CSV reading and writing (RFC 4180 with the usual
//! extensions: configurable delimiter, `\r\n`/`\n` line endings, quoted
//! fields with doubled-quote escapes).
//!
//! VEXUS receives "input user data either as a dataset (in the form of a CSV
//! file) or as a data stream" — this module is the CSV half of that intake.

use crate::error::DataError;

/// CSV dialect options.
#[derive(Debug, Clone, Copy)]
pub struct CsvOptions {
    /// Field delimiter (default `,`; BookCrossing dumps use `;`).
    pub delimiter: u8,
    /// Quote character (default `"`).
    pub quote: u8,
    /// Whether the first record is a header row.
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: b',',
            quote: b'"',
            has_header: true,
        }
    }
}

/// A parsed CSV document: optional header plus data records.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsvTable {
    /// Header fields (empty if `has_header` was false).
    pub header: Vec<String>,
    /// Data records.
    pub records: Vec<Vec<String>>,
}

impl CsvTable {
    /// Index of a named column.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }
}

/// Streaming CSV parser over a byte slice.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    opts: CsvOptions,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8], opts: CsvOptions) -> Self {
        Self {
            bytes,
            pos: 0,
            line: 1,
            opts,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Parse one record. Returns `None` at end of input.
    fn record(&mut self) -> Result<Option<Vec<String>>, DataError> {
        if self.at_end() {
            return Ok(None);
        }
        let mut fields = Vec::new();
        loop {
            let field = self.field()?;
            fields.push(field);
            match self.bytes.get(self.pos) {
                Some(&b) if b == self.opts.delimiter => {
                    self.pos += 1;
                }
                Some(b'\r') => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'\n') {
                        self.pos += 1;
                    }
                    self.line += 1;
                    break;
                }
                Some(b'\n') => {
                    self.pos += 1;
                    self.line += 1;
                    break;
                }
                None => break,
                Some(&other) => {
                    return Err(DataError::Csv {
                        line: self.line,
                        message: format!("unexpected byte {:?} after quoted field", other as char),
                    });
                }
            }
        }
        Ok(Some(fields))
    }

    fn field(&mut self) -> Result<String, DataError> {
        if self.bytes.get(self.pos) == Some(&self.opts.quote) {
            self.quoted_field()
        } else {
            Ok(self.bare_field())
        }
    }

    fn bare_field(&mut self) -> String {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == self.opts.delimiter || b == b'\n' || b == b'\r' {
                break;
            }
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn quoted_field(&mut self) -> Result<String, DataError> {
        let open_line = self.line;
        self.pos += 1; // consume opening quote
        let mut out = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                None => {
                    return Err(DataError::Csv {
                        line: open_line,
                        message: "unterminated quoted field".into(),
                    })
                }
                Some(&b) if b == self.opts.quote => {
                    if self.bytes.get(self.pos + 1) == Some(&self.opts.quote) {
                        out.push(self.opts.quote);
                        self.pos += 2;
                    } else {
                        self.pos += 1; // closing quote
                        break;
                    }
                }
                Some(&b'\n') => {
                    out.push(b'\n');
                    self.pos += 1;
                    self.line += 1;
                }
                Some(&b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }
}

/// Parse a full CSV document from a string.
///
/// Records are *not* required to all have the same width; ETL validation
/// handles ragged rows so that a single bad row doesn't abort ingestion.
pub fn parse(input: &str, opts: CsvOptions) -> Result<CsvTable, DataError> {
    let mut p = Parser::new(input.as_bytes(), opts);
    let mut table = CsvTable::default();
    if opts.has_header {
        if let Some(h) = p.record()? {
            table.header = h;
        }
    }
    loop {
        let start = p.pos;
        let Some(rec) = p.record()? else { break };
        // Skip a genuinely empty trailing line (a bare terminator). A
        // quoted empty field (`""`) is a real one-column record.
        let line_was_blank = matches!(p.bytes.get(start), Some(b'\n') | Some(b'\r'));
        if rec.len() == 1 && rec[0].is_empty() && line_was_blank && p.at_end() {
            break;
        }
        table.records.push(rec);
    }
    Ok(table)
}

/// Parse a CSV file from disk.
pub fn parse_file(path: &std::path::Path, opts: CsvOptions) -> Result<CsvTable, DataError> {
    let text = std::fs::read_to_string(path)?;
    parse(&text, opts)
}

/// Serialize records to CSV, quoting only when necessary.
pub fn write(header: &[String], records: &[Vec<String>], opts: CsvOptions) -> String {
    let mut out = String::new();
    let write_row = |row: &[String], out: &mut String| {
        for (i, field) in row.iter().enumerate() {
            if i > 0 {
                out.push(opts.delimiter as char);
            }
            // A lone empty field must be quoted: an unquoted empty line is
            // indistinguishable from a row terminator when re-parsing.
            let needs_quote = (row.len() == 1 && field.is_empty())
                || field
                    .bytes()
                    .any(|b| b == opts.delimiter || b == opts.quote || b == b'\n' || b == b'\r');
            if needs_quote {
                out.push(opts.quote as char);
                for ch in field.chars() {
                    if ch as u32 == opts.quote as u32 {
                        out.push(opts.quote as char);
                    }
                    out.push(ch);
                }
                out.push(opts.quote as char);
            } else {
                out.push_str(field);
            }
        }
        out.push('\n');
    };
    if !header.is_empty() {
        write_row(header, &mut out);
    }
    for rec in records {
        write_row(rec, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_simple_header_and_rows() {
        let t = parse(
            "user,item,value\nmary,book,4\nbob,book,2\n",
            CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(t.header, strs(&["user", "item", "value"]));
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.records[0], strs(&["mary", "book", "4"]));
        assert_eq!(t.column("value"), Some(2));
        assert_eq!(t.column("nope"), None);
    }

    #[test]
    fn handles_quotes_and_embedded_delimiters() {
        let t = parse(
            "a,b\n\"hello, world\",\"he said \"\"hi\"\"\"\n",
            CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(t.records[0][0], "hello, world");
        assert_eq!(t.records[0][1], "he said \"hi\"");
    }

    #[test]
    fn handles_embedded_newline_in_quotes() {
        let t = parse("a\n\"line1\nline2\"\n", CsvOptions::default()).unwrap();
        assert_eq!(t.records[0][0], "line1\nline2");
    }

    #[test]
    fn crlf_line_endings() {
        let t = parse("a,b\r\n1,2\r\n3,4\r\n", CsvOptions::default()).unwrap();
        assert_eq!(t.records, vec![strs(&["1", "2"]), strs(&["3", "4"])]);
    }

    #[test]
    fn semicolon_dialect_like_bookcrossing() {
        let opts = CsvOptions {
            delimiter: b';',
            ..Default::default()
        };
        let t = parse(
            "\"User-ID\";\"ISBN\";\"Rating\"\n\"276725\";\"034545104X\";\"0\"\n",
            opts,
        )
        .unwrap();
        assert_eq!(t.header, strs(&["User-ID", "ISBN", "Rating"]));
        assert_eq!(t.records[0], strs(&["276725", "034545104X", "0"]));
    }

    #[test]
    fn no_header_mode() {
        let opts = CsvOptions {
            has_header: false,
            ..Default::default()
        };
        let t = parse("1,2\n3,4\n", opts).unwrap();
        assert!(t.header.is_empty());
        assert_eq!(t.records.len(), 2);
    }

    #[test]
    fn unterminated_quote_is_error_with_line() {
        let err = parse("a\n\"oops\n", CsvOptions::default()).unwrap_err();
        match err {
            DataError::Csv { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("unterminated"));
            }
            other => panic!("expected Csv error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_after_quoted_field_is_error() {
        let err = parse("a,b\n\"x\"y,2\n", CsvOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Csv { .. }));
    }

    #[test]
    fn missing_final_newline_ok() {
        let t = parse("a\n1", CsvOptions::default()).unwrap();
        assert_eq!(t.records, vec![strs(&["1"])]);
    }

    #[test]
    fn empty_input() {
        let t = parse("", CsvOptions::default()).unwrap();
        assert!(t.header.is_empty());
        assert!(t.records.is_empty());
    }

    #[test]
    fn empty_fields_preserved() {
        let t = parse("a,b,c\n1,,3\n", CsvOptions::default()).unwrap();
        assert_eq!(t.records[0], strs(&["1", "", "3"]));
    }

    #[test]
    fn ragged_rows_are_preserved_for_etl() {
        let t = parse("a,b\n1\n1,2,3\n", CsvOptions::default()).unwrap();
        assert_eq!(t.records[0].len(), 1);
        assert_eq!(t.records[1].len(), 3);
    }

    #[test]
    fn write_round_trips_with_quoting() {
        let header = strs(&["name", "note"]);
        let records = vec![
            strs(&["mary", "likes \"fiction\", mostly"]),
            strs(&["bob", "line1\nline2"]),
        ];
        let text = write(&header, &records, CsvOptions::default());
        let t = parse(&text, CsvOptions::default()).unwrap();
        assert_eq!(t.header, header);
        assert_eq!(t.records, records);
    }
}
