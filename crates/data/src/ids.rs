//! Strongly-typed identifiers used across the VEXUS stack.
//!
//! All identifiers are dense indices (`u32`/`u16`) into columnar storage,
//! kept small deliberately: the group space is exponential in the number of
//! attribute/value combinations (the paper notes that 4 attributes with 5
//! values each already yield on the order of 10^6 groups), so compact ids
//! keep group member sets and inverted indexes cache-friendly.

use serde::{Deserialize, Serialize};

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[repr(transparent)]
        pub struct $name(pub $repr);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// The raw dense index.
            #[inline]
            pub const fn raw(self) -> $repr {
                self.0
            }

            /// The raw index widened to `usize` for direct slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$repr> for $name {
            #[inline]
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

dense_id!(
    /// Dense index of a user within a [`crate::dataset::UserData`].
    UserId,
    u32
);
dense_id!(
    /// Dense index of an item (book, movie, paper, product, …).
    ItemId,
    u32
);
dense_id!(
    /// Dense index of a demographic attribute within a [`crate::schema::Schema`].
    AttrId,
    u16
);
dense_id!(
    /// Dense index of a categorical value *within one attribute's dictionary*.
    ValueId,
    u32
);
dense_id!(
    /// Global token id for an `(attribute, value)` pair, assigned by the
    /// [`crate::dataset::Vocabulary`]. Tokens are the "items" fed to the
    /// frequent-itemset miners in `vexus-mining`.
    TokenId,
    u32
);

impl ValueId {
    /// Sentinel for a missing/unknown categorical value.
    pub const MISSING: ValueId = ValueId(u32::MAX);

    /// Whether this value is the missing sentinel.
    #[inline]
    pub const fn is_missing(self) -> bool {
        self.0 == u32::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw() {
        assert_eq!(UserId::new(42).raw(), 42);
        assert_eq!(AttrId::new(7).index(), 7);
        assert_eq!(usize::from(TokenId::new(9)), 9);
        let v: ValueId = 3u32.into();
        assert_eq!(v, ValueId(3));
    }

    #[test]
    fn missing_sentinel() {
        assert!(ValueId::MISSING.is_missing());
        assert!(!ValueId::new(0).is_missing());
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(UserId::new(1) < UserId::new(2));
        assert!(TokenId::new(0) < TokenId::new(u32::MAX));
    }

    #[test]
    fn display_contains_raw() {
        assert_eq!(UserId::new(5).to_string(), "UserId(5)");
        assert_eq!(ItemId::new(0).to_string(), "ItemId(0)");
    }
}
