//! The group graph `G`: "Groups form a disconnected undirected graph G
//! where an edge exists between two groups if they are not disjoint. Group
//! exploration is a navigation in that graph."

use vexus_mining::{GroupId, GroupSet};

/// Undirected overlap graph over groups.
#[derive(Debug, Clone)]
pub struct OverlapGraph {
    /// Sorted adjacency per group.
    adjacency: Vec<Vec<u32>>,
}

impl OverlapGraph {
    /// Build from a group set (computes the member→groups map internally).
    pub fn build(groups: &GroupSet) -> Self {
        crate::inverted::build_overlap_graph(groups)
    }

    /// Build from a precomputed member→groups CSR map.
    pub(crate) fn from_member_groups(
        n_groups: usize,
        member_groups: &crate::inverted::MemberGroupsCsr,
    ) -> Self {
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n_groups];
        // For each member, all containing groups are pairwise adjacent.
        for u in 0..member_groups.n_members() as u32 {
            let gs = member_groups.groups_of(u);
            for (i, &a) in gs.iter().enumerate() {
                for &b in &gs[i + 1..] {
                    adjacency[a as usize].push(b);
                    adjacency[b as usize].push(a);
                }
            }
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
            adj.dedup();
            adj.shrink_to_fit();
        }
        Self { adjacency }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Neighbors of `g` (groups sharing at least one member).
    pub fn neighbors(&self, g: GroupId) -> impl Iterator<Item = GroupId> + '_ {
        self.adjacency[g.index()].iter().map(|&h| GroupId::new(h))
    }

    /// Degree of `g`.
    pub fn degree(&self, g: GroupId) -> usize {
        self.adjacency[g.index()].len()
    }

    /// Whether two groups are adjacent.
    pub fn adjacent(&self, a: GroupId, b: GroupId) -> bool {
        self.adjacency[a.index()].binary_search(&b.0).is_ok()
    }

    /// Connected components, each a sorted list of group ids. The paper
    /// calls G "disconnected" — exploration can only reach groups in the
    /// current component without restarting.
    pub fn components(&self) -> Vec<Vec<GroupId>> {
        let n = self.adjacency.len();
        let mut comp = vec![usize::MAX; n];
        let mut out: Vec<Vec<GroupId>> = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let c = out.len();
            out.push(Vec::new());
            comp[start] = c;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                out[c].push(GroupId::new(v as u32));
                for &w in &self.adjacency[v] {
                    if comp[w as usize] == usize::MAX {
                        comp[w as usize] = c;
                        queue.push_back(w as usize);
                    }
                }
            }
            out[c].sort_unstable();
        }
        out
    }

    /// Shortest path (fewest hops) between two groups, if connected.
    /// Returned path includes both endpoints.
    pub fn shortest_path(&self, from: GroupId, to: GroupId) -> Option<Vec<GroupId>> {
        if from == to {
            return Some(vec![from]);
        }
        let n = self.adjacency.len();
        let mut prev = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        prev[from.index()] = from.0;
        queue.push_back(from.0);
        while let Some(v) = queue.pop_front() {
            for &w in &self.adjacency[v as usize] {
                if prev[w as usize] == u32::MAX {
                    prev[w as usize] = v;
                    if w == to.0 {
                        // Reconstruct.
                        let mut path = vec![to];
                        let mut cur = v;
                        while cur != from.0 {
                            path.push(GroupId::new(cur));
                            cur = prev[cur as usize];
                        }
                        path.push(from);
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// Eccentric upper bound on exploration length: BFS depth from `g` to
    /// the farthest reachable group.
    pub fn eccentricity(&self, g: GroupId) -> usize {
        let n = self.adjacency.len();
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[g.index()] = 0;
        queue.push_back(g.0);
        let mut max = 0;
        while let Some(v) = queue.pop_front() {
            for &w in &self.adjacency[v as usize] {
                if dist[w as usize] == usize::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    max = max.max(dist[w as usize]);
                    queue.push_back(w);
                }
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexus_mining::{Group, MemberSet};

    fn chain_groups() -> GroupSet {
        // g0-{0,1}, g1-{1,2}, g2-{2,3}, g3-{10} (isolated)
        let mut gs = GroupSet::new();
        gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![0, 1])));
        gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![1, 2])));
        gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![2, 3])));
        gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![10])));
        gs
    }

    #[test]
    fn edges_iff_overlap() {
        let g = OverlapGraph::build(&chain_groups());
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 2);
        assert!(g.adjacent(GroupId::new(0), GroupId::new(1)));
        assert!(g.adjacent(GroupId::new(1), GroupId::new(2)));
        assert!(!g.adjacent(GroupId::new(0), GroupId::new(2)));
        assert_eq!(g.degree(GroupId::new(3)), 0);
    }

    #[test]
    fn components_split_disconnected_graph() {
        let g = OverlapGraph::build(&chain_groups());
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = comps.iter().map(Vec::len).collect();
        assert!(sizes.contains(&3) && sizes.contains(&1));
    }

    #[test]
    fn shortest_path_through_chain() {
        let g = OverlapGraph::build(&chain_groups());
        let p = g.shortest_path(GroupId::new(0), GroupId::new(2)).unwrap();
        assert_eq!(p, vec![GroupId::new(0), GroupId::new(1), GroupId::new(2)]);
        assert!(g.shortest_path(GroupId::new(0), GroupId::new(3)).is_none());
        assert_eq!(
            g.shortest_path(GroupId::new(1), GroupId::new(1)).unwrap(),
            vec![GroupId::new(1)]
        );
    }

    #[test]
    fn eccentricity_of_chain_end() {
        let g = OverlapGraph::build(&chain_groups());
        assert_eq!(g.eccentricity(GroupId::new(0)), 2);
        assert_eq!(g.eccentricity(GroupId::new(1)), 1);
        assert_eq!(g.eccentricity(GroupId::new(3)), 0);
    }

    #[test]
    fn dense_overlap_is_clique() {
        // Three groups all sharing user 5.
        let mut gs = GroupSet::new();
        for extra in 0..3u32 {
            gs.push(Group::new(
                vec![],
                MemberSet::from_unsorted(vec![5, 100 + extra]),
            ));
        }
        let g = OverlapGraph::build(&gs);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.components().len(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = OverlapGraph::build(&GroupSet::new());
        assert_eq!(g.n_nodes(), 0);
        assert_eq!(g.n_edges(), 0);
        assert!(g.components().is_empty());
    }
}
