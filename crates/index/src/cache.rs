//! Shared read-through cache for [`GroupIndex::neighbors`] results.
//!
//! The index is immutable once built, so a neighbor list computed for one
//! exploration session is valid for *every* session over the same engine.
//! [`NeighborCache`] memoizes `(group, k)` → neighbor list behind sharded
//! mutexes: concurrent sessions clicking around one shared group space pay
//! the exact fallback scan (or even the materialized-prefix copy) once per
//! distinct query instead of once per click.
//!
//! Three properties matter for serving:
//!
//! * **transparency** — the cache stores the exact
//!   [`GroupIndex::neighbors`] result, so cached and uncached answers are
//!   byte-identical (pinned by tests and the `d5` determinism gate),
//! * **bounded memory** — per-shard FIFO eviction caps the entry count;
//!   a `capacity` of 0 disables storage entirely (every query recomputes),
//! * **cheap hits** — entries are `Arc<[Neighbor]>`, so a hit is one
//!   atomic increment, shared by all sessions that asked.

use crate::inverted::{GroupIndex, Neighbor};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use vexus_mining::{GroupId, GroupSet};

/// Number of independently locked shards (power of two).
const SHARDS: usize = 16;

/// Fail-point site: fires inside a shard's insert critical section,
/// keyed by shard index (`Panic` action poisons the shard, `Error`
/// action skips the insert — both degrade to cache misses).
#[cfg(feature = "failpoints")]
const FP_CACHE_SHARD: &str = "cache.shard";

/// Hit/miss counters of a [`NeighborCache`], readable at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to compute (and, capacity permitting, insert).
    pub misses: u64,
    /// Poisoned shards recovered (contents dropped, shard kept serving).
    pub recoveries: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no queries were served).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard {
    entries: HashMap<(u32, u32), Arc<[Neighbor]>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<(u32, u32)>,
}

/// Bounded, sharded read-through cache over [`GroupIndex::neighbors`].
pub struct NeighborCache {
    shards: Vec<Mutex<Shard>>,
    /// Maximum entries per shard (total capacity / shard count).
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    recoveries: AtomicU64,
}

impl std::fmt::Debug for NeighborCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeighborCache")
            .field("capacity", &(self.per_shard * SHARDS))
            .field("stats", &self.stats())
            .finish()
    }
}

impl NeighborCache {
    /// A cache holding at most `capacity` neighbor lists (rounded up to a
    /// multiple of the shard count; `0` keeps nothing and turns every
    /// query into a counted miss).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS);
        let shards = (0..SHARDS)
            .map(|_| {
                Mutex::new(Shard {
                    entries: HashMap::new(),
                    order: VecDeque::new(),
                })
            })
            .collect();
        Self {
            shards,
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }

    /// Lock a shard, recovering from poison. A panic inside the critical
    /// section (only reachable through the `cache.shard` fail point or a
    /// bug) may leave `entries` and `order` out of step, so recovery
    /// drops the shard's contents: the cache is a pure memo over an
    /// immutable index, losing entries only costs recomputes — never
    /// correctness, and never a propagated panic. `clear_poison` makes
    /// the recovery one-shot rather than once per subsequent access.
    fn lock_shard(&self, i: usize) -> MutexGuard<'_, Shard> {
        let shard = &self.shards[i];
        shard.lock().unwrap_or_else(|poisoned| {
            shard.clear_poison();
            self.recoveries.fetch_add(1, Ordering::Relaxed);
            let mut guard = poisoned.into_inner();
            guard.entries.clear();
            guard.order.clear();
            guard
        })
    }

    fn shard_of(g: GroupId, k: usize) -> usize {
        // Mix the key (xor-shift around a Fibonacci multiply) so consecutive
        // group ids spread across shards instead of contending on one lock —
        // a skewed shard whose working set exceeds its FIFO quota would
        // otherwise thrash on cyclic access patterns.
        let mut h = (g.0 as u64) << 32 | (k as u64 & 0xFFFF_FFFF);
        h ^= h >> 33;
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        h as usize & (SHARDS - 1)
    }

    /// The top-`k` neighbors of `g`: served from the cache when present,
    /// computed through [`GroupIndex::neighbors`] (and cached) otherwise.
    /// The returned list is always byte-identical to the uncached call.
    pub fn neighbors(
        &self,
        index: &GroupIndex,
        groups: &GroupSet,
        g: GroupId,
        k: usize,
    ) -> Arc<[Neighbor]> {
        let key = (g.0, k as u32);
        let si = Self::shard_of(g, k);
        if let Some(hit) = self.lock_shard(si).entries.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Compute outside the lock: a slow fallback scan must not block
        // sibling queries that hash to the same shard.
        let computed: Arc<[Neighbor]> = index.neighbors(groups, g, k).into();
        self.misses.fetch_add(1, Ordering::Relaxed);
        if self.per_shard > 0 {
            let mut guard = self.lock_shard(si);
            #[cfg(feature = "failpoints")]
            if vexus_failpoint::hit_key(FP_CACHE_SHARD, si as u64) {
                return computed;
            }
            if !guard.entries.contains_key(&key) {
                if guard.entries.len() >= self.per_shard {
                    if let Some(old) = guard.order.pop_front() {
                        guard.entries.remove(&old);
                    }
                }
                guard.entries.insert(key, Arc::clone(&computed));
                guard.order.push_back(key);
            }
        }
        computed
    }

    /// Carry entries into a fresh cache of the same capacity across an
    /// epoch swap, keeping only those `keep` approves. Entries are copied
    /// per shard in FIFO order (the eviction order is preserved); counters
    /// start at zero, so the new epoch reports its own hit rate.
    ///
    /// `keep` sees the cached group id and neighbor list. The serving
    /// layer keeps an entry only when the group is id-stable and clean
    /// across the swap and every cached neighbor id is id-stable — in
    /// which case the cached bytes are already the new epoch's answer, so
    /// transparency (cached ≡ uncached) is preserved without a rewrite.
    pub fn carry_over(&self, keep: impl Fn(u32, &[Neighbor]) -> bool) -> NeighborCache {
        let fresh = NeighborCache::new(self.per_shard * SHARDS);
        for i in 0..SHARDS {
            let old = self.lock_shard(i);
            let mut new = fresh.shards[i].lock().expect("fresh shard is unshared");
            for &key in &old.order {
                if let Some(list) = old.entries.get(&key) {
                    if keep(key.0, list) {
                        new.entries.insert(key, Arc::clone(list));
                        new.order.push_back(key);
                    }
                }
            }
        }
        fresh
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
        }
    }

    /// Entries currently cached (across all shards).
    pub fn len(&self) -> usize {
        (0..SHARDS).map(|i| self.lock_shard(i).entries.len()).sum()
    }

    /// Poison the shard `g`/`k` maps to, simulating a crash inside the
    /// critical section — recovery-path tests only.
    #[cfg(test)]
    fn poison_shard_of(&self, g: GroupId, k: usize) {
        let shard = &self.shards[Self::shard_of(g, k)];
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = shard.lock().unwrap();
                panic!("poison the cache shard");
            })
            .join()
        });
        assert!(shard.is_poisoned());
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::IndexConfig;
    use vexus_mining::{Group, MemberSet};

    fn fixture() -> (GroupSet, GroupIndex) {
        let mut gs = GroupSet::new();
        for i in 0..30u32 {
            let members: Vec<u32> = (i..i + 10).collect();
            gs.push(Group::new(vec![], MemberSet::from_unsorted(members)));
        }
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.1,
                threads: 1,
            },
        );
        (gs, idx)
    }

    #[test]
    fn cached_results_match_uncached() {
        let (gs, idx) = fixture();
        let cache = NeighborCache::new(64);
        for (gid, _) in gs.iter() {
            for k in [1usize, 4, 16] {
                let direct = idx.neighbors(&gs, gid, k);
                let cached = cache.neighbors(&idx, &gs, gid, k);
                assert_eq!(&cached[..], &direct[..], "g={gid} k={k}");
                // Second query is a hit with the same bytes.
                let again = cache.neighbors(&idx, &gs, gid, k);
                assert_eq!(&again[..], &direct[..]);
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 30 * 3);
        assert_eq!(stats.hits, 30 * 3);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_bounds_entries() {
        let (gs, idx) = fixture();
        let cache = NeighborCache::new(16);
        for round in 0..3 {
            for (gid, _) in gs.iter() {
                cache.neighbors(&idx, &gs, gid, 8 + round);
            }
        }
        // ceil(16/SHARDS) per shard * SHARDS shards is the hard ceiling.
        assert!(cache.len() <= 16usize.div_ceil(SHARDS) * SHARDS);
    }

    #[test]
    fn zero_capacity_counts_misses_and_stores_nothing() {
        let (gs, idx) = fixture();
        let cache = NeighborCache::new(0);
        let g = GroupId::new(0);
        let a = cache.neighbors(&idx, &gs, g, 5);
        let b = cache.neighbors(&idx, &gs, g, 5);
        assert_eq!(&a[..], &b[..]);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn poisoned_shard_degrades_to_a_miss_not_a_panic() {
        let (gs, idx) = fixture();
        let cache = NeighborCache::new(64);
        let g = GroupId::new(3);
        let direct = idx.neighbors(&gs, g, 6);
        cache.neighbors(&idx, &gs, g, 6);
        assert_eq!(cache.stats().hits, 0);
        cache.poison_shard_of(g, 6);
        // First access after the poison recovers the shard: its contents
        // are gone (a miss, recomputed correctly), but nothing panics and
        // the recovery is counted exactly once.
        let after = cache.neighbors(&idx, &gs, g, 6);
        assert_eq!(&after[..], &direct[..]);
        let stats = cache.stats();
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.hits, 0, "post-poison access is a miss");
        // The shard serves (and caches) normally again.
        cache.neighbors(&idx, &gs, g, 6);
        let settled = cache.stats();
        assert_eq!(settled.hits, 1);
        assert_eq!(settled.recoveries, 1, "recovery is one-shot");
    }

    #[test]
    fn carry_over_keeps_approved_entries_and_resets_counters() {
        let (gs, idx) = fixture();
        let cache = NeighborCache::new(64);
        for (gid, _) in gs.iter() {
            cache.neighbors(&idx, &gs, gid, 4);
        }
        let populated = cache.len();
        assert!(populated > 0);
        // Keep only even group ids.
        let carried = cache.carry_over(|g, _| g % 2 == 0);
        assert_eq!(carried.len(), populated / 2, "odd ids dropped");
        assert_eq!(carried.stats(), CacheStats::default(), "fresh counters");
        // Surviving entries are hits with the original bytes; dropped
        // entries recompute as misses.
        let even = GroupId::new(2);
        let direct = idx.neighbors(&gs, even, 4);
        assert_eq!(&carried.neighbors(&idx, &gs, even, 4)[..], &direct[..]);
        assert_eq!(carried.stats().hits, 1);
        carried.neighbors(&idx, &gs, GroupId::new(3), 4);
        assert_eq!(carried.stats().misses, 1);
        // Keep-nothing empties; the original cache is untouched.
        assert!(cache.carry_over(|_, _| false).is_empty());
        assert_eq!(cache.len(), populated);
    }

    #[test]
    fn concurrent_queries_agree() {
        let (gs, idx) = fixture();
        let cache = NeighborCache::new(128);
        let reference: Vec<Vec<Neighbor>> = gs
            .iter()
            .map(|(gid, _)| idx.neighbors(&gs, gid, 6))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for (gid, _) in gs.iter() {
                        let got = cache.neighbors(&idx, &gs, gid, 6);
                        assert_eq!(&got[..], &reference[gid.index()][..]);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 30);
        // Racing first-queries may all miss (compute runs outside the
        // lock); what the design guarantees is that once the race settles,
        // every key is cached: a sequential sweep is 100% hits.
        for (gid, _) in gs.iter() {
            cache.neighbors(&idx, &gs, gid, 6);
        }
        let after = cache.stats();
        assert_eq!(after.hits - stats.hits, 30);
        assert_eq!(after.misses, stats.misses);
    }
}
