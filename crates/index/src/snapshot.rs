//! Snapshot codec for the inverted index (`0x2x` CSR + `0x3x` index tags).
//!
//! The flat in-memory layout of [`GroupIndex`] — offset table + entry
//! array + full-length table + member→groups CSR — maps 1:1 onto snapshot
//! sections. The only wrinkle is the entry array: Rust does not guarantee
//! the layout of the `(GroupId, f32)` tuple, so entries are stored as two
//! parallel `u32` sections (ids, similarity bit patterns) and interleaved
//! back into **one** flat `Vec<Neighbor>` allocation on load. The offset
//! tables and the CSR load as zero-copy [`vexus_data::U32Store`] views.

use crate::inverted::{neighbor_order, GroupIndex, MemberGroupsCsr, Neighbor};
use vexus_data::snapshot::{all_bounded, runs_sorted, validate_offsets};
use vexus_data::{SnapshotError, SnapshotReader, SnapshotWriter};
use vexus_mining::GroupId;

/// Member→groups CSR offsets (`n_members + 1` entries).
pub const TAG_CSR_OFFSETS: u32 = 0x20;
/// Member→groups CSR concatenated group ids, member-major.
pub const TAG_CSR_IDS: u32 = 0x21;
/// Materialized-list offsets (`n_groups + 1` entries).
pub const TAG_INDEX_LIST_OFFSETS: u32 = 0x30;
/// Materialized neighbor group ids, group-major.
pub const TAG_INDEX_LIST_IDS: u32 = 0x31;
/// Materialized neighbor similarities as `f32` bit patterns, parallel to
/// the ids section.
pub const TAG_INDEX_LIST_SIMS: u32 = 0x32;
/// Per-group full (overlapping) neighbor counts.
pub const TAG_INDEX_FULL_LENGTHS: u32 = 0x33;
/// Index metadata: `scored_pairs` as two little-endian words (lo, hi).
pub const TAG_INDEX_META: u32 = 0x34;

/// Encode the index into its `0x2x`/`0x3x` sections.
pub fn encode_group_index(index: &GroupIndex, w: &mut SnapshotWriter) {
    let (list_offsets, entries, full_lengths, csr) = index.parts();
    w.section_words(TAG_CSR_OFFSETS, csr.offsets());
    w.section_words(TAG_CSR_IDS, csr.ids());
    w.section_words(TAG_INDEX_LIST_OFFSETS, list_offsets);
    w.section_word_iter(TAG_INDEX_LIST_IDS, entries.iter().map(|&(g, _)| g.0));
    w.section_word_iter(
        TAG_INDEX_LIST_SIMS,
        entries.iter().map(|&(_, s)| s.to_bits()),
    );
    w.section_words(TAG_INDEX_FULL_LENGTHS, full_lengths);
    let pairs = index.stats().scored_pairs as u64;
    w.section_words(TAG_INDEX_META, &[pairs as u32, (pairs >> 32) as u32]);
}

/// Decode the index written by [`encode_group_index`].
///
/// `n_groups` bounds every group id; `n_members` is the member-universe
/// bound the CSR must cover exactly (the max group member + 1, recomputed
/// from the decoded group space by the caller). Validates: both offset
/// tables monotone and exactly covering their payloads, CSR lists strictly
/// ascending, materialized lists no longer than their full counts and
/// sorted under the total neighbor order with finite similarities.
pub fn decode_group_index(
    r: &SnapshotReader,
    n_groups: usize,
    n_members: usize,
) -> Result<GroupIndex, SnapshotError> {
    // CSR: zero-copy stores after validation.
    let csr_offsets = r.section_words(TAG_CSR_OFFSETS)?;
    let csr_ids = r.section_words(TAG_CSR_IDS)?;
    validate_offsets(TAG_CSR_OFFSETS, &csr_offsets, csr_ids.len(), "bad offsets")?;
    if csr_offsets.len() != n_members + 1 {
        return Err(SnapshotError::Malformed {
            tag: TAG_CSR_OFFSETS,
            what: "CSR does not cover the member universe",
        });
    }
    if !all_bounded(csr_ids.as_slice(), n_groups) {
        return Err(SnapshotError::Malformed {
            tag: TAG_CSR_IDS,
            what: "group id out of range",
        });
    }
    if !runs_sorted(csr_ids.as_slice(), csr_offsets.as_slice(), |a, b| a >= b) {
        return Err(SnapshotError::Malformed {
            tag: TAG_CSR_IDS,
            what: "member's group list not strictly ascending",
        });
    }

    // Index lists: parallel id/sim sections interleaved into one flat
    // entry array (a single allocation for the whole index).
    let list_offsets = r.section_words(TAG_INDEX_LIST_OFFSETS)?;
    let ids = r.section_words(TAG_INDEX_LIST_IDS)?;
    let sims = r.section_words(TAG_INDEX_LIST_SIMS)?;
    let full_lengths = r.section_words(TAG_INDEX_FULL_LENGTHS)?;
    if ids.len() != sims.len() {
        return Err(SnapshotError::Malformed {
            tag: TAG_INDEX_LIST_SIMS,
            what: "id/similarity sections disagree in length",
        });
    }
    validate_offsets(
        TAG_INDEX_LIST_OFFSETS,
        &list_offsets,
        ids.len(),
        "bad list offsets",
    )?;
    if list_offsets.len() != n_groups + 1 || full_lengths.len() != n_groups {
        return Err(SnapshotError::Malformed {
            tag: TAG_INDEX_LIST_OFFSETS,
            what: "index does not cover the group space",
        });
    }
    // Whole-section validation (vectorizable folds and one flat
    // violation-counting pass), then a branch-free interleave into one
    // flat entry allocation.
    if !all_bounded(ids.as_slice(), n_groups) {
        return Err(SnapshotError::Malformed {
            tag: TAG_INDEX_LIST_IDS,
            what: "neighbor group id out of range",
        });
    }
    // All finite iff the max exponent-and-mantissa pattern stays below
    // the infinity encoding: a pure `max` reduction, no branches.
    let sim_mask = sims
        .iter()
        .fold(0u32, |acc, &bits| acc.max(bits & 0x7fff_ffff));
    if sim_mask >= 0x7f80_0000 {
        return Err(SnapshotError::Malformed {
            tag: TAG_INDEX_LIST_SIMS,
            what: "non-finite similarity",
        });
    }
    let entries: Vec<Neighbor> = ids
        .iter()
        .zip(sims.iter())
        .map(|(&g, &bits)| (GroupId::new(g), f32::from_bits(bits)))
        .collect();
    let offs = list_offsets.as_slice();
    for g in 0..n_groups {
        if (offs[g + 1] - offs[g]) > full_lengths[g] {
            return Err(SnapshotError::Malformed {
                tag: TAG_INDEX_FULL_LENGTHS,
                what: "materialized list longer than its full count",
            });
        }
    }
    if !runs_sorted(&entries, offs, |a, b| {
        neighbor_order(a, b) != std::cmp::Ordering::Less
    }) {
        return Err(SnapshotError::Malformed {
            tag: TAG_INDEX_LIST_IDS,
            what: "materialized list not sorted by the neighbor order",
        });
    }

    let meta = r.section_words(TAG_INDEX_META)?;
    if meta.len() != 2 {
        return Err(SnapshotError::Malformed {
            tag: TAG_INDEX_META,
            what: "bad metadata length",
        });
    }
    let scored_pairs = (meta[0] as u64 | ((meta[1] as u64) << 32)) as usize;

    Ok(GroupIndex::from_parts(
        list_offsets.into(),
        entries,
        full_lengths.into(),
        MemberGroupsCsr::from_stores(csr_offsets.into(), csr_ids.into()),
        scored_pairs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::IndexConfig;
    use vexus_mining::{Group, GroupSet, MemberSet};

    fn fixture() -> (GroupSet, GroupIndex) {
        let mut gs = GroupSet::new();
        gs.push(Group::new(
            vec![],
            MemberSet::from_unsorted(vec![0, 1, 2, 3]),
        ));
        gs.push(Group::new(
            vec![],
            MemberSet::from_unsorted(vec![2, 3, 4, 5]),
        ));
        gs.push(Group::new(
            vec![],
            MemberSet::from_unsorted(vec![3, 4, 5, 6]),
        ));
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.5,
                threads: 1,
            },
        );
        (gs, idx)
    }

    fn encode(idx: &GroupIndex) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        encode_group_index(idx, &mut w);
        w.finish()
    }

    #[test]
    fn index_round_trips() {
        let (gs, idx) = fixture();
        let buf = encode(&idx);
        let r = SnapshotReader::load(&buf).unwrap();
        let back = decode_group_index(&r, gs.len(), 7).unwrap();
        assert_eq!(back.len(), idx.len());
        for (gid, _) in gs.iter() {
            assert_eq!(back.materialized(gid), idx.materialized(gid));
            assert_eq!(back.full_neighbor_count(gid), idx.full_neighbor_count(gid));
        }
        assert_eq!(back.stats().scored_pairs, idx.stats().scored_pairs);
        assert_eq!(
            back.stats().materialized_entries,
            idx.stats().materialized_entries
        );
        // The loaded form owns only the interleaved entries; tables are
        // views, so it reports strictly less owned heap.
        assert!(back.stats().heap_bytes < idx.stats().heap_bytes);
        // The exact fallback works through the loaded CSR.
        for (gid, _) in gs.iter() {
            assert_eq!(
                back.neighbors(&gs, gid, gs.len()),
                idx.neighbors(&gs, gid, gs.len())
            );
        }
        // Re-encoding the loaded index reproduces the bytes.
        assert_eq!(encode(&back), buf);
    }

    #[test]
    fn decode_validates_universe_bounds() {
        let (gs, idx) = fixture();
        let buf = encode(&idx);
        let r = SnapshotReader::load(&buf).unwrap();
        // Wrong member universe.
        assert!(matches!(
            decode_group_index(&r, gs.len(), 6).unwrap_err(),
            SnapshotError::Malformed {
                tag: TAG_CSR_OFFSETS,
                ..
            }
        ));
        // Wrong group count.
        assert!(matches!(
            decode_group_index(&r, gs.len() - 1, 7).unwrap_err(),
            SnapshotError::Malformed { .. }
        ));
    }

    #[test]
    fn decode_rejects_non_finite_similarity() {
        let (gs, idx) = fixture();
        let (list_offsets, entries, full_lengths, csr) = idx.parts();
        let mut w = SnapshotWriter::new();
        w.section_words(TAG_CSR_OFFSETS, csr.offsets());
        w.section_words(TAG_CSR_IDS, csr.ids());
        w.section_words(TAG_INDEX_LIST_OFFSETS, list_offsets);
        w.section_word_iter(TAG_INDEX_LIST_IDS, entries.iter().map(|&(g, _)| g.0));
        // NaN bits in the similarity channel.
        w.section_word_iter(
            TAG_INDEX_LIST_SIMS,
            entries.iter().map(|_| f32::NAN.to_bits()),
        );
        w.section_words(TAG_INDEX_FULL_LENGTHS, full_lengths);
        w.section_words(TAG_INDEX_META, &[0, 0]);
        let buf = w.finish();
        let r = SnapshotReader::load(&buf).unwrap();
        assert!(matches!(
            decode_group_index(&r, gs.len(), 7).unwrap_err(),
            SnapshotError::Malformed {
                tag: TAG_INDEX_LIST_SIMS,
                ..
            }
        ));
    }

    #[test]
    fn decode_rejects_unsorted_lists() {
        let (gs, idx) = fixture();
        let (list_offsets, entries, full_lengths, csr) = idx.parts();
        let mut w = SnapshotWriter::new();
        w.section_words(TAG_CSR_OFFSETS, csr.offsets());
        w.section_words(TAG_CSR_IDS, csr.ids());
        w.section_words(TAG_INDEX_LIST_OFFSETS, list_offsets);
        w.section_word_iter(TAG_INDEX_LIST_IDS, entries.iter().map(|&(g, _)| g.0));
        // Ascending sims break the descending-similarity invariant for any
        // group with two or more materialized entries.
        w.section_word_iter(
            TAG_INDEX_LIST_SIMS,
            (0..entries.len()).map(|i| (i as f32).to_bits()),
        );
        w.section_words(TAG_INDEX_FULL_LENGTHS, full_lengths);
        w.section_words(TAG_INDEX_META, &[0, 0]);
        let buf = w.finish();
        let r = SnapshotReader::load(&buf).unwrap();
        let multi = (0..gs.len()).any(|g| list_offsets[g + 1] - list_offsets[g] >= 2);
        if multi {
            assert!(decode_group_index(&r, gs.len(), 7).is_err());
        }
    }

    #[test]
    fn empty_index_round_trips() {
        let gs = GroupSet::new();
        let idx = GroupIndex::build(&gs, &IndexConfig::default());
        let buf = encode(&idx);
        let r = SnapshotReader::load(&buf).unwrap();
        let back = decode_group_index(&r, 0, 0).unwrap();
        assert!(back.is_empty());
        assert_eq!(encode(&back), buf);
    }
}
