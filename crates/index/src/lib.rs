//! # vexus-index
//!
//! The similarity index behind VEXUS's fluid navigation. Per the paper:
//!
//! > "For efficient navigation in the space of groups, we build an inverted
//! > index per group `g ∈ G` that contains all groups in `G − {g}` in
//! > decreasing order of their similarity to `g`. We use the Jaccard
//! > distance to compute the similarity between each pair of groups. To
//! > reduce both time and space complexity, we only materialize 10 % of
//! > each inverted index, which is shown in \[14\] to be adequate."
//!
//! * [`inverted`] — the per-group neighbor lists with configurable
//!   materialization fraction and an exact on-demand fallback,
//! * [`graph`] — the undirected group graph `G` (edge ⇔ groups overlap)
//!   that exploration navigates.
//!
//! Index construction uses a flat CSR member→groups inverted map
//! ([`inverted::MemberGroupsCsr`]) so that only *overlapping* pairs are
//! ever scored (non-overlapping pairs have Jaccard similarity 0 and never
//! enter a neighbor list), scores each unordered pair exactly once from
//! the smaller-id side, and shards the work across threads with crossbeam.

pub mod cache;
pub mod graph;
pub mod inverted;
pub mod snapshot;

pub use cache::{CacheStats, NeighborCache};
pub use graph::OverlapGraph;
pub use inverted::{GroupIndex, IndexConfig, IndexPatch, IndexStats, MemberGroupsCsr};
