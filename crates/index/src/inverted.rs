//! Per-group inverted neighbor index.
//!
//! For each group `g` the index holds the other groups ordered by
//! decreasing Jaccard similarity of member sets. Only the top
//! `materialize_fraction` of each list is stored (the paper uses 10 %);
//! queries beyond the materialized prefix fall back to an exact on-demand
//! scan, so results are correct at any fraction — the fraction trades
//! memory and build time against fallback frequency, which is exactly what
//! experiment C3 sweeps.
//!
//! The build's candidate generator is a flat CSR member→groups map
//! ([`MemberGroupsCsr`]), and every overlapping pair is scored **once**,
//! from the smaller-id side: workers score their group ranges into
//! thread-local buckets, and a deterministic scatter/merge assembles the
//! per-group lists. The output is byte-identical to the per-side scorer
//! (kept as [`GroupIndex::build_reference`]) at any thread count, with
//! `scored_pairs` halved. The CSR is retained in the built index so the
//! exact fallback of [`GroupIndex::neighbors`] walks only the groups that
//! overlap the query group instead of scanning the whole group space.
//!
//! For live deployments, [`GroupIndex::apply_delta`] patches a built index
//! across an epoch's [`GroupDelta`] instead of rebuilding it: the retained
//! CSR is spliced (no membership recount), only the groups the delta can
//! actually affect are rescored, and every untouched list is copied with a
//! pure id rewrite — byte-identical to [`GroupIndex::build`] over the new
//! space, which stays the reference oracle.

use crate::graph::OverlapGraph;
use vexus_data::U32Store;
use vexus_mining::{GroupDelta, GroupId, GroupSet};

/// Index construction knobs.
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Fraction of each inverted list to materialize (paper: `0.10`).
    pub materialize_fraction: f64,
    /// Worker threads for the build (`0` = use available parallelism).
    pub threads: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            materialize_fraction: 0.10,
            threads: 0,
        }
    }
}

/// Build-time statistics (reported by experiment C3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexStats {
    /// Number of groups indexed.
    pub n_groups: usize,
    /// Total materialized neighbor entries.
    pub materialized_entries: usize,
    /// Overlapping candidate pairs scored during the build. The symmetric
    /// build scores each unordered pair once; the per-side reference
    /// scores it from both ends and reports twice this count.
    pub scored_pairs: usize,
    /// Approximate heap bytes of the index: materialized entries, the
    /// outer list/length vectors, and the retained member→groups CSR.
    pub heap_bytes: usize,
}

/// One neighbor entry: a group and its Jaccard similarity.
pub type Neighbor = (GroupId, f32);

/// Flat CSR member→groups map: `ids[offsets[u]..offsets[u + 1]]` are the
/// groups containing member `u`, ascending. One `offsets`/`ids` pair
/// replaces the per-member `Vec<Vec<u32>>` of the pre-d4 build — no
/// per-member allocations, cache-linear candidate scans — and is shared
/// between the index build, the retained exact-fallback path and
/// [`build_overlap_graph`].
/// Storage is borrowed-or-owned ([`U32Store`]): the built form owns its
/// arrays, the snapshot-loaded form views the shared buffer.
#[derive(Debug, Clone, Default)]
pub struct MemberGroupsCsr {
    offsets: U32Store,
    ids: U32Store,
}

impl MemberGroupsCsr {
    /// Build by counting sort over the memberships: one pass counts each
    /// member's degree, a prefix sum lays out `offsets`, and a second pass
    /// scatters the group ids. Groups are visited in ascending id order,
    /// so every member's group list comes out sorted.
    pub fn build(groups: &GroupSet) -> Self {
        // Member sets are sorted, so the universe bound is each group's
        // last slice element: O(groups), not a walk over every membership.
        let n_users = groups
            .iter()
            .filter_map(|(_, g)| g.members.as_slice().last())
            .max()
            .map(|&m| m as usize + 1)
            .unwrap_or(0);
        let mut offsets = vec![0u32; n_users + 1];
        for (_, g) in groups.iter() {
            for u in g.members.iter() {
                offsets[u as usize + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut ids = vec![0u32; *offsets.last().unwrap_or(&0) as usize];
        let mut cursor = offsets.clone();
        for (gid, g) in groups.iter() {
            for u in g.members.iter() {
                let at = &mut cursor[u as usize];
                ids[*at as usize] = gid.0;
                *at += 1;
            }
        }
        Self {
            offsets: offsets.into(),
            ids: ids.into(),
        }
    }

    /// Reassemble from storage (the snapshot decode path; offsets/ids may
    /// be zero-copy views). The caller has validated CSR invariants.
    pub(crate) fn from_stores(offsets: U32Store, ids: U32Store) -> Self {
        Self { offsets, ids }
    }

    /// The raw offset table (`n_members + 1` entries).
    pub(crate) fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw concatenated group ids, member-major.
    pub(crate) fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of members covered (the dense id bound).
    pub fn n_members(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The groups containing `member`, ascending.
    pub fn groups_of(&self, member: u32) -> &[u32] {
        let lo = self.offsets[member as usize] as usize;
        let hi = self.offsets[member as usize + 1] as usize;
        &self.ids[lo..hi]
    }

    /// The groups containing `member` whose id is strictly greater than
    /// `gid` — the smaller-id side of the symmetric pair scan. The list is
    /// ascending, so this is a suffix located by binary search.
    fn groups_of_above(&self, member: u32, gid: u32) -> &[u32] {
        let list = self.groups_of(member);
        let from = list.partition_point(|&h| h <= gid);
        &list[from..]
    }

    /// Heap bytes owned by the map (zero for snapshot-backed views; the
    /// shared buffer is accounted once at the engine level).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.heap_bytes() + self.ids.heap_bytes()
    }
}

/// The inverted similarity index over a [`GroupSet`].
///
/// The materialized lists live in **one flat array** (`entries`) addressed
/// by a `n + 1` offset table, not a `Vec<Vec<_>>` — one allocation instead
/// of one per group, cache-linear scans, and the exact shape the snapshot
/// codec serializes (the offset tables load as zero-copy views; the
/// interleaved `(id, sim)` entries are rebuilt in a single allocation).
#[derive(Debug)]
pub struct GroupIndex {
    /// `entries[list_offsets[g]..list_offsets[g + 1]]` is the materialized
    /// neighbor prefix of group `g`, descending similarity.
    list_offsets: U32Store,
    /// Concatenated materialized entries, group-major.
    entries: Vec<Neighbor>,
    /// Per-group count of *all* overlapping neighbors (full list length).
    full_lengths: U32Store,
    /// Retained member→groups map: the exact fallback's candidate
    /// generator (only overlapping groups are scored, never the whole
    /// space).
    member_groups: MemberGroupsCsr,
    stats: IndexStats,
}

impl GroupIndex {
    /// Build the index over `groups`.
    ///
    /// Two phases. Phase one scores every overlapping pair exactly once:
    /// workers own disjoint group ranges and each scores the pairs whose
    /// *smaller* id falls in its range (the CSR walk skips to the
    /// strictly-greater suffix of every member list), pushing the scored
    /// neighbor entry for both endpoints into thread-local buckets. Phase
    /// two scatters the buckets into per-group slices by counting sort and
    /// runs the top-fraction selection per group in parallel. Both the
    /// kept set and its order are determined by the total neighbor order
    /// (descending similarity, ids as tie-break), so the index is
    /// byte-identical at any thread count — and to the per-side reference
    /// build.
    pub fn build(groups: &GroupSet, cfg: &IndexConfig) -> Self {
        let n = groups.len();
        let fraction = cfg.materialize_fraction.clamp(0.0, 1.0);
        let member_groups = MemberGroupsCsr::build(groups);
        let threads = resolve_threads(cfg.threads, n);

        // Chunk boundaries balance the summed *member* count per worker,
        // not the group count: a group's candidate scan walks its members'
        // inverted lists, so with skewed group sizes an even group split
        // leaves most workers idle behind the one that drew the giants.
        let sizes: Vec<usize> = groups.iter().map(|(_, g)| g.size()).collect();
        let chunks = size_aware_chunks(&sizes, threads);

        // Phase 1: per-worker pair scoring into thread-local buckets.
        // `forward` holds each owned group's greater-id neighbors
        // contiguously (lengths alongside); `backward` holds the mirrored
        // entries destined for greater-id groups anywhere in the space.
        struct Bucket {
            start: usize,
            forward: Vec<Neighbor>,
            forward_lens: Vec<u32>,
            backward: Vec<(u32, Neighbor)>,
        }
        let buckets: Vec<Bucket> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut start = 0usize;
            for &take in &chunks {
                let member_groups = &member_groups;
                let base = start;
                handles.push(scope.spawn(move |_| {
                    let mut counter: Vec<u32> = vec![0; n];
                    let mut touched: Vec<u32> = Vec::new();
                    let mut bucket = Bucket {
                        start: base,
                        forward: Vec::new(),
                        forward_lens: Vec::with_capacity(take),
                        backward: Vec::new(),
                    };
                    for offset in 0..take {
                        let a = (base + offset) as u32;
                        let g = groups.get(GroupId::new(a));
                        for u in g.members.iter() {
                            for &h in member_groups.groups_of_above(u, a) {
                                if counter[h as usize] == 0 {
                                    touched.push(h);
                                }
                                counter[h as usize] += 1;
                            }
                        }
                        bucket.forward_lens.push(touched.len() as u32);
                        for &h in touched.iter() {
                            let inter = counter[h as usize] as usize;
                            counter[h as usize] = 0;
                            let other = groups.get(GroupId::new(h));
                            let union = g.size() + other.size() - inter;
                            let sim = inter as f32 / union as f32;
                            bucket.forward.push((GroupId::new(h), sim));
                            bucket.backward.push((h, (GroupId::new(a), sim)));
                        }
                        touched.clear();
                    }
                    bucket
                }));
                start += take;
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("index build worker panicked"))
                .collect()
        })
        .expect("index build scope");

        // Phase 2a: deterministic scatter. Count every group's full degree
        // (forward entries it owns plus backward entries targeting it),
        // prefix-sum the slice layout, then place entries. The per-group
        // multiset of entries is independent of the chunking; the order
        // within a slice is not, but the total-order selection below makes
        // that irrelevant.
        let scored_pairs: usize = buckets.iter().map(|b| b.forward.len()).sum();
        let mut full_lengths = vec![0usize; n];
        for bucket in &buckets {
            for (offset, &len) in bucket.forward_lens.iter().enumerate() {
                full_lengths[bucket.start + offset] += len as usize;
            }
            for &(h, _) in &bucket.backward {
                full_lengths[h as usize] += 1;
            }
        }
        let mut starts = Vec::with_capacity(n + 1);
        starts.push(0usize);
        for &len in &full_lengths {
            starts.push(starts.last().unwrap() + len);
        }
        let mut entries: Vec<Neighbor> = vec![(GroupId::new(0), 0.0); *starts.last().unwrap()];
        let mut cursor: Vec<usize> = starts[..n].to_vec();
        // Consume the buckets as they scatter so each worker's pair
        // storage is freed immediately — the transient peak is one copy of
        // the pair data plus the bucket being drained, not both in full.
        for bucket in buckets {
            let mut at = 0usize;
            for (offset, &len) in bucket.forward_lens.iter().enumerate() {
                let g = bucket.start + offset;
                let len = len as usize;
                entries[cursor[g]..cursor[g] + len].copy_from_slice(&bucket.forward[at..at + len]);
                cursor[g] += len;
                at += len;
            }
            for (h, entry) in bucket.backward {
                entries[cursor[h as usize]] = entry;
                cursor[h as usize] += 1;
            }
        }

        // Phase 2b: per-group top-fraction selection, parallel over the
        // same size-aware ranges (selection cost follows list length,
        // which follows member count). Groups own disjoint `entries`
        // slices, so selection runs in place; each worker records the kept
        // length per group. The kept set and its order come from the total
        // neighbor order, so they are independent of the chunking.
        let mut kept_lens = vec![0u32; n];
        crossbeam::thread::scope(|scope| {
            let mut remaining_kept = kept_lens.as_mut_slice();
            let mut remaining_entries = entries.as_mut_slice();
            let mut start = 0usize;
            let mut handles = Vec::new();
            for &take in &chunks {
                let (kept_chunk, rest_kept) = remaining_kept.split_at_mut(take);
                remaining_kept = rest_kept;
                let span = starts[start + take] - starts[start];
                let (entries_chunk, rest_entries) = remaining_entries.split_at_mut(span);
                remaining_entries = rest_entries;
                let full_lengths = &full_lengths;
                let base = start;
                handles.push(scope.spawn(move |_| {
                    let mut entries_chunk = entries_chunk;
                    for (offset, out) in kept_chunk.iter_mut().enumerate() {
                        let (full, rest) = entries_chunk.split_at_mut(full_lengths[base + offset]);
                        entries_chunk = rest;
                        let kept = select_top_in_place(full, keep_of(fraction, full.len()));
                        *out = kept as u32;
                    }
                }));
                start += take;
            }
            for h in handles {
                h.join().expect("index select worker panicked");
            }
        })
        .expect("index select scope");

        // Deterministic sequential compaction: move every group's kept
        // prefix into the final flat array and lay down the offset table.
        let total_kept: usize = kept_lens.iter().map(|&k| k as usize).sum();
        let mut flat: Vec<Neighbor> = Vec::with_capacity(total_kept);
        let mut list_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        list_offsets.push(0);
        for g in 0..n {
            let at = starts[g];
            flat.extend_from_slice(&entries[at..at + kept_lens[g] as usize]);
            list_offsets.push(flat.len() as u32);
        }
        drop(entries);

        Self::from_parts(
            list_offsets.into(),
            flat,
            full_lengths
                .iter()
                .map(|&l| l as u32)
                .collect::<Vec<_>>()
                .into(),
            member_groups,
            scored_pairs,
        )
    }

    /// The pre-d4 build, kept as the equivalence reference: a sequential
    /// scan that scores every overlapping pair from *both* sides (so
    /// `scored_pairs` is twice the symmetric build's count). Tests and the
    /// `d4` experiment pin [`GroupIndex::build`] byte-identical to this at
    /// every thread count; it is not meant for production use.
    pub fn build_reference(groups: &GroupSet, cfg: &IndexConfig) -> Self {
        let n = groups.len();
        let fraction = cfg.materialize_fraction.clamp(0.0, 1.0);
        let member_groups = MemberGroupsCsr::build(groups);
        let mut entries: Vec<Neighbor> = Vec::new();
        let mut list_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        list_offsets.push(0);
        let mut full_lengths = vec![0u32; n];
        let mut scored_pairs = 0usize;
        let mut counter: Vec<u32> = vec![0; n];
        for (gid, _) in groups.iter() {
            let mut full = overlapping_neighbors(groups, &member_groups, gid, &mut counter);
            scored_pairs += full.len();
            full_lengths[gid.index()] = full.len() as u32;
            let keep = keep_of(fraction, full.len());
            let kept = select_top_in_place(&mut full, keep);
            entries.extend_from_slice(&full[..kept]);
            list_offsets.push(entries.len() as u32);
        }
        Self::from_parts(
            list_offsets.into(),
            entries,
            full_lengths.into(),
            member_groups,
            scored_pairs,
        )
    }

    /// Patch this index across one epoch's [`GroupDelta`] instead of
    /// rebuilding it. `old_groups` must be the space this index was built
    /// over, `new_groups` the new epoch's space, and `delta` the
    /// [`vexus_mining::delta::diff`] between them; both spaces must be
    /// canonical (description-sorted), which makes the survivor id remap
    /// monotone. The result is **byte-identical** to
    /// [`GroupIndex::build`]`(new_groups, cfg)` — lists, full lengths and
    /// the member→groups CSR — provided `cfg.materialize_fraction` matches
    /// the original build (the proptest below pins this across random
    /// delta sequences and thread counts).
    ///
    /// Three incremental passes, none of which rescans untouched state:
    ///
    /// 1. **CSR splice** — per-user group lists are rewritten through the
    ///    monotone remap and merged with the delta's membership gains /
    ///    losses; memberships are never recounted.
    /// 2. **Dirty-set rescore** — a new group's list must be recomputed
    ///    iff the group is added or resized, or it shares a member with a
    ///    touched group (only then can a neighbor appear, disappear, or
    ///    change similarity). Dirty groups are rescored from the new CSR
    ///    in parallel over size-aware chunks (`cfg.threads`).
    /// 3. **Clean copy** — every other group's materialized list is the
    ///    old list with ids rewritten: its neighbors are all unchanged
    ///    survivors, and the monotone remap preserves the
    ///    similarity-then-id total order, so bytes (and the kept-set
    ///    boundary) carry over exactly.
    ///
    /// `scored_pairs` in the returned stats counts only the patch's
    /// rescoring work — the incremental-vs-full cost the d8 experiment
    /// reports — not the full build's pair count.
    pub fn apply_delta(
        &self,
        old_groups: &GroupSet,
        new_groups: &GroupSet,
        delta: &GroupDelta,
        cfg: &IndexConfig,
    ) -> IndexPatch {
        let n_old = old_groups.len();
        let n_new = new_groups.len();
        debug_assert_eq!(n_old, self.len(), "old space does not match the index");
        let fraction = cfg.materialize_fraction.clamp(0.0, 1.0);

        // Survivor maps: old ids minus `retired`, zipped in order with new
        // ids minus `added` (both canonical, so the zip is the monotone
        // remap). `u32::MAX` marks retired / added ids.
        let mut old_to_new = vec![u32::MAX; n_old];
        let mut new_to_old = vec![u32::MAX; n_new];
        {
            let mut retired = delta.retired.iter().peekable();
            let mut added = delta.added.iter().peekable();
            let mut j = 0u32;
            for i in 0..n_old as u32 {
                if retired.peek().is_some_and(|r| r.0 == i) {
                    retired.next();
                    continue;
                }
                while added.peek().is_some_and(|a| a.0 == j) {
                    added.next();
                    j += 1;
                }
                old_to_new[i as usize] = j;
                new_to_old[j as usize] = i;
                j += 1;
            }
        }
        for &(o, n) in &delta.resized {
            debug_assert_eq!(
                old_to_new[o.index()],
                n.0,
                "resized pair off the survivor zip"
            );
        }

        // Membership splice lists: (user, new id) gains from added and
        // grown groups, (user, old id) losses from shrunk groups. Retired
        // groups need no loss entries — their ids remap to `u32::MAX` and
        // drop out of every user list below.
        let mut gains: Vec<(u32, u32)> = Vec::new();
        let mut losses: Vec<(u32, u32)> = Vec::new();
        for &g in &delta.added {
            for u in new_groups.get(g).members.iter() {
                gains.push((u, g.0));
            }
        }
        for &(o, n) in &delta.resized {
            member_diff(
                old_groups.get(o).members.as_slice(),
                new_groups.get(n).members.as_slice(),
                |u| gains.push((u, n.0)),
                |u| losses.push((u, o.0)),
            );
        }
        gains.sort_unstable();
        losses.sort_unstable();

        // Pass 1: CSR splice. The user universe bound is recomputed the
        // exact way `MemberGroupsCsr::build` computes it, so the patched
        // CSR matches a rebuild even when the universe grows or shrinks.
        let n_users = new_groups
            .iter()
            .filter_map(|(_, g)| g.members.as_slice().last())
            .max()
            .map(|&m| m as usize + 1)
            .unwrap_or(0);
        let old_csr = &self.member_groups;
        let old_users = old_csr.n_members();
        let mut offsets: Vec<u32> = Vec::with_capacity(n_users + 1);
        offsets.push(0);
        let mut ids: Vec<u32> = Vec::with_capacity(old_csr.ids().len() + gains.len());
        let (mut gat, mut lat) = (0usize, 0usize);
        for u in 0..n_users as u32 {
            let old_list: &[u32] = if (u as usize) < old_users {
                old_csr.groups_of(u)
            } else {
                &[]
            };
            let lfrom = lat;
            while lat < losses.len() && losses[lat].0 == u {
                lat += 1;
            }
            let lost = &losses[lfrom..lat];
            let gfrom = gat;
            while gat < gains.len() && gains[gat].0 == u {
                gat += 1;
            }
            let gained = &gains[gfrom..gat];
            // Merge the remapped survivors of the old list with the gains;
            // both runs are ascending (the remap is monotone), so the
            // merged list is sorted exactly as a counting-sort rebuild
            // would emit it.
            let (mut gi, mut li) = (0usize, 0usize);
            for &h in old_list {
                if li < lost.len() && lost[li].1 == h {
                    li += 1;
                    continue;
                }
                let m = old_to_new[h as usize];
                if m == u32::MAX {
                    continue;
                }
                while gi < gained.len() && gained[gi].1 < m {
                    ids.push(gained[gi].1);
                    gi += 1;
                }
                ids.push(m);
            }
            for &(_, g) in &gained[gi..] {
                ids.push(g);
            }
            offsets.push(ids.len() as u32);
        }
        let member_groups = MemberGroupsCsr {
            offsets: offsets.into(),
            ids: ids.into(),
        };

        // Pass 2: dirty set. Added and resized groups are dirty by
        // definition; a survivor is dirty iff it shares a member with a
        // touched group — and every such share is visible in the *old*
        // CSR, because an unchanged survivor's members are the same in
        // both spaces. Members of touched groups are walked from the
        // space that holds them (old for retired/shrunk, new for
        // added/grown, both for resized).
        let mut dirty = vec![false; n_new];
        for &g in &delta.added {
            dirty[g.index()] = true;
        }
        for &(_, n) in &delta.resized {
            dirty[n.index()] = true;
        }
        {
            let mut mark_groups_of = |u: u32| {
                if (u as usize) < old_users {
                    for &h in old_csr.groups_of(u) {
                        let m = old_to_new[h as usize];
                        if m != u32::MAX {
                            dirty[m as usize] = true;
                        }
                    }
                }
            };
            for &g in &delta.retired {
                for u in old_groups.get(g).members.iter() {
                    mark_groups_of(u);
                }
            }
            for &(o, n) in &delta.resized {
                for u in old_groups.get(o).members.iter() {
                    mark_groups_of(u);
                }
                for u in new_groups.get(n).members.iter() {
                    mark_groups_of(u);
                }
            }
            for &g in &delta.added {
                for u in new_groups.get(g).members.iter() {
                    mark_groups_of(u);
                }
            }
        }
        let dirty_ids: Vec<u32> = (0..n_new as u32).filter(|&g| dirty[g as usize]).collect();

        // Pass 3: rescore the dirty groups from the patched CSR, parallel
        // over the same size-aware chunking the full build uses. Each
        // group's list is computed independently into its own slot, so
        // the result is byte-identical at any thread count.
        let mut rescored_lists: Vec<Vec<Neighbor>> = vec![Vec::new(); dirty_ids.len()];
        let mut rescored_full: Vec<u32> = vec![0; dirty_ids.len()];
        if !dirty_ids.is_empty() {
            let sizes: Vec<usize> = dirty_ids
                .iter()
                .map(|&g| new_groups.get(GroupId::new(g)).size())
                .collect();
            let threads = resolve_threads(cfg.threads, dirty_ids.len());
            let chunks = size_aware_chunks(&sizes, threads);
            crossbeam::thread::scope(|scope| {
                let mut rest_lists = rescored_lists.as_mut_slice();
                let mut rest_full = rescored_full.as_mut_slice();
                let mut start = 0usize;
                for &take in &chunks {
                    let (lists_chunk, r) = rest_lists.split_at_mut(take);
                    rest_lists = r;
                    let (full_chunk, r) = rest_full.split_at_mut(take);
                    rest_full = r;
                    let ids_chunk = &dirty_ids[start..start + take];
                    let member_groups = &member_groups;
                    scope.spawn(move |_| {
                        let mut counter = vec![0u32; n_new];
                        for ((&g, list), full_len) in
                            ids_chunk.iter().zip(lists_chunk).zip(full_chunk)
                        {
                            let mut full = overlapping_neighbors(
                                new_groups,
                                member_groups,
                                GroupId::new(g),
                                &mut counter,
                            );
                            *full_len = full.len() as u32;
                            let keep = keep_of(fraction, full.len());
                            let kept = select_top_in_place(&mut full, keep);
                            full.truncate(kept);
                            *list = full;
                        }
                    });
                    start += take;
                }
            })
            .expect("index patch scope");
        }
        let scored_pairs: usize = rescored_full.iter().map(|&l| l as usize).sum();

        // Assembly: dirty groups take their rescored lists, clean groups
        // copy their old list through the id rewrite.
        let mut entries: Vec<Neighbor> = Vec::new();
        let mut list_offsets: Vec<u32> = Vec::with_capacity(n_new + 1);
        list_offsets.push(0);
        let mut full_lengths = vec![0u32; n_new];
        let mut at = 0usize;
        for g in 0..n_new {
            if dirty[g] {
                full_lengths[g] = rescored_full[at];
                entries.append(&mut rescored_lists[at]);
                at += 1;
            } else {
                let o = GroupId::new(new_to_old[g]);
                full_lengths[g] = self.full_lengths[o.index()];
                for &(h, sim) in self.materialized(o) {
                    let m = old_to_new[h.index()];
                    debug_assert_ne!(m, u32::MAX, "clean list holds a retired neighbor");
                    entries.push((GroupId::new(m), sim));
                }
            }
            list_offsets.push(entries.len() as u32);
        }
        let rescored = dirty_ids.len();
        IndexPatch {
            index: Self::from_parts(
                list_offsets.into(),
                entries,
                full_lengths.into(),
                member_groups,
                scored_pairs,
            ),
            old_to_new,
            dirty,
            rescored,
        }
    }

    /// Assemble from storage parts, recomputing derived statistics.
    /// `heap_bytes` reflects what this representation actually owns, so a
    /// snapshot-loaded index (shared offset tables) reports less than its
    /// built twin — by design; the d6 experiment prints both next to the
    /// snapshot size.
    pub(crate) fn from_parts(
        list_offsets: U32Store,
        entries: Vec<Neighbor>,
        full_lengths: U32Store,
        member_groups: MemberGroupsCsr,
        scored_pairs: usize,
    ) -> Self {
        let heap_bytes = entries.capacity() * std::mem::size_of::<Neighbor>()
            + list_offsets.heap_bytes()
            + full_lengths.heap_bytes()
            + member_groups.heap_bytes();
        let stats = IndexStats {
            n_groups: full_lengths.len(),
            materialized_entries: entries.len(),
            scored_pairs,
            heap_bytes,
        };
        Self {
            list_offsets,
            entries,
            full_lengths,
            member_groups,
            stats,
        }
    }

    /// The flat storage parts `(list_offsets, entries, full_lengths,
    /// member_groups)` — the snapshot encoder's view.
    pub(crate) fn parts(&self) -> (&[u32], &[Neighbor], &[u32], &MemberGroupsCsr) {
        (
            &self.list_offsets,
            &self.entries,
            &self.full_lengths,
            &self.member_groups,
        )
    }

    /// Build statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Number of indexed groups.
    pub fn len(&self) -> usize {
        self.full_lengths.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.full_lengths.is_empty()
    }

    /// The materialized neighbor prefix of `g` (descending similarity).
    pub fn materialized(&self, g: GroupId) -> &[Neighbor] {
        let lo = self.list_offsets[g.index()] as usize;
        let hi = self.list_offsets[g.index() + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Number of *overlapping* neighbors `g` has in total (materialized or
    /// not).
    pub fn full_neighbor_count(&self, g: GroupId) -> usize {
        self.full_lengths[g.index()] as usize
    }

    /// Top-`k` neighbors of `g`, exact. Served from the materialized prefix
    /// in O(k) when it suffices; falls back to an on-demand exact scan
    /// otherwise. The fallback walks only the groups overlapping `g` via
    /// the retained member→groups CSR (the build's counter trick), not the
    /// whole group space, then applies the same partial selection the
    /// build path uses.
    pub fn neighbors(&self, groups: &GroupSet, g: GroupId, k: usize) -> Vec<Neighbor> {
        let list = self.materialized(g);
        if k <= list.len() || list.len() == self.full_neighbor_count(g) {
            return list[..k.min(list.len())].to_vec();
        }
        // Fallback: exact recomputation (the price of materializing less).
        let mut counter = vec![0u32; groups.len()];
        let mut full = overlapping_neighbors(groups, &self.member_groups, g, &mut counter);
        select_top(&mut full, k);
        full
    }

    /// Whether serving `k` neighbors of `g` would need the exact fallback.
    pub fn needs_fallback(&self, g: GroupId, k: usize) -> bool {
        let len = self.materialized(g).len();
        k > len && len < self.full_neighbor_count(g)
    }

    /// Exact Jaccard similarity between two groups (computed on demand).
    pub fn similarity(groups: &GroupSet, a: GroupId, b: GroupId) -> f64 {
        groups.get(a).members.jaccard(&groups.get(b).members)
    }
}

/// The result of [`GroupIndex::apply_delta`]: the patched index plus the
/// patch's bookkeeping, which the serving layer uses to decide which
/// neighbor-cache entries survive the epoch swap.
pub struct IndexPatch {
    /// The patched index — byte-identical to a full build over the new
    /// space.
    pub index: GroupIndex,
    /// Old-space id → new-space id for survivors; `u32::MAX` for retired
    /// groups. Monotone over survivors (both spaces are canonical).
    pub old_to_new: Vec<u32>,
    /// Per new-space group: whether its neighbor list was rescored (added,
    /// resized, or sharing a member with a touched group). Clean groups'
    /// lists were copied with a pure id rewrite.
    pub dirty: Vec<bool>,
    /// Number of dirty groups rescored.
    pub rescored: usize,
}

/// Two-pointer diff of sorted member slices: `gained` receives members in
/// `new` only, `lost` members in `old` only.
fn member_diff(old: &[u32], new: &[u32], mut gained: impl FnMut(u32), mut lost: impl FnMut(u32)) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() || j < new.len() {
        if i == old.len() {
            gained(new[j]);
            j += 1;
        } else if j == new.len() {
            lost(old[i]);
            i += 1;
        } else if old[i] == new[j] {
            i += 1;
            j += 1;
        } else if old[i] < new[j] {
            lost(old[i]);
            i += 1;
        } else {
            gained(new[j]);
            j += 1;
        }
    }
}

/// Worker count resolution shared by both build phases.
fn resolve_threads(threads: usize, n: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .max(1)
    .min(n.max(1))
}

/// Materialized-prefix length for a full list of `scored` neighbors.
fn keep_of(fraction: f64, scored: usize) -> usize {
    ((fraction * scored as f64).ceil() as usize).min(scored)
}

/// Order the top `keep` entries of `slice` into its sorted prefix under
/// [`neighbor_order`] and return how many were kept. Partial selection
/// first — only the kept prefix needs full ordering — then one sort of
/// the prefix. `neighbor_order` is a total order over distinct neighbor
/// ids, so the kept prefix is independent of the input permutation (what
/// makes the parallel build deterministic).
fn select_top_in_place(slice: &mut [Neighbor], keep: usize) -> usize {
    let keep = keep.min(slice.len());
    if keep == 0 {
        return 0;
    }
    if keep < slice.len() {
        slice.select_nth_unstable_by(keep - 1, neighbor_order);
    }
    slice[..keep].sort_by(neighbor_order);
    keep
}

/// [`select_top_in_place`] for an owned list: truncate to the kept prefix
/// and release the spare capacity.
fn select_top(neighbors: &mut Vec<Neighbor>, keep: usize) {
    let kept = select_top_in_place(neighbors, keep);
    neighbors.truncate(kept);
    neighbors.shrink_to_fit();
}

/// Every group overlapping `g`, scored but unordered, generated from the
/// member→groups CSR by intersection counting. `counter` is caller-owned
/// zeroed scratch of length `groups.len()`; it is returned zeroed.
fn overlapping_neighbors(
    groups: &GroupSet,
    member_groups: &MemberGroupsCsr,
    gid: GroupId,
    counter: &mut [u32],
) -> Vec<Neighbor> {
    let g = groups.get(gid);
    let mut touched: Vec<u32> = Vec::new();
    for u in g.members.iter() {
        for &h in member_groups.groups_of(u) {
            if h != gid.0 {
                if counter[h as usize] == 0 {
                    touched.push(h);
                }
                counter[h as usize] += 1;
            }
        }
    }
    let mut neighbors: Vec<Neighbor> = Vec::with_capacity(touched.len());
    for h in touched {
        let inter = counter[h as usize] as usize;
        counter[h as usize] = 0;
        let other = groups.get(GroupId::new(h));
        let union = g.size() + other.size() - inter;
        neighbors.push((GroupId::new(h), inter as f32 / union as f32));
    }
    neighbors
}

/// Split `sizes.len()` items into at most `workers` contiguous chunks
/// whose summed sizes are balanced (each chunk takes items until it
/// reaches the remaining total divided by the remaining workers). Returns
/// the chunk lengths; they are all non-zero and cover every item, so the
/// build's output layout — and hence the index — is independent of the
/// worker count.
fn size_aware_chunks(sizes: &[usize], workers: usize) -> Vec<usize> {
    let n = sizes.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let mut chunks = Vec::with_capacity(workers);
    let mut remaining: usize = sizes.iter().sum();
    let mut i = 0;
    for w in 0..workers {
        let workers_left = workers - w;
        // Leave at least one item for every worker after this one.
        let max_take = n - i - (workers_left - 1);
        let target = remaining.div_ceil(workers_left);
        let mut take = 0;
        let mut acc = 0;
        while take < max_take && (take == 0 || acc < target) {
            acc += sizes[i + take];
            take += 1;
        }
        chunks.push(take);
        i += take;
        remaining -= acc;
    }
    // Zero-size tail items can stall the greedy walk; fold any leftover
    // into the last chunk so coverage stays exact.
    if i < n {
        *chunks.last_mut().expect("workers >= 1") += n - i;
    }
    chunks
}

/// Descending-similarity neighbor order with ids as the tie-break.
pub(crate) fn neighbor_order(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1)
        .expect("finite similarity")
        .then_with(|| a.0.cmp(&b.0))
}

/// Exact full neighbor list of `g` (descending similarity), computed by a
/// plain scan over the whole group set. The O(n·|members|) reference the
/// CSR paths are pinned against; production queries go through
/// [`GroupIndex::neighbors`].
pub fn compute_all_neighbors(groups: &GroupSet, g: GroupId) -> Vec<Neighbor> {
    let me = groups.get(g);
    let mut out: Vec<Neighbor> = groups
        .iter()
        .filter(|(h, _)| *h != g)
        .filter_map(|(h, other)| {
            let inter = me.members.intersection_size(&other.members);
            if inter == 0 {
                return None;
            }
            let union = me.size() + other.size() - inter;
            Some((h, inter as f32 / union as f32))
        })
        .collect();
    out.sort_by(neighbor_order);
    out
}

/// Build the overlap graph from a group set (edges between any two groups
/// sharing a member). Exposed here because it reuses the member→groups
/// CSR.
pub fn build_overlap_graph(groups: &GroupSet) -> OverlapGraph {
    let member_groups = MemberGroupsCsr::build(groups);
    OverlapGraph::from_member_groups(groups.len(), &member_groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexus_mining::{Group, MemberSet};

    fn groups_fixture() -> GroupSet {
        let mut gs = GroupSet::new();
        gs.push(Group::new(
            vec![],
            MemberSet::from_unsorted(vec![0, 1, 2, 3]),
        ));
        gs.push(Group::new(
            vec![],
            MemberSet::from_unsorted(vec![2, 3, 4, 5]),
        ));
        gs.push(Group::new(
            vec![],
            MemberSet::from_unsorted(vec![3, 4, 5, 6]),
        ));
        gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![100, 101])));
        gs
    }

    fn bookcrossing_groups(min_support: usize) -> GroupSet {
        let ds =
            vexus_data::synthetic::bookcrossing(&vexus_data::synthetic::BookCrossingConfig::tiny());
        let vocab = vexus_data::Vocabulary::build(&ds.data);
        let db = vexus_mining::transactions::TransactionDb::build(&ds.data, &vocab);
        vexus_mining::mine_closed_groups(
            &db,
            &vexus_mining::LcmConfig {
                min_support,
                ..Default::default()
            },
        )
    }

    /// Materialized lists, full lengths and entry/pair stats must agree.
    fn assert_same_index(a: &GroupIndex, b: &GroupIndex, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: group count");
        for g in 0..a.len() {
            let g = GroupId::new(g as u32);
            assert_eq!(a.materialized(g), b.materialized(g), "{what}: lists of {g}");
            assert_eq!(
                a.full_neighbor_count(g),
                b.full_neighbor_count(g),
                "{what}: full length of {g}"
            );
        }
        assert_eq!(
            a.stats().materialized_entries,
            b.stats().materialized_entries,
            "{what}: entries"
        );
        assert_eq!(
            a.member_groups.offsets(),
            b.member_groups.offsets(),
            "{what}: CSR offsets"
        );
        assert_eq!(
            a.member_groups.ids(),
            b.member_groups.ids(),
            "{what}: CSR ids"
        );
    }

    #[test]
    fn csr_matches_per_member_lists() {
        let gs = groups_fixture();
        let csr = MemberGroupsCsr::build(&gs);
        assert_eq!(csr.n_members(), 102);
        assert_eq!(csr.groups_of(0), &[0]);
        assert_eq!(csr.groups_of(3), &[0, 1, 2]);
        assert_eq!(csr.groups_of(4), &[1, 2]);
        assert_eq!(csr.groups_of(7), &[] as &[u32]);
        assert_eq!(csr.groups_of(100), &[3]);
        // The greater-than suffix used by the symmetric scan.
        assert_eq!(csr.groups_of_above(3, 0), &[1, 2]);
        assert_eq!(csr.groups_of_above(3, 2), &[] as &[u32]);
        // Empty group set: no members, nothing to index.
        let empty = MemberGroupsCsr::build(&GroupSet::new());
        assert_eq!(empty.n_members(), 0);
    }

    #[test]
    fn full_materialization_matches_exact() {
        let gs = groups_fixture();
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 1.0,
                threads: 1,
            },
        );
        for (gid, _) in gs.iter() {
            let got = idx.materialized(gid).to_vec();
            let expect = compute_all_neighbors(&gs, gid);
            assert_eq!(got, expect, "mismatch for {gid}");
            assert_eq!(idx.full_neighbor_count(gid), expect.len());
        }
    }

    #[test]
    fn symmetric_build_matches_per_side_reference_across_thread_counts() {
        // The d4 equivalence pin: the symmetric one-pair-once build must
        // reproduce the per-side reference byte for byte at any thread
        // count and fraction, with scored_pairs exactly halved.
        let gs = bookcrossing_groups(10);
        assert!(gs.len() > 30, "fixture too small: {}", gs.len());
        for fraction in [0.0, 0.05, 0.3, 1.0] {
            let reference = GroupIndex::build_reference(
                &gs,
                &IndexConfig {
                    materialize_fraction: fraction,
                    threads: 1,
                },
            );
            for threads in [1usize, 2, 4, 8] {
                let symmetric = GroupIndex::build(
                    &gs,
                    &IndexConfig {
                        materialize_fraction: fraction,
                        threads,
                    },
                );
                assert_same_index(
                    &symmetric,
                    &reference,
                    &format!("fraction={fraction} threads={threads}"),
                );
                assert_eq!(
                    symmetric.stats().scored_pairs * 2,
                    reference.stats().scored_pairs,
                    "fraction={fraction} threads={threads}: pairs not halved"
                );
            }
        }
    }

    #[test]
    fn disjoint_groups_have_no_neighbors() {
        let gs = groups_fixture();
        let idx = GroupIndex::build(&gs, &IndexConfig::default());
        let lonely = GroupId::new(3);
        assert!(idx.materialized(lonely).is_empty());
        assert_eq!(idx.full_neighbor_count(lonely), 0);
        assert!(idx.neighbors(&gs, lonely, 5).is_empty());
    }

    #[test]
    fn similarities_are_exact_jaccard() {
        let gs = groups_fixture();
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 1.0,
                threads: 1,
            },
        );
        // g0 = {0,1,2,3}, g1 = {2,3,4,5}: inter 2, union 6.
        let n0 = idx.materialized(GroupId::new(0));
        let to_g1 = n0
            .iter()
            .find(|(h, _)| *h == GroupId::new(1))
            .expect("neighbor exists");
        assert!((to_g1.1 - 2.0 / 6.0).abs() < 1e-6);
        assert!(
            (GroupIndex::similarity(&gs, GroupId::new(0), GroupId::new(1)) - 2.0 / 6.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn lists_are_sorted_descending() {
        let gs = groups_fixture();
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 1.0,
                threads: 1,
            },
        );
        for (gid, _) in gs.iter() {
            let l = idx.materialized(gid);
            assert!(
                l.windows(2).all(|w| w[0].1 >= w[1].1),
                "unsorted list for {gid}"
            );
        }
    }

    #[test]
    fn partial_materialization_keeps_top_fraction() {
        let gs = groups_fixture();
        // fraction 0.5 of 2 neighbors -> ceil(1) = 1 entry for g0.
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.5,
                threads: 1,
            },
        );
        let g0 = GroupId::new(0);
        assert_eq!(idx.full_neighbor_count(g0), 2);
        assert_eq!(idx.materialized(g0).len(), 1);
        // The kept entry is the most similar one.
        let exact = compute_all_neighbors(&gs, g0);
        assert_eq!(idx.materialized(g0)[0], exact[0]);
        // Queries beyond the prefix fall back to exact.
        assert!(idx.needs_fallback(g0, 2));
        assert_eq!(idx.neighbors(&gs, g0, 2), exact);
    }

    #[test]
    fn fallback_partial_selection_matches_full_sort() {
        // Real workload so fallback lists are long enough to make the
        // select-then-sort path meaningful at several k. Regression pin
        // for the CSR retention change: the fallback now generates its
        // candidates from the retained member→groups map, and must stay
        // identical to the whole-space reference scan at every k.
        let gs = bookcrossing_groups(10);
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.05,
                threads: 1,
            },
        );
        for (gid, _) in gs.iter() {
            let exact = compute_all_neighbors(&gs, gid);
            for k in [1usize, 3, 7, exact.len().max(1)] {
                assert_eq!(
                    idx.neighbors(&gs, gid, k),
                    exact[..k.min(exact.len())].to_vec(),
                    "k={k} mismatch for {gid}"
                );
            }
        }
    }

    #[test]
    fn zero_fraction_always_falls_back_yet_stays_exact() {
        let gs = groups_fixture();
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.0,
                threads: 1,
            },
        );
        let g1 = GroupId::new(1);
        // ceil(0 * n) = 0 entries materialized...
        assert!(idx.materialized(g1).is_empty());
        // ...but queries are still exact via fallback.
        assert_eq!(idx.neighbors(&gs, g1, 3), compute_all_neighbors(&gs, g1));
    }

    #[test]
    fn size_aware_chunks_balance_and_cover() {
        // Skewed: one giant, many small. Even group-count slicing over 2
        // workers would put the giant plus half the smalls on worker 0;
        // size-aware slicing isolates the giant.
        let sizes = [1000usize, 1, 1, 1, 1, 1, 1, 1];
        let chunks = size_aware_chunks(&sizes, 2);
        assert_eq!(chunks.iter().sum::<usize>(), sizes.len());
        assert!(chunks.iter().all(|&c| c > 0));
        assert_eq!(chunks[0], 1, "the giant group should fill worker 0");
        // More workers than items clamps; zero items yields no chunks.
        assert_eq!(size_aware_chunks(&[5, 5], 8), vec![1, 1]);
        assert!(size_aware_chunks(&[], 4).is_empty());
        // Zero-size tails are still covered.
        let with_zeros = size_aware_chunks(&[3, 0, 0, 0], 2);
        assert_eq!(with_zeros.iter().sum::<usize>(), 4);
        // Uniform sizes degrade to near-even chunking.
        let uniform = size_aware_chunks(&[2; 12], 4);
        assert_eq!(uniform, vec![3, 3, 3, 3]);
    }

    #[test]
    fn size_aware_chunks_handle_giants_anywhere_in_the_order() {
        // One worker gets everything in a single chunk.
        assert_eq!(size_aware_chunks(&[4, 2, 9, 1], 1), vec![4]);
        // A giant at the *end* must not starve earlier workers of items:
        // every chunk stays non-empty and coverage is exact.
        let sizes = [1usize, 1, 1, 1, 1, 1, 1, 1000];
        for workers in [2usize, 3, 4, 8] {
            let chunks = size_aware_chunks(&sizes, workers);
            assert_eq!(chunks.iter().sum::<usize>(), sizes.len());
            assert!(chunks.len() <= workers);
            assert!(
                chunks.iter().all(|&c| c > 0),
                "workers={workers}: {chunks:?}"
            );
        }
        // The giant ends up in the last chunk, alone with at most the
        // leftover smalls its greedy target allows.
        let two = size_aware_chunks(&sizes, 2);
        assert_eq!(two.len(), 2);
        assert_eq!(two[0] + two[1], sizes.len());
    }

    #[test]
    fn skewed_sizes_build_matches_serial_at_any_thread_count() {
        // A giant group plus many small ones: the regime even slicing
        // imbalances. The parallel build must stay identical to serial
        // and to the per-side reference.
        let mut gs = GroupSet::new();
        gs.push(Group::new(
            vec![],
            MemberSet::from_unsorted((0..500).collect()),
        ));
        for i in 0..40u32 {
            gs.push(Group::new(
                vec![],
                MemberSet::from_unsorted(vec![i * 3, i * 3 + 1, i * 3 + 2]),
            ));
        }
        let cfg = |threads| IndexConfig {
            materialize_fraction: 0.5,
            threads,
        };
        let serial = GroupIndex::build(&gs, &cfg(1));
        assert_same_index(
            &serial,
            &GroupIndex::build_reference(&gs, &cfg(1)),
            "serial vs reference",
        );
        for threads in [2usize, 3, 8, 64] {
            let parallel = GroupIndex::build(&gs, &cfg(threads));
            assert_same_index(&serial, &parallel, &format!("threads={threads}"));
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let gs = bookcrossing_groups(15);
        assert!(gs.len() > 10);
        let serial = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.3,
                threads: 1,
            },
        );
        let parallel = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.3,
                threads: 4,
            },
        );
        assert_same_index(&serial, &parallel, "threads=4");
    }

    #[test]
    fn stats_accounting() {
        let gs = groups_fixture();
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 1.0,
                threads: 1,
            },
        );
        let s = idx.stats();
        assert_eq!(s.n_groups, 4);
        // g0<->g1, g0<->g2, g1<->g2: each unordered pair scored once.
        assert_eq!(s.scored_pairs, 3);
        assert_eq!(s.materialized_entries, 6);
        // The per-side reference scores both directions of every pair.
        let reference = GroupIndex::build_reference(
            &gs,
            &IndexConfig {
                materialize_fraction: 1.0,
                threads: 1,
            },
        );
        assert_eq!(reference.stats().scored_pairs, 6);
        // heap accounting covers the flat entries, both offset tables and
        // the retained CSR.
        assert!(
            s.heap_bytes
                >= 6 * std::mem::size_of::<Neighbor>()
                    + (5 + 4) * std::mem::size_of::<u32>()
                    + idx.member_groups.heap_bytes()
        );
    }

    #[test]
    fn empty_group_set() {
        let gs = GroupSet::new();
        let idx = GroupIndex::build(&gs, &IndexConfig::default());
        assert!(idx.is_empty());
        assert_eq!(idx.stats().n_groups, 0);
    }

    #[test]
    fn smaller_fraction_uses_less_memory() {
        let gs = bookcrossing_groups(10);
        let full = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 1.0,
                threads: 2,
            },
        );
        let tenth = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.1,
                threads: 2,
            },
        );
        assert!(tenth.stats().materialized_entries < full.stats().materialized_entries / 2);
        assert!(tenth.stats().heap_bytes < full.stats().heap_bytes);
    }

    use vexus_data::TokenId;
    use vexus_mining::delta::{canonicalize, diff};

    /// A described group space from `(tag, members)` pairs, in canonical
    /// (description-sorted) order. Tags must be unique.
    fn described_space(defs: &[(u32, Vec<u32>)]) -> GroupSet {
        let mut gs = GroupSet::new();
        for (tag, members) in defs {
            gs.push(Group::new(
                vec![TokenId::new(*tag)],
                MemberSet::from_unsorted(members.clone()),
            ));
        }
        canonicalize(gs)
    }

    fn patch_config(fraction: f64, threads: usize) -> IndexConfig {
        IndexConfig {
            materialize_fraction: fraction,
            threads,
        }
    }

    #[test]
    fn empty_delta_patch_reproduces_the_index() {
        let gs = described_space(&[
            (1, vec![0, 1, 2, 3]),
            (2, vec![2, 3, 4, 5]),
            (3, vec![3, 4, 5, 6]),
        ]);
        let cfg = patch_config(0.5, 1);
        let idx = GroupIndex::build(&gs, &cfg);
        let patch = idx.apply_delta(&gs, &gs, &GroupDelta::default(), &cfg);
        assert_same_index(&patch.index, &idx, "empty delta");
        assert_eq!(patch.rescored, 0, "nothing is dirty");
        assert_eq!(patch.old_to_new, vec![0, 1, 2], "identity remap");
        assert!(patch.dirty.iter().all(|&d| !d));
        // A patch that rescored nothing reports zero patch work.
        assert_eq!(patch.index.stats().scored_pairs, 0);
    }

    #[test]
    fn patch_matches_rebuild_across_add_retire_resize() {
        // Old: {1}=[0..4]  {2}=[2..6]  {5}=[10,11,12]  {7}=[0,5]
        // New: {1}=[0..4]  {2}=[2..7] (grew)  {4}=[1,2,10] (added),
        // {5} retired, {7}=[0,5] untouched but overlaps nothing touched?
        // ({7} shares 5 with nothing touched — 2 gains member 6, retains
        // 5? no: {2}=[2,3,4,5] holds 5, so {7} is dirty via {2}'s resize.)
        let old = described_space(&[
            (1, vec![0, 1, 2, 3]),
            (2, vec![2, 3, 4, 5]),
            (5, vec![10, 11, 12]),
            (7, vec![0, 5]),
        ]);
        let new = described_space(&[
            (1, vec![0, 1, 2, 3]),
            (2, vec![2, 3, 4, 5, 6]),
            (4, vec![1, 2, 10]),
            (7, vec![0, 5]),
        ]);
        let delta = diff(&old, &new);
        assert_eq!(delta.added.len(), 1);
        assert_eq!(delta.retired.len(), 1);
        assert_eq!(delta.resized.len(), 1);
        for fraction in [0.0, 0.3, 1.0] {
            let cfg = patch_config(fraction, 1);
            let idx = GroupIndex::build(&old, &cfg);
            let patch = idx.apply_delta(&old, &new, &delta, &cfg);
            let rebuilt = GroupIndex::build(&new, &cfg);
            assert_same_index(&patch.index, &rebuilt, &format!("fraction={fraction}"));
            // The patch scored strictly less than the rebuild (only dirty
            // groups were rescored).
            assert!(patch.rescored <= new.len());
        }
    }

    #[test]
    fn untouched_disconnected_groups_stay_clean() {
        // Two overlapping groups in one component; a far-away pair in
        // another. Resizing inside the first component must not dirty the
        // second — its lists are copied, not rescored.
        let old = described_space(&[
            (1, vec![0, 1, 2]),
            (2, vec![1, 2, 3]),
            (8, vec![100, 101, 102]),
            (9, vec![101, 102, 103]),
        ]);
        let new = described_space(&[
            (1, vec![0, 1, 2, 4]),
            (2, vec![1, 2, 3]),
            (8, vec![100, 101, 102]),
            (9, vec![101, 102, 103]),
        ]);
        let delta = diff(&old, &new);
        assert_eq!(delta.resized.len(), 1);
        let cfg = patch_config(1.0, 1);
        let idx = GroupIndex::build(&old, &cfg);
        let patch = idx.apply_delta(&old, &new, &delta, &cfg);
        assert_same_index(&patch.index, &GroupIndex::build(&new, &cfg), "disconnected");
        // Canonical order: tags 1, 2, 8, 9 → ids 0, 1, 2, 3.
        assert_eq!(patch.dirty, vec![true, true, false, false]);
        assert_eq!(patch.rescored, 2);
    }

    #[test]
    fn patch_survives_a_universe_shrink_and_regrow() {
        // Retiring the group holding the largest member ids shrinks the
        // CSR universe; a later add regrows it. Both transitions must
        // match the rebuild's universe computation exactly.
        let cfg = patch_config(1.0, 2);
        let e0 = described_space(&[(1, vec![0, 1]), (2, vec![1, 2]), (3, vec![500, 501])]);
        let e1 = described_space(&[(1, vec![0, 1]), (2, vec![1, 2])]);
        let e2 = described_space(&[(1, vec![0, 1]), (2, vec![1, 2]), (4, vec![2, 900])]);
        let idx0 = GroupIndex::build(&e0, &cfg);
        let p1 = idx0.apply_delta(&e0, &e1, &diff(&e0, &e1), &cfg);
        assert_same_index(&p1.index, &GroupIndex::build(&e1, &cfg), "shrink");
        let p2 = p1.index.apply_delta(&e1, &e2, &diff(&e1, &e2), &cfg);
        assert_same_index(&p2.index, &GroupIndex::build(&e2, &cfg), "regrow");
    }

    /// The evolving-space model for the delta proptest: `(tag, members)`
    /// entries keyed by description tag.
    fn model_space(model: &std::collections::BTreeMap<u32, Vec<u32>>) -> GroupSet {
        let defs: Vec<(u32, Vec<u32>)> = model.iter().map(|(&t, m)| (t, m.clone())).collect();
        described_space(&defs)
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Random skewed group-size fixtures: the symmetric CSR build must
        /// equal the per-side reference — lists, full lengths and halved
        /// scored_pairs — at thread counts {1, 2, 4, 8}.
        #[test]
        fn prop_symmetric_build_equals_reference(
            raw_groups in proptest::collection::vec(
                (0u32..60, 1usize..24), 1..40),
            fraction in 0.0f64..1.0
        ) {
            // (start, len) spans over a 90-member universe; overlapping
            // spans give dense overlap structure, tiny spans give skew.
            let mut gs = GroupSet::new();
            for (start, len) in raw_groups {
                let members: Vec<u32> = (start..start + len as u32).collect();
                gs.push(Group::new(vec![], MemberSet::from_unsorted(members)));
            }
            let reference = GroupIndex::build_reference(
                &gs,
                &IndexConfig { materialize_fraction: fraction, threads: 1 },
            );
            for threads in [1usize, 2, 4, 8] {
                let symmetric = GroupIndex::build(
                    &gs,
                    &IndexConfig { materialize_fraction: fraction, threads },
                );
                for (gid, _) in gs.iter() {
                    prop_assert_eq!(
                        symmetric.materialized(gid),
                        reference.materialized(gid),
                        "threads={} group={}", threads, gid
                    );
                    prop_assert_eq!(
                        symmetric.full_neighbor_count(gid),
                        reference.full_neighbor_count(gid)
                    );
                }
                prop_assert_eq!(
                    symmetric.stats().scored_pairs * 2,
                    reference.stats().scored_pairs
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The incremental-refresh oracle: starting from a random described
        /// space, apply random epochs of add / retire / resize ops and pin
        /// [`GroupIndex::apply_delta`] byte-identical to a full
        /// [`GroupIndex::build`] over every epoch's space, at thread counts
        /// {1, 2, 4, 8}, chaining each epoch's patch off the previous
        /// patched index.
        #[test]
        fn prop_apply_delta_equals_full_rebuild(
            initial in proptest::collection::vec(
                (0u32..24, 0u32..40, 1usize..10), 1..12),
            epochs in proptest::collection::vec(
                proptest::collection::vec(
                    (0u8..3, 0u32..24, 0u32..40, 1usize..10), 1..8),
                1..4),
            fraction in 0.0f64..1.0
        ) {
            let mut model: std::collections::BTreeMap<u32, Vec<u32>> =
                std::collections::BTreeMap::new();
            for (tag, start, len) in initial {
                model.entry(tag)
                    .or_insert_with(|| (start..start + len as u32).collect());
            }
            let cfg = patch_config(fraction, 1);
            let mut space = model_space(&model);
            let mut idx = GroupIndex::build(&space, &cfg);
            for (e, ops) in epochs.into_iter().enumerate() {
                for (kind, tag, start, len) in ops {
                    let members: Vec<u32> = (start..start + len as u32).collect();
                    let keys: Vec<u32> = model.keys().copied().collect();
                    match kind {
                        0 => {
                            model.entry(tag).or_insert(members);
                        }
                        1 if !keys.is_empty() => {
                            model.remove(&keys[tag as usize % keys.len()]);
                        }
                        2 if !keys.is_empty() => {
                            model.insert(keys[tag as usize % keys.len()], members);
                        }
                        _ => {}
                    }
                }
                let next = model_space(&model);
                let delta = diff(&space, &next);
                let reference = GroupIndex::build(&next, &cfg);
                let mut chained = None;
                for threads in [1usize, 2, 4, 8] {
                    let patch = idx.apply_delta(
                        &space, &next, &delta, &patch_config(fraction, threads));
                    for g in 0..next.len() {
                        let g = GroupId::new(g as u32);
                        prop_assert_eq!(
                            patch.index.materialized(g),
                            reference.materialized(g),
                            "epoch={} threads={} group={}", e, threads, g
                        );
                        prop_assert_eq!(
                            patch.index.full_neighbor_count(g),
                            reference.full_neighbor_count(g)
                        );
                    }
                    prop_assert_eq!(
                        patch.index.member_groups.offsets(),
                        reference.member_groups.offsets()
                    );
                    prop_assert_eq!(
                        patch.index.member_groups.ids(),
                        reference.member_groups.ids()
                    );
                    if threads == 1 {
                        chained = Some(patch.index);
                    }
                }
                idx = chained.expect("threads=1 ran");
                space = next;
            }
        }
    }
}
