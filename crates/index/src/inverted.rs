//! Per-group inverted neighbor index.
//!
//! For each group `g` the index holds the other groups ordered by
//! decreasing Jaccard similarity of member sets. Only the top
//! `materialize_fraction` of each list is stored (the paper uses 10 %);
//! queries beyond the materialized prefix fall back to an exact on-demand
//! scan, so results are correct at any fraction — the fraction trades
//! memory and build time against fallback frequency, which is exactly what
//! experiment C3 sweeps.

use crate::graph::OverlapGraph;
use vexus_mining::{GroupId, GroupSet};

/// Index construction knobs.
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Fraction of each inverted list to materialize (paper: `0.10`).
    pub materialize_fraction: f64,
    /// Worker threads for the build (`0` = use available parallelism).
    pub threads: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            materialize_fraction: 0.10,
            threads: 0,
        }
    }
}

/// Build-time statistics (reported by experiment C3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexStats {
    /// Number of groups indexed.
    pub n_groups: usize,
    /// Total materialized neighbor entries.
    pub materialized_entries: usize,
    /// Total overlapping candidate pairs scored during the build.
    pub scored_pairs: usize,
    /// Approximate heap bytes of the materialized lists.
    pub heap_bytes: usize,
}

/// One neighbor entry: a group and its Jaccard similarity.
pub type Neighbor = (GroupId, f32);

/// The inverted similarity index over a [`GroupSet`].
#[derive(Debug)]
pub struct GroupIndex {
    /// Materialized neighbor prefix per group, descending similarity.
    lists: Vec<Vec<Neighbor>>,
    /// Per-group count of *all* overlapping neighbors (full list length).
    full_lengths: Vec<usize>,
    stats: IndexStats,
}

impl GroupIndex {
    /// Build the index over `groups`.
    pub fn build(groups: &GroupSet, cfg: &IndexConfig) -> Self {
        let n = groups.len();
        let fraction = cfg.materialize_fraction.clamp(0.0, 1.0);

        // member -> groups inverted map, the candidate generator.
        let member_groups = build_member_groups(groups);

        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            cfg.threads
        }
        .max(1)
        .min(n.max(1));

        let mut lists: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        let mut full_lengths = vec![0usize; n];
        let scored = std::sync::atomic::AtomicUsize::new(0);

        // Shard groups across threads; each worker owns a disjoint slice of
        // the output vectors. Chunk boundaries balance the summed *member*
        // count per worker, not the group count: a group's candidate scan
        // walks its members' inverted lists, so with skewed group sizes an
        // even group split leaves most workers idle behind the one that
        // drew the giants.
        let sizes: Vec<usize> = groups.iter().map(|(_, g)| g.size()).collect();
        let chunks = size_aware_chunks(&sizes, threads);
        crossbeam::thread::scope(|scope| {
            let mut remaining_lists = lists.as_mut_slice();
            let mut remaining_lens = full_lengths.as_mut_slice();
            let mut start = 0usize;
            let mut handles = Vec::new();
            for &take in &chunks {
                let (lists_chunk, rest_lists) = remaining_lists.split_at_mut(take);
                let (lens_chunk, rest_lens) = remaining_lens.split_at_mut(take);
                remaining_lists = rest_lists;
                remaining_lens = rest_lens;
                let member_groups = &member_groups;
                let scored = &scored;
                let base = start;
                handles.push(scope.spawn(move |_| {
                    let mut counter: Vec<u32> = vec![0; n];
                    let mut touched: Vec<u32> = Vec::new();
                    for (offset, (out_list, out_len)) in lists_chunk
                        .iter_mut()
                        .zip(lens_chunk.iter_mut())
                        .enumerate()
                    {
                        let gid = GroupId::new((base + offset) as u32);
                        let scored_here = score_group(
                            groups,
                            member_groups,
                            gid,
                            fraction,
                            &mut counter,
                            &mut touched,
                            out_list,
                            out_len,
                        );
                        scored.fetch_add(scored_here, std::sync::atomic::Ordering::Relaxed);
                    }
                }));
                start += take;
            }
            for h in handles {
                h.join().expect("index build worker panicked");
            }
        })
        .expect("index build scope");

        let materialized_entries: usize = lists.iter().map(Vec::len).sum();
        let heap_bytes: usize = lists
            .iter()
            .map(|l| l.capacity() * std::mem::size_of::<Neighbor>())
            .sum();
        let stats = IndexStats {
            n_groups: n,
            materialized_entries,
            scored_pairs: scored.into_inner(),
            heap_bytes,
        };
        Self {
            lists,
            full_lengths,
            stats,
        }
    }

    /// Build statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Number of indexed groups.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The materialized neighbor prefix of `g` (descending similarity).
    pub fn materialized(&self, g: GroupId) -> &[Neighbor] {
        &self.lists[g.index()]
    }

    /// Number of *overlapping* neighbors `g` has in total (materialized or
    /// not).
    pub fn full_neighbor_count(&self, g: GroupId) -> usize {
        self.full_lengths[g.index()]
    }

    /// Top-`k` neighbors of `g`, exact. Served from the materialized prefix
    /// in O(k) when it suffices; falls back to an on-demand exact scan of
    /// overlapping groups otherwise.
    pub fn neighbors(&self, groups: &GroupSet, g: GroupId, k: usize) -> Vec<Neighbor> {
        let list = &self.lists[g.index()];
        if k <= list.len() || list.len() == self.full_lengths[g.index()] {
            return list[..k.min(list.len())].to_vec();
        }
        // Fallback: exact recomputation (the price of materializing less).
        // Only the returned `k` need ordering, so select before sorting —
        // the same partial selection the build path uses.
        let mut full = collect_overlapping_neighbors(groups, g);
        if k < full.len() {
            full.select_nth_unstable_by(k - 1, neighbor_order);
            full.truncate(k);
        }
        full.sort_by(neighbor_order);
        full
    }

    /// Whether serving `k` neighbors of `g` would need the exact fallback.
    pub fn needs_fallback(&self, g: GroupId, k: usize) -> bool {
        let list = &self.lists[g.index()];
        k > list.len() && list.len() < self.full_lengths[g.index()]
    }

    /// Exact Jaccard similarity between two groups (computed on demand).
    pub fn similarity(groups: &GroupSet, a: GroupId, b: GroupId) -> f64 {
        groups.get(a).members.jaccard(&groups.get(b).members)
    }
}

/// Split `sizes.len()` items into at most `workers` contiguous chunks
/// whose summed sizes are balanced (each chunk takes items until it
/// reaches the remaining total divided by the remaining workers). Returns
/// the chunk lengths; they are all non-zero and cover every item, so the
/// build's output layout — and hence the index — is independent of the
/// worker count.
fn size_aware_chunks(sizes: &[usize], workers: usize) -> Vec<usize> {
    let n = sizes.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let mut chunks = Vec::with_capacity(workers);
    let mut remaining: usize = sizes.iter().sum();
    let mut i = 0;
    for w in 0..workers {
        let workers_left = workers - w;
        // Leave at least one item for every worker after this one.
        let max_take = n - i - (workers_left - 1);
        let target = remaining.div_ceil(workers_left);
        let mut take = 0;
        let mut acc = 0;
        while take < max_take && (take == 0 || acc < target) {
            acc += sizes[i + take];
            take += 1;
        }
        chunks.push(take);
        i += take;
        remaining -= acc;
    }
    // Zero-size tail items can stall the greedy walk; fold any leftover
    // into the last chunk so coverage stays exact.
    if i < n {
        *chunks.last_mut().expect("workers >= 1") += n - i;
    }
    chunks
}

/// member -> sorted group ids containing that member.
fn build_member_groups(groups: &GroupSet) -> Vec<Vec<u32>> {
    // Member sets are sorted, so the universe bound is each group's last
    // slice element: O(groups), not a walk over every membership.
    let n_users = groups
        .iter()
        .filter_map(|(_, g)| g.members.as_slice().last())
        .max()
        .map(|&m| m as usize + 1)
        .unwrap_or(0);
    let mut map: Vec<Vec<u32>> = vec![Vec::new(); n_users];
    for (gid, g) in groups.iter() {
        for u in g.members.iter() {
            map[u as usize].push(gid.0);
        }
    }
    map
}

/// Score every group overlapping `gid` and materialize the top fraction.
/// Returns the number of pairs scored.
#[allow(clippy::too_many_arguments)]
fn score_group(
    groups: &GroupSet,
    member_groups: &[Vec<u32>],
    gid: GroupId,
    fraction: f64,
    counter: &mut [u32],
    touched: &mut Vec<u32>,
    out_list: &mut Vec<Neighbor>,
    out_len: &mut usize,
) -> usize {
    let g = groups.get(gid);
    // Intersection counting via the member->groups map.
    for u in g.members.iter() {
        for &h in &member_groups[u as usize] {
            if h != gid.0 {
                if counter[h as usize] == 0 {
                    touched.push(h);
                }
                counter[h as usize] += 1;
            }
        }
    }
    let scored = touched.len();
    *out_len = scored;
    let keep = ((fraction * scored as f64).ceil() as usize).min(scored);
    let mut neighbors: Vec<Neighbor> = Vec::with_capacity(scored);
    for &h in touched.iter() {
        let inter = counter[h as usize] as usize;
        counter[h as usize] = 0;
        let other = groups.get(GroupId::new(h));
        let union = g.size() + other.size() - inter;
        let sim = inter as f32 / union as f32;
        neighbors.push((GroupId::new(h), sim));
    }
    touched.clear();
    // Partial selection: only the kept prefix needs full ordering.
    if keep > 0 && keep < neighbors.len() {
        neighbors.select_nth_unstable_by(keep - 1, neighbor_order);
        neighbors.truncate(keep);
    }
    neighbors.sort_by(neighbor_order);
    neighbors.truncate(keep);
    neighbors.shrink_to_fit();
    *out_list = neighbors;
    scored
}

/// Descending-similarity neighbor order with ids as the tie-break.
fn neighbor_order(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1)
        .expect("finite similarity")
        .then_with(|| a.0.cmp(&b.0))
}

/// Every group overlapping `g`, scored but unordered.
fn collect_overlapping_neighbors(groups: &GroupSet, g: GroupId) -> Vec<Neighbor> {
    let me = groups.get(g);
    groups
        .iter()
        .filter(|(h, _)| *h != g)
        .filter_map(|(h, other)| {
            let inter = me.members.intersection_size(&other.members);
            if inter == 0 {
                return None;
            }
            let union = me.size() + other.size() - inter;
            Some((h, inter as f32 / union as f32))
        })
        .collect()
}

/// Exact full neighbor list of `g` (descending similarity).
pub fn compute_all_neighbors(groups: &GroupSet, g: GroupId) -> Vec<Neighbor> {
    let mut out = collect_overlapping_neighbors(groups, g);
    out.sort_by(neighbor_order);
    out
}

/// Build the overlap graph from a group set (edges between any two groups
/// sharing a member). Exposed here because it reuses the member→groups map.
pub fn build_overlap_graph(groups: &GroupSet) -> OverlapGraph {
    let member_groups = build_member_groups(groups);
    OverlapGraph::from_member_groups(groups.len(), &member_groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexus_mining::{Group, MemberSet};

    fn groups_fixture() -> GroupSet {
        let mut gs = GroupSet::new();
        gs.push(Group::new(
            vec![],
            MemberSet::from_unsorted(vec![0, 1, 2, 3]),
        ));
        gs.push(Group::new(
            vec![],
            MemberSet::from_unsorted(vec![2, 3, 4, 5]),
        ));
        gs.push(Group::new(
            vec![],
            MemberSet::from_unsorted(vec![3, 4, 5, 6]),
        ));
        gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![100, 101])));
        gs
    }

    #[test]
    fn full_materialization_matches_exact() {
        let gs = groups_fixture();
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 1.0,
                threads: 1,
            },
        );
        for (gid, _) in gs.iter() {
            let got = idx.materialized(gid).to_vec();
            let expect = compute_all_neighbors(&gs, gid);
            assert_eq!(got, expect, "mismatch for {gid}");
            assert_eq!(idx.full_neighbor_count(gid), expect.len());
        }
    }

    #[test]
    fn disjoint_groups_have_no_neighbors() {
        let gs = groups_fixture();
        let idx = GroupIndex::build(&gs, &IndexConfig::default());
        let lonely = GroupId::new(3);
        assert!(idx.materialized(lonely).is_empty());
        assert_eq!(idx.full_neighbor_count(lonely), 0);
        assert!(idx.neighbors(&gs, lonely, 5).is_empty());
    }

    #[test]
    fn similarities_are_exact_jaccard() {
        let gs = groups_fixture();
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 1.0,
                threads: 1,
            },
        );
        // g0 = {0,1,2,3}, g1 = {2,3,4,5}: inter 2, union 6.
        let n0 = idx.materialized(GroupId::new(0));
        let to_g1 = n0
            .iter()
            .find(|(h, _)| *h == GroupId::new(1))
            .expect("neighbor exists");
        assert!((to_g1.1 - 2.0 / 6.0).abs() < 1e-6);
        assert!(
            (GroupIndex::similarity(&gs, GroupId::new(0), GroupId::new(1)) - 2.0 / 6.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn lists_are_sorted_descending() {
        let gs = groups_fixture();
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 1.0,
                threads: 1,
            },
        );
        for (gid, _) in gs.iter() {
            let l = idx.materialized(gid);
            assert!(
                l.windows(2).all(|w| w[0].1 >= w[1].1),
                "unsorted list for {gid}"
            );
        }
    }

    #[test]
    fn partial_materialization_keeps_top_fraction() {
        let gs = groups_fixture();
        // fraction 0.5 of 2 neighbors -> ceil(1) = 1 entry for g0.
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.5,
                threads: 1,
            },
        );
        let g0 = GroupId::new(0);
        assert_eq!(idx.full_neighbor_count(g0), 2);
        assert_eq!(idx.materialized(g0).len(), 1);
        // The kept entry is the most similar one.
        let exact = compute_all_neighbors(&gs, g0);
        assert_eq!(idx.materialized(g0)[0], exact[0]);
        // Queries beyond the prefix fall back to exact.
        assert!(idx.needs_fallback(g0, 2));
        assert_eq!(idx.neighbors(&gs, g0, 2), exact);
    }

    #[test]
    fn fallback_partial_selection_matches_full_sort() {
        // Real workload so fallback lists are long enough to make the
        // select-then-sort path meaningful at several k.
        let ds =
            vexus_data::synthetic::bookcrossing(&vexus_data::synthetic::BookCrossingConfig::tiny());
        let vocab = vexus_data::Vocabulary::build(&ds.data);
        let db = vexus_mining::transactions::TransactionDb::build(&ds.data, &vocab);
        let gs = vexus_mining::mine_closed_groups(
            &db,
            &vexus_mining::LcmConfig {
                min_support: 10,
                ..Default::default()
            },
        );
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.05,
                threads: 1,
            },
        );
        for (gid, _) in gs.iter() {
            let exact = compute_all_neighbors(&gs, gid);
            for k in [1usize, 3, 7, exact.len().max(1)] {
                assert_eq!(
                    idx.neighbors(&gs, gid, k),
                    exact[..k.min(exact.len())].to_vec(),
                    "k={k} mismatch for {gid}"
                );
            }
        }
    }

    #[test]
    fn zero_fraction_always_falls_back_yet_stays_exact() {
        let gs = groups_fixture();
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.0,
                threads: 1,
            },
        );
        let g1 = GroupId::new(1);
        // ceil(0 * n) = 0 entries materialized...
        assert!(idx.materialized(g1).is_empty());
        // ...but queries are still exact via fallback.
        assert_eq!(idx.neighbors(&gs, g1, 3), compute_all_neighbors(&gs, g1));
    }

    #[test]
    fn size_aware_chunks_balance_and_cover() {
        // Skewed: one giant, many small. Even group-count slicing over 2
        // workers would put the giant plus half the smalls on worker 0;
        // size-aware slicing isolates the giant.
        let sizes = [1000usize, 1, 1, 1, 1, 1, 1, 1];
        let chunks = size_aware_chunks(&sizes, 2);
        assert_eq!(chunks.iter().sum::<usize>(), sizes.len());
        assert!(chunks.iter().all(|&c| c > 0));
        assert_eq!(chunks[0], 1, "the giant group should fill worker 0");
        // More workers than items clamps; zero items yields no chunks.
        assert_eq!(size_aware_chunks(&[5, 5], 8), vec![1, 1]);
        assert!(size_aware_chunks(&[], 4).is_empty());
        // Zero-size tails are still covered.
        let with_zeros = size_aware_chunks(&[3, 0, 0, 0], 2);
        assert_eq!(with_zeros.iter().sum::<usize>(), 4);
        // Uniform sizes degrade to near-even chunking.
        let uniform = size_aware_chunks(&[2; 12], 4);
        assert_eq!(uniform, vec![3, 3, 3, 3]);
    }

    #[test]
    fn size_aware_chunks_handle_giants_anywhere_in_the_order() {
        // One worker gets everything in a single chunk.
        assert_eq!(size_aware_chunks(&[4, 2, 9, 1], 1), vec![4]);
        // A giant at the *end* must not starve earlier workers of items:
        // every chunk stays non-empty and coverage is exact.
        let sizes = [1usize, 1, 1, 1, 1, 1, 1, 1000];
        for workers in [2usize, 3, 4, 8] {
            let chunks = size_aware_chunks(&sizes, workers);
            assert_eq!(chunks.iter().sum::<usize>(), sizes.len());
            assert!(chunks.len() <= workers);
            assert!(
                chunks.iter().all(|&c| c > 0),
                "workers={workers}: {chunks:?}"
            );
        }
        // The giant ends up in the last chunk, alone with at most the
        // leftover smalls its greedy target allows.
        let two = size_aware_chunks(&sizes, 2);
        assert_eq!(two.len(), 2);
        assert_eq!(two[0] + two[1], sizes.len());
    }

    #[test]
    fn skewed_sizes_build_matches_serial_at_any_thread_count() {
        // A giant group plus many small ones: the regime even slicing
        // imbalances. The parallel build must stay identical to serial.
        let mut gs = GroupSet::new();
        gs.push(Group::new(
            vec![],
            MemberSet::from_unsorted((0..500).collect()),
        ));
        for i in 0..40u32 {
            gs.push(Group::new(
                vec![],
                MemberSet::from_unsorted(vec![i * 3, i * 3 + 1, i * 3 + 2]),
            ));
        }
        let serial = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.5,
                threads: 1,
            },
        );
        for threads in [2usize, 3, 8, 64] {
            let parallel = GroupIndex::build(
                &gs,
                &IndexConfig {
                    materialize_fraction: 0.5,
                    threads,
                },
            );
            for (gid, _) in gs.iter() {
                assert_eq!(serial.materialized(gid), parallel.materialized(gid));
                assert_eq!(
                    serial.full_neighbor_count(gid),
                    parallel.full_neighbor_count(gid)
                );
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let ds =
            vexus_data::synthetic::bookcrossing(&vexus_data::synthetic::BookCrossingConfig::tiny());
        let vocab = vexus_data::Vocabulary::build(&ds.data);
        let db = vexus_mining::transactions::TransactionDb::build(&ds.data, &vocab);
        let gs = vexus_mining::mine_closed_groups(
            &db,
            &vexus_mining::LcmConfig {
                min_support: 15,
                ..Default::default()
            },
        );
        assert!(gs.len() > 10);
        let serial = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.3,
                threads: 1,
            },
        );
        let parallel = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.3,
                threads: 4,
            },
        );
        for (gid, _) in gs.iter() {
            assert_eq!(serial.materialized(gid), parallel.materialized(gid));
        }
        assert_eq!(
            serial.stats().materialized_entries,
            parallel.stats().materialized_entries
        );
    }

    #[test]
    fn stats_accounting() {
        let gs = groups_fixture();
        let idx = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 1.0,
                threads: 1,
            },
        );
        let s = idx.stats();
        assert_eq!(s.n_groups, 4);
        // g0<->g1, g0<->g2, g1<->g2: each scored from both sides = 6.
        assert_eq!(s.scored_pairs, 6);
        assert_eq!(s.materialized_entries, 6);
        assert!(s.heap_bytes >= 6 * std::mem::size_of::<Neighbor>());
    }

    #[test]
    fn empty_group_set() {
        let gs = GroupSet::new();
        let idx = GroupIndex::build(&gs, &IndexConfig::default());
        assert!(idx.is_empty());
        assert_eq!(idx.stats().n_groups, 0);
    }

    #[test]
    fn smaller_fraction_uses_less_memory() {
        let ds =
            vexus_data::synthetic::bookcrossing(&vexus_data::synthetic::BookCrossingConfig::tiny());
        let vocab = vexus_data::Vocabulary::build(&ds.data);
        let db = vexus_mining::transactions::TransactionDb::build(&ds.data, &vocab);
        let gs = vexus_mining::mine_closed_groups(
            &db,
            &vexus_mining::LcmConfig {
                min_support: 10,
                ..Default::default()
            },
        );
        let full = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 1.0,
                threads: 2,
            },
        );
        let tenth = GroupIndex::build(
            &gs,
            &IndexConfig {
                materialize_fraction: 0.1,
                threads: 2,
            },
        );
        assert!(tenth.stats().materialized_entries < full.stats().materialized_entries / 2);
        assert!(tenth.stats().heap_bytes < full.stats().heap_bytes);
    }
}
