//! A seeded fail-point registry (fail-rs-style) for deterministic fault
//! injection.
//!
//! A *fail point* is a named site in production code — `"serve.step"`,
//! `"cache.shard"`, `"snapshot.load"` — where a test, chaos experiment or
//! example can inject a failure: either a panic (to exercise panic
//! isolation and lock poisoning) or an error (the site maps it to its own
//! typed error). Sites are compiled into consumers only behind their
//! `failpoints` cargo feature; release builds without the feature carry
//! no branch at all, and builds *with* the feature but no configured
//! sites pay one relaxed atomic load per site hit.
//!
//! Triggers are **deterministic**: no wall clock, no global RNG. Counter
//! triggers ([`Trigger::Always`], [`Trigger::Nth`], [`Trigger::Prob`])
//! derive from a per-site call counter (exact under a fixed single-thread
//! call order); [`Trigger::KeyProb`] hashes a caller-supplied key (a
//! session id, a group id) with a fixed seed, so *which* keys fault is
//! independent of thread interleaving — the property the chaos harness
//! needs to predict the faulted set and pin survivor determinism.
//!
//! Configuration is global (the whole point is reaching sites buried
//! under several layers), so concurrently configured scenarios would
//! interfere; [`FailScenario::setup`] serializes scenarios behind one
//! process-wide lock and clears the registry on drop, the same contract
//! as fail-rs.
//!
//! ```
//! use vexus_failpoint as fp;
//! let scenario = fp::FailScenario::setup();
//! fp::configure("demo.site", fp::Trigger::Nth(2), fp::FailAction::Error);
//! assert!(!fp::hit("demo.site")); // call 1
//! assert!(fp::hit("demo.site")); // call 2 fires
//! drop(scenario); // registry cleared
//! assert!(!fp::hit("demo.site"));
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};

/// What a fired fail point does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a message naming the site — exercises `catch_unwind`
    /// isolation and lock poisoning in the layers above.
    Panic,
    /// Make [`hit`]/[`hit_key`] return `true`; the site maps that to its
    /// own typed error.
    Error,
}

/// When a configured fail point fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every call.
    Always,
    /// Every `n`-th call (per-site call counter; `Nth(1)` = every call,
    /// `Nth(0)` never fires).
    Nth(u64),
    /// Each call independently with probability `p`, drawn from a seeded
    /// per-site counter stream — deterministic for a fixed call order.
    Prob {
        /// Fire probability in `[0, 1]`.
        p: f64,
        /// Stream seed.
        seed: u64,
    },
    /// Fires for the fixed subset of *keys* selected by
    /// [`key_selected`]`(seed, p, key)` — independent of call order and
    /// thread interleaving, so a harness can predict exactly which keys
    /// (sessions, shards, …) will fault.
    KeyProb {
        /// Fraction of the key space selected, in `[0, 1]`.
        p: f64,
        /// Selection seed.
        seed: u64,
    },
}

struct Site {
    trigger: Trigger,
    action: FailAction,
    calls: AtomicU64,
    fired: AtomicU64,
}

/// Number of configured sites; the fast path reads only this.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static RwLock<HashMap<String, Arc<Site>>> {
    static REGISTRY: OnceLock<RwLock<HashMap<String, Arc<Site>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

/// SplitMix64 — the same mixer the data substrate uses for sharding.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a 64-bit hash to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The deterministic key-selection predicate behind [`Trigger::KeyProb`]:
/// whether `key` is in the seeded `p`-fraction of the key space. Public so
/// chaos harnesses can predict the faulted set without firing anything.
pub fn key_selected(seed: u64, p: f64, key: u64) -> bool {
    unit(splitmix64(seed ^ key.wrapping_mul(0xA24B_AED4_963E_E407))) < p
}

/// Configure (or reconfigure) a fail point. Takes effect immediately for
/// every thread; the per-site call/fired counters reset.
pub fn configure(site: &str, trigger: Trigger, action: FailAction) {
    let mut map = registry().write().unwrap_or_else(PoisonError::into_inner);
    map.insert(
        site.to_string(),
        Arc::new(Site {
            trigger,
            action,
            calls: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        }),
    );
    ACTIVE.store(map.len(), Ordering::SeqCst);
}

/// Remove one fail point.
pub fn clear(site: &str) {
    let mut map = registry().write().unwrap_or_else(PoisonError::into_inner);
    map.remove(site);
    ACTIVE.store(map.len(), Ordering::SeqCst);
}

/// Remove every configured fail point.
pub fn clear_all() {
    let mut map = registry().write().unwrap_or_else(PoisonError::into_inner);
    map.clear();
    ACTIVE.store(0, Ordering::SeqCst);
}

/// How often `site` has fired since it was configured (0 when absent).
pub fn fired(site: &str) -> u64 {
    registry()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .get(site)
        .map(|s| s.fired.load(Ordering::SeqCst))
        .unwrap_or(0)
}

/// Evaluate a fail point with no key (counter triggers only;
/// [`Trigger::KeyProb`] sees key 0). Returns `true` when an
/// [`FailAction::Error`] fires; panics when a [`FailAction::Panic`]
/// fires; returns `false` otherwise — including always, at one relaxed
/// atomic load, when nothing is configured.
#[inline]
pub fn hit(site: &str) -> bool {
    hit_key(site, 0)
}

/// Evaluate a fail point at `site` for `key` (see [`hit`]).
#[inline]
pub fn hit_key(site: &str, key: u64) -> bool {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return false;
    }
    hit_slow(site, key)
}

#[cold]
fn hit_slow(site: &str, key: u64) -> bool {
    let Some(s) = registry()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .get(site)
        .cloned()
    else {
        return false;
    };
    let call = s.calls.fetch_add(1, Ordering::SeqCst) + 1;
    let fire = match s.trigger {
        Trigger::Always => true,
        Trigger::Nth(n) => n != 0 && call % n == 0,
        Trigger::Prob { p, seed } => unit(splitmix64(seed ^ call)) < p,
        Trigger::KeyProb { p, seed } => key_selected(seed, p, key),
    };
    if !fire {
        return false;
    }
    s.fired.fetch_add(1, Ordering::SeqCst);
    match s.action {
        FailAction::Panic => panic!("failpoint {site:?} fired (injected panic, key {key})"),
        FailAction::Error => true,
    }
}

static SCENARIO_LOCK: Mutex<()> = Mutex::new(());

/// A globally exclusive fault-injection scenario: holds a process-wide
/// lock for its lifetime (scenarios in concurrently running tests
/// serialize instead of interfering) and clears the registry both on
/// setup and on drop.
pub struct FailScenario {
    _guard: MutexGuard<'static, ()>,
}

impl FailScenario {
    /// Acquire the scenario lock and start from an empty registry.
    pub fn setup() -> Self {
        // A test that panicked mid-scenario poisons the lock; the registry
        // is cleared below either way, so recovery is sound.
        let guard = SCENARIO_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        clear_all();
        Self { _guard: guard }
    }
}

impl Drop for FailScenario {
    fn drop(&mut self) {
        clear_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconfigured_sites_never_fire() {
        let _s = FailScenario::setup();
        assert!(!hit("nothing.here"));
        assert!(!hit_key("nothing.here", 42));
        assert_eq!(fired("nothing.here"), 0);
    }

    #[test]
    fn nth_trigger_counts_calls() {
        let _s = FailScenario::setup();
        configure("t.nth", Trigger::Nth(3), FailAction::Error);
        let fires: Vec<bool> = (0..9).map(|_| hit("t.nth")).collect();
        assert_eq!(
            fires,
            [false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(fired("t.nth"), 3);
        // Nth(0) never fires.
        configure("t.nth", Trigger::Nth(0), FailAction::Error);
        assert!((0..10).all(|_| !hit("t.nth")));
    }

    #[test]
    fn always_trigger_with_panic_action_panics_with_the_site_name() {
        let _s = FailScenario::setup();
        configure("t.boom", Trigger::Always, FailAction::Panic);
        let err = std::panic::catch_unwind(|| hit("t.boom")).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(msg.contains("t.boom"), "panic names the site: {msg}");
        assert_eq!(fired("t.boom"), 1);
    }

    #[test]
    fn prob_trigger_is_deterministic_for_a_fixed_call_order() {
        let _s = FailScenario::setup();
        configure(
            "t.prob",
            Trigger::Prob { p: 0.5, seed: 7 },
            FailAction::Error,
        );
        let a: Vec<bool> = (0..64).map(|_| hit("t.prob")).collect();
        configure(
            "t.prob",
            Trigger::Prob { p: 0.5, seed: 7 },
            FailAction::Error,
        );
        let b: Vec<bool> = (0..64).map(|_| hit("t.prob")).collect();
        assert_eq!(a, b, "same seed, same stream");
        let fires = a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&fires), "p=0.5 over 64 calls: {fires}");
    }

    #[test]
    fn key_prob_depends_only_on_the_key() {
        let _s = FailScenario::setup();
        configure(
            "t.key",
            Trigger::KeyProb { p: 0.25, seed: 42 },
            FailAction::Error,
        );
        // Whatever order keys arrive in, the same keys fire — and they
        // match the public predicate.
        let keys: Vec<u64> = (0..100).collect();
        let forward: Vec<bool> = keys.iter().map(|&k| hit_key("t.key", k)).collect();
        let backward: Vec<bool> = keys.iter().rev().map(|&k| hit_key("t.key", k)).collect();
        let backward_reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed);
        for (&k, &f) in keys.iter().zip(&forward) {
            assert_eq!(f, key_selected(42, 0.25, k));
        }
        let selected = forward.iter().filter(|&&f| f).count();
        assert!(
            (5..=50).contains(&selected),
            "p=0.25 over 100 keys: {selected}"
        );
    }

    #[test]
    fn scenario_drop_clears_configuration() {
        {
            let _s = FailScenario::setup();
            configure("t.scoped", Trigger::Always, FailAction::Error);
            assert!(hit("t.scoped"));
        }
        assert!(!hit("t.scoped"));
    }
}
