//! Fisher Linear Discriminant Analysis — the Focus view's projection.
//!
//! "VEXUS employs Linear Discriminant Analysis \[8\] as a dimensionality
//! reduction approach to obtain a 2D projection of members of a desired
//! group. Members whose profiles are more similar appear closer to each
//! other."
//!
//! LDA maximizes between-class over within-class scatter: find `w`
//! maximizing `wᵀ S_b w / wᵀ S_w w`. We solve the generalized eigenproblem
//! by Cholesky whitening: with `S_w = L·Lᵀ`, the problem becomes the
//! ordinary symmetric eigenproblem `L⁻¹ S_b L⁻ᵀ u = λ u`, solved with the
//! Jacobi method from [`crate::linalg`], and `w = L⁻ᵀ u`. `S_w` is ridge-
//! regularized (`+ εI`) so degenerate demographic features (constant
//! columns) cannot break the factorization.
//!
//! When no labels are available the Focus view uses [`crate::pca`]; labels
//! in VEXUS come from any categorical attribute of choice (the same
//! attribute used for color coding).

use crate::linalg::{cholesky, jacobi_eigen, solve_lower, solve_lower_transpose, Matrix};

/// A fitted LDA projection.
#[derive(Debug, Clone)]
pub struct Lda {
    mean: Vec<f64>,
    /// `directions[k]` = k-th discriminant direction in input space.
    directions: Vec<Vec<f64>>,
    /// Generalized eigenvalues (class-separation power), descending.
    pub eigenvalues: Vec<f64>,
}

impl Lda {
    /// Fit an LDA with `k` discriminant directions on labeled samples.
    ///
    /// `k` is clamped to `min(dim, n_classes - 1)` (LDA's rank limit).
    ///
    /// # Panics
    /// Panics on empty/ragged input, mismatched label length, or fewer than
    /// two classes.
    pub fn fit(points: &[Vec<f64>], labels: &[u32], k: usize) -> Self {
        assert!(!points.is_empty(), "LDA needs samples");
        assert_eq!(points.len(), labels.len(), "one label per sample");
        let dim = points[0].len();
        assert!(points.iter().all(|p| p.len() == dim), "ragged samples");
        let classes: std::collections::BTreeSet<u32> = labels.iter().copied().collect();
        assert!(classes.len() >= 2, "LDA needs at least two classes");
        let k = k.min(dim).min(classes.len() - 1).max(1);

        let n = points.len() as f64;
        let mut global_mean = vec![0.0; dim];
        for p in points {
            for (m, x) in global_mean.iter_mut().zip(p) {
                *m += x;
            }
        }
        for m in &mut global_mean {
            *m /= n;
        }

        // Per-class means and counts.
        let mut class_stats: std::collections::BTreeMap<u32, (Vec<f64>, usize)> = classes
            .iter()
            .map(|&c| (c, (vec![0.0; dim], 0usize)))
            .collect();
        for (p, &l) in points.iter().zip(labels) {
            let (sum, cnt) = class_stats.get_mut(&l).expect("class present");
            for (s, x) in sum.iter_mut().zip(p) {
                *s += x;
            }
            *cnt += 1;
        }

        // Scatter matrices.
        let mut sw = Matrix::zeros(dim, dim);
        let mut sb = Matrix::zeros(dim, dim);
        for (p, &l) in points.iter().zip(labels) {
            let (sum, cnt) = &class_stats[&l];
            for i in 0..dim {
                let di = p[i] - sum[i] / *cnt as f64;
                for j in i..dim {
                    let dj = p[j] - sum[j] / *cnt as f64;
                    sw[(i, j)] += di * dj;
                }
            }
        }
        for (sum, cnt) in class_stats.values() {
            let w = *cnt as f64;
            for i in 0..dim {
                let di = sum[i] / w - global_mean[i];
                for j in i..dim {
                    let dj = sum[j] / w - global_mean[j];
                    sb[(i, j)] += w * di * dj;
                }
            }
        }
        for i in 0..dim {
            for j in i..dim {
                let w = sw[(i, j)];
                sw[(j, i)] = w;
                let b = sb[(i, j)];
                sb[(j, i)] = b;
            }
        }
        // Ridge regularization keeps S_w positive definite.
        let trace: f64 = (0..dim).map(|i| sw[(i, i)]).sum();
        let eps = (trace / dim as f64).max(1e-6) * 1e-4 + 1e-9;
        for i in 0..dim {
            sw[(i, i)] += eps;
        }

        // Whiten: M = L^{-1} S_b L^{-T}, symmetric.
        let l = cholesky(&sw).expect("ridge-regularized S_w is SPD");
        // Compute L^{-1} S_b column by column, then L^{-1} (…)^T again.
        let mut linv_sb = Matrix::zeros(dim, dim);
        for c in 0..dim {
            let col: Vec<f64> = (0..dim).map(|r| sb[(r, c)]).collect();
            let solved = solve_lower(&l, &col);
            for r in 0..dim {
                linv_sb[(r, c)] = solved[r];
            }
        }
        let mut m = Matrix::zeros(dim, dim);
        // M = (L^{-1} (L^{-1} S_b)^T)^T; row r of linv_sb^T is column r.
        let linv_sb_t = linv_sb.transpose();
        for c in 0..dim {
            let col: Vec<f64> = (0..dim).map(|r| linv_sb_t[(r, c)]).collect();
            let solved = solve_lower(&l, &col);
            for r in 0..dim {
                m[(r, c)] = solved[r];
            }
        }
        // Symmetrize against round-off before Jacobi.
        for i in 0..dim {
            for j in i + 1..dim {
                let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
                m[(i, j)] = avg;
                m[(j, i)] = avg;
            }
        }
        let (vals, vecs) = jacobi_eigen(&m, 64);

        let mut directions = Vec::with_capacity(k);
        for c in 0..k {
            let u: Vec<f64> = (0..dim).map(|r| vecs[(r, c)]).collect();
            let mut w = solve_lower_transpose(&l, &u);
            // Normalize for stable rendering scales.
            let norm: f64 = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for x in &mut w {
                    *x /= norm;
                }
            }
            directions.push(w);
        }
        Self {
            mean: global_mean,
            directions,
            eigenvalues: vals[..k].to_vec(),
        }
    }

    /// Number of discriminant directions.
    pub fn n_components(&self) -> usize {
        self.directions.len()
    }

    /// Project one sample.
    pub fn project(&self, point: &[f64]) -> Vec<f64> {
        self.directions
            .iter()
            .map(|w| {
                point
                    .iter()
                    .zip(&self.mean)
                    .zip(w)
                    .map(|((&x, &m), &wi)| (x - m) * wi)
                    .sum()
            })
            .collect()
    }

    /// Project many samples.
    pub fn project_all(&self, points: &[Vec<f64>]) -> Vec<Vec<f64>> {
        points.iter().map(|p| self.project(p)).collect()
    }
}

/// One-hot + numeric featurization of arbitrary mixed feature rows is left
/// to callers; the exploration engine builds demographic feature vectors in
/// `vexus-core::features`.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::{silhouette, Pca};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two elongated classes separated along y but overlapping along x —
    /// the classic case where PCA picks the wrong axis and LDA wins.
    fn tricky_blobs() -> (Vec<Vec<f64>>, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(9);
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let x = rng.gen::<f64>() * 40.0; // high-variance nuisance axis
            let class = (i % 2) as u32;
            let y = class as f64 * 2.0 + rng.gen::<f64>() * 0.5;
            pts.push(vec![x, y]);
            labels.push(class);
        }
        (pts, labels)
    }

    #[test]
    fn separates_classes_pca_cannot() {
        let (pts, labels) = tricky_blobs();
        let lda = Lda::fit(&pts, &labels, 1);
        let lda_proj = lda.project_all(&pts);
        let pca = Pca::fit(&pts, 1);
        let pca_proj = pca.project_all(&pts);
        let s_lda = silhouette(&lda_proj, &labels);
        let s_pca = silhouette(&pca_proj, &labels);
        assert!(s_lda > 0.5, "LDA silhouette {s_lda}");
        assert!(s_lda > s_pca + 0.3, "LDA {s_lda} should beat PCA {s_pca}");
    }

    #[test]
    fn direction_aligns_with_class_axis() {
        let (pts, labels) = tricky_blobs();
        let lda = Lda::fit(&pts, &labels, 1);
        // Discriminant should be ~(0, ±1): ignore x, separate on y.
        let w = &lda.directions[0];
        assert!(w[1].abs() > 0.95, "direction {w:?}");
        assert!(w[0].abs() < 0.3, "direction {w:?}");
    }

    #[test]
    fn rank_limit_clamps_components() {
        let (pts, labels) = tricky_blobs(); // 2 classes -> at most 1 direction
        let lda = Lda::fit(&pts, &labels, 5);
        assert_eq!(lda.n_components(), 1);
    }

    #[test]
    fn three_classes_two_directions() {
        let mut rng = StdRng::seed_from_u64(4);
        let centers = [(0.0, 0.0, 0.0), (5.0, 0.0, 1.0), (0.0, 5.0, 2.0)];
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            let (cx, cy, cz) = centers[i % 3];
            pts.push(vec![
                cx + rng.gen::<f64>() * 0.3,
                cy + rng.gen::<f64>() * 0.3,
                cz + rng.gen::<f64>() * 0.3,
            ]);
            labels.push((i % 3) as u32);
        }
        let lda = Lda::fit(&pts, &labels, 2);
        assert_eq!(lda.n_components(), 2);
        let proj = lda.project_all(&pts);
        assert!(silhouette(&proj, &labels) > 0.8);
        // Eigenvalues descending.
        assert!(lda.eigenvalues[0] >= lda.eigenvalues[1]);
    }

    #[test]
    fn constant_feature_does_not_break_fit() {
        // Third feature constant: S_w singular without regularization.
        let pts = vec![
            vec![0.0, 0.0, 7.0],
            vec![0.1, 0.0, 7.0],
            vec![5.0, 1.0, 7.0],
            vec![5.1, 1.0, 7.0],
        ];
        let labels = vec![0, 0, 1, 1];
        let lda = Lda::fit(&pts, &labels, 1);
        let proj = lda.project_all(&pts);
        // Classes still separate.
        assert!((proj[0][0] - proj[1][0]).abs() < (proj[0][0] - proj[2][0]).abs());
    }

    #[test]
    fn projection_centers_global_mean() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![2.0, 2.0],
            vec![4.0, 0.0],
            vec![6.0, 2.0],
        ];
        let labels = vec![0, 0, 1, 1];
        let lda = Lda::fit(&pts, &labels, 1);
        let p = lda.project(&[3.0, 1.0]); // global mean
        assert!(p[0].abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn single_class_panics() {
        Lda::fit(&[vec![0.0], vec![1.0]], &[0, 0], 1);
    }

    #[test]
    fn projections_are_finite_for_tiny_classes() {
        // Two classes of two points each in 3-D: rank-deficient scatter.
        let pts = vec![
            vec![0.0, 0.0, 1.0],
            vec![0.1, 0.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![1.1, 1.0, 1.0],
        ];
        let lda = Lda::fit(&pts, &[0, 0, 1, 1], 2);
        for p in lda.project_all(&pts) {
            assert!(p.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn eigenvalues_are_nonnegative() {
        let (pts, labels) = tricky_blobs();
        let lda = Lda::fit(&pts, &labels, 1);
        assert!(lda.eigenvalues.iter().all(|&v| v > -1e-6));
    }
}
