//! Categorical color coding: "Circles are color-coded by any attribute of
//! choice (e.g., by gender) to provide immediate insights."

/// An sRGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// CSS hex form (`#rrggbb`).
    pub fn hex(&self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

/// A categorical palette (Tableau-10-like, colorblind-aware ordering).
/// Indices beyond the base palette rotate with lightness shifts, so any
/// category count gets a distinct color.
#[derive(Debug, Clone, Default)]
pub struct Palette;

const BASE: [(u8, u8, u8); 10] = [
    (31, 119, 180),
    (255, 127, 14),
    (44, 160, 44),
    (214, 39, 40),
    (148, 103, 189),
    (140, 86, 75),
    (227, 119, 194),
    (127, 127, 127),
    (188, 189, 34),
    (23, 190, 207),
];

impl Palette {
    /// The color of category `i`.
    pub fn color(i: usize) -> Color {
        let (r, g, b) = BASE[i % BASE.len()];
        let round = (i / BASE.len()) as u32;
        if round == 0 {
            return Color { r, g, b };
        }
        // Blend toward white a bit more each round; never fully white.
        let t = (round.min(3) as f64) * 0.22;
        let blend = |c: u8| -> u8 { (c as f64 + (255.0 - c as f64) * t) as u8 };
        Color {
            r: blend(r),
            g: blend(g),
            b: blend(b),
        }
    }

    /// Mix category colors weighted by share — a circle colored "by gender"
    /// shows the blend of its members' genders.
    pub fn blend(shares: &[(usize, f64)]) -> Color {
        let total: f64 = shares.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return Color {
                r: 200,
                g: 200,
                b: 200,
            };
        }
        let mut acc = (0.0, 0.0, 0.0);
        for &(cat, w) in shares {
            let c = Self::color(cat);
            acc.0 += c.r as f64 * w;
            acc.1 += c.g as f64 * w;
            acc.2 += c.b as f64 * w;
        }
        Color {
            r: (acc.0 / total).round() as u8,
            g: (acc.1 / total).round() as u8,
            b: (acc.2 / total).round() as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_colors_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10 {
            assert!(seen.insert(Palette::color(i).hex()));
        }
    }

    #[test]
    fn extended_rounds_stay_distinct_from_base() {
        for i in 0..10 {
            assert_ne!(Palette::color(i), Palette::color(i + 10));
        }
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(
            Color {
                r: 255,
                g: 0,
                b: 16
            }
            .hex(),
            "#ff0010"
        );
    }

    #[test]
    fn blend_pure_share_is_base_color() {
        let c = Palette::blend(&[(2, 1.0)]);
        assert_eq!(c, Palette::color(2));
    }

    #[test]
    fn blend_of_nothing_is_gray() {
        assert_eq!(
            Palette::blend(&[]),
            Color {
                r: 200,
                g: 200,
                b: 200
            }
        );
    }

    #[test]
    fn blend_interpolates() {
        let a = Palette::color(0);
        let b = Palette::color(1);
        let mixed = Palette::blend(&[(0, 0.5), (1, 0.5)]);
        assert!(mixed.r >= a.r.min(b.r) && mixed.r <= a.r.max(b.r));
        assert!(mixed.g >= a.g.min(b.g) && mixed.g <= a.g.max(b.g));
    }
}
