//! # vexus-viz
//!
//! The visualization backend of VEXUS — everything the demo UI computes,
//! minus the browser. Pure geometry and math, rendered to SVG/text by the
//! examples:
//!
//! * [`force`] — the directed force layout that positions group circles
//!   "to prevent visual clutter" (many-body repulsion + collision +
//!   centering, velocity Verlet integration),
//! * [`lda`] — Linear Discriminant Analysis, the dimensionality reduction
//!   the Focus view uses so that "members whose profiles are more similar
//!   appear closer to each other"; [`pca`] is the unsupervised baseline,
//! * [`linalg`] — the small dense linear-algebra kit both rely on
//!   (symmetric Jacobi eigensolver, Cholesky),
//! * [`color`] — categorical color coding for the GroupViz circles,
//! * [`svg`] — a minimal SVG document builder for circles, scatter plots
//!   and bar charts.

pub mod color;
pub mod force;
pub mod lda;
pub mod linalg;
pub mod pca;
pub mod svg;

pub use force::{ForceConfig, ForceLayout, Node};
pub use lda::Lda;
pub use linalg::Matrix;
pub use pca::Pca;
