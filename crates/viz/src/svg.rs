//! Minimal SVG document builder — how the examples materialize GroupViz
//! circles, Focus-view scatter plots and STATS bar charts without a
//! browser.

use crate::color::Color;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

impl SvgDoc {
    /// New document of the given size.
    pub fn new(width: f64, height: f64) -> Self {
        Self {
            width,
            height,
            body: String::new(),
        }
    }

    /// Filled circle with stroke and a `<title>` tooltip (the paper's
    /// hover-for-description behaviour).
    pub fn circle(&mut self, x: f64, y: f64, r: f64, fill: Color, title: &str) -> &mut Self {
        self.body.push_str(&format!(
            "  <circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"{r:.1}\" fill=\"{}\" \
             fill-opacity=\"0.75\" stroke=\"#333\"><title>{}</title></circle>\n",
            fill.hex(),
            esc(title)
        ));
        self
    }

    /// Small scatter point.
    pub fn point(&mut self, x: f64, y: f64, fill: Color) -> &mut Self {
        self.body.push_str(&format!(
            "  <circle cx=\"{x:.2}\" cy=\"{y:.2}\" r=\"2.5\" fill=\"{}\"/>\n",
            fill.hex()
        ));
        self
    }

    /// Text label.
    pub fn text(&mut self, x: f64, y: f64, size: f64, content: &str) -> &mut Self {
        self.body.push_str(&format!(
            "  <text x=\"{x:.1}\" y=\"{y:.1}\" font-size=\"{size:.0}\" \
             font-family=\"sans-serif\">{}</text>\n",
            esc(content)
        ));
        self
    }

    /// Axis-aligned rectangle (histogram bar).
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: Color) -> &mut Self {
        self.body.push_str(&format!(
            "  <rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{h:.1}\" \
             fill=\"{}\"/>\n",
            fill.hex()
        ));
        self
    }

    /// Straight line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64) -> &mut Self {
        self.body.push_str(&format!(
            "  <line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
             stroke=\"#999\" stroke-width=\"1\"/>\n"
        ));
        self
    }

    /// Finish the document.
    pub fn finish(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
             viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"#fcfcfc\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// Render a horizontal bar chart (one STATS histogram) into an SVG string.
pub fn bar_chart(title: &str, bars: &[(String, u64)], width: f64) -> String {
    let row_h = 22.0;
    let height = 40.0 + bars.len() as f64 * row_h;
    let mut doc = SvgDoc::new(width, height);
    doc.text(10.0, 20.0, 14.0, title);
    let max = bars.iter().map(|(_, c)| *c).max().unwrap_or(0).max(1) as f64;
    let label_w = 150.0;
    for (i, (label, count)) in bars.iter().enumerate() {
        let y = 35.0 + i as f64 * row_h;
        doc.text(10.0, y + 12.0, 11.0, label);
        let w = (*count as f64 / max) * (width - label_w - 60.0);
        doc.rect(label_w, y, w, row_h - 6.0, crate::color::Palette::color(0));
        doc.text(label_w + w + 5.0, y + 12.0, 11.0, &count.to_string());
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Palette;

    #[test]
    fn document_structure() {
        let mut doc = SvgDoc::new(100.0, 50.0);
        doc.circle(10.0, 10.0, 5.0, Palette::color(0), "a group")
            .point(20.0, 20.0, Palette::color(1))
            .text(5.0, 45.0, 10.0, "label")
            .rect(0.0, 0.0, 10.0, 10.0, Palette::color(2))
            .line(0.0, 0.0, 100.0, 50.0);
        let svg = doc.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<title>a group</title>"));
        assert!(svg.contains("<rect"));
        assert!(svg.contains("<line"));
        assert!(svg.contains("width=\"100\""));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.text(0.0, 0.0, 10.0, "a<b & \"c\"");
        let svg = doc.finish();
        assert!(svg.contains("a&lt;b &amp; &quot;c&quot;"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn bar_chart_renders_all_bars() {
        let bars = vec![("male".to_string(), 62), ("female".to_string(), 38)];
        let svg = bar_chart("gender", &bars, 400.0);
        assert!(svg.contains("gender"));
        assert!(svg.contains("male"));
        assert!(svg.contains("62"));
        assert_eq!(svg.matches("<rect").count(), 3); // background + 2 bars
    }

    #[test]
    fn empty_bar_chart_is_valid() {
        let svg = bar_chart("empty", &[], 200.0);
        assert!(svg.starts_with("<svg"));
    }
}
