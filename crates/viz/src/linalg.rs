//! Small dense linear algebra: just enough for LDA/PCA on demographic
//! feature spaces (tens of dimensions), implemented from scratch per the
//! dependency policy.

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        assert!(rows.iter().all(|x| x.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len());
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Frobenius norm of the off-diagonal part (Jacobi convergence check).
    fn off_diagonal_norm(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    s += self[(i, j)] * self[(i, j)];
                }
            }
        }
        s.sqrt()
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in i + 1..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Eigen-decomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by **descending**
/// eigenvalue; eigenvector `k` is column `k` of the returned matrix.
///
/// # Panics
/// Panics if the matrix is not square/symmetric.
pub fn jacobi_eigen(a: &Matrix, max_sweeps: usize) -> (Vec<f64>, Matrix) {
    assert!(
        a.is_symmetric(1e-8),
        "jacobi_eigen requires a symmetric matrix"
    );
    let n = a.n_rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    for _ in 0..max_sweeps {
        if m.off_diagonal_norm() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply rotation R(p,q,θ) on both sides.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite eigenvalues"));
    let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    (values, vectors)
}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix. Returns `None` if the matrix is not positive definite.
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    if a.n_rows() != a.n_cols() {
        return None;
    }
    let n = a.n_rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solve `L·x = b` for lower-triangular `L` (forward substitution).
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.n_rows();
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for j in 0..i {
            sum -= l[(i, j)] * x[j];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Solve `Lᵀ·x = b` for lower-triangular `L` (backward substitution).
pub fn solve_lower_transpose(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.n_rows();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in i + 1..n {
            sum -= l[(j, i)] * x[j];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
        assert_eq!(
            a.transpose(),
            Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]])
        );
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let (vals, vecs) = jacobi_eigen(&a, 32);
        assert!(approx(vals[0], 3.0, 1e-10));
        assert!(approx(vals[1], 1.0, 1e-10));
        // First eigenvector = e1 (up to sign).
        assert!(approx(vecs[(0, 0)].abs(), 1.0, 1e-10));
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = jacobi_eigen(&a, 64);
        assert!(approx(vals[0], 3.0, 1e-9));
        assert!(approx(vals[1], 1.0, 1e-9));
        // Verify A v = λ v for both.
        for k in 0..2 {
            let v: Vec<f64> = (0..2).map(|r| vecs[(r, k)]).collect();
            let av = a.matvec(&v);
            for r in 0..2 {
                assert!(approx(av[r], vals[k] * v[r], 1e-8));
            }
        }
    }

    #[test]
    fn cholesky_round_trip() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        let back = l.matmul(&l.transpose());
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx(back[(i, j)], a[(i, j)], 1e-10));
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn triangular_solves() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        // Solve A x = b via L (L^T x) = b.
        let b = [10.0, 8.0];
        let y = solve_lower(&l, &b);
        let x = solve_lower_transpose(&l, &y);
        let ax = a.matvec(&x);
        assert!(approx(ax[0], 10.0, 1e-10));
        assert!(approx(ax[1], 8.0, 1e-10));
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn jacobi_rejects_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        jacobi_eigen(&a, 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_jacobi_reconstructs(symvals in proptest::collection::vec(-5.0f64..5.0, 9)) {
            // Build a random symmetric 3x3: S = B + B^T.
            let b = Matrix::from_rows(&[
                &symvals[0..3], &symvals[3..6], &symvals[6..9],
            ]);
            let mut s = Matrix::zeros(3, 3);
            for i in 0..3 {
                for j in 0..3 {
                    s[(i, j)] = b[(i, j)] + b[(j, i)];
                }
            }
            let (vals, vecs) = jacobi_eigen(&s, 64);
            // Eigenvalues descending.
            prop_assert!(vals.windows(2).all(|w| w[0] >= w[1] - 1e-9));
            // Reconstruct: S ≈ V diag(vals) V^T.
            let mut d = Matrix::zeros(3, 3);
            for i in 0..3 {
                d[(i, i)] = vals[i];
            }
            let rec = vecs.matmul(&d).matmul(&vecs.transpose());
            for i in 0..3 {
                for j in 0..3 {
                    prop_assert!(approx(rec[(i, j)], s[(i, j)], 1e-7),
                        "reconstruction mismatch at ({i},{j})");
                }
            }
            // Eigenvectors orthonormal.
            let vtv = vecs.transpose().matmul(&vecs);
            for i in 0..3 {
                for j in 0..3 {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    prop_assert!(approx(vtv[(i, j)], expect, 1e-8));
                }
            }
        }

        #[test]
        fn prop_cholesky_solves_spd_systems(
            diag in proptest::collection::vec(0.5f64..4.0, 3),
            off in proptest::collection::vec(-0.4f64..0.4, 3),
            b in proptest::collection::vec(-10.0f64..10.0, 3)
        ) {
            // Diagonally-dominant symmetric => SPD.
            let a = Matrix::from_rows(&[
                &[diag[0] + 2.0, off[0], off[1]],
                &[off[0], diag[1] + 2.0, off[2]],
                &[off[1], off[2], diag[2] + 2.0],
            ]);
            let l = cholesky(&a).expect("SPD by construction");
            let y = solve_lower(&l, &b);
            let x = solve_lower_transpose(&l, &y);
            let ax = a.matvec(&x);
            for i in 0..3 {
                prop_assert!(approx(ax[i], b[i], 1e-8));
            }
        }
    }
}
