//! Principal Component Analysis — the unsupervised baseline the C10
//! experiment compares LDA against.

use crate::linalg::{jacobi_eigen, Matrix};

/// A fitted PCA projection.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `components[(d, k)]`: loading of input dim `d` on component `k`.
    components: Matrix,
    /// Explained variance per retained component, descending.
    pub explained: Vec<f64>,
}

impl Pca {
    /// Fit a `k`-component PCA on row-vector samples.
    ///
    /// # Panics
    /// Panics if `points` is empty or ragged, or `k` exceeds the input
    /// dimensionality.
    pub fn fit(points: &[Vec<f64>], k: usize) -> Self {
        assert!(!points.is_empty(), "PCA needs at least one sample");
        let dim = points[0].len();
        assert!(points.iter().all(|p| p.len() == dim), "ragged samples");
        assert!(k <= dim, "cannot retain more components than dimensions");
        let n = points.len() as f64;
        let mut mean = vec![0.0; dim];
        for p in points {
            for (m, x) in mean.iter_mut().zip(p) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        // Covariance.
        let mut cov = Matrix::zeros(dim, dim);
        for p in points {
            for i in 0..dim {
                let di = p[i] - mean[i];
                for j in i..dim {
                    let dj = p[j] - mean[j];
                    cov[(i, j)] += di * dj;
                }
            }
        }
        for i in 0..dim {
            for j in i..dim {
                let v = cov[(i, j)] / n.max(1.0);
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        let (vals, vecs) = jacobi_eigen(&cov, 64);
        let mut components = Matrix::zeros(dim, k);
        for c in 0..k {
            for d in 0..dim {
                components[(d, c)] = vecs[(d, c)];
            }
        }
        Self {
            mean,
            components,
            explained: vals[..k].to_vec(),
        }
    }

    /// Project one sample.
    pub fn project(&self, point: &[f64]) -> Vec<f64> {
        let k = self.components.n_cols();
        let mut out = vec![0.0; k];
        for (d, (&x, &m)) in point.iter().zip(&self.mean).enumerate() {
            let centered = x - m;
            for (c, o) in out.iter_mut().enumerate() {
                *o += centered * self.components[(d, c)];
            }
        }
        out
    }

    /// Project many samples.
    pub fn project_all(&self, points: &[Vec<f64>]) -> Vec<Vec<f64>> {
        points.iter().map(|p| self.project(p)).collect()
    }

    /// Loadings of component `k` (unit vector in input space).
    pub fn component(&self, k: usize) -> Vec<f64> {
        (0..self.components.n_rows())
            .map(|d| self.components[(d, k)])
            .collect()
    }

    /// The fitted per-dimension mean.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }
}

/// Mean silhouette score of a labeled 2-D (or any-D) embedding — the
/// separation metric used by experiment C10. Ranges in `[-1, 1]`; higher
/// means same-label points are closer together than to other clusters.
pub fn silhouette(points: &[Vec<f64>], labels: &[u32]) -> f64 {
    assert_eq!(points.len(), labels.len());
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    let classes: std::collections::BTreeSet<u32> = labels.iter().copied().collect();
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        // Mean distance to own class (a) and nearest other class (b).
        let mut own_sum = 0.0;
        let mut own_n = 0usize;
        let mut others: std::collections::BTreeMap<u32, (f64, usize)> = Default::default();
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = dist(&points[i], &points[j]);
            if labels[j] == labels[i] {
                own_sum += d;
                own_n += 1;
            } else {
                let e = others.entry(labels[j]).or_insert((0.0, 0));
                e.0 += d;
                e.1 += 1;
            }
        }
        if own_n == 0 || others.is_empty() {
            continue;
        }
        let a = own_sum / own_n as f64;
        let b = others
            .values()
            .map(|(s, c)| s / *c as f64)
            .fold(f64::INFINITY, f64::min);
        let s = (b - a) / a.max(b).max(1e-12);
        total += s;
        counted += 1;
    }
    let _ = classes;
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_axis() {
        // Points along y = 2x: first component should align with (1,2)/√5.
        let points: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64 * 0.1, i as f64 * 0.2])
            .collect();
        let pca = Pca::fit(&points, 1);
        let v = pca.component(0);
        let expected = [1.0 / 5.0f64.sqrt(), 2.0 / 5.0f64.sqrt()];
        let dot = (v[0] * expected[0] + v[1] * expected[1]).abs();
        assert!(dot > 0.999, "component misaligned: dot {dot}");
    }

    #[test]
    fn projection_is_mean_centered() {
        let points = vec![vec![1.0, 1.0], vec![3.0, 3.0]];
        let pca = Pca::fit(&points, 2);
        let p = pca.project(&[2.0, 2.0]); // the mean
        assert!(p.iter().all(|x| x.abs() < 1e-10));
    }

    #[test]
    fn explained_variance_descends() {
        let points: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i % 7) as f64 * 0.1, 0.0])
            .collect();
        let pca = Pca::fit(&points, 3);
        assert!(pca.explained[0] >= pca.explained[1]);
        assert!(pca.explained[1] >= pca.explained[2] - 1e-12);
        assert!(pca.explained[2].abs() < 1e-9, "flat axis has no variance");
    }

    #[test]
    fn silhouette_separated_blobs_near_one() {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            points.push(vec![i as f64 * 0.01, 0.0]);
            labels.push(0);
            points.push(vec![100.0 + i as f64 * 0.01, 0.0]);
            labels.push(1);
        }
        let s = silhouette(&points, &labels);
        assert!(s > 0.95, "silhouette {s}");
    }

    #[test]
    fn silhouette_mixed_blobs_near_zero() {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            points.push(vec![(i % 10) as f64, ((i * 7) % 10) as f64]);
            labels.push((i % 2) as u32);
        }
        let s = silhouette(&points, &labels);
        assert!(s.abs() < 0.3, "silhouette {s}");
    }

    #[test]
    fn silhouette_degenerate_inputs() {
        assert_eq!(silhouette(&[vec![0.0]], &[0]), 0.0);
        // Single class: no separation defined.
        let pts = vec![vec![0.0], vec![1.0]];
        assert_eq!(silhouette(&pts, &[0, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_fit_panics() {
        Pca::fit(&[], 1);
    }
}
