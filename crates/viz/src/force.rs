//! Directed force layout for the GROUPVIZ circles.
//!
//! "GROUPVIZ visualizes k groups in the form of circles. … The position of
//! circles is enforced by a directed force layout to prevent visual
//! clutter. The size of circles reflects the number of users in groups."
//!
//! The simulation follows the d3-force model: per tick, apply
//! many-body repulsion, pairwise **collision** resolution against circle
//! radii, **centering** toward the canvas center, and optional **link**
//! springs between similar groups; integrate with velocity Verlet and a
//! velocity decay. With k ≤ 7 circles convergence takes a few hundred
//! ticks; the clutter claim (C11) is measured as total pairwise overlap
//! area, which must hit zero.

/// One circle in the layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Position.
    pub x: f64,
    /// Position.
    pub y: f64,
    /// Velocity.
    pub vx: f64,
    /// Velocity.
    pub vy: f64,
    /// Circle radius (scaled from group size by the caller).
    pub radius: f64,
}

impl Node {
    /// A stationary node.
    pub fn new(x: f64, y: f64, radius: f64) -> Self {
        Self {
            x,
            y,
            vx: 0.0,
            vy: 0.0,
            radius,
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct ForceConfig {
    /// Canvas width.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
    /// Many-body repulsion strength (d3's `charge`, negative = repel).
    pub charge: f64,
    /// Centering force strength toward the canvas center.
    pub centering: f64,
    /// Spring strength for links.
    pub link_strength: f64,
    /// Rest length for links.
    pub link_distance: f64,
    /// Velocity decay per tick (`0..1`).
    pub velocity_decay: f64,
    /// Extra padding between circles during collision resolution.
    pub collision_padding: f64,
}

impl Default for ForceConfig {
    fn default() -> Self {
        Self {
            width: 800.0,
            height: 600.0,
            charge: -120.0,
            centering: 0.05,
            link_strength: 0.05,
            link_distance: 120.0,
            velocity_decay: 0.6,
            collision_padding: 4.0,
        }
    }
}

/// The force simulation.
#[derive(Debug, Clone)]
pub struct ForceLayout {
    /// Current node states.
    pub nodes: Vec<Node>,
    links: Vec<(usize, usize, f64)>,
    cfg: ForceConfig,
}

impl ForceLayout {
    /// Create a layout. Nodes start on a deterministic phyllotaxis spiral
    /// around the canvas center (the same trick d3 uses) so identical
    /// inputs always produce identical layouts.
    pub fn new(radii: &[f64], cfg: ForceConfig) -> Self {
        let cx = cfg.width / 2.0;
        let cy = cfg.height / 2.0;
        let nodes = radii
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let k = i as f64;
                let radius_step = 12.0 * (k + 1.0).sqrt();
                let angle = k * 2.399963229728653; // golden angle
                Node::new(
                    cx + radius_step * angle.cos(),
                    cy + radius_step * angle.sin(),
                    r,
                )
            })
            .collect();
        Self {
            nodes,
            links: Vec::new(),
            cfg,
        }
    }

    /// Add a spring between two nodes weighted by `strength ∈ [0,1]`
    /// (e.g. Jaccard similarity between the groups).
    pub fn link(&mut self, a: usize, b: usize, strength: f64) {
        assert!(a < self.nodes.len() && b < self.nodes.len());
        if a != b {
            self.links.push((a, b, strength.clamp(0.0, 1.0)));
        }
    }

    /// Advance one tick.
    pub fn tick(&mut self) {
        let n = self.nodes.len();
        if n == 0 {
            return;
        }
        let cx = self.cfg.width / 2.0;
        let cy = self.cfg.height / 2.0;
        // Many-body repulsion (exact O(n²); k ≤ 12 in practice).
        for i in 0..n {
            for j in i + 1..n {
                let dx = self.nodes[j].x - self.nodes[i].x;
                let dy = self.nodes[j].y - self.nodes[i].y;
                let d2 = (dx * dx + dy * dy).max(1.0);
                let f = self.cfg.charge / d2;
                let d = d2.sqrt();
                let (ux, uy) = (dx / d, dy / d);
                self.nodes[i].vx += f * ux;
                self.nodes[i].vy += f * uy;
                self.nodes[j].vx -= f * ux;
                self.nodes[j].vy -= f * uy;
            }
        }
        // Link springs.
        for &(a, b, s) in &self.links {
            let dx = self.nodes[b].x - self.nodes[a].x;
            let dy = self.nodes[b].y - self.nodes[a].y;
            let d = (dx * dx + dy * dy).sqrt().max(1e-6);
            let stretch = d - self.cfg.link_distance;
            let f = self.cfg.link_strength * s * stretch / d;
            self.nodes[a].vx += f * dx;
            self.nodes[a].vy += f * dy;
            self.nodes[b].vx -= f * dx;
            self.nodes[b].vy -= f * dy;
        }
        // Centering.
        for node in &mut self.nodes {
            node.vx += (cx - node.x) * self.cfg.centering;
            node.vy += (cy - node.y) * self.cfg.centering;
        }
        // Integrate with decay.
        for node in &mut self.nodes {
            node.vx *= self.cfg.velocity_decay;
            node.vy *= self.cfg.velocity_decay;
            node.x += node.vx;
            node.y += node.vy;
        }
        // Collision resolution: push overlapping circles apart directly
        // (position-based, like d3.forceCollide iterations).
        for _ in 0..3 {
            for i in 0..n {
                for j in i + 1..n {
                    let min_d =
                        self.nodes[i].radius + self.nodes[j].radius + self.cfg.collision_padding;
                    let dx = self.nodes[j].x - self.nodes[i].x;
                    let dy = self.nodes[j].y - self.nodes[i].y;
                    let d2 = dx * dx + dy * dy;
                    if d2 >= min_d * min_d {
                        continue;
                    }
                    let d = d2.sqrt().max(1e-6);
                    let overlap = (min_d - d) / 2.0;
                    let (ux, uy) = if d > 1e-5 {
                        (dx / d, dy / d)
                    } else {
                        // Coincident centers: separate along a stable axis.
                        let angle = (i * 7 + j) as f64;
                        (angle.cos(), angle.sin())
                    };
                    self.nodes[i].x -= ux * overlap;
                    self.nodes[i].y -= uy * overlap;
                    self.nodes[j].x += ux * overlap;
                    self.nodes[j].y += uy * overlap;
                }
            }
        }
        // Keep circles inside the canvas.
        for node in &mut self.nodes {
            node.x = node.x.clamp(node.radius, self.cfg.width - node.radius);
            node.y = node.y.clamp(node.radius, self.cfg.height - node.radius);
        }
    }

    /// Run `ticks` steps.
    pub fn run(&mut self, ticks: usize) {
        for _ in 0..ticks {
            self.tick();
        }
    }

    /// Total pairwise circle-overlap area — the clutter metric of C11.
    pub fn total_overlap_area(&self) -> f64 {
        let mut total = 0.0;
        for i in 0..self.nodes.len() {
            for j in i + 1..self.nodes.len() {
                total += circle_overlap(
                    (self.nodes[i].x, self.nodes[i].y, self.nodes[i].radius),
                    (self.nodes[j].x, self.nodes[j].y, self.nodes[j].radius),
                );
            }
        }
        total
    }

    /// Kinetic energy (convergence indicator).
    pub fn energy(&self) -> f64 {
        self.nodes.iter().map(|n| n.vx * n.vx + n.vy * n.vy).sum()
    }
}

/// Intersection area of two circles `(x, y, r)`.
pub fn circle_overlap(a: (f64, f64, f64), b: (f64, f64, f64)) -> f64 {
    let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
    let (r1, r2) = (a.2, b.2);
    if d >= r1 + r2 {
        return 0.0;
    }
    let (small, large) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
    if d + small <= large {
        // Fully contained.
        return std::f64::consts::PI * small * small;
    }
    let part1 = small
        * small
        * ((d * d + small * small - large * large) / (2.0 * d * small))
            .clamp(-1.0, 1.0)
            .acos();
    let part2 = large
        * large
        * ((d * d + large * large - small * small) / (2.0 * d * large))
            .clamp(-1.0, 1.0)
            .acos();
    let part3 = 0.5
        * ((-d + small + large) * (d + small - large) * (d - small + large) * (d + small + large))
            .max(0.0)
            .sqrt();
    part1 + part2 - part3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_geometry() {
        // Disjoint.
        assert_eq!(circle_overlap((0.0, 0.0, 1.0), (5.0, 0.0, 1.0)), 0.0);
        // Identical circles overlap fully.
        let full = circle_overlap((0.0, 0.0, 2.0), (0.0, 0.0, 2.0));
        assert!((full - std::f64::consts::PI * 4.0).abs() < 1e-9);
        // Contained.
        let contained = circle_overlap((0.0, 0.0, 5.0), (1.0, 0.0, 1.0));
        assert!((contained - std::f64::consts::PI).abs() < 1e-9);
        // Half-ish overlap is positive and less than the smaller area.
        let partial = circle_overlap((0.0, 0.0, 1.0), (1.0, 0.0, 1.0));
        assert!(partial > 0.0 && partial < std::f64::consts::PI);
    }

    #[test]
    fn layout_eliminates_clutter() {
        // Seven circles (the paper's k ≤ 7) with chunky radii.
        let radii = [40.0, 35.0, 30.0, 28.0, 25.0, 22.0, 20.0];
        let mut layout = ForceLayout::new(&radii, ForceConfig::default());
        let before = layout.total_overlap_area();
        assert!(before > 0.0, "spiral seed should start cluttered");
        layout.run(300);
        let after = layout.total_overlap_area();
        assert!(
            after < 1e-6,
            "layout should remove all overlap, got {after} (before {before})"
        );
    }

    #[test]
    fn layout_is_deterministic() {
        let radii = [30.0, 20.0, 25.0];
        let mut a = ForceLayout::new(&radii, ForceConfig::default());
        let mut b = ForceLayout::new(&radii, ForceConfig::default());
        a.run(100);
        b.run(100);
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(na, nb);
        }
    }

    #[test]
    fn nodes_stay_on_canvas() {
        let radii = [50.0; 10];
        let mut layout = ForceLayout::new(
            &radii,
            ForceConfig {
                width: 400.0,
                height: 300.0,
                ..Default::default()
            },
        );
        layout.run(200);
        for n in &layout.nodes {
            assert!(n.x >= n.radius - 1e-9 && n.x <= 400.0 - n.radius + 1e-9);
            assert!(n.y >= n.radius - 1e-9 && n.y <= 300.0 - n.radius + 1e-9);
        }
    }

    #[test]
    fn links_pull_similar_groups_together() {
        let radii = [10.0, 10.0, 10.0, 10.0];
        let cfg = ForceConfig {
            link_distance: 30.0,
            link_strength: 0.8,
            charge: -400.0,
            centering: 0.01,
            ..Default::default()
        };
        let mut linked = ForceLayout::new(&radii, cfg.clone());
        linked.link(0, 1, 1.0);
        let mut unlinked = ForceLayout::new(&radii, cfg);
        linked.run(400);
        unlinked.run(400);
        let dist = |l: &ForceLayout, a: usize, b: usize| {
            ((l.nodes[a].x - l.nodes[b].x).powi(2) + (l.nodes[a].y - l.nodes[b].y).powi(2)).sqrt()
        };
        assert!(
            dist(&linked, 0, 1) < dist(&unlinked, 0, 1),
            "linked pair should sit closer"
        );
    }

    #[test]
    fn energy_decays_toward_equilibrium() {
        let radii = [30.0, 25.0, 20.0, 15.0];
        let mut layout = ForceLayout::new(&radii, ForceConfig::default());
        layout.run(20);
        let early = layout.energy();
        layout.run(400);
        let late = layout.energy();
        assert!(
            late < early.max(1e-3),
            "energy should decay: early {early} late {late}"
        );
    }

    #[test]
    fn empty_and_single_node() {
        let mut empty = ForceLayout::new(&[], ForceConfig::default());
        empty.run(10);
        assert!(empty.nodes.is_empty());
        let mut single = ForceLayout::new(&[20.0], ForceConfig::default());
        single.run(50);
        // Single node converges to center.
        assert!((single.nodes[0].x - 400.0).abs() < 1.0);
        assert!((single.nodes[0].y - 300.0).abs() < 1.0);
    }

    #[test]
    fn coincident_centers_get_separated() {
        let mut layout = ForceLayout::new(&[10.0, 10.0], ForceConfig::default());
        layout.nodes[0].x = 100.0;
        layout.nodes[0].y = 100.0;
        layout.nodes[1].x = 100.0;
        layout.nodes[1].y = 100.0;
        layout.run(50);
        let d = ((layout.nodes[0].x - layout.nodes[1].x).powi(2)
            + (layout.nodes[0].y - layout.nodes[1].y).powi(2))
        .sqrt();
        assert!(d >= 20.0, "separated distance {d}");
    }
}
