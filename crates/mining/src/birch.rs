//! BIRCH clustering (Zhang, Ramakrishnan & Livny, SIGMOD'96 \[18\]) — the
//! paper's group discovery plug-in for numeric user features on streams.
//!
//! BIRCH summarizes points into **clustering features** `CF = (N, LS, SS)`
//! (count, linear sum, square sum), which are additive and sufficient to
//! compute centroids and radii. CFs live in a height-balanced **CF-tree**
//! with branching factor `B` and absorption threshold `T`; each point
//! descends to the closest leaf entry and is absorbed if the entry's radius
//! stays under `T`, else starts a new entry, splitting nodes that overflow.
//!
//! Unlike textbook BIRCH we also record the member ids per leaf entry, since
//! VEXUS groups need explicit member sets. Leaf entries become groups with
//! empty token descriptions (`<cluster>` groups).

use crate::bitmap::MemberSet;
use crate::group::{Group, GroupSet};

/// Additive clustering feature.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringFeature {
    /// Number of points.
    pub n: usize,
    /// Per-dimension linear sum.
    pub ls: Vec<f64>,
    /// Sum of squared norms.
    pub ss: f64,
}

impl ClusteringFeature {
    /// CF of a single point.
    pub fn of_point(x: &[f64]) -> Self {
        Self {
            n: 1,
            ls: x.to_vec(),
            ss: x.iter().map(|v| v * v).sum(),
        }
    }

    /// CF of zero points in `dim` dimensions.
    pub fn empty(dim: usize) -> Self {
        Self {
            n: 0,
            ls: vec![0.0; dim],
            ss: 0.0,
        }
    }

    /// CF additivity: absorb another CF.
    pub fn merge(&mut self, other: &ClusteringFeature) {
        self.n += other.n;
        for (a, b) in self.ls.iter_mut().zip(&other.ls) {
            *a += b;
        }
        self.ss += other.ss;
    }

    /// Cluster centroid.
    pub fn centroid(&self) -> Vec<f64> {
        if self.n == 0 {
            return self.ls.clone();
        }
        self.ls.iter().map(|v| v / self.n as f64).collect()
    }

    /// RMS radius: sqrt(E[|x - c|^2]) from the sufficient statistics.
    pub fn radius(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let c2: f64 = self.ls.iter().map(|v| (v / n) * (v / n)).sum();
        (self.ss / n - c2).max(0.0).sqrt()
    }

    /// Squared Euclidean distance between centroids.
    pub fn centroid_dist2(&self, other: &ClusteringFeature) -> f64 {
        let ca = self.centroid();
        let cb = other.centroid();
        ca.iter().zip(&cb).map(|(a, b)| (a - b) * (a - b)).sum()
    }
}

/// Configuration for the CF-tree.
#[derive(Debug, Clone)]
pub struct BirchConfig {
    /// Branching factor: max entries per node.
    pub branching: usize,
    /// Absorption threshold on entry radius.
    pub threshold: f64,
    /// Dimensionality of the feature space.
    pub dim: usize,
}

impl Default for BirchConfig {
    fn default() -> Self {
        Self {
            branching: 8,
            threshold: 0.5,
            dim: 2,
        }
    }
}

#[derive(Debug)]
enum Node {
    Internal {
        entries: Vec<(ClusteringFeature, Box<Node>)>,
    },
    Leaf {
        entries: Vec<LeafEntry>,
    },
}

#[derive(Debug)]
struct LeafEntry {
    cf: ClusteringFeature,
    members: Vec<u32>,
}

/// An incremental BIRCH CF-tree over `(user, feature-vector)` points.
#[derive(Debug)]
pub struct BirchTree {
    cfg: BirchConfig,
    root: Node,
    n_points: usize,
}

impl BirchTree {
    /// Empty tree.
    pub fn new(cfg: BirchConfig) -> Self {
        assert!(cfg.branching >= 2, "branching factor must be >= 2");
        assert!(cfg.dim >= 1, "need at least one feature dimension");
        Self {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            cfg,
            n_points: 0,
        }
    }

    /// Points inserted so far.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// Insert one point.
    ///
    /// # Panics
    /// Panics if `x.len() != cfg.dim`.
    pub fn insert(&mut self, user: u32, x: &[f64]) {
        assert_eq!(x.len(), self.cfg.dim, "feature dimensionality mismatch");
        self.n_points += 1;
        let cf = ClusteringFeature::of_point(x);
        if let Some((left, right)) = Self::insert_rec(&mut self.root, user, &cf, &self.cfg) {
            // Root split: grow the tree by one level.
            let old = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    entries: Vec::new(),
                },
            );
            drop(old); // children moved into left/right already
            let le = (Self::node_cf(&left, self.cfg.dim), Box::new(left));
            let ri = (Self::node_cf(&right, self.cfg.dim), Box::new(right));
            self.root = Node::Internal {
                entries: vec![le, ri],
            };
        }
    }

    /// Recursive insert; returns `Some((left, right))` when the node split.
    fn insert_rec(
        node: &mut Node,
        user: u32,
        cf: &ClusteringFeature,
        cfg: &BirchConfig,
    ) -> Option<(Node, Node)> {
        match node {
            Node::Leaf { entries } => {
                // Closest entry by centroid distance.
                let closest = entries
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        a.cf.centroid_dist2(cf)
                            .partial_cmp(&b.cf.centroid_dist2(cf))
                            .expect("finite distances")
                    })
                    .map(|(i, _)| i);
                if let Some(i) = closest {
                    // Tentatively absorb and check the radius constraint.
                    let mut merged = entries[i].cf.clone();
                    merged.merge(cf);
                    if merged.radius() <= cfg.threshold {
                        entries[i].cf = merged;
                        entries[i].members.push(user);
                        return None;
                    }
                }
                entries.push(LeafEntry {
                    cf: cf.clone(),
                    members: vec![user],
                });
                if entries.len() > cfg.branching {
                    let (l, r) = Self::split_leaf(std::mem::take(entries), cfg.dim);
                    return Some((l, r));
                }
                None
            }
            Node::Internal { entries } => {
                let i = entries
                    .iter()
                    .enumerate()
                    .min_by(|(_, (a, _)), (_, (b, _))| {
                        a.centroid_dist2(cf)
                            .partial_cmp(&b.centroid_dist2(cf))
                            .expect("finite distances")
                    })
                    .map(|(i, _)| i)
                    .expect("internal nodes are never empty");
                let split = Self::insert_rec(&mut entries[i].1, user, cf, cfg);
                // Update the routing CF along the path.
                entries[i].0.merge(cf);
                if let Some((l, r)) = split {
                    // Replace the split child with its two halves.
                    entries.remove(i);
                    entries.push((Self::node_cf(&l, cfg.dim), Box::new(l)));
                    entries.push((Self::node_cf(&r, cfg.dim), Box::new(r)));
                    if entries.len() > cfg.branching {
                        let (l, r) = Self::split_internal(std::mem::take(entries), cfg.dim);
                        return Some((l, r));
                    }
                }
                None
            }
        }
    }

    /// Split leaf entries by the farthest pair seeding (classic BIRCH).
    fn split_leaf(entries: Vec<LeafEntry>, dim: usize) -> (Node, Node) {
        let (ia, ib) = Self::farthest_pair(entries.iter().map(|e| &e.cf));
        let mut left = Vec::new();
        let mut right = Vec::new();
        let ca = entries[ia].cf.centroid();
        let cb = entries[ib].cf.centroid();
        for e in entries {
            let c = e.cf.centroid();
            let da: f64 = c.iter().zip(&ca).map(|(x, y)| (x - y) * (x - y)).sum();
            let db: f64 = c.iter().zip(&cb).map(|(x, y)| (x - y) * (x - y)).sum();
            if da <= db {
                left.push(e);
            } else {
                right.push(e);
            }
        }
        // Guard: seeding guarantees both sides non-empty, but keep a
        // fallback for degenerate identical centroids.
        if left.is_empty() {
            left.push(right.pop().expect("at least two entries when splitting"));
        }
        if right.is_empty() {
            right.push(left.pop().expect("at least two entries when splitting"));
        }
        let _ = dim;
        (Node::Leaf { entries: left }, Node::Leaf { entries: right })
    }

    fn split_internal(entries: Vec<(ClusteringFeature, Box<Node>)>, dim: usize) -> (Node, Node) {
        let (ia, ib) = Self::farthest_pair(entries.iter().map(|e| &e.0));
        let ca = entries[ia].0.centroid();
        let cb = entries[ib].0.centroid();
        let mut left = Vec::new();
        let mut right = Vec::new();
        for e in entries {
            let c = e.0.centroid();
            let da: f64 = c.iter().zip(&ca).map(|(x, y)| (x - y) * (x - y)).sum();
            let db: f64 = c.iter().zip(&cb).map(|(x, y)| (x - y) * (x - y)).sum();
            if da <= db {
                left.push(e);
            } else {
                right.push(e);
            }
        }
        if left.is_empty() {
            left.push(right.pop().expect("at least two entries when splitting"));
        }
        if right.is_empty() {
            right.push(left.pop().expect("at least two entries when splitting"));
        }
        let _ = dim;
        (
            Node::Internal { entries: left },
            Node::Internal { entries: right },
        )
    }

    fn farthest_pair<'a>(cfs: impl Iterator<Item = &'a ClusteringFeature>) -> (usize, usize) {
        let cfs: Vec<&ClusteringFeature> = cfs.collect();
        let mut best = (0, if cfs.len() > 1 { 1 } else { 0 });
        let mut best_d = -1.0;
        for i in 0..cfs.len() {
            for j in i + 1..cfs.len() {
                let d = cfs[i].centroid_dist2(cfs[j]);
                if d > best_d {
                    best_d = d;
                    best = (i, j);
                }
            }
        }
        best
    }

    fn node_cf(node: &Node, dim: usize) -> ClusteringFeature {
        let mut cf = ClusteringFeature::empty(dim);
        match node {
            Node::Leaf { entries } => {
                for e in entries {
                    cf.merge(&e.cf);
                }
            }
            Node::Internal { entries } => {
                for (child_cf, _) in entries {
                    cf.merge(child_cf);
                }
            }
        }
        cf
    }

    /// Collect all leaf entries as `(centroid, members)`.
    pub fn clusters(&self) -> Vec<(Vec<f64>, Vec<u32>)> {
        let mut out = Vec::new();
        Self::collect(&self.root, &mut out);
        out
    }

    fn collect(node: &Node, out: &mut Vec<(Vec<f64>, Vec<u32>)>) {
        match node {
            Node::Leaf { entries } => {
                for e in entries {
                    out.push((e.cf.centroid(), e.members.clone()));
                }
            }
            Node::Internal { entries } => {
                for (_, child) in entries {
                    Self::collect(child, out);
                }
            }
        }
    }

    /// Convert leaf entries with at least `min_size` members into groups.
    pub fn into_groups(self, min_size: usize) -> GroupSet {
        let mut gs = GroupSet::new();
        for (_, members) in self.clusters() {
            if members.len() >= min_size {
                gs.push(Group::new(Vec::new(), MemberSet::from_unsorted(members)));
            }
        }
        gs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn cf_additivity() {
        let a = ClusteringFeature::of_point(&[1.0, 2.0]);
        let b = ClusteringFeature::of_point(&[3.0, 4.0]);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.n, 2);
        assert_eq!(ab.ls, vec![4.0, 6.0]);
        assert!((ab.ss - (1.0 + 4.0 + 9.0 + 16.0)).abs() < 1e-12);
        assert_eq!(ab.centroid(), vec![2.0, 3.0]);
    }

    #[test]
    fn cf_radius_of_identical_points_is_zero() {
        let mut cf = ClusteringFeature::of_point(&[5.0, 5.0]);
        cf.merge(&ClusteringFeature::of_point(&[5.0, 5.0]));
        assert!(cf.radius() < 1e-9);
    }

    #[test]
    fn separated_blobs_land_in_separate_clusters() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut tree = BirchTree::new(BirchConfig {
            branching: 4,
            threshold: 1.0,
            dim: 2,
        });
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        let mut truth = Vec::new();
        for u in 0..300u32 {
            let c = (u % 3) as usize;
            truth.push(c);
            let x = [
                centers[c].0 + rng.gen::<f64>() * 0.5,
                centers[c].1 + rng.gen::<f64>() * 0.5,
            ];
            tree.insert(u, &x);
        }
        assert_eq!(tree.n_points(), 300);
        let clusters = tree.clusters();
        // Every cluster must be pure: all members from the same blob.
        for (_, members) in &clusters {
            let blobs: std::collections::HashSet<usize> =
                members.iter().map(|&u| truth[u as usize]).collect();
            assert_eq!(blobs.len(), 1, "impure cluster: {members:?}");
        }
        // And all points must be accounted for.
        let total: usize = clusters.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn into_groups_filters_small_clusters() {
        let mut tree = BirchTree::new(BirchConfig {
            branching: 3,
            threshold: 0.1,
            dim: 1,
        });
        for u in 0..20u32 {
            tree.insert(u, &[0.0]);
        }
        tree.insert(99, &[100.0]);
        let gs = tree.into_groups(5);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs.get(crate::group::GroupId::new(0)).size(), 20);
    }

    #[test]
    fn tree_grows_beyond_one_level() {
        // Tiny branching + tiny threshold forces depth > 1.
        let mut tree = BirchTree::new(BirchConfig {
            branching: 2,
            threshold: 0.01,
            dim: 1,
        });
        for u in 0..64u32 {
            tree.insert(u, &[u as f64 * 10.0]);
        }
        let clusters = tree.clusters();
        assert_eq!(clusters.len(), 64, "each point isolated by tiny threshold");
        let total: usize = clusters.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dim_panics() {
        let mut tree = BirchTree::new(BirchConfig::default());
        tree.insert(0, &[1.0, 2.0, 3.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_no_point_lost(points in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0), 1..120),
            branching in 2usize..6,
            threshold in 0.1f64..20.0
        ) {
            let mut tree = BirchTree::new(BirchConfig { branching, threshold, dim: 2 });
            for (u, (x, y)) in points.iter().enumerate() {
                tree.insert(u as u32, &[*x, *y]);
            }
            let clusters = tree.clusters();
            let mut all: Vec<u32> = clusters.iter().flat_map(|(_, m)| m.iter().copied()).collect();
            all.sort_unstable();
            let expect: Vec<u32> = (0..points.len() as u32).collect();
            prop_assert_eq!(all, expect);
            // CF counts agree with membership counts.
            prop_assert_eq!(tree.n_points(), points.len());
        }

        #[test]
        fn prop_cluster_radius_bounded(points in proptest::collection::vec(
            (0.0f64..10.0, 0.0f64..10.0), 2..80)
        ) {
            let threshold = 1.5;
            let mut tree = BirchTree::new(BirchConfig { branching: 4, threshold, dim: 2 });
            for (u, (x, y)) in points.iter().enumerate() {
                tree.insert(u as u32, &[*x, *y]);
            }
            // Recompute each cluster's true RMS radius from raw points; it
            // must respect the absorption threshold (absorption is only
            // accepted when the merged radius stays under it).
            for (_, members) in tree.clusters() {
                let pts: Vec<&(f64, f64)> =
                    members.iter().map(|&u| &points[u as usize]).collect();
                let n = pts.len() as f64;
                let cx = pts.iter().map(|p| p.0).sum::<f64>() / n;
                let cy = pts.iter().map(|p| p.1).sum::<f64>() / n;
                let ms = pts
                    .iter()
                    .map(|p| (p.0 - cx).powi(2) + (p.1 - cy).powi(2))
                    .sum::<f64>()
                    / n;
                prop_assert!(ms.sqrt() <= threshold + 1e-9);
            }
        }
    }
}
