//! Sharded parallel discovery and multi-backend ensembles.
//!
//! [`ShardedDiscovery`] is the scaling layer over the [`GroupDiscovery`]
//! seam: it partitions the user space with a
//! [`vexus_data::shard::ShardPlan`], runs an adapted copy of any backend
//! per shard on crossbeam scoped threads, and folds the per-shard group
//! spaces through a [`MergeStrategy`]. The same merge layer powers
//! [`EnsembleDiscovery`], which unions several backends' group spaces
//! (e.g. LCM ∪ BIRCH: described and clustered groups side by side).
//!
//! The partition-mining correctness argument is SON-style: a group that is
//! frequent over the whole population is, by pigeonhole, frequent in at
//! least one shard at a proportionally scaled support floor. Backends
//! therefore implement [`ShardScaled`] so the driver can scale their
//! absolute-count thresholds down to each shard's fraction of the data;
//! [`MergeStrategy::SupportRecount`] then re-evaluates every candidate
//! description against the *global* transaction database (members, closure
//! and support), so merged groups are exact global closed groups and
//! per-shard noise below the global floor is dropped.
//!
//! One subtlety: a globally closed set `X` may never appear per shard —
//! inside a small shard `X`'s closure can *grow* (all shard-local members
//! happen to share extra tokens), and differently in every shard. Since
//! `X` equals the intersection of its per-shard closures, the recount
//! first closes the candidate set under pairwise description intersection
//! (bounded by [`CANDIDATE_REFINEMENT_CAP`]) before re-evaluating, which
//! recovers such hidden sets without ever admitting a false positive: any
//! recounted group is a closure of a global tidlist, hence exactly a
//! global closed group.

use crate::bitmap::MemberSet;
use crate::discovery::{BirchDiscovery, LcmDiscovery, MomriDiscovery, StreamFimDiscovery};
use crate::discovery::{DiscoveryOutcome, DiscoveryStats, GroupDiscovery, ShardStats};
use crate::group::{Group, GroupSet};
use crate::transactions::TransactionDb;
use std::collections::BTreeMap;
use std::time::Instant;
use vexus_data::shard::{ShardPlan, ShardStrategy};
use vexus_data::{TokenId, UserData, Vocabulary};

/// Scale a minimum-count threshold to a shard covering `fraction` of the
/// members. `ceil` keeps the SON guarantee: any itemset with global count
/// ≥ `floor` has, in some shard, count ≥ `ceil(floor · fraction)`.
fn scale_floor(floor: usize, fraction: f64) -> usize {
    ((floor as f64 * fraction).ceil() as usize).max(1)
}

/// Adapt a backend's configuration to one shard of the data.
///
/// The driver hands each worker `backend.for_shard(fraction)` where
/// `fraction` is the shard's share of all members. Backends whose
/// thresholds are absolute counts (LCM's `min_support`, BIRCH's
/// `min_cluster_size`) scale them down proportionally so globally frequent
/// structure stays visible inside every shard; backends with purely
/// relative thresholds (stream FIM's σ/ε) return an unchanged copy.
pub trait ShardScaled: Clone {
    /// A copy of this backend configured for a shard holding `fraction`
    /// (in `(0, 1]`) of the members. Default: unchanged clone.
    fn for_shard(&self, _fraction: f64) -> Self {
        self.clone()
    }
}

impl ShardScaled for LcmDiscovery {
    /// Scales `min_support` only. `max_description` and `max_groups` are
    /// deliberately left at their global values: raising the description
    /// cap per shard would blow up the per-shard search, but it means a
    /// shard-local closure that grows past `max_description` prunes its
    /// whole branch (see `lcm.rs`), and a scaled-down floor can hit the
    /// `max_groups` safety valve sooner — both add to the same recall
    /// tail the support-recount merge already documents. Keep
    /// `max_description` at or above the schema's attribute count (the
    /// natural ceiling on closure length) when exactness matters.
    fn for_shard(&self, fraction: f64) -> Self {
        let mut scaled = self.clone();
        scaled.config.min_support = scale_floor(self.config.min_support, fraction);
        scaled
    }
}

impl ShardScaled for MomriDiscovery {
    fn for_shard(&self, fraction: f64) -> Self {
        let mut scaled = self.clone();
        scaled.config.lcm.min_support = scale_floor(self.config.lcm.min_support, fraction);
        scaled
    }
}

impl ShardScaled for BirchDiscovery {
    fn for_shard(&self, fraction: f64) -> Self {
        let mut scaled = self.clone();
        scaled.min_cluster_size = scale_floor(self.min_cluster_size, fraction);
        scaled
    }
}

impl ShardScaled for StreamFimDiscovery {}

/// Above this many distinct candidate descriptions,
/// [`MergeStrategy::SupportRecount`] skips the quadratic
/// intersection-refinement pass and recounts the raw candidates only. The
/// recount stays sound either way; the refinement exists for the regime
/// where closure-hiding actually bites — small shards with few candidates
/// — while on rich spaces (thousands of candidates) it costs hundreds of
/// milliseconds to recover a fraction of a percent of groups (measured by
/// the `d2` experiment's `vs 1-shard` column, which reports the recall
/// honestly at any cap).
pub const CANDIDATE_REFINEMENT_CAP: usize = 1024;

/// Intersection of two sorted token descriptions (merge scan).
fn intersect_sorted(a: &[TokenId], b: &[TokenId]) -> Vec<TokenId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Close a candidate family under pairwise intersection, up to `cap`
/// members. A globally closed set equals the intersection of its per-shard
/// closures, so this worklist recovers sets hidden by shard-local closure
/// growth. Deterministic: the result is sorted, and the worklist explores
/// candidates in sorted order.
fn close_under_intersection(seed: Vec<Vec<TokenId>>, cap: usize) -> Vec<Vec<TokenId>> {
    let mut known: std::collections::HashSet<Vec<TokenId>> = seed.iter().cloned().collect();
    if known.len() > cap {
        return seed;
    }
    let mut frontier = seed;
    frontier.sort_unstable();
    frontier.dedup();
    let mut snapshot = frontier.clone();
    'refine: while !frontier.is_empty() {
        let mut fresh = Vec::new();
        for a in &frontier {
            for b in &snapshot {
                let inter = intersect_sorted(a, b);
                if !inter.is_empty() && !known.contains(&inter) {
                    known.insert(inter.clone());
                    fresh.push(inter);
                    if known.len() > cap {
                        break 'refine;
                    }
                }
            }
        }
        fresh.sort_unstable();
        snapshot.extend(fresh.iter().cloned());
        snapshot.sort_unstable();
        frontier = fresh;
    }
    let mut out: Vec<Vec<TokenId>> = known.into_iter().collect();
    out.sort_unstable();
    out
}

/// Worker count resolution: `0` means use the machine's available
/// parallelism.
fn resolve_workers(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Shared inputs of a merge: the global dataset and vocabulary, an
/// optional pre-built [`TransactionDb`] (reused instead of rebuilt when a
/// strategy needs one — the recount's dominant fixed cost), and the worker
/// count for the recount fan-out.
#[derive(Clone, Copy)]
pub struct MergeContext<'a> {
    /// The global dataset.
    pub data: &'a UserData,
    /// The global token vocabulary.
    pub vocab: &'a Vocabulary,
    /// A transaction database over `data`/`vocab`, if the caller already
    /// built one. `None` makes [`MergeStrategy::SupportRecount`] build its
    /// own, as the pre-d3 merge contract did.
    pub db: Option<&'a TransactionDb>,
    /// Worker threads for the candidate recount (`0` = available
    /// parallelism). Output is byte-identical at any thread count.
    pub threads: usize,
}

impl<'a> MergeContext<'a> {
    /// Context without a pre-built database, merging on one thread.
    pub fn new(data: &'a UserData, vocab: &'a Vocabulary) -> Self {
        Self {
            data,
            vocab,
            db: None,
            threads: 1,
        }
    }

    /// Builder-style: reuse a pre-built transaction database.
    pub fn with_db(mut self, db: &'a TransactionDb) -> Self {
        self.db = Some(db);
        self
    }

    /// Builder-style: set the recount worker count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Recount one candidate description against the global database: exact
/// members, then the closure. `None` when support is under the floor.
fn recount_one(
    db: &TransactionDb,
    description: &[TokenId],
    min_support: usize,
) -> Option<(Vec<TokenId>, MemberSet)> {
    let members = db.itemset_members(description);
    if members.len() < min_support {
        return None;
    }
    let closed = db.closure(&members);
    Some((closed, members))
}

/// Recount every candidate, fanning out over scoped worker threads in
/// contiguous chunks. Chunks are re-concatenated in order, so the result
/// sequence — and hence the merged group order downstream — is
/// byte-identical to the sequential path at any worker count.
fn recount_candidates(
    db: &TransactionDb,
    candidates: &[Vec<TokenId>],
    min_support: usize,
    threads: usize,
) -> Vec<(Vec<TokenId>, MemberSet)> {
    let workers = resolve_workers(threads).min(candidates.len()).max(1);
    if workers <= 1 {
        return candidates
            .iter()
            .filter_map(|d| recount_one(db, d, min_support))
            .collect();
    }
    let chunk = candidates.len().div_ceil(workers);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|chunk| {
                scope.spawn(move |_| {
                    chunk
                        .iter()
                        .filter_map(|d| recount_one(db, d, min_support))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("recount worker panicked"))
            .collect()
    })
    .expect("recount scope")
}

/// How per-shard (or per-backend) group spaces fold into one.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum MergeStrategy {
    /// Concatenate every part's groups unchanged. Right for partition-style
    /// clustering (BIRCH per shard) where parts describe disjoint members.
    Union,
    /// Merge groups sharing a token description by unioning their member
    /// sets; description-less cluster groups pass through unchanged.
    #[default]
    DedupByDescription,
    /// Re-evaluate each distinct description against the global
    /// [`TransactionDb`]: recompute members, take the closure, dedup by the
    /// closed description, and keep only groups with at least
    /// `min_support` members. Merged groups are then exact global closed
    /// groups (see the module docs for the SON argument).
    SupportRecount {
        /// Global support floor after recounting.
        min_support: usize,
    },
}

impl MergeStrategy {
    /// Fold per-part group spaces (members already in *global* user ids)
    /// into one. `data`/`vocab` back the global recount where needed.
    /// Sequential, building its own transaction database — the pre-d3
    /// contract; see [`MergeStrategy::merge_in`] for database reuse and
    /// the parallel recount.
    pub fn merge(&self, parts: Vec<GroupSet>, data: &UserData, vocab: &Vocabulary) -> GroupSet {
        self.merge_in(parts, &MergeContext::new(data, vocab))
    }

    /// Fold per-part group spaces into one under an explicit
    /// [`MergeContext`]: reuses `ctx.db` when provided instead of
    /// rebuilding the global database, and fans the support recount out
    /// over `ctx.threads` workers. The merged output is byte-identical
    /// for every thread count (chunked, deterministically
    /// re-concatenated).
    pub fn merge_in(&self, parts: Vec<GroupSet>, ctx: &MergeContext<'_>) -> GroupSet {
        match self {
            Self::Union => {
                let mut out = GroupSet::new();
                for part in parts {
                    for group in part.into_vec() {
                        out.push(group);
                    }
                }
                out
            }
            Self::DedupByDescription => {
                let mut described: BTreeMap<Vec<TokenId>, MemberSet> = BTreeMap::new();
                let mut clusters: Vec<Group> = Vec::new();
                for part in parts {
                    for group in part.into_vec() {
                        if group.description.is_empty() {
                            clusters.push(group);
                        } else {
                            described
                                .entry(group.description)
                                .and_modify(|m| *m = m.union(&group.members))
                                .or_insert(group.members);
                        }
                    }
                }
                let mut out = GroupSet::new();
                for (description, members) in described {
                    out.push(Group::new(description, members));
                }
                for cluster in clusters {
                    out.push(cluster);
                }
                out
            }
            Self::SupportRecount { min_support } => {
                let built;
                let db = match ctx.db {
                    Some(db) => db,
                    None => {
                        built = TransactionDb::build(ctx.data, ctx.vocab);
                        &built
                    }
                };
                let mut candidates: Vec<Vec<TokenId>> = Vec::new();
                let mut seen_candidates = std::collections::BTreeSet::new();
                let mut clusters: Vec<Group> = Vec::new();
                let mut contributing_parts = 0usize;
                for part in parts {
                    let mut contributed = false;
                    for group in part.into_vec() {
                        if group.description.is_empty() {
                            // Cluster groups have no description to recount;
                            // apply the global floor and pass them through.
                            if group.size() >= *min_support {
                                clusters.push(group);
                            }
                        } else {
                            contributed = true;
                            if seen_candidates.insert(group.description.clone()) {
                                candidates.push(group.description);
                            }
                        }
                    }
                    contributing_parts += usize::from(contributed);
                }
                // Closure-hidden sets only arise when descriptions come
                // from *different* shards; a single part's closed family
                // is already closed under intersection.
                let candidates = if contributing_parts > 1 {
                    close_under_intersection(candidates, CANDIDATE_REFINEMENT_CAP)
                } else {
                    candidates
                };
                let recounted = recount_candidates(db, &candidates, *min_support, ctx.threads);
                let mut out = GroupSet::new();
                let mut seen_closed = std::collections::BTreeSet::new();
                for (closed, members) in recounted {
                    if seen_closed.insert(closed.clone()) {
                        out.push(Group::new(closed, members));
                    }
                }
                for cluster in clusters {
                    out.push(cluster);
                }
                out
            }
        }
    }
}

/// Run any [`GroupDiscovery`] backend per shard on scoped threads and
/// merge the per-shard group spaces.
///
/// The backend must be [`ShardScaled`] (so the driver can scale its
/// absolute thresholds per shard) and `Sync` (workers share it by
/// reference). Member ids in the merged outcome are global; per-shard
/// timings land in [`DiscoveryStats::shards`].
#[derive(Debug, Clone)]
pub struct ShardedDiscovery<B> {
    /// The prototype backend; each shard runs `backend.for_shard(f)`.
    pub backend: B,
    /// Number of shards (clamped to at least 1 at run time).
    pub shards: usize,
    /// How members are assigned to shards.
    pub strategy: ShardStrategy,
    /// How per-shard group spaces fold into one.
    pub merge: MergeStrategy,
    /// Worker threads for the merge's candidate recount (`0` = available
    /// parallelism). The merged output is byte-identical at any count.
    pub merge_threads: usize,
}

impl<B> ShardedDiscovery<B> {
    /// Shard `backend` over `shards` hash shards with the default
    /// dedup-by-description merge.
    pub fn new(backend: B, shards: usize) -> Self {
        Self {
            backend,
            shards,
            strategy: ShardStrategy::Hash,
            merge: MergeStrategy::default(),
            merge_threads: 0,
        }
    }

    /// Builder-style: change the shard-assignment strategy.
    pub fn with_strategy(mut self, strategy: ShardStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style: change the merge layer.
    pub fn with_merge(mut self, merge: MergeStrategy) -> Self {
        self.merge = merge;
        self
    }

    /// Builder-style: set the merge recount worker count (`0` = auto).
    pub fn with_merge_threads(mut self, merge_threads: usize) -> Self {
        self.merge_threads = merge_threads;
        self
    }

    /// Builder-style: merge by global support recount at `min_support`.
    pub fn support_recount(self, min_support: usize) -> Self {
        self.with_merge(MergeStrategy::SupportRecount { min_support })
    }
}

/// Remap a shard's local member ids back to global ids.
fn remap_to_global(groups: GroupSet, members: &[u32]) -> GroupSet {
    let remapped = groups
        .into_vec()
        .into_iter()
        .map(|g| {
            // Local ids are ascending and the shard member list is sorted,
            // so the mapping preserves order.
            let global = g.members.iter().map(|l| members[l as usize]).collect();
            Group {
                description: g.description,
                members: global,
            }
        })
        .collect();
    GroupSet::from_groups(remapped)
}

impl<B: GroupDiscovery + ShardScaled + Sync> ShardedDiscovery<B> {
    /// Run the per-shard mining stage only: partition the users, run the
    /// scaled backend per shard on worker threads, and return the
    /// per-shard group spaces (members remapped to global ids, in shard
    /// order) plus per-shard telemetry. [`ShardedDiscovery::discover`] is
    /// `mine_parts` followed by the merge; exposing the split lets perf
    /// harnesses (the `d3` experiment) re-merge identical parts under
    /// different merge configurations without re-mining.
    pub fn mine_parts(
        &self,
        data: &UserData,
        vocab: &Vocabulary,
    ) -> (Vec<GroupSet>, Vec<ShardStats>) {
        let n = data.n_users();
        let plan = ShardPlan::build(n, self.shards, self.strategy);
        let n_shards = plan.n_shards();
        // Bounded worker pool: shard count is a *merge granularity* knob
        // reachable from plain config, so it must not translate 1:1 into
        // OS threads. Workers claim shards off an atomic cursor.
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n_shards)
            .max(1);
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let mut per_shard: Vec<(usize, DiscoveryOutcome, usize)> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let plan = &plan;
                        let backend = &self.backend;
                        let cursor = &cursor;
                        scope.spawn(move |_| {
                            let mut mined = Vec::new();
                            loop {
                                let s = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if s >= n_shards {
                                    break;
                                }
                                let members = plan.members(s);
                                let shard_data = data.project_users(members);
                                let worker = backend.for_shard(plan.fraction(s).max(f64::EPSILON));
                                let mut outcome = worker.discover(&shard_data, vocab);
                                outcome.groups = remap_to_global(outcome.groups, members);
                                mined.push((s, outcome, members.len()));
                            }
                            mined
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
            .expect("shard scope");
        // Claim order is racy; shard order (and hence merge input order)
        // must not be.
        per_shard.sort_by_key(|&(s, _, _)| s);

        let mut shard_stats = Vec::with_capacity(per_shard.len());
        let mut parts = Vec::with_capacity(per_shard.len());
        for (shard, outcome, members) in per_shard {
            shard_stats.push(ShardStats {
                shard,
                algorithm: outcome.stats.algorithm,
                members,
                elapsed: outcome.stats.elapsed,
                groups_discovered: outcome.stats.groups_discovered,
            });
            parts.push(outcome.groups);
        }
        (parts, shard_stats)
    }
}

impl<B: GroupDiscovery + ShardScaled + Sync> GroupDiscovery for ShardedDiscovery<B> {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn discover(&self, data: &UserData, vocab: &Vocabulary) -> DiscoveryOutcome {
        let t0 = Instant::now();
        let (parts, shard_stats) = self.mine_parts(data, vocab);
        let pre_merge = parts.iter().map(GroupSet::len).sum();
        let t_merge = Instant::now();
        // Build the global database once, outside the strategy, so the
        // merge layer never rebuilds it (and callers re-merging through
        // `merge_in` can share one too).
        let db = matches!(self.merge, MergeStrategy::SupportRecount { .. })
            .then(|| TransactionDb::build(data, vocab));
        let mut ctx = MergeContext::new(data, vocab).with_threads(self.merge_threads);
        if let Some(db) = db.as_ref() {
            ctx = ctx.with_db(db);
        }
        let groups = self.merge.merge_in(parts, &ctx);
        let merge_elapsed = t_merge.elapsed();
        let stats = DiscoveryStats {
            algorithm: self.name(),
            elapsed: t0.elapsed(),
            groups_discovered: groups.len(),
            candidates_considered: pre_merge,
            shards: shard_stats,
            merge_elapsed,
        };
        DiscoveryOutcome { groups, stats }
    }
}

/// Union several backends' group spaces behind one merge layer.
///
/// Members run sequentially (each may itself be a parallel
/// [`ShardedDiscovery`]); their outcomes fold through the same
/// [`MergeStrategy`] the sharded driver uses, and each member's run is
/// reported as one entry of [`DiscoveryStats::shards`].
#[derive(Default)]
pub struct EnsembleDiscovery {
    backends: Vec<Box<dyn GroupDiscovery>>,
    /// How member group spaces fold into one.
    pub merge: MergeStrategy,
    /// Worker threads for the merge's candidate recount (`0` = auto).
    pub merge_threads: usize,
}

impl EnsembleDiscovery {
    /// Empty ensemble folding through `merge`.
    pub fn new(merge: MergeStrategy) -> Self {
        Self {
            backends: Vec::new(),
            merge,
            merge_threads: 0,
        }
    }

    /// Builder-style: set the merge recount worker count (`0` = auto).
    pub fn with_merge_threads(mut self, merge_threads: usize) -> Self {
        self.merge_threads = merge_threads;
        self
    }

    /// Add a boxed member backend.
    pub fn push(&mut self, backend: Box<dyn GroupDiscovery>) {
        self.backends.push(backend);
    }

    /// Builder-style: add a member backend.
    pub fn with(mut self, backend: impl GroupDiscovery + 'static) -> Self {
        self.push(Box::new(backend));
        self
    }

    /// Number of member backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }
}

impl GroupDiscovery for EnsembleDiscovery {
    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn discover(&self, data: &UserData, vocab: &Vocabulary) -> DiscoveryOutcome {
        let t0 = Instant::now();
        let mut shard_stats = Vec::with_capacity(self.backends.len());
        let mut parts = Vec::with_capacity(self.backends.len());
        let mut pre_merge = 0usize;
        for (i, backend) in self.backends.iter().enumerate() {
            let outcome = backend.discover(data, vocab);
            pre_merge += outcome.groups.len();
            shard_stats.push(ShardStats {
                shard: i,
                algorithm: outcome.stats.algorithm,
                members: data.n_users(),
                elapsed: outcome.stats.elapsed,
                groups_discovered: outcome.stats.groups_discovered,
            });
            parts.push(outcome.groups);
        }
        let t_merge = Instant::now();
        let db = matches!(self.merge, MergeStrategy::SupportRecount { .. })
            .then(|| TransactionDb::build(data, vocab));
        let mut ctx = MergeContext::new(data, vocab).with_threads(self.merge_threads);
        if let Some(db) = db.as_ref() {
            ctx = ctx.with_db(db);
        }
        let groups = self.merge.merge_in(parts, &ctx);
        let merge_elapsed = t_merge.elapsed();
        let stats = DiscoveryStats {
            algorithm: self.name(),
            elapsed: t0.elapsed(),
            groups_discovered: groups.len(),
            candidates_considered: pre_merge,
            shards: shard_stats,
            merge_elapsed,
        };
        DiscoveryOutcome { groups, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::DiscoverySelection;
    use crate::lcm::LcmConfig;
    use vexus_data::synthetic::{bookcrossing, BookCrossingConfig};

    fn fixture() -> (UserData, Vocabulary) {
        let ds = bookcrossing(&BookCrossingConfig::tiny());
        let vocab = Vocabulary::build(&ds.data);
        (ds.data, vocab)
    }

    fn normalize(gs: &GroupSet) -> Vec<(Vec<TokenId>, Vec<u32>)> {
        let mut v: Vec<_> = gs
            .iter()
            .map(|(_, g)| {
                (
                    g.description.clone(),
                    g.members.iter().collect::<Vec<u32>>(),
                )
            })
            .collect();
        v.sort();
        v
    }

    fn lcm(min_support: usize) -> LcmDiscovery {
        LcmDiscovery::new(LcmConfig {
            min_support,
            max_description: 8,
            ..Default::default()
        })
    }

    #[test]
    fn intersection_closure_recovers_hidden_sets() {
        let d = |v: &[u32]| v.iter().map(|&t| TokenId::new(t)).collect::<Vec<_>>();
        // [1] is hidden behind two differing closures; [1, 2] behind the
        // second-round intersection of first-round results.
        let closed = close_under_intersection(vec![d(&[1, 2, 3]), d(&[1, 2, 4]), d(&[1, 5])], 64);
        assert!(closed.contains(&d(&[1, 2])));
        assert!(closed.contains(&d(&[1])));
        // Deterministic and sorted.
        let again = close_under_intersection(vec![d(&[1, 5]), d(&[1, 2, 4]), d(&[1, 2, 3])], 64);
        assert_eq!(closed, again);
        assert!(closed.windows(2).all(|w| w[0] < w[1]));
        // Over the cap the seed passes through unrefined.
        let capped = close_under_intersection(vec![d(&[1, 2]), d(&[1, 3]), d(&[2, 3])], 2);
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn shard_scaling_preserves_son_guarantee() {
        let scaled = lcm(20).for_shard(0.25);
        assert_eq!(scaled.config.min_support, 5);
        // Never scales to zero.
        assert_eq!(lcm(1).for_shard(0.01).config.min_support, 1);
        // BIRCH scales its cluster floor, stream FIM is unchanged.
        let birch = BirchDiscovery {
            min_cluster_size: 8,
            ..Default::default()
        };
        assert_eq!(birch.for_shard(0.5).min_cluster_size, 4);
        let sf = StreamFimDiscovery::default();
        assert_eq!(sf.for_shard(0.25).config.support, sf.config.support);
    }

    #[test]
    fn sharded_lcm_recount_matches_single_shard() {
        let (data, vocab) = fixture();
        let single = lcm(10).discover(&data, &vocab);
        for shards in [2usize, 4] {
            let sharded = ShardedDiscovery::new(lcm(10), shards)
                .support_recount(10)
                .discover(&data, &vocab);
            assert_eq!(
                normalize(&single.groups),
                normalize(&sharded.groups),
                "{shards}-shard recount diverged from the global mine"
            );
            assert_eq!(sharded.stats.algorithm, "sharded");
            assert_eq!(sharded.stats.shards.len(), shards);
            assert!(sharded.stats.shards.iter().all(|s| s.algorithm == "lcm"));
            let covered: usize = sharded.stats.shards.iter().map(|s| s.members).sum();
            assert_eq!(covered, data.n_users());
        }
    }

    #[test]
    fn oversharded_recount_is_sound_with_high_recall() {
        // 8 shards over 300 users is deliberately degenerate (scaled
        // support floors bottom out near 1, so shard-local closures of
        // 2-member tidlists explode). The recount must stay *sound* —
        // every merged group is an exact global closed frequent group —
        // and recall may only fray at the margin.
        let (data, vocab) = fixture();
        let single: std::collections::BTreeSet<_> =
            normalize(&lcm(10).discover(&data, &vocab).groups)
                .into_iter()
                .collect();
        let sharded: std::collections::BTreeSet<_> = normalize(
            &ShardedDiscovery::new(lcm(10), 8)
                .support_recount(10)
                .discover(&data, &vocab)
                .groups,
        )
        .into_iter()
        .collect();
        assert!(
            sharded.is_subset(&single),
            "recount emitted a group the global mine does not contain"
        );
        let recall = sharded.len() as f64 / single.len() as f64;
        assert!(recall >= 0.95, "recall degraded too far: {recall:.3}");
    }

    #[test]
    fn contiguous_strategy_also_recounts_exactly() {
        let (data, vocab) = fixture();
        let single = lcm(12).discover(&data, &vocab);
        let sharded = ShardedDiscovery::new(lcm(12), 4)
            .with_strategy(ShardStrategy::Contiguous)
            .support_recount(12)
            .discover(&data, &vocab);
        assert_eq!(normalize(&single.groups), normalize(&sharded.groups));
    }

    #[test]
    fn union_merge_keeps_per_shard_clusters() {
        let (data, vocab) = fixture();
        let sharded = ShardedDiscovery::new(BirchDiscovery::default(), 3)
            .with_merge(MergeStrategy::Union)
            .discover(&data, &vocab);
        // Per-shard clustering covers every shard's members (clusters are
        // description-less, so union keeps them all).
        assert!(!sharded.groups.is_empty());
        assert!(sharded.groups.iter().all(|(_, g)| g.description.is_empty()));
        // Global member ids, not local ones: ids must reach past shard 0.
        let max_member = sharded
            .groups
            .iter()
            .flat_map(|(_, g)| g.members.iter())
            .max()
            .unwrap();
        assert!(max_member as usize >= data.n_users() / 2);
    }

    #[test]
    fn dedup_by_description_unions_members() {
        let (data, vocab) = fixture();
        let gs = |desc: &[u32], members: &[u32]| {
            Group::new(
                desc.iter().map(|&t| TokenId::new(t)).collect(),
                MemberSet::from_unsorted(members.to_vec()),
            )
        };
        let a = GroupSet::from_groups(vec![gs(&[1], &[0, 1]), gs(&[], &[5, 6])]);
        let b = GroupSet::from_groups(vec![gs(&[1], &[2, 3]), gs(&[2], &[9])]);
        let merged = MergeStrategy::DedupByDescription.merge(vec![a, b], &data, &vocab);
        let norm = normalize(&merged);
        assert!(norm.contains(&(vec![TokenId::new(1)], vec![0, 1, 2, 3])));
        assert!(norm.contains(&(vec![TokenId::new(2)], vec![9])));
        // The cluster group passed through untouched.
        assert!(norm.contains(&(vec![], vec![5, 6])));
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn sharded_discovery_is_deterministic() {
        let (data, vocab) = fixture();
        let driver = ShardedDiscovery::new(lcm(10), 4).support_recount(10);
        let a = driver.discover(&data, &vocab);
        let b = driver.discover(&data, &vocab);
        assert_eq!(normalize(&a.groups), normalize(&b.groups));
    }

    #[test]
    fn ensemble_unions_described_and_clustered_groups() {
        let (data, vocab) = fixture();
        let ensemble = EnsembleDiscovery::new(MergeStrategy::Union)
            .with(lcm(10))
            .with(BirchDiscovery::default());
        assert_eq!(ensemble.len(), 2);
        let out = ensemble.discover(&data, &vocab);
        assert_eq!(out.stats.algorithm, "ensemble");
        assert_eq!(out.stats.shards.len(), 2);
        assert_eq!(out.stats.shards[0].algorithm, "lcm");
        assert_eq!(out.stats.shards[1].algorithm, "birch");
        let described = out
            .groups
            .iter()
            .filter(|(_, g)| !g.description.is_empty())
            .count();
        let clustered = out.groups.len() - described;
        assert!(described > 0, "ensemble lost LCM's described groups");
        assert!(clustered > 0, "ensemble lost BIRCH's clusters");
    }

    #[test]
    fn selection_wires_sharded_and_ensemble_backends() {
        let (data, vocab) = fixture();
        let sharded = DiscoverySelection::default().sharded(4).backend(10);
        let out = sharded.discover(&data, &vocab);
        assert_eq!(out.stats.algorithm, "sharded");
        assert_eq!(out.stats.shards.len(), 4);
        assert!(!out.groups.is_empty());

        let ensemble = DiscoverySelection::ensemble(
            vec![
                DiscoverySelection::default(),
                DiscoverySelection::Birch {
                    branching: 10,
                    threshold: 1.6,
                },
            ],
            crate::discovery::MergeSelection::Union,
        )
        .backend(5);
        let out = ensemble.discover(&data, &vocab);
        assert_eq!(out.stats.algorithm, "ensemble");
        assert_eq!(out.stats.shards.len(), 2);
    }

    #[test]
    #[should_panic(expected = "composes over a base backend")]
    fn sharded_selection_rejects_nested_composites() {
        let _ = DiscoverySelection::default()
            .sharded(2)
            .sharded(2)
            .backend(5);
    }

    #[test]
    fn one_shard_degenerates_to_the_plain_backend() {
        let (data, vocab) = fixture();
        let single = lcm(10).discover(&data, &vocab);
        let one = ShardedDiscovery::new(lcm(10), 1)
            .support_recount(10)
            .discover(&data, &vocab);
        assert_eq!(normalize(&single.groups), normalize(&one.groups));
    }

    #[test]
    fn more_shards_than_users_still_works() {
        let (data, vocab) = fixture();
        let small = data.project_users(&[0, 1, 2, 3, 4]);
        let out = ShardedDiscovery::new(lcm(1), 8)
            .support_recount(1)
            .discover(&small, &vocab);
        assert_eq!(out.stats.shards.len(), 8);
        // No panic on empty shards; any mined group has global ids < 5.
        assert!(out
            .groups
            .iter()
            .flat_map(|(_, g)| g.members.iter())
            .all(|m| m < 5));
    }
}
