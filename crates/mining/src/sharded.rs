//! Sharded parallel discovery and multi-backend ensembles.
//!
//! [`ShardedDiscovery`] is the scaling layer over the [`GroupDiscovery`]
//! seam: it partitions the user space with a
//! [`vexus_data::shard::ShardPlan`], runs an adapted copy of any backend
//! per shard on crossbeam scoped threads, and folds the per-shard group
//! spaces through a [`MergeStrategy`]. The same merge layer powers
//! [`EnsembleDiscovery`], which unions several backends' group spaces
//! (e.g. LCM ∪ BIRCH: described and clustered groups side by side).
//!
//! The partition-mining correctness argument is SON-style: a group that is
//! frequent over the whole population is, by pigeonhole, frequent in at
//! least one shard at a proportionally scaled support floor. Backends
//! therefore implement [`ShardScaled`] so the driver can scale their
//! absolute-count thresholds down to each shard's fraction of the data;
//! [`MergeStrategy::SupportRecount`] then re-evaluates every candidate
//! description against the *global* transaction database (members, closure
//! and support), so merged groups are exact global closed groups and
//! per-shard noise below the global floor is dropped.
//!
//! One subtlety: a globally closed set `X` may never appear per shard —
//! inside a small shard `X`'s closure can *grow* (all shard-local members
//! happen to share extra tokens), and differently in every shard. Since
//! `X` equals the intersection of its per-shard closures, the recount
//! first closes the candidate set under pairwise description intersection
//! (bounded by [`CANDIDATE_REFINEMENT_CAP`]) before re-evaluating, which
//! recovers such hidden sets without ever admitting a false positive: any
//! recounted group is a closure of a global tidlist, hence exactly a
//! global closed group.
//!
//! The pairwise refinement alone is not complete: it can only intersect
//! descriptions that some shard actually *mined*, and a shard where `X`'s
//! carriers sit below the scaled support floor never emits its local
//! closure of `X`. The **cross-shard closure exchange round**
//! ([`MergeContext::exchange_rounds`], on by default) closes that last
//! gap: every candidate description is broadcast to every shard's
//! transaction projection, each shard re-closes it locally (the distinct
//! projections of its transactions onto the candidate — exactly the
//! shard-local closures of single members, floor-free), and the
//! cross-shard intersection products of those projections feed the global
//! recount worklist. Completeness argument: a missed global closed
//! frequent set `X` is contained in some mined witness `Y` (SON picks a
//! shard where `X` is frequent at the scaled floor, and that shard's LCM
//! emits `Y = clos(members(X))` — shard-local mining runs with
//! `emit_root: true` precisely so this holds even when `Y` is the shard's
//! own root), and `X = ⋂_{u ∈ carriers(X)} (T_u ∩ Y)` because `X` is
//! closed — an intersection of projected transactions, all of which the
//! exchange collects. The exchange runs whenever more than one part
//! contributed *or* the parts are shard projections
//! ([`MergeContext::partial_parts`] — a lone shard-local family is not
//! globally closed, unlike a lone full-data part), and the recount
//! normalizes the one group the miners never emit (the global root, the
//! closure of the entire population) back out. One round therefore makes
//! the sharded recount *exact* at any shard count (pinned by
//! `tests/sharded_discovery.rs`); further rounds only re-broadcast the
//! newly found descriptions and stop early at the fixpoint.
//!
//! The exchange's cost is cut three ways (measured by the `d4`
//! experiment; [`MergeContext::exchange_dedup`]` = false` restores the
//! plain broadcast-everything path as the before/after reference). Each
//! frontier candidate is **frequency-pruned** onto its tokens whose
//! global support meets the recount floor — a group containing an
//! infrequent token can never survive the recount, so its tidlists are
//! never worth scanning. Near-identical candidates (the common case after
//! SON scaling: shard-local closures differing only in locally-shared
//! rare tokens) collapse onto one pruned form that is **deduplicated and
//! broadcast once**; the pruned form itself joins the recount worklist,
//! which is what keeps the completeness argument intact (a hidden set
//! whose every carrier carries the whole pruned form is exactly that
//! form's recount). And with genuine per-shard projections an
//! [`ExchangeRouter`] routes each candidate only to the **shards holding
//! a carrier** of at least one of its tokens — computable from per-shard
//! token supports, or from the [`ShardPlan`]'s member ranges/hashes plus
//! the global tidlists without touching per-shard data
//! ([`ExchangeRouter::from_plan`]).

use crate::bitmap::MemberSet;
use crate::discovery::{BirchDiscovery, LcmDiscovery, MomriDiscovery, StreamFimDiscovery};
use crate::discovery::{DiscoveryOutcome, DiscoveryStats, GroupDiscovery, ShardStats};
use crate::group::{Group, GroupSet};
use crate::transactions::TransactionDb;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use vexus_data::shard::{ShardPlan, ShardStrategy};
use vexus_data::{TokenId, UserData, Vocabulary};

/// Scale a minimum-count threshold to a shard covering `fraction` of the
/// members. `ceil` keeps the SON guarantee: any itemset with global count
/// ≥ `floor` has, in some shard, count ≥ `ceil(floor · fraction)`.
fn scale_floor(floor: usize, fraction: f64) -> usize {
    ((floor as f64 * fraction).ceil() as usize).max(1)
}

/// Scale a safety-valve cap *up* for a shard covering `fraction` of the
/// members, saturating at `usize::MAX`. A scaled-*down* support floor
/// surfaces proportionally more shard-local structure, so a global cap
/// applied verbatim per shard could truncate a shard's output stream
/// before its globally frequent candidates are emitted.
fn scale_cap(cap: usize, fraction: f64) -> usize {
    let scaled = (cap as f64 / fraction.max(f64::EPSILON)).ceil();
    if scaled >= usize::MAX as f64 {
        usize::MAX
    } else {
        scaled as usize
    }
}

/// Adapt a backend's configuration to one shard of the data.
///
/// The driver hands each worker `backend.for_shard_of(fraction, n_attrs)`
/// where `fraction` is the shard's share of all members and `n_attrs` the
/// schema's attribute count. Backends whose thresholds are absolute counts
/// (LCM's `min_support`, BIRCH's `min_cluster_size`) scale them down
/// proportionally so globally frequent structure stays visible inside
/// every shard; backends with purely relative thresholds (stream FIM's
/// σ/ε) return an unchanged copy. Backends that lift output caps per
/// shard re-impose the user's caps on the merged space in
/// [`ShardScaled::finish_merge`].
pub trait ShardScaled: Clone {
    /// A copy of this backend configured for a shard holding `fraction`
    /// (in `(0, 1]`) of the members. Default: unchanged clone.
    fn for_shard(&self, _fraction: f64) -> Self {
        self.clone()
    }

    /// As [`ShardScaled::for_shard`], additionally told the schema's
    /// attribute count — the natural ceiling on any closed description's
    /// length, since a user carries at most one `(attribute, value)` token
    /// per attribute — and whether the merge is a recount
    /// (`recount_witnesses`: the per-shard output feeds a global
    /// [`MergeStrategy::SupportRecount`], so shard-local output policies
    /// like LCM's root suppression should be lifted to keep every merge
    /// witness; false for union/dedup merges, whose parts land in the
    /// output as-is). Backends whose description caps would otherwise
    /// prune whole shard-local branches (LCM) lift them to this ceiling
    /// here, which costs nothing extra: no closure can be longer than the
    /// shortest member transaction, which this bound already dominates.
    /// Default: delegate to `for_shard`.
    fn for_shard_of(&self, fraction: f64, _n_attributes: usize, _recount_witnesses: bool) -> Self {
        self.for_shard(fraction)
    }

    /// Re-apply the *user's* global caps that `for_shard_of` lifted per
    /// shard, after the merge produced the global group space. Default:
    /// identity.
    fn finish_merge(&self, groups: GroupSet) -> GroupSet {
        groups
    }

    /// Whether the *user's* configuration asks for the whole-population
    /// group (LCM's `emit_root`). The support-recount merge normalizes
    /// that group out unless this returns true, mirroring what the
    /// unsharded backend would emit. Default: false.
    fn emits_population_group(&self) -> bool {
        false
    }
}

impl ShardScaled for LcmDiscovery {
    /// Scales `min_support` only; description/group caps are handled by
    /// [`ShardScaled::for_shard_of`] and [`ShardScaled::finish_merge`].
    fn for_shard(&self, fraction: f64) -> Self {
        let mut scaled = self.clone();
        scaled.config.min_support = scale_floor(self.config.min_support, fraction);
        scaled
    }

    /// Scales `min_support` down and *lifts* the output caps: the
    /// description cap rises to the schema's attribute count (a
    /// shard-local closure longer than the user's `max_description` must
    /// still be mined — its global recount can shrink back under the cap;
    /// pruning the branch per shard silently dropped such groups), and
    /// `max_groups` scales up by the shard count so low-floor shards
    /// don't hit the safety valve before globally frequent candidates are
    /// emitted. Under a recount merge (`recount_witnesses`), `emit_root`
    /// additionally turns on: a shard whose entire closed family collapses
    /// into its own root (all shard members identical on some tokens)
    /// would otherwise emit *no* witness for a globally frequent group
    /// concentrated there. The recount then re-normalizes (shard roots
    /// recount like any candidate; the whole-population group is dropped
    /// unless the user's own `emit_root` asked for it), and
    /// [`ShardScaled::finish_merge`] re-applies the user's caps to the
    /// merged space. Union/dedup merges keep the user's `emit_root`
    /// untouched, since their parts land in the output as-is.
    fn for_shard_of(&self, fraction: f64, n_attributes: usize, recount_witnesses: bool) -> Self {
        let mut scaled = self.for_shard(fraction);
        scaled.config.max_description = scaled.config.max_description.max(n_attributes);
        scaled.config.max_groups = scale_cap(self.config.max_groups, fraction);
        scaled.config.emit_root = self.config.emit_root || recount_witnesses;
        scaled
    }

    /// Drops merged groups whose *global* closed description exceeds the
    /// user's `max_description` (matching what the unsharded miner never
    /// emits) and truncates to `max_groups`. The truncation is a safety
    /// valve, not a top-k contract: when the cap binds, the kept subset
    /// follows merge order rather than the unsharded miner's DFS order.
    fn finish_merge(&self, groups: GroupSet) -> GroupSet {
        let max_description = self.config.max_description;
        let kept: Vec<Group> = groups
            .into_vec()
            .into_iter()
            .filter(|g| g.description.len() <= max_description)
            .take(self.config.max_groups)
            .collect();
        GroupSet::from_groups(kept)
    }

    fn emits_population_group(&self) -> bool {
        self.config.emit_root
    }
}

impl ShardScaled for MomriDiscovery {
    fn for_shard(&self, fraction: f64) -> Self {
        let mut scaled = self.clone();
        scaled.config.lcm.min_support = scale_floor(self.config.lcm.min_support, fraction);
        scaled
    }
}

impl ShardScaled for BirchDiscovery {
    fn for_shard(&self, fraction: f64) -> Self {
        let mut scaled = self.clone();
        scaled.min_cluster_size = scale_floor(self.min_cluster_size, fraction);
        scaled
    }
}

impl ShardScaled for StreamFimDiscovery {}

/// Above this many distinct candidate descriptions,
/// [`MergeStrategy::SupportRecount`] skips the quadratic
/// intersection-refinement pass and recounts the raw candidates only. The
/// recount stays sound either way; the refinement exists for the regime
/// where closure-hiding actually bites — small shards with few candidates
/// — while on rich spaces (thousands of candidates) it costs hundreds of
/// milliseconds to recover a fraction of a percent of groups (measured by
/// the `d2` experiment's `vs 1-shard` column, which reports the recall
/// honestly at any cap).
pub const CANDIDATE_REFINEMENT_CAP: usize = 1024;

/// Intersection of two sorted token descriptions (merge scan).
fn intersect_sorted(a: &[TokenId], b: &[TokenId]) -> Vec<TokenId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Close a candidate family under pairwise intersection, up to `cap`
/// members. A globally closed set equals the intersection of its per-shard
/// closures, so this worklist recovers sets hidden by shard-local closure
/// growth. Deterministic: the result is sorted, and the worklist explores
/// candidates in sorted order.
fn close_under_intersection(seed: Vec<Vec<TokenId>>, cap: usize) -> Vec<Vec<TokenId>> {
    let mut known: std::collections::HashSet<Vec<TokenId>> = seed.iter().cloned().collect();
    if known.len() > cap {
        return seed;
    }
    let mut frontier = seed;
    frontier.sort_unstable();
    frontier.dedup();
    let mut snapshot = frontier.clone();
    'refine: while !frontier.is_empty() {
        let mut fresh = Vec::new();
        for a in &frontier {
            for b in &snapshot {
                let inter = intersect_sorted(a, b);
                if !inter.is_empty() && !known.contains(&inter) {
                    known.insert(inter.clone());
                    fresh.push(inter);
                    if known.len() > cap {
                        break 'refine;
                    }
                }
            }
        }
        fresh.sort_unstable();
        snapshot.extend(fresh.iter().cloned());
        snapshot.sort_unstable();
        frontier = fresh;
    }
    let mut out: Vec<Vec<TokenId>> = known.into_iter().collect();
    out.sort_unstable();
    out
}

/// Per-candidate ceiling on the cross-shard exchange family (the
/// intersection closure of a candidate's projected transactions). The
/// family is naturally bounded by `2^|description|` — descriptions are
/// short conjunctions, so this cap only bites on pathologically wide
/// schemas; when it does, the exchange degrades to recounting the raw
/// projections, which stays sound (every recounted description yields an
/// exact global closed group) but may reopen a recall tail.
pub const EXCHANGE_FAMILY_CAP: usize = 4096;

/// One shard's re-closure of a broadcast candidate `y`, for every shard in
/// `dbs`: the distinct projections of the shard's transactions onto `y`
/// (each projection is the shard-local closure of a single member,
/// restricted to `y` — no support floor), then the cross-shard
/// intersection products of all of them.
///
/// Hot path: a projection is a subset of `y`, so for the (universal in
/// practice) case `|y| ≤ 64` each one is a `u64` bitmask over `y`'s token
/// positions. One pass over the tidlists ORs each carrier's position bit
/// into a dense per-member scratch word (reset via the touched list, never
/// rescanned), distinct masks fall out of a word sort, and the
/// intersection closure becomes a bitwise-AND worklist — no per-carrier
/// allocation, comparison or tree insert. Descriptions longer than 64
/// tokens (wider than any real schema here) fall back to the generic
/// [`exchange_family_reference`]. Deterministic: masks are explored in
/// sorted word order, which for subsets of the same `y` is a total order,
/// and the result is converted back to sorted token lists. The family
/// equals the reference's except under the [`EXCHANGE_FAMILY_CAP`]: the
/// cap can only bind past `|y| > 12` (the family is bounded by
/// `2^|y|`), where the two explorations may keep different — equally
/// sound — subsets.
///
/// `scratch` is caller-owned zeroed scratch, at least as long as the
/// largest projection's transaction count; it is returned zeroed.
fn exchange_family(
    dbs: &[&TransactionDb],
    y: &[TokenId],
    cap: usize,
    scratch: &mut Vec<u64>,
) -> Vec<Vec<TokenId>> {
    if y.len() < 2 {
        // Strict sub-projections of a singleton are empty; nothing to add.
        return Vec::new();
    }
    if y.len() > 64 {
        return exchange_family_reference(dbs, y, cap);
    }
    let full: u64 = if y.len() == 64 {
        u64::MAX
    } else {
        (1u64 << y.len()) - 1
    };
    let rows = dbs.iter().map(|db| db.n_transactions()).max().unwrap_or(0);
    if scratch.len() < rows {
        scratch.resize(rows, 0);
    }
    let mut seed: Vec<u64> = Vec::new();
    let mut touched: Vec<u32> = Vec::new();
    for db in dbs {
        for (i, &t) in y.iter().enumerate() {
            let bit = 1u64 << i;
            for u in db.tidlist(t).iter() {
                if scratch[u as usize] == 0 {
                    touched.push(u);
                }
                scratch[u as usize] |= bit;
            }
        }
        for &u in touched.iter() {
            let mask = scratch[u as usize];
            scratch[u as usize] = 0;
            // The full candidate is already on the worklist; only strict
            // sub-projections can surface hidden sets.
            if mask != full {
                seed.push(mask);
            }
        }
        touched.clear();
    }
    seed.sort_unstable();
    seed.dedup();
    close_masks_under_and(seed, cap)
        .into_iter()
        .map(|mask| {
            y.iter()
                .enumerate()
                .filter_map(|(i, &t)| (mask & (1 << i) != 0).then_some(t))
                .collect()
        })
        .collect()
}

/// Close a mask family under bitwise AND, up to `cap` members — the
/// bitmask form of [`close_under_intersection`]. Empty products are
/// dropped (an all-zero mask is the empty projection, which carries no
/// description); over the cap the seed passes through unrefined.
fn close_masks_under_and(seed: Vec<u64>, cap: usize) -> Vec<u64> {
    let mut known: std::collections::BTreeSet<u64> = seed.iter().copied().collect();
    if known.len() > cap {
        return seed;
    }
    let mut frontier = seed;
    let mut snapshot = frontier.clone();
    'refine: while !frontier.is_empty() {
        let mut fresh = Vec::new();
        for &a in &frontier {
            for &b in &snapshot {
                let and = a & b;
                if and != 0 && known.insert(and) {
                    fresh.push(and);
                    if known.len() > cap {
                        break 'refine;
                    }
                }
            }
        }
        fresh.sort_unstable();
        snapshot.extend(fresh.iter().copied());
        snapshot.sort_unstable();
        frontier = fresh;
    }
    known.into_iter().collect()
}

/// The PR-4 family computation, kept verbatim as the
/// [`MergeContext::exchange_dedup`]` = false` reference (and the fallback
/// for descriptions wider than 64 tokens): materialize `(member, token)`
/// pairs over the tidlists, sort them so each run is one member's
/// projection, and close the collected set under pairwise intersection.
fn exchange_family_reference(
    dbs: &[&TransactionDb],
    y: &[TokenId],
    cap: usize,
) -> Vec<Vec<TokenId>> {
    if y.len() < 2 {
        return Vec::new();
    }
    let mut seed: std::collections::BTreeSet<Vec<TokenId>> = std::collections::BTreeSet::new();
    for db in dbs {
        // (member, token) pairs over y's tidlists; sorting groups them by
        // member, so each run is that member's transaction ∩ y (tokens
        // ascend within a run because the pair sort is lexicographic).
        let mut pairs: Vec<(u32, TokenId)> = Vec::new();
        for &t in y {
            for u in db.tidlist(t).iter() {
                pairs.push((u, t));
            }
        }
        pairs.sort_unstable();
        let mut i = 0;
        while i < pairs.len() {
            let member = pairs[i].0;
            let mut projection = Vec::new();
            while i < pairs.len() && pairs[i].0 == member {
                projection.push(pairs[i].1);
                i += 1;
            }
            if projection.len() < y.len() {
                seed.insert(projection);
            }
        }
    }
    close_under_intersection(seed.into_iter().collect(), cap)
}

/// Candidate→shard routing table for the closure exchange: per token, the
/// shard projections whose members actually carry it. A candidate `y` only
/// needs re-closing against shards holding a carrier of at least one of
/// its tokens — every other shard would contribute an empty projection
/// set, so skipping it is a strict no-op that saves the tidlist scans.
#[derive(Debug, Clone)]
pub struct ExchangeRouter {
    /// `token_shards[token]` = sorted shard indices with non-zero
    /// shard-local support for that token.
    token_shards: Vec<Vec<u32>>,
}

impl ExchangeRouter {
    /// Build from materialized shard projections by probing each shard's
    /// local token supports.
    pub fn from_projections(dbs: &[&TransactionDb]) -> Self {
        let n_tokens = dbs.first().map(|db| db.n_tokens()).unwrap_or(0);
        let mut token_shards: Vec<Vec<u32>> = vec![Vec::new(); n_tokens];
        for (s, db) in dbs.iter().enumerate() {
            for (t, shards) in token_shards.iter_mut().enumerate() {
                if db.support(TokenId::new(t as u32)) > 0 {
                    shards.push(s as u32);
                }
            }
        }
        Self { token_shards }
    }

    /// Build from a [`ShardPlan`] and the *global* database — the form a
    /// distributed deployment computes without touching per-shard data:
    /// each global tidlist routes through
    /// [`ShardPlan::shards_containing`]. Shard indices must correspond to
    /// the plan's (and hence [`MergeContext::shard_dbs`]'s) shard order;
    /// the result is identical to
    /// [`ExchangeRouter::from_projections`] over the plan's projections.
    pub fn from_plan(plan: &ShardPlan, global: &TransactionDb) -> Self {
        let token_shards = (0..global.n_tokens())
            .map(|t| {
                plan.shards_containing(global.tidlist(TokenId::new(t as u32)).iter())
                    .into_iter()
                    .map(|s| s as u32)
                    .collect()
            })
            .collect();
        Self { token_shards }
    }

    /// The shards that can contribute a projection of `y`: the sorted
    /// union of its tokens' carrier shards.
    pub fn route(&self, y: &[TokenId]) -> Vec<u32> {
        let mut out: Vec<u32> = y
            .iter()
            .flat_map(|t| self.token_shards[t.index()].iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// One exchange round: broadcast every frontier candidate to every shard
/// projection (or, with a router, only to the shards holding carriers of
/// its tokens), collect the re-closed families, and return the
/// deduplicated union plus the number of per-candidate shard scans the
/// routing skipped. Fans out over scoped worker threads in contiguous
/// candidate chunks; the result is sorted, so it is byte-identical at any
/// worker count.
fn exchange_round(
    dbs: &[&TransactionDb],
    candidates: &[Vec<TokenId>],
    router: Option<&ExchangeRouter>,
    threads: usize,
    optimized: bool,
) -> (Vec<Vec<TokenId>>, usize) {
    // Per-worker closure: route, then compute the family with the
    // worker-owned mask scratch (or the reference path when the caller
    // asked for the PR-4 exchange).
    let family_of = |y: &Vec<TokenId>, scratch: &mut Vec<u64>| -> (Vec<Vec<TokenId>>, usize) {
        let routed_store: Vec<&TransactionDb>;
        let (used, skipped): (&[&TransactionDb], usize) = match router {
            None => (dbs, 0),
            Some(router) => {
                routed_store = router.route(y).iter().map(|&s| dbs[s as usize]).collect();
                let skipped = dbs.len() - routed_store.len();
                (&routed_store, skipped)
            }
        };
        let family = if optimized {
            exchange_family(used, y, EXCHANGE_FAMILY_CAP, scratch)
        } else {
            exchange_family_reference(used, y, EXCHANGE_FAMILY_CAP)
        };
        (family, skipped)
    };
    let workers = resolve_workers(threads).min(candidates.len()).max(1);
    let (families, skipped): (Vec<Vec<Vec<TokenId>>>, usize) = if workers <= 1 {
        let mut skipped = 0usize;
        let mut scratch = Vec::new();
        let families = candidates
            .iter()
            .map(|y| {
                let (family, s) = family_of(y, &mut scratch);
                skipped += s;
                family
            })
            .collect();
        (families, skipped)
    } else {
        let chunk = candidates.len().div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let family_of = &family_of;
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        let mut skipped = 0usize;
                        let mut scratch = Vec::new();
                        let families: Vec<_> = chunk
                            .iter()
                            .map(|y| {
                                let (family, s) = family_of(y, &mut scratch);
                                skipped += s;
                                family
                            })
                            .collect();
                        (families, skipped)
                    })
                })
                .collect();
            let mut families = Vec::new();
            let mut skipped = 0usize;
            for h in handles {
                let (f, s) = h.join().expect("exchange worker panicked");
                families.extend(f);
                skipped += s;
            }
            (families, skipped)
        })
        .expect("exchange scope")
    };
    let mut out: Vec<Vec<TokenId>> = families.into_iter().flatten().collect();
    out.sort_unstable();
    out.dedup();
    (out, skipped)
}

/// Worker count resolution: `0` means use the machine's available
/// parallelism.
fn resolve_workers(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Shared inputs of a merge: the global dataset and vocabulary, an
/// optional pre-built [`TransactionDb`] (reused instead of rebuilt when a
/// strategy needs one — the recount's dominant fixed cost), and the worker
/// count for the recount fan-out.
#[derive(Clone, Copy)]
pub struct MergeContext<'a> {
    /// The global dataset.
    pub data: &'a UserData,
    /// The global token vocabulary.
    pub vocab: &'a Vocabulary,
    /// A transaction database over `data`/`vocab`, if the caller already
    /// built one. `None` makes [`MergeStrategy::SupportRecount`] build its
    /// own, as the pre-d3 merge contract did.
    pub db: Option<&'a TransactionDb>,
    /// Worker threads for the candidate recount (`0` = available
    /// parallelism). Output is byte-identical at any thread count.
    pub threads: usize,
    /// Cross-shard closure exchange rounds run by
    /// [`MergeStrategy::SupportRecount`] before the global recount
    /// (`0` disables the exchange). On by default (`1`): one round already
    /// makes the sharded recount exact at any shard count (see the module
    /// docs), and further rounds stop early at the fixpoint.
    pub exchange_rounds: usize,
    /// Projection-local transaction databases, one per shard, for the
    /// exchange's shard-local re-closure step. `None` treats the global
    /// database as a single projection — the merged output is identical
    /// (every member lives in exactly one shard, so the union of per-shard
    /// distinct projections equals the global distinct projections), which
    /// is why the in-process driver never builds them; the per-shard form
    /// (see [`TransactionDb::build_for_members`]) exists so a distributed
    /// deployment can keep the re-closure next to each shard's data.
    pub shard_dbs: Option<&'a [TransactionDb]>,
    /// Whether the parts were mined on *projections* of the data (shards)
    /// rather than on the full dataset. When true, the exchange runs even
    /// if only one part contributed descriptions: a lone shard-local
    /// family is *not* globally closed (its closures grew inside the
    /// shard), whereas a lone full-data part already is — the
    /// `contributing parts > 1` shortcut is only valid for the latter.
    /// [`ShardedDiscovery`] sets this whenever it runs more than one
    /// shard; ensembles of full-data backends leave it false.
    pub partial_parts: bool,
    /// Whether [`MergeStrategy::SupportRecount`] may emit the
    /// whole-population group (the global root closure). False — the
    /// miners' `emit_root: false` convention — unless the user's backend
    /// configuration asked for the root
    /// ([`ShardScaled::emits_population_group`]); shard-root witnesses and
    /// derived candidates recounting onto it are normalized out otherwise.
    pub keep_population_group: bool,
    /// Whether the exchange broadcast is deduplicated and
    /// frequency-pruned (on by default). Each frontier candidate is first
    /// restricted to its tokens with *global* support at least the
    /// recount floor — a token below the global floor cannot appear in any
    /// surviving group, so projecting onto it is wasted tidlist scanning —
    /// and near-identical candidates (the common case after SON scaling:
    /// shard-local closures differing only in locally-shared rare tokens)
    /// collapse onto one pruned form that is broadcast once. The pruned
    /// forms themselves join the recount worklist, which keeps the
    /// exchange exactness proof intact (see the module docs). `false`
    /// restores the PR-4 broadcast-everything exchange, kept as the
    /// before/after reference for the `d4` experiment.
    pub exchange_dedup: bool,
    /// The shard plan behind [`MergeContext::shard_dbs`], if the caller
    /// has one (shard order must match). Lets the exchange build its
    /// candidate→shard [`ExchangeRouter`] from the plan's member
    /// ranges/hashes and the global tidlists
    /// ([`ExchangeRouter::from_plan`]) instead of probing every
    /// projection's token supports; without a plan the router is derived
    /// from the projections directly.
    pub shard_plan: Option<&'a ShardPlan>,
}

impl<'a> MergeContext<'a> {
    /// Context without a pre-built database, merging on one thread with
    /// one exchange round (the exactness default).
    pub fn new(data: &'a UserData, vocab: &'a Vocabulary) -> Self {
        Self {
            data,
            vocab,
            db: None,
            threads: 1,
            exchange_rounds: 1,
            shard_dbs: None,
            partial_parts: false,
            keep_population_group: false,
            exchange_dedup: true,
            shard_plan: None,
        }
    }

    /// Builder-style: reuse a pre-built transaction database.
    pub fn with_db(mut self, db: &'a TransactionDb) -> Self {
        self.db = Some(db);
        self
    }

    /// Builder-style: set the recount worker count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style: set the closure exchange round count (`0` = off).
    pub fn with_exchange_rounds(mut self, exchange_rounds: usize) -> Self {
        self.exchange_rounds = exchange_rounds;
        self
    }

    /// Builder-style: provide per-shard projection databases for the
    /// exchange's shard-local re-closure.
    pub fn with_shard_dbs(mut self, shard_dbs: &'a [TransactionDb]) -> Self {
        self.shard_dbs = Some(shard_dbs);
        self
    }

    /// Builder-style: mark the parts as shard-local projections (forces
    /// the exchange to run even when only one part contributed).
    pub fn with_partial_parts(mut self, partial_parts: bool) -> Self {
        self.partial_parts = partial_parts;
        self
    }

    /// Builder-style: let the recount emit the whole-population group
    /// (the user's backend was configured with `emit_root: true`).
    pub fn with_keep_population_group(mut self, keep: bool) -> Self {
        self.keep_population_group = keep;
        self
    }

    /// Builder-style: toggle the deduplicated, frequency-pruned exchange
    /// broadcast (`false` = the PR-4 broadcast-everything reference path).
    pub fn with_exchange_dedup(mut self, exchange_dedup: bool) -> Self {
        self.exchange_dedup = exchange_dedup;
        self
    }

    /// Builder-style: provide the shard plan matching
    /// [`MergeContext::shard_dbs`] so candidate→shard routing can be
    /// computed from the plan instead of probing the projections.
    pub fn with_shard_plan(mut self, shard_plan: &'a ShardPlan) -> Self {
        self.shard_plan = Some(shard_plan);
        self
    }
}

/// Telemetry one merge reports back to the discovery driver (currently the
/// closure exchange stage; all zero when the exchange is off or skipped).
#[derive(Debug, Clone, Default)]
pub struct MergeTelemetry {
    /// Exchange rounds actually run (the loop stops early once a round
    /// adds no new description).
    pub exchange_rounds_run: usize,
    /// Descriptions the exchange added to the recount worklist.
    pub exchange_candidates: usize,
    /// Wall-clock of the exchange rounds.
    pub exchange_elapsed: Duration,
    /// Candidate broadcasts the dedup stage saved: frontier descriptions
    /// that collapsed onto an already-broadcast (or within-round
    /// duplicate) frequency-pruned form, or pruned down to a singleton
    /// with no family to broadcast. Zero on the
    /// [`MergeContext::exchange_dedup`]` = false` reference path.
    pub exchange_deduped: usize,
    /// Per-candidate shard scans the candidate→shard routing skipped
    /// (shards holding no carrier of any of the candidate's tokens).
    pub exchange_shards_skipped: usize,
}

/// Recount one candidate description against the global database: exact
/// members, then the closure. `None` when support is under the floor.
fn recount_one(
    db: &TransactionDb,
    description: &[TokenId],
    min_support: usize,
) -> Option<(Vec<TokenId>, MemberSet)> {
    let members = db.itemset_members(description);
    if members.len() < min_support {
        return None;
    }
    let closed = db.closure(&members);
    Some((closed, members))
}

/// Recount every candidate, fanning out over scoped worker threads in
/// contiguous chunks. Chunks are re-concatenated in order, so the result
/// sequence — and hence the merged group order downstream — is
/// byte-identical to the sequential path at any worker count.
fn recount_candidates(
    db: &TransactionDb,
    candidates: &[Vec<TokenId>],
    min_support: usize,
    threads: usize,
) -> Vec<(Vec<TokenId>, MemberSet)> {
    let workers = resolve_workers(threads).min(candidates.len()).max(1);
    if workers <= 1 {
        return candidates
            .iter()
            .filter_map(|d| recount_one(db, d, min_support))
            .collect();
    }
    let chunk = candidates.len().div_ceil(workers);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|chunk| {
                scope.spawn(move |_| {
                    chunk
                        .iter()
                        .filter_map(|d| recount_one(db, d, min_support))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("recount worker panicked"))
            .collect()
    })
    .expect("recount scope")
}

/// How per-shard (or per-backend) group spaces fold into one.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum MergeStrategy {
    /// Concatenate every part's groups unchanged. Right for partition-style
    /// clustering (BIRCH per shard) where parts describe disjoint members.
    Union,
    /// Merge groups sharing a token description by unioning their member
    /// sets; description-less cluster groups pass through unchanged.
    #[default]
    DedupByDescription,
    /// Re-evaluate each distinct description against the global
    /// [`TransactionDb`]: recompute members, take the closure, dedup by the
    /// closed description, and keep only groups with at least
    /// `min_support` members. Before the recount, the candidate worklist
    /// is widened twice — by the bounded pairwise intersection refinement
    /// and by the cross-shard closure exchange
    /// ([`MergeContext::exchange_rounds`], on by default) — so the merged
    /// space is not just sound (every group an exact global closed group,
    /// the SON argument in the module docs) but *complete*: with at least
    /// one exchange round it reproduces the unsharded closed-group space
    /// at any shard count. Cost model: one exchange round scans, per
    /// *distinct frequency-pruned* candidate, the tidlists of its frequent
    /// tokens once per routed shard projection (`O(Σ support(token))`
    /// carrier pushes plus one transaction intersection per carrier), then
    /// recounts the handful of sub-descriptions it surfaces — in return
    /// the quadratic refinement cap stops being a correctness knob. The
    /// dedup/prune/route trims are the `d4` optimizations; see the module
    /// docs and [`MergeContext::exchange_dedup`].
    SupportRecount {
        /// Global support floor after recounting.
        min_support: usize,
    },
}

impl MergeStrategy {
    /// Fold per-part group spaces (members already in *global* user ids)
    /// into one. `data`/`vocab` back the global recount where needed.
    /// Sequential, building its own transaction database — the pre-d3
    /// contract; see [`MergeStrategy::merge_in`] for database reuse and
    /// the parallel recount.
    pub fn merge(&self, parts: Vec<GroupSet>, data: &UserData, vocab: &Vocabulary) -> GroupSet {
        self.merge_in(parts, &MergeContext::new(data, vocab))
    }

    /// Fold per-part group spaces into one under an explicit
    /// [`MergeContext`]: reuses `ctx.db` when provided instead of
    /// rebuilding the global database, runs `ctx.exchange_rounds` closure
    /// exchange rounds before the recount, and fans both stages out over
    /// `ctx.threads` workers. The merged output is byte-identical for
    /// every thread count (chunked, deterministically re-concatenated).
    pub fn merge_in(&self, parts: Vec<GroupSet>, ctx: &MergeContext<'_>) -> GroupSet {
        self.merge_in_traced(parts, ctx).0
    }

    /// As [`MergeStrategy::merge_in`], additionally reporting
    /// [`MergeTelemetry`] (exchange rounds run, descriptions added, and
    /// wall-clock) for the discovery driver's stats.
    pub fn merge_in_traced(
        &self,
        parts: Vec<GroupSet>,
        ctx: &MergeContext<'_>,
    ) -> (GroupSet, MergeTelemetry) {
        let mut telemetry = MergeTelemetry::default();
        let groups = match self {
            Self::Union => {
                let mut out = GroupSet::new();
                for part in parts {
                    for group in part.into_vec() {
                        out.push(group);
                    }
                }
                out
            }
            Self::DedupByDescription => {
                let mut described: BTreeMap<Vec<TokenId>, MemberSet> = BTreeMap::new();
                let mut clusters: Vec<Group> = Vec::new();
                for part in parts {
                    for group in part.into_vec() {
                        if group.description.is_empty() {
                            clusters.push(group);
                        } else {
                            described
                                .entry(group.description)
                                .and_modify(|m| *m = m.union(&group.members))
                                .or_insert(group.members);
                        }
                    }
                }
                let mut out = GroupSet::new();
                for (description, members) in described {
                    out.push(Group::new(description, members));
                }
                for cluster in clusters {
                    out.push(cluster);
                }
                out
            }
            Self::SupportRecount { min_support } => {
                let built;
                let db = match ctx.db {
                    Some(db) => db,
                    None => {
                        built = TransactionDb::build(ctx.data, ctx.vocab);
                        &built
                    }
                };
                let mut candidates: Vec<Vec<TokenId>> = Vec::new();
                let mut seen_candidates = std::collections::BTreeSet::new();
                let mut clusters: Vec<Group> = Vec::new();
                let mut contributing_parts = 0usize;
                for part in parts {
                    let mut contributed = false;
                    for group in part.into_vec() {
                        if group.description.is_empty() {
                            // Cluster groups have no description to recount;
                            // apply the global floor and pass them through.
                            if group.size() >= *min_support {
                                clusters.push(group);
                            }
                        } else {
                            contributed = true;
                            // Identical descriptions from different shards
                            // collapse here (pre-d4 behavior, untracked —
                            // `exchange_deduped` isolates the broadcast
                            // dedup so the PR-4 reference path reads 0).
                            if seen_candidates.insert(group.description.clone()) {
                                candidates.push(group.description);
                            }
                        }
                    }
                    contributing_parts += usize::from(contributed);
                }
                // Descriptions can only hide behind differing closures when
                // the parts are data *projections* (shards) or when several
                // parts disagree; a lone part mined on the full data is
                // already globally closed, so the widening passes are
                // skipped for it. A lone *shard* part is not (its closures
                // grew shard-locally) — `ctx.partial_parts` keeps the
                // exchange on for that case, e.g. when every other shard's
                // family came up empty.
                let derive = contributing_parts > 1 || ctx.partial_parts;
                // The pairwise refinement still needs two disagreeing
                // families to intersect; the exchange below covers the
                // single-contributor shard case on its own.
                let mut candidates = if contributing_parts > 1 {
                    close_under_intersection(candidates, CANDIDATE_REFINEMENT_CAP)
                } else {
                    candidates
                };
                if ctx.exchange_rounds > 0 && derive && !candidates.is_empty() {
                    let t_exchange = Instant::now();
                    let single_projection = [db];
                    let shard_dbs: Vec<&TransactionDb> = match ctx.shard_dbs {
                        Some(dbs) if !dbs.is_empty() => dbs.iter().collect(),
                        _ => single_projection.to_vec(),
                    };
                    // Candidate→shard routing only pays with genuine
                    // per-shard projections; the single-projection
                    // fallback always scans its one database.
                    let router =
                        (ctx.exchange_dedup && shard_dbs.len() > 1).then(|| match ctx.shard_plan {
                            Some(plan) => ExchangeRouter::from_plan(plan, db),
                            None => ExchangeRouter::from_projections(&shard_dbs),
                        });
                    let before = candidates.len();
                    let mut pool: std::collections::BTreeSet<Vec<TokenId>> =
                        candidates.iter().cloned().collect();
                    // Pruned forms broadcast so far: a form's family is
                    // computed once across all rounds.
                    let mut broadcast_seen: std::collections::BTreeSet<Vec<TokenId>> =
                        std::collections::BTreeSet::new();
                    let mut frontier = candidates.clone();
                    for _ in 0..ctx.exchange_rounds {
                        telemetry.exchange_rounds_run += 1;
                        let broadcast: Vec<Vec<TokenId>> = if ctx.exchange_dedup {
                            let mut forms = Vec::new();
                            for y in &frontier {
                                let pruned: Vec<TokenId> = y
                                    .iter()
                                    .copied()
                                    .filter(|&t| db.support(t) >= *min_support)
                                    .collect();
                                if pruned.len() < y.len()
                                    && !pruned.is_empty()
                                    && pool.insert(pruned.clone())
                                {
                                    // The pruned form is a legitimate
                                    // candidate in its own right (the
                                    // projection of `y` onto the frequent
                                    // token space); recounting it is what
                                    // keeps the exactness proof intact
                                    // when every carrier of a hidden set
                                    // carries the whole pruned form.
                                    candidates.push(pruned.clone());
                                }
                                if pruned.len() >= 2 && broadcast_seen.insert(pruned.clone()) {
                                    forms.push(pruned);
                                }
                            }
                            forms.sort_unstable();
                            telemetry.exchange_deduped += frontier.len() - forms.len();
                            forms
                        } else {
                            std::mem::take(&mut frontier)
                        };
                        let (found, skipped) = exchange_round(
                            &shard_dbs,
                            &broadcast,
                            router.as_ref(),
                            ctx.threads,
                            ctx.exchange_dedup,
                        );
                        telemetry.exchange_shards_skipped += skipped;
                        let fresh: Vec<Vec<TokenId>> = found
                            .into_iter()
                            .filter(|d| pool.insert(d.clone()))
                            .collect();
                        if fresh.is_empty() {
                            break;
                        }
                        candidates.extend(fresh.iter().cloned());
                        frontier = fresh;
                    }
                    telemetry.exchange_candidates = candidates.len() - before;
                    telemetry.exchange_elapsed = t_exchange.elapsed();
                }
                let recounted = recount_candidates(db, &candidates, *min_support, ctx.threads);
                let mut out = GroupSet::new();
                let mut seen_closed = std::collections::BTreeSet::new();
                let population = db.n_transactions();
                for (closed, members) in recounted {
                    // Normalize the root convention: the group carried by
                    // the *entire* population (whose description is
                    // necessarily the root closure) is emitted only when
                    // the user's backend asked for it. Shard-local mining
                    // emits shard roots as witnesses (see
                    // `ShardScaled::for_shard_of`), and derived candidates
                    // can land inside the global root closure — both
                    // recount to this one group, dropped here unless the
                    // context keeps it.
                    if members.len() == population && !ctx.keep_population_group {
                        continue;
                    }
                    if seen_closed.insert(closed.clone()) {
                        out.push(Group::new(closed, members));
                    }
                }
                for cluster in clusters {
                    out.push(cluster);
                }
                out
            }
        };
        (groups, telemetry)
    }
}

/// Run any [`GroupDiscovery`] backend per shard on scoped threads and
/// merge the per-shard group spaces.
///
/// The backend must be [`ShardScaled`] (so the driver can scale its
/// absolute thresholds per shard) and `Sync` (workers share it by
/// reference). Member ids in the merged outcome are global; per-shard
/// timings land in [`DiscoveryStats::shards`].
#[derive(Debug, Clone)]
pub struct ShardedDiscovery<B> {
    /// The prototype backend; each shard runs `backend.for_shard(f)`.
    pub backend: B,
    /// Number of shards (clamped to at least 1 at run time).
    pub shards: usize,
    /// How members are assigned to shards.
    pub strategy: ShardStrategy,
    /// How per-shard group spaces fold into one.
    pub merge: MergeStrategy,
    /// Worker threads for the merge's candidate recount (`0` = available
    /// parallelism). The merged output is byte-identical at any count.
    pub merge_threads: usize,
    /// Cross-shard closure exchange rounds for the support-recount merge
    /// (`0` disables; default `1` — one round pins exactness at any shard
    /// count, see [`MergeContext::exchange_rounds`]).
    pub exchange_rounds: usize,
}

impl<B> ShardedDiscovery<B> {
    /// Shard `backend` over `shards` hash shards with the default
    /// dedup-by-description merge.
    pub fn new(backend: B, shards: usize) -> Self {
        Self {
            backend,
            shards,
            strategy: ShardStrategy::Hash,
            merge: MergeStrategy::default(),
            merge_threads: 0,
            exchange_rounds: 1,
        }
    }

    /// Builder-style: change the shard-assignment strategy.
    pub fn with_strategy(mut self, strategy: ShardStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style: change the merge layer.
    pub fn with_merge(mut self, merge: MergeStrategy) -> Self {
        self.merge = merge;
        self
    }

    /// Builder-style: set the merge recount worker count (`0` = auto).
    pub fn with_merge_threads(mut self, merge_threads: usize) -> Self {
        self.merge_threads = merge_threads;
        self
    }

    /// Builder-style: set the closure exchange round count (`0` = off).
    pub fn with_exchange_rounds(mut self, exchange_rounds: usize) -> Self {
        self.exchange_rounds = exchange_rounds;
        self
    }

    /// Builder-style: merge by global support recount at `min_support`.
    pub fn support_recount(self, min_support: usize) -> Self {
        self.with_merge(MergeStrategy::SupportRecount { min_support })
    }
}

/// Remap a shard's local member ids back to global ids.
fn remap_to_global(groups: GroupSet, members: &[u32]) -> GroupSet {
    let remapped = groups
        .into_vec()
        .into_iter()
        .map(|g| {
            // Local ids are ascending and the shard member list is sorted,
            // so the mapping preserves order.
            let global = g.members.iter().map(|l| members[l as usize]).collect();
            Group {
                description: g.description,
                members: global,
            }
        })
        .collect();
    GroupSet::from_groups(remapped)
}

impl<B: GroupDiscovery + ShardScaled + Sync> ShardedDiscovery<B> {
    /// Run the per-shard mining stage only: partition the users, run the
    /// scaled backend per shard on worker threads, and return the
    /// per-shard group spaces (members remapped to global ids, in shard
    /// order) plus per-shard telemetry. [`ShardedDiscovery::discover`] is
    /// `mine_parts` followed by the merge; exposing the split lets perf
    /// harnesses (the `d3` experiment) re-merge identical parts under
    /// different merge configurations without re-mining.
    pub fn mine_parts(
        &self,
        data: &UserData,
        vocab: &Vocabulary,
    ) -> (Vec<GroupSet>, Vec<ShardStats>) {
        let n = data.n_users();
        let plan = ShardPlan::build(n, self.shards, self.strategy);
        let n_shards = plan.n_shards();
        // Witness lifts (LCM's per-shard emit_root) apply only when the
        // parts feed a global recount; union/dedup merges keep the
        // backend's own output policy.
        let recount_witnesses = matches!(self.merge, MergeStrategy::SupportRecount { .. });
        // Bounded worker pool: shard count is a *merge granularity* knob
        // reachable from plain config, so it must not translate 1:1 into
        // OS threads. Workers claim shards off an atomic cursor.
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n_shards)
            .max(1);
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let mut per_shard: Vec<(usize, DiscoveryOutcome, usize)> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let plan = &plan;
                        let backend = &self.backend;
                        let cursor = &cursor;
                        scope.spawn(move |_| {
                            let mut mined = Vec::new();
                            loop {
                                let s = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if s >= n_shards {
                                    break;
                                }
                                let members = plan.members(s);
                                let shard_data = data.project_users(members);
                                let worker = backend.for_shard_of(
                                    plan.fraction(s).max(f64::EPSILON),
                                    data.schema().len(),
                                    recount_witnesses,
                                );
                                let mut outcome = worker.discover(&shard_data, vocab);
                                outcome.groups = remap_to_global(outcome.groups, members);
                                mined.push((s, outcome, members.len()));
                            }
                            mined
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
            .expect("shard scope");
        // Claim order is racy; shard order (and hence merge input order)
        // must not be.
        per_shard.sort_by_key(|&(s, _, _)| s);

        let mut shard_stats = Vec::with_capacity(per_shard.len());
        let mut parts = Vec::with_capacity(per_shard.len());
        for (shard, outcome, members) in per_shard {
            shard_stats.push(ShardStats {
                shard,
                algorithm: outcome.stats.algorithm,
                members,
                elapsed: outcome.stats.elapsed,
                groups_discovered: outcome.stats.groups_discovered,
            });
            parts.push(outcome.groups);
        }
        (parts, shard_stats)
    }
}

impl<B: GroupDiscovery + ShardScaled + Sync> GroupDiscovery for ShardedDiscovery<B> {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn discover(&self, data: &UserData, vocab: &Vocabulary) -> DiscoveryOutcome {
        let t0 = Instant::now();
        let (parts, shard_stats) = self.mine_parts(data, vocab);
        let pre_merge = parts.iter().map(GroupSet::len).sum();
        let t_merge = Instant::now();
        // Build the global database once, outside the strategy, so the
        // merge layer never rebuilds it (and callers re-merging through
        // `merge_in` can share one too).
        let recounting = matches!(self.merge, MergeStrategy::SupportRecount { .. });
        let db = recounting.then(|| TransactionDb::build(data, vocab));
        // No per-shard databases here: in-process, the global database
        // used as a single projection yields an identical exchange family
        // (see `MergeContext::shard_dbs`), so building projection-local
        // copies would only duplicate every transaction. `partial_parts`
        // still tells the merge the parts are shard-local, so the
        // exchange runs even when a single shard contributed.
        let mut ctx = MergeContext::new(data, vocab)
            .with_threads(self.merge_threads)
            .with_exchange_rounds(self.exchange_rounds)
            .with_partial_parts(self.shards > 1)
            .with_keep_population_group(self.backend.emits_population_group());
        if let Some(db) = db.as_ref() {
            ctx = ctx.with_db(db);
        }
        let (groups, exchange) = self.merge.merge_in_traced(parts, &ctx);
        // Re-apply the user's output caps that per-shard adaptation lifted.
        let groups = self.backend.finish_merge(groups);
        let merge_elapsed = t_merge.elapsed();
        let stats = DiscoveryStats {
            algorithm: self.name(),
            elapsed: t0.elapsed(),
            groups_discovered: groups.len(),
            candidates_considered: pre_merge,
            shards: shard_stats,
            merge_elapsed,
            exchange_rounds_run: exchange.exchange_rounds_run,
            exchange_candidates: exchange.exchange_candidates,
            exchange_elapsed: exchange.exchange_elapsed,
            exchange_deduped: exchange.exchange_deduped,
            exchange_shards_skipped: exchange.exchange_shards_skipped,
            ..Default::default()
        };
        DiscoveryOutcome { groups, stats }
    }
}

/// Union several backends' group spaces behind one merge layer.
///
/// Members run sequentially (each may itself be a parallel
/// [`ShardedDiscovery`]); their outcomes fold through the same
/// [`MergeStrategy`] the sharded driver uses, and each member's run is
/// reported as one entry of [`DiscoveryStats::shards`].
pub struct EnsembleDiscovery {
    backends: Vec<Box<dyn GroupDiscovery>>,
    /// How member group spaces fold into one.
    pub merge: MergeStrategy,
    /// Worker threads for the merge's candidate recount (`0` = auto).
    pub merge_threads: usize,
    /// Closure exchange rounds for the support-recount merge (`0` = off;
    /// members run on the full data, so each part is treated as one
    /// projection of the global database).
    pub exchange_rounds: usize,
    /// Whether a support-recount merge may emit the whole-population
    /// group. The members are boxed, so the ensemble cannot inspect their
    /// root configuration the way [`ShardedDiscovery`] does
    /// ([`ShardScaled::emits_population_group`]) — set this when a member
    /// was configured with `emit_root: true` and its root group should
    /// survive the recount.
    pub keep_population_group: bool,
}

impl Default for EnsembleDiscovery {
    fn default() -> Self {
        Self::new(MergeStrategy::default())
    }
}

impl EnsembleDiscovery {
    /// Empty ensemble folding through `merge`.
    pub fn new(merge: MergeStrategy) -> Self {
        Self {
            backends: Vec::new(),
            merge,
            merge_threads: 0,
            exchange_rounds: 1,
            keep_population_group: false,
        }
    }

    /// Builder-style: set the merge recount worker count (`0` = auto).
    pub fn with_merge_threads(mut self, merge_threads: usize) -> Self {
        self.merge_threads = merge_threads;
        self
    }

    /// Builder-style: set the closure exchange round count (`0` = off).
    pub fn with_exchange_rounds(mut self, exchange_rounds: usize) -> Self {
        self.exchange_rounds = exchange_rounds;
        self
    }

    /// Builder-style: let the recount keep the whole-population group
    /// (a member mines with `emit_root: true`).
    pub fn with_keep_population_group(mut self, keep: bool) -> Self {
        self.keep_population_group = keep;
        self
    }

    /// Add a boxed member backend.
    pub fn push(&mut self, backend: Box<dyn GroupDiscovery>) {
        self.backends.push(backend);
    }

    /// Builder-style: add a member backend.
    pub fn with(mut self, backend: impl GroupDiscovery + 'static) -> Self {
        self.push(Box::new(backend));
        self
    }

    /// Number of member backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }
}

impl GroupDiscovery for EnsembleDiscovery {
    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn discover(&self, data: &UserData, vocab: &Vocabulary) -> DiscoveryOutcome {
        let t0 = Instant::now();
        let mut shard_stats = Vec::with_capacity(self.backends.len());
        let mut parts = Vec::with_capacity(self.backends.len());
        let mut pre_merge = 0usize;
        for (i, backend) in self.backends.iter().enumerate() {
            let outcome = backend.discover(data, vocab);
            pre_merge += outcome.groups.len();
            shard_stats.push(ShardStats {
                shard: i,
                algorithm: outcome.stats.algorithm,
                members: data.n_users(),
                elapsed: outcome.stats.elapsed,
                groups_discovered: outcome.stats.groups_discovered,
            });
            parts.push(outcome.groups);
        }
        let t_merge = Instant::now();
        let db = matches!(self.merge, MergeStrategy::SupportRecount { .. })
            .then(|| TransactionDb::build(data, vocab));
        let mut ctx = MergeContext::new(data, vocab)
            .with_threads(self.merge_threads)
            .with_exchange_rounds(self.exchange_rounds)
            .with_keep_population_group(self.keep_population_group);
        if let Some(db) = db.as_ref() {
            ctx = ctx.with_db(db);
        }
        let (groups, exchange) = self.merge.merge_in_traced(parts, &ctx);
        let merge_elapsed = t_merge.elapsed();
        let stats = DiscoveryStats {
            algorithm: self.name(),
            elapsed: t0.elapsed(),
            groups_discovered: groups.len(),
            candidates_considered: pre_merge,
            shards: shard_stats,
            merge_elapsed,
            exchange_rounds_run: exchange.exchange_rounds_run,
            exchange_candidates: exchange.exchange_candidates,
            exchange_elapsed: exchange.exchange_elapsed,
            exchange_deduped: exchange.exchange_deduped,
            exchange_shards_skipped: exchange.exchange_shards_skipped,
            ..Default::default()
        };
        DiscoveryOutcome { groups, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::DiscoverySelection;
    use crate::lcm::LcmConfig;
    use vexus_data::synthetic::{bookcrossing, BookCrossingConfig};

    fn fixture() -> (UserData, Vocabulary) {
        let ds = bookcrossing(&BookCrossingConfig::tiny());
        let vocab = Vocabulary::build(&ds.data);
        (ds.data, vocab)
    }

    fn normalize(gs: &GroupSet) -> Vec<(Vec<TokenId>, Vec<u32>)> {
        let mut v: Vec<_> = gs
            .iter()
            .map(|(_, g)| {
                (
                    g.description.clone(),
                    g.members.iter().collect::<Vec<u32>>(),
                )
            })
            .collect();
        v.sort();
        v
    }

    fn lcm(min_support: usize) -> LcmDiscovery {
        LcmDiscovery::new(LcmConfig {
            min_support,
            max_description: 8,
            ..Default::default()
        })
    }

    #[test]
    fn intersection_closure_recovers_hidden_sets() {
        let d = |v: &[u32]| v.iter().map(|&t| TokenId::new(t)).collect::<Vec<_>>();
        // [1] is hidden behind two differing closures; [1, 2] behind the
        // second-round intersection of first-round results.
        let closed = close_under_intersection(vec![d(&[1, 2, 3]), d(&[1, 2, 4]), d(&[1, 5])], 64);
        assert!(closed.contains(&d(&[1, 2])));
        assert!(closed.contains(&d(&[1])));
        // Deterministic and sorted.
        let again = close_under_intersection(vec![d(&[1, 5]), d(&[1, 2, 4]), d(&[1, 2, 3])], 64);
        assert_eq!(closed, again);
        assert!(closed.windows(2).all(|w| w[0] < w[1]));
        // Over the cap the seed passes through unrefined.
        let capped = close_under_intersection(vec![d(&[1, 2]), d(&[1, 3]), d(&[2, 3])], 2);
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn shard_scaling_preserves_son_guarantee() {
        let scaled = lcm(20).for_shard(0.25);
        assert_eq!(scaled.config.min_support, 5);
        // Never scales to zero.
        assert_eq!(lcm(1).for_shard(0.01).config.min_support, 1);
        // BIRCH scales its cluster floor, stream FIM is unchanged.
        let birch = BirchDiscovery {
            min_cluster_size: 8,
            ..Default::default()
        };
        assert_eq!(birch.for_shard(0.5).min_cluster_size, 4);
        let sf = StreamFimDiscovery::default();
        assert_eq!(sf.for_shard(0.25).config.support, sf.config.support);
    }

    #[test]
    fn shard_adaptation_lifts_lcm_caps_and_finish_merge_reapplies_them() {
        let base = LcmDiscovery::new(LcmConfig {
            min_support: 20,
            max_description: 4,
            max_groups: 1_000,
            emit_root: false,
        });
        let scaled = base.for_shard_of(0.25, 9, true);
        // Support scales down, the description cap lifts to the schema's
        // attribute count, the group cap scales up by the shard count,
        // and recount witnesses turn the shard root on.
        assert_eq!(scaled.config.min_support, 5);
        assert_eq!(scaled.config.max_description, 9);
        assert_eq!(scaled.config.max_groups, 4_000);
        assert!(
            scaled.config.emit_root,
            "recount merges need root witnesses"
        );
        // Union/dedup merges keep the user's root policy untouched.
        assert!(!base.for_shard_of(0.25, 9, false).config.emit_root);
        // A user cap already above the attribute count is kept.
        assert_eq!(base.for_shard_of(0.25, 3, true).config.max_description, 4);
        // Degenerate fractions saturate instead of overflowing.
        assert_eq!(
            LcmDiscovery::new(LcmConfig {
                max_groups: usize::MAX,
                ..base.config.clone()
            })
            .for_shard_of(0.5, 4, true)
            .config
            .max_groups,
            usize::MAX
        );
        // The user's own root request is surfaced for the merge context.
        assert!(!base.emits_population_group());
        assert!(LcmDiscovery::new(LcmConfig {
            emit_root: true,
            ..base.config.clone()
        })
        .emits_population_group());
        // finish_merge re-applies the *user's* caps to the merged space.
        let d = |v: &[u32]| v.iter().map(|&t| TokenId::new(t)).collect::<Vec<_>>();
        let g = |desc: &[u32], m: &[u32]| Group::new(d(desc), MemberSet::from_unsorted(m.to_vec()));
        let merged = GroupSet::from_groups(vec![
            g(&[1, 2], &[0, 1]),
            g(&[1, 2, 3, 4, 5], &[2, 3]), // over the user's cap of 4
            g(&[7], &[4, 5]),
        ]);
        let finished = base.finish_merge(merged);
        assert_eq!(finished.len(), 2);
        assert!(finished.iter().all(|(_, g)| g.description.len() <= 4));
        // The group cap truncates in merge order.
        let capped = LcmDiscovery::new(LcmConfig {
            max_groups: 1,
            ..base.config.clone()
        })
        .finish_merge(GroupSet::from_groups(vec![g(&[1], &[0]), g(&[2], &[1])]));
        assert_eq!(capped.len(), 1);
        assert_eq!(
            capped.get(crate::group::GroupId::new(0)).description,
            d(&[1])
        );
        // The default adaptation (non-LCM backends) is cap-neutral.
        let birch = BirchDiscovery::default();
        let passthrough = birch.finish_merge(GroupSet::from_groups(vec![g(&[], &[0, 1])]));
        assert_eq!(passthrough.len(), 1);
    }

    #[test]
    fn exchange_family_recovers_hidden_subsets() {
        let d = |v: &[u32]| v.iter().map(|&t| TokenId::new(t)).collect::<Vec<_>>();
        // Shard A: both members carry {0,1,2}; shard B: members carry
        // {0,3} and {1,2,3}. The candidate {0,1,2} projected onto shard B
        // yields {0} and {1,2} — the strict sub-projections a recount
        // needs to surface the globally closed subsets.
        let shard_a = TransactionDb::from_transactions(vec![d(&[0, 1, 2]), d(&[0, 1, 2])], 4);
        let shard_b = TransactionDb::from_transactions(vec![d(&[0, 3]), d(&[1, 2, 3])], 4);
        let mut scratch = Vec::new();
        let family = exchange_family(&[&shard_a, &shard_b], &d(&[0, 1, 2]), 64, &mut scratch);
        assert!(family.contains(&d(&[0])));
        assert!(family.contains(&d(&[1, 2])));
        // The full candidate itself is never re-emitted, and singleton
        // candidates have no strict sub-projections at all.
        assert!(!family.contains(&d(&[0, 1, 2])));
        assert!(exchange_family(&[&shard_a, &shard_b], &d(&[3]), 64, &mut scratch).is_empty());
        // The mask hot path must agree with the PR-4 pair-sort reference.
        let mut reference = exchange_family_reference(&[&shard_a, &shard_b], &d(&[0, 1, 2]), 64);
        reference.sort_unstable();
        let mut sorted = family.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, reference);
        // The scratch is handed back zeroed, ready for the next candidate.
        assert!(scratch.iter().all(|&m| m == 0));
        // Splitting the same transactions differently across shards does
        // not change the family (the union of distinct projections is the
        // same), which is why a global fallback projection is equivalent.
        let global = TransactionDb::from_transactions(
            vec![d(&[0, 1, 2]), d(&[0, 1, 2]), d(&[0, 3]), d(&[1, 2, 3])],
            4,
        );
        assert_eq!(
            family,
            exchange_family(&[&global], &d(&[0, 1, 2]), 64, &mut scratch)
        );
    }

    #[test]
    fn frequency_pruning_recounts_the_pruned_form_itself() {
        // One shard-grown candidate {0, 1} where token 1 is globally
        // infrequent: the pruned form {0} is a singleton (no family to
        // broadcast), so exactness hinges on the pruned form itself
        // joining the recount worklist.
        let d = |v: &[u32]| v.iter().map(|&t| TokenId::new(t)).collect::<Vec<_>>();
        let db = TransactionDb::from_transactions(
            vec![d(&[0, 1]), d(&[0]), d(&[0]), d(&[0]), d(&[2])],
            3,
        );
        let part = GroupSet::from_groups(vec![Group::new(
            d(&[0, 1]),
            MemberSet::from_unsorted(vec![0]),
        )]);
        let dummy = vexus_data::UserDataBuilder::new(vexus_data::Schema::new()).build();
        let vocab = Vocabulary::build(&dummy);
        let merge = MergeStrategy::SupportRecount { min_support: 3 };
        let ctx = MergeContext::new(&dummy, &vocab)
            .with_db(&db)
            .with_partial_parts(true);
        let (out, telemetry) = merge.merge_in_traced(vec![part.clone()], &ctx);
        assert_eq!(normalize(&out), vec![(d(&[0]), vec![0, 1, 2, 3])]);
        // {0, 1} collapsed to a singleton pruned form: nothing was worth
        // broadcasting, which the dedup telemetry reports.
        assert_eq!(telemetry.exchange_deduped, 1);
        // The legacy broadcast-everything path agrees on the space.
        let legacy = merge.merge_in(vec![part], &ctx.with_exchange_dedup(false));
        assert_eq!(normalize(&out), normalize(&legacy));
    }

    #[test]
    fn deduped_exchange_matches_the_legacy_broadcast_exactly() {
        // The d4 before/after equivalence pin at workload scale: over the
        // oversharded regime (scaled floors near 1 — maximal shard-local
        // closure noise), the pruned/deduped exchange must produce the
        // same merged space as the PR-4 broadcast-everything exchange, at
        // several thread counts, while actually collapsing candidates.
        let (data, vocab) = fixture();
        let driver = ShardedDiscovery::new(lcm(10), 8).support_recount(10);
        let (parts, _) = driver.mine_parts(&data, &vocab);
        let db = TransactionDb::build(&data, &vocab);
        let merge = MergeStrategy::SupportRecount { min_support: 10 };
        let ctx = MergeContext::new(&data, &vocab)
            .with_db(&db)
            .with_partial_parts(true);
        let (legacy, legacy_tel) =
            merge.merge_in_traced(parts.clone(), &ctx.with_exchange_dedup(false));
        assert_eq!(legacy_tel.exchange_shards_skipped, 0);
        assert_eq!(
            legacy_tel.exchange_deduped, 0,
            "the PR-4 reference path must report no broadcast dedup"
        );
        for threads in [1usize, 4] {
            let (deduped, tel) = merge.merge_in_traced(parts.clone(), &ctx.with_threads(threads));
            assert_eq!(
                normalize(&legacy),
                normalize(&deduped),
                "threads={threads}: dedup changed the merged space"
            );
            assert!(
                tel.exchange_deduped > 0,
                "oversharded LCM shards should collapse candidates"
            );
        }
    }

    #[test]
    fn router_constructions_agree_and_routing_preserves_the_merge() {
        // from_plan (plan + global tidlists) must equal from_projections
        // (per-shard support probes), and the routed shard_dbs exchange
        // must merge exactly like the unrouted one while skipping the
        // shard scans the routing proves empty.
        let (data, vocab) = fixture();
        let db = TransactionDb::build(&data, &vocab);
        let plan = ShardPlan::build(data.n_users(), 6, ShardStrategy::Contiguous);
        let shard_dbs: Vec<TransactionDb> = (0..plan.n_shards())
            .map(|s| TransactionDb::build_for_members(&data, &vocab, plan.members(s)))
            .collect();
        let refs: Vec<&TransactionDb> = shard_dbs.iter().collect();
        let from_plan = ExchangeRouter::from_plan(&plan, &db);
        let from_projections = ExchangeRouter::from_projections(&refs);
        for t in 0..db.n_tokens() as u32 {
            let y = vec![TokenId::new(t)];
            assert_eq!(
                from_plan.route(&y),
                from_projections.route(&y),
                "router constructions disagree on token {t}"
            );
        }
        // End-to-end: routed vs unrouted shard-local exchange.
        let driver = ShardedDiscovery::new(lcm(10), 6)
            .with_strategy(ShardStrategy::Contiguous)
            .support_recount(10);
        let (parts, _) = driver.mine_parts(&data, &vocab);
        let merge = MergeStrategy::SupportRecount { min_support: 10 };
        let ctx = MergeContext::new(&data, &vocab)
            .with_db(&db)
            .with_partial_parts(true)
            .with_shard_dbs(&shard_dbs);
        let (unrouted, _) = merge.merge_in_traced(parts.clone(), &ctx.with_exchange_dedup(false));
        let (routed, tel) = merge.merge_in_traced(parts.clone(), &ctx);
        assert_eq!(normalize(&unrouted), normalize(&routed));
        let (planned, planned_tel) = merge.merge_in_traced(parts, &ctx.with_shard_plan(&plan));
        assert_eq!(normalize(&unrouted), normalize(&planned));
        assert_eq!(
            tel.exchange_shards_skipped,
            planned_tel.exchange_shards_skipped
        );
    }

    #[test]
    fn routing_skips_shards_without_carriers() {
        // Two contiguous shards over disjoint token spaces: candidates
        // from shard A carry tokens no member of shard B has, so routing
        // must skip B entirely (and vice versa).
        let d = |v: &[u32]| v.iter().map(|&t| TokenId::new(t)).collect::<Vec<_>>();
        use vexus_data::Schema;
        let mut schema = Schema::new();
        let a = schema.add_categorical("a");
        let b = schema.add_categorical("b");
        let mut builder = vexus_data::UserDataBuilder::new(schema);
        for i in 0..8 {
            let u = builder.user(&format!("u{i}"));
            if i < 4 {
                builder
                    .set_demo(u, a, if i < 2 { "x" } else { "y" })
                    .unwrap();
            } else {
                builder
                    .set_demo(u, b, if i < 6 { "p" } else { "q" })
                    .unwrap();
            }
        }
        let data = builder.build();
        let vocab = Vocabulary::build(&data);
        let db = TransactionDb::build(&data, &vocab);
        let plan = ShardPlan::build(data.n_users(), 2, ShardStrategy::Contiguous);
        let router = ExchangeRouter::from_plan(&plan, &db);
        // Every token lives in exactly one shard here.
        for t in 0..db.n_tokens() as u32 {
            let route = router.route(&d(&[t]));
            assert!(route.len() <= 1, "token {t} routed to {route:?}");
        }
        let tokens: Vec<TokenId> = db.transaction(0).to_vec();
        assert!(!tokens.is_empty());
        assert_eq!(router.route(&tokens), vec![0]);
    }

    #[test]
    fn sharded_lcm_recount_matches_single_shard() {
        let (data, vocab) = fixture();
        let single = lcm(10).discover(&data, &vocab);
        for shards in [2usize, 4] {
            let sharded = ShardedDiscovery::new(lcm(10), shards)
                .support_recount(10)
                .discover(&data, &vocab);
            assert_eq!(
                normalize(&single.groups),
                normalize(&sharded.groups),
                "{shards}-shard recount diverged from the global mine"
            );
            assert_eq!(sharded.stats.algorithm, "sharded");
            assert_eq!(sharded.stats.shards.len(), shards);
            assert!(sharded.stats.shards.iter().all(|s| s.algorithm == "lcm"));
            let covered: usize = sharded.stats.shards.iter().map(|s| s.members).sum();
            assert_eq!(covered, data.n_users());
        }
    }

    #[test]
    fn oversharded_recount_without_exchange_is_sound_with_high_recall() {
        // 8 shards over 300 users is deliberately degenerate (scaled
        // support floors bottom out near 1, so shard-local closures of
        // 2-member tidlists explode). With the closure exchange disabled
        // the recount must stay *sound* — every merged group is an exact
        // global closed frequent group — and recall may only fray at the
        // margin. This pins the pre-exchange behavior the `exchange_rounds
        // = 0` escape hatch deliberately keeps.
        let (data, vocab) = fixture();
        let single: std::collections::BTreeSet<_> =
            normalize(&lcm(10).discover(&data, &vocab).groups)
                .into_iter()
                .collect();
        let outcome = ShardedDiscovery::new(lcm(10), 8)
            .support_recount(10)
            .with_exchange_rounds(0)
            .discover(&data, &vocab);
        let sharded: std::collections::BTreeSet<_> =
            normalize(&outcome.groups).into_iter().collect();
        assert!(
            sharded.is_subset(&single),
            "recount emitted a group the global mine does not contain"
        );
        let recall = sharded.len() as f64 / single.len() as f64;
        assert!(recall >= 0.95, "recall degraded too far: {recall:.3}");
        assert_eq!(outcome.stats.exchange_rounds_run, 0);
        assert_eq!(outcome.stats.exchange_candidates, 0);
    }

    #[test]
    fn oversharded_recount_with_exchange_is_exact() {
        // Same degenerate regime, default configuration: one closure
        // exchange round closes the recall tail entirely — the merged
        // space equals the unsharded mine.
        let (data, vocab) = fixture();
        let single = normalize(&lcm(10).discover(&data, &vocab).groups);
        let outcome = ShardedDiscovery::new(lcm(10), 8)
            .support_recount(10)
            .discover(&data, &vocab);
        assert_eq!(single, normalize(&outcome.groups));
        assert_eq!(outcome.stats.exchange_rounds_run, 1);
        assert!(
            outcome.stats.exchange_candidates > 0,
            "the oversharded regime should exercise the exchange"
        );
        assert!(outcome.stats.exchange_elapsed <= outcome.stats.merge_elapsed);
        // A second round is a fixpoint no-op: same space, same worklist.
        let two = ShardedDiscovery::new(lcm(10), 8)
            .support_recount(10)
            .with_exchange_rounds(2)
            .discover(&data, &vocab);
        assert_eq!(single, normalize(&two.groups));
        assert_eq!(
            two.stats.exchange_candidates,
            outcome.stats.exchange_candidates
        );
    }

    #[test]
    fn degenerate_shards_and_root_witnesses_stay_exact() {
        // Code-review regression: shard 0 holds ten identical users — its
        // whole shard-local closed family is its own root — and shard 1
        // two five-user groups under a common token. Before the fixes,
        // (a) shard 0 emitted no witness (per-shard `emit_root` stayed
        // false, so the family was empty) and (b) a single contributing
        // part gated the refinement *and* the exchange off, so the merged
        // space lost {female, A} and {male}: recall 0.5.
        use vexus_data::Schema;
        let mut schema = Schema::new();
        let gender = schema.add_categorical("gender");
        let team = schema.add_categorical("team");
        let mut b = vexus_data::UserDataBuilder::new(schema);
        for i in 0..20 {
            let u = b.user(&format!("u{i}"));
            let (g, t) = if i < 10 {
                ("female", "A")
            } else if i < 15 {
                ("male", "B")
            } else {
                ("male", "C")
            };
            b.set_demo(u, gender, g).unwrap();
            b.set_demo(u, team, t).unwrap();
        }
        let data = b.build();
        let vocab = Vocabulary::build(&data);
        let single = normalize(&lcm(5).discover(&data, &vocab).groups);
        assert_eq!(
            single.len(),
            4,
            "fixture mines {{female,A}}, {{male}}, {{male,B}}, {{male,C}}"
        );
        for strategy in [ShardStrategy::Contiguous, ShardStrategy::Hash] {
            let sharded = ShardedDiscovery::new(lcm(5), 2)
                .with_strategy(strategy)
                .support_recount(5)
                .discover(&data, &vocab);
            assert_eq!(
                single,
                normalize(&sharded.groups),
                "{strategy:?} lost a degenerate-shard group"
            );
        }
    }

    #[test]
    fn partial_parts_forces_the_exchange_for_a_lone_shard_family() {
        // A single shard-local part is *not* globally closed: here the
        // shard-grown closure {0,1} dies at the global floor, and only
        // the exchange (forced by `partial_parts`) recovers the globally
        // frequent {0} hiding under it.
        let d = |v: &[u32]| v.iter().map(|&t| TokenId::new(t)).collect::<Vec<_>>();
        let db = TransactionDb::from_transactions(
            vec![d(&[0, 1]), d(&[0, 1]), d(&[0, 2]), d(&[0, 2]), d(&[3])],
            4,
        );
        let part = GroupSet::from_groups(vec![Group::new(
            d(&[0, 1]),
            MemberSet::from_unsorted(vec![0, 1]),
        )]);
        let dummy = vexus_data::UserDataBuilder::new(vexus_data::Schema::new()).build();
        let vocab = Vocabulary::build(&dummy);
        let merge = MergeStrategy::SupportRecount { min_support: 3 };
        let ctx = MergeContext::new(&dummy, &vocab).with_db(&db);
        // Taken as a full-data part, {0,1} (support 2) just vanishes.
        let plain = merge.merge_in(vec![part.clone()], &ctx);
        assert!(plain.is_empty());
        // Declared a shard projection, the exchange surfaces {0}.
        let (recovered, telemetry) =
            merge.merge_in_traced(vec![part], &ctx.with_partial_parts(true));
        assert_eq!(normalize(&recovered), vec![(d(&[0]), vec![0, 1, 2, 3])]);
        assert_eq!(telemetry.exchange_rounds_run, 1);
        assert!(telemetry.exchange_candidates > 0);
    }

    #[test]
    fn dedup_and_union_merges_keep_the_users_root_policy() {
        // Code-review regression: the root-witness lift must only apply
        // under a recount merge. With the default dedup merge, a sharded
        // LCM run over degenerate shards (every shard shares tokens) must
        // not emit shard-root groups the user's `emit_root: false` config
        // forbids — at any shard count, including 1.
        let (data, vocab) = fixture();
        for shards in [1usize, 3] {
            let plain = lcm(10).discover(&data, &vocab);
            let sharded = ShardedDiscovery::new(lcm(10), shards)
                .with_merge(MergeStrategy::DedupByDescription)
                .discover(&data, &vocab);
            // Every merged description must exist in some shard's plain
            // mining output; in particular, no description-bearing group
            // covers an entire shard unless plain mining produced it.
            if shards == 1 {
                assert_eq!(normalize(&plain.groups), normalize(&sharded.groups));
            }
            assert!(
                sharded
                    .groups
                    .iter()
                    .all(|(_, g)| !g.description.is_empty()),
                "dedup merge of LCM shards must not grow cluster-like groups"
            );
        }
    }

    #[test]
    fn recount_keeps_the_root_group_when_the_user_asked_for_it() {
        // Code-review regression: a backend configured with
        // `emit_root: true` must keep its whole-population group through
        // the sharded recount, exactly like the unsharded run.
        let d = |v: &[u32]| v.iter().map(|&t| TokenId::new(t)).collect::<Vec<_>>();
        // All four users share token 0 — {0} is the non-empty root.
        let db = TransactionDb::from_transactions(
            vec![d(&[0, 1]), d(&[0, 1]), d(&[0, 2]), d(&[0, 2])],
            3,
        );
        let rooted = LcmDiscovery::new(LcmConfig {
            min_support: 2,
            max_description: 4,
            emit_root: true,
            ..Default::default()
        });
        let single = crate::lcm::mine_closed_groups(&db, &rooted.config);
        assert!(
            single.iter().any(|(_, g)| g.description == d(&[0])),
            "unsharded emit_root=true mines the root"
        );
        // Re-merge the unsharded family as two agreeing shard parts.
        let parts = vec![single.clone(), single.clone()];
        let dummy = vexus_data::UserDataBuilder::new(vexus_data::Schema::new()).build();
        let vocab = Vocabulary::build(&dummy);
        let merge = MergeStrategy::SupportRecount { min_support: 2 };
        let ctx = MergeContext::new(&dummy, &vocab)
            .with_db(&db)
            .with_partial_parts(true);
        let dropped = merge.merge_in(parts.clone(), &ctx);
        assert!(
            dropped.iter().all(|(_, g)| g.description != d(&[0])),
            "default context normalizes the population group out"
        );
        let kept = merge.merge_in(parts, &ctx.with_keep_population_group(true));
        assert_eq!(normalize(&kept), normalize(&single));
    }

    #[test]
    fn exchange_telemetry_stays_zero_when_no_part_contributes() {
        // Code-review regression: with every shard family empty there is
        // nothing to broadcast — the telemetry must report zero rounds,
        // not a vacuous one.
        let d = |v: &[u32]| v.iter().map(|&t| TokenId::new(t)).collect::<Vec<_>>();
        let db = TransactionDb::from_transactions(vec![d(&[0]), d(&[1])], 2);
        let dummy = vexus_data::UserDataBuilder::new(vexus_data::Schema::new()).build();
        let vocab = Vocabulary::build(&dummy);
        let merge = MergeStrategy::SupportRecount { min_support: 2 };
        let (out, telemetry) = merge.merge_in_traced(
            vec![GroupSet::new(), GroupSet::new()],
            &MergeContext::new(&dummy, &vocab)
                .with_db(&db)
                .with_partial_parts(true),
        );
        assert!(out.is_empty());
        assert_eq!(telemetry.exchange_rounds_run, 0);
        assert_eq!(telemetry.exchange_candidates, 0);
        assert_eq!(telemetry.exchange_elapsed, Duration::ZERO);
    }

    #[test]
    fn recount_never_emits_the_global_root_group() {
        // Every user carries token 0, so {0} is the root closure —
        // exactly what the unsharded miner's `emit_root: false` skips.
        // Shard roots and derived candidates recounting onto it must be
        // normalized back out.
        let d = |v: &[u32]| v.iter().map(|&t| TokenId::new(t)).collect::<Vec<_>>();
        let db = TransactionDb::from_transactions(
            vec![d(&[0, 1]), d(&[0, 1]), d(&[0, 2]), d(&[0, 2])],
            3,
        );
        let parts = vec![
            GroupSet::from_groups(vec![Group::new(
                d(&[0, 1]),
                MemberSet::from_unsorted(vec![0, 1]),
            )]),
            GroupSet::from_groups(vec![Group::new(
                d(&[0, 2]),
                MemberSet::from_unsorted(vec![2, 3]),
            )]),
        ];
        let dummy = vexus_data::UserDataBuilder::new(vexus_data::Schema::new()).build();
        let vocab = Vocabulary::build(&dummy);
        let merge = MergeStrategy::SupportRecount { min_support: 2 };
        let merged = merge.merge_in(
            parts,
            &MergeContext::new(&dummy, &vocab)
                .with_db(&db)
                .with_partial_parts(true),
        );
        let norm = normalize(&merged);
        // {0} = intersection of the two candidates, but it is the root:
        // dropped, while both real groups survive.
        assert_eq!(
            norm,
            vec![(d(&[0, 1]), vec![0, 1]), (d(&[0, 2]), vec![2, 3]),]
        );
    }

    #[test]
    fn contiguous_strategy_also_recounts_exactly() {
        let (data, vocab) = fixture();
        let single = lcm(12).discover(&data, &vocab);
        let sharded = ShardedDiscovery::new(lcm(12), 4)
            .with_strategy(ShardStrategy::Contiguous)
            .support_recount(12)
            .discover(&data, &vocab);
        assert_eq!(normalize(&single.groups), normalize(&sharded.groups));
    }

    #[test]
    fn union_merge_keeps_per_shard_clusters() {
        let (data, vocab) = fixture();
        let sharded = ShardedDiscovery::new(BirchDiscovery::default(), 3)
            .with_merge(MergeStrategy::Union)
            .discover(&data, &vocab);
        // Per-shard clustering covers every shard's members (clusters are
        // description-less, so union keeps them all).
        assert!(!sharded.groups.is_empty());
        assert!(sharded.groups.iter().all(|(_, g)| g.description.is_empty()));
        // Global member ids, not local ones: ids must reach past shard 0.
        let max_member = sharded
            .groups
            .iter()
            .flat_map(|(_, g)| g.members.iter())
            .max()
            .unwrap();
        assert!(max_member as usize >= data.n_users() / 2);
    }

    #[test]
    fn dedup_by_description_unions_members() {
        let (data, vocab) = fixture();
        let gs = |desc: &[u32], members: &[u32]| {
            Group::new(
                desc.iter().map(|&t| TokenId::new(t)).collect(),
                MemberSet::from_unsorted(members.to_vec()),
            )
        };
        let a = GroupSet::from_groups(vec![gs(&[1], &[0, 1]), gs(&[], &[5, 6])]);
        let b = GroupSet::from_groups(vec![gs(&[1], &[2, 3]), gs(&[2], &[9])]);
        let merged = MergeStrategy::DedupByDescription.merge(vec![a, b], &data, &vocab);
        let norm = normalize(&merged);
        assert!(norm.contains(&(vec![TokenId::new(1)], vec![0, 1, 2, 3])));
        assert!(norm.contains(&(vec![TokenId::new(2)], vec![9])));
        // The cluster group passed through untouched.
        assert!(norm.contains(&(vec![], vec![5, 6])));
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn sharded_discovery_is_deterministic() {
        let (data, vocab) = fixture();
        let driver = ShardedDiscovery::new(lcm(10), 4).support_recount(10);
        let a = driver.discover(&data, &vocab);
        let b = driver.discover(&data, &vocab);
        assert_eq!(normalize(&a.groups), normalize(&b.groups));
    }

    #[test]
    fn ensemble_recount_exchanges_and_stays_on_the_agreed_space() {
        // Two agreeing full-data members under a recount merge: the
        // exchange runs (two contributing parts), reports its telemetry,
        // and — by the fixpoint property — adds nothing to the space.
        let (data, vocab) = fixture();
        let single = normalize(&lcm(10).discover(&data, &vocab).groups);
        let out = EnsembleDiscovery::new(MergeStrategy::SupportRecount { min_support: 10 })
            .with(lcm(10))
            .with(lcm(10))
            .discover(&data, &vocab);
        assert_eq!(single, normalize(&out.groups));
        assert_eq!(out.stats.exchange_rounds_run, 1);
        assert!(out.stats.exchange_elapsed <= out.stats.merge_elapsed);
    }

    #[test]
    fn ensemble_keep_population_group_preserves_a_members_root() {
        // Code-review regression: members are boxed, so an ensemble
        // cannot see a member's `emit_root: true` — the explicit knob
        // must carry the intent through the recount normalization.
        use vexus_data::Schema;
        let mut schema = Schema::new();
        let color = schema.add_categorical("color");
        let shape = schema.add_categorical("shape");
        let mut b = vexus_data::UserDataBuilder::new(schema);
        for i in 0..4 {
            let u = b.user(&format!("u{i}"));
            b.set_demo(u, color, "red").unwrap();
            b.set_demo(u, shape, if i < 2 { "square" } else { "round" })
                .unwrap();
        }
        let data = b.build();
        let vocab = Vocabulary::build(&data);
        let rooted = LcmDiscovery::new(LcmConfig {
            min_support: 2,
            emit_root: true,
            ..Default::default()
        });
        let single = normalize(&rooted.discover(&data, &vocab).groups);
        assert_eq!(single.len(), 3, "root {{red}} plus the two shape groups");
        let merge = MergeStrategy::SupportRecount { min_support: 2 };
        let dropped = EnsembleDiscovery::new(merge.clone())
            .with(rooted.clone())
            .with(rooted.clone())
            .discover(&data, &vocab);
        assert_eq!(
            dropped.groups.len(),
            2,
            "default recount normalizes the population group out"
        );
        let kept = EnsembleDiscovery::new(merge)
            .with(rooted.clone())
            .with(rooted)
            .with_keep_population_group(true)
            .discover(&data, &vocab);
        assert_eq!(single, normalize(&kept.groups));
    }

    #[test]
    fn ensemble_unions_described_and_clustered_groups() {
        let (data, vocab) = fixture();
        let ensemble = EnsembleDiscovery::new(MergeStrategy::Union)
            .with(lcm(10))
            .with(BirchDiscovery::default());
        assert_eq!(ensemble.len(), 2);
        let out = ensemble.discover(&data, &vocab);
        assert_eq!(out.stats.algorithm, "ensemble");
        assert_eq!(out.stats.shards.len(), 2);
        assert_eq!(out.stats.shards[0].algorithm, "lcm");
        assert_eq!(out.stats.shards[1].algorithm, "birch");
        let described = out
            .groups
            .iter()
            .filter(|(_, g)| !g.description.is_empty())
            .count();
        let clustered = out.groups.len() - described;
        assert!(described > 0, "ensemble lost LCM's described groups");
        assert!(clustered > 0, "ensemble lost BIRCH's clusters");
    }

    #[test]
    fn selection_wires_sharded_and_ensemble_backends() {
        let (data, vocab) = fixture();
        let sharded = DiscoverySelection::default().sharded(4).backend(10);
        let out = sharded.discover(&data, &vocab);
        assert_eq!(out.stats.algorithm, "sharded");
        assert_eq!(out.stats.shards.len(), 4);
        assert!(!out.groups.is_empty());

        let ensemble = DiscoverySelection::ensemble(
            vec![
                DiscoverySelection::default(),
                DiscoverySelection::Birch {
                    branching: 10,
                    threshold: 1.6,
                },
            ],
            crate::discovery::MergeSelection::Union,
        )
        .backend(5);
        let out = ensemble.discover(&data, &vocab);
        assert_eq!(out.stats.algorithm, "ensemble");
        assert_eq!(out.stats.shards.len(), 2);
    }

    #[test]
    fn selection_threads_exchange_rounds_to_the_merge() {
        let (data, vocab) = fixture();
        let selection = DiscoverySelection::default().sharded(8);
        // The default backend() materialization keeps one exchange round.
        let on = selection.backend(10).discover(&data, &vocab);
        assert_eq!(on.stats.exchange_rounds_run, 1);
        // An explicit zero disables it end to end.
        let off = selection.backend_with(10, 1, 0).discover(&data, &vocab);
        assert_eq!(off.stats.exchange_rounds_run, 0);
        assert_eq!(off.stats.exchange_candidates, 0);
        assert!(off.groups.len() <= on.groups.len());
    }

    #[test]
    #[should_panic(expected = "composes over a base backend")]
    fn sharded_selection_rejects_nested_composites() {
        let _ = DiscoverySelection::default()
            .sharded(2)
            .sharded(2)
            .backend(5);
    }

    #[test]
    fn one_shard_degenerates_to_the_plain_backend() {
        let (data, vocab) = fixture();
        let single = lcm(10).discover(&data, &vocab);
        let one = ShardedDiscovery::new(lcm(10), 1)
            .support_recount(10)
            .discover(&data, &vocab);
        assert_eq!(normalize(&single.groups), normalize(&one.groups));
    }

    #[test]
    fn more_shards_than_users_still_works() {
        let (data, vocab) = fixture();
        let small = data.project_users(&[0, 1, 2, 3, 4]);
        let out = ShardedDiscovery::new(lcm(1), 8)
            .support_recount(1)
            .discover(&small, &vocab);
        assert_eq!(out.stats.shards.len(), 8);
        // No panic on empty shards; any mined group has global ids < 5.
        assert!(out
            .groups
            .iter()
            .flat_map(|(_, g)| g.members.iter())
            .all(|m| m < 5));
    }
}
