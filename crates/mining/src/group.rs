//! The user-group type produced by every discovery algorithm.
//!
//! A group is "any set of users with at least one demographic or action in
//! common": a member set plus the conjunction of `(attribute, value)` tokens
//! all members share. Discovery algorithms return a [`GroupSet`]; the index
//! and exploration layers address groups by dense [`GroupId`].

use crate::bitmap::MemberSet;
use serde::{Deserialize, Serialize};
use vexus_data::{Schema, TokenId, Vocabulary};

/// Dense index of a group within a [`GroupSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Construct from a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw index widened for slice indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One discovered user group.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// The conjunction of shared tokens describing the group (sorted;
    /// empty for purely-clustered groups, e.g. BIRCH leaves).
    pub description: Vec<TokenId>,
    /// The group's members.
    pub members: MemberSet,
}

impl Group {
    /// Create a group, normalizing the description order.
    pub fn new(mut description: Vec<TokenId>, members: MemberSet) -> Self {
        description.sort_unstable();
        description.dedup();
        Self {
            description,
            members,
        }
    }

    /// Number of members ("the size of circles reflects the number of users
    /// in groups").
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Human-readable description, e.g. `"gender=female & age=young"`.
    /// Groups without tokens (pure clusters) render as `"<cluster>"`.
    pub fn label(&self, vocab: &Vocabulary, schema: &Schema) -> String {
        if self.description.is_empty() {
            return "<cluster>".to_string();
        }
        self.description
            .iter()
            .map(|&t| vocab.label(t, schema))
            .collect::<Vec<_>>()
            .join(" & ")
    }

    /// Whether the description contains a token.
    pub fn describes(&self, token: TokenId) -> bool {
        self.description.binary_search(&token).is_ok()
    }

    /// Heap bytes owned by this group (description + members). Snapshot-
    /// loaded groups report only the description: their member sets are
    /// views into the shared buffer, accounted once at the engine level.
    pub fn heap_bytes(&self) -> usize {
        self.description.capacity() * std::mem::size_of::<TokenId>() + self.members.heap_bytes()
    }
}

/// An indexed collection of groups (the node set of the paper's group graph
/// `G`). Equality is order-sensitive (same groups, same ids), which is what
/// the parallel-merge determinism tests pin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupSet {
    groups: Vec<Group>,
}

impl GroupSet {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a vector of groups.
    pub fn from_groups(groups: Vec<Group>) -> Self {
        Self { groups }
    }

    /// Consume the collection into its groups, in id order (used by the
    /// shard/merge layer to remap and fold group spaces).
    pub fn into_vec(self) -> Vec<Group> {
        self.groups
    }

    /// Add a group, returning its id.
    pub fn push(&mut self, group: Group) -> GroupId {
        let id = GroupId::new(self.groups.len() as u32);
        self.groups.push(group);
        id
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Group by id.
    pub fn get(&self, id: GroupId) -> &Group {
        &self.groups[id.index()]
    }

    /// Iterate `(GroupId, &Group)`.
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, &Group)> {
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| (GroupId::new(i as u32), g))
    }

    /// All ids.
    pub fn ids(&self) -> impl Iterator<Item = GroupId> {
        (0..self.groups.len() as u32).map(GroupId::new)
    }

    /// Retain only groups with at least `min` and at most `max` members.
    /// Returns the number removed. Ids are re-assigned densely.
    pub fn filter_by_size(&mut self, min: usize, max: usize) -> usize {
        let before = self.groups.len();
        self.groups.retain(|g| (min..=max).contains(&g.size()));
        before - self.groups.len()
    }

    /// Ids of groups containing a given user.
    pub fn groups_of_user(&self, user: u32) -> Vec<GroupId> {
        self.iter()
            .filter(|(_, g)| g.members.contains(user))
            .map(|(id, _)| id)
            .collect()
    }

    /// Total members across groups (with multiplicity).
    pub fn total_memberships(&self) -> usize {
        self.groups.iter().map(Group::size).sum()
    }

    /// Number of distinct users appearing in at least one group.
    pub fn distinct_users_covered(&self, n_users: usize) -> usize {
        let mut mask = vec![false; n_users];
        let mut covered = 0;
        for g in &self.groups {
            covered += g.members.mark_mask(&mut mask);
        }
        covered
    }

    /// Heap bytes owned by the collection (spine + per-group payloads).
    pub fn heap_bytes(&self) -> usize {
        self.groups.capacity() * std::mem::size_of::<Group>()
            + self.groups.iter().map(Group::heap_bytes).sum::<usize>()
    }
}

impl std::ops::Index<GroupId> for GroupSet {
    type Output = Group;

    fn index(&self, id: GroupId) -> &Group {
        self.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexus_data::{Schema, UserDataBuilder, Vocabulary};

    fn vocab_fixture() -> (Vocabulary, Schema) {
        let mut s = Schema::new();
        let g = s.add_categorical("gender");
        let mut b = UserDataBuilder::new(s);
        let u1 = b.user("a");
        let u2 = b.user("b");
        b.set_demo(u1, g, "female").unwrap();
        b.set_demo(u2, g, "male").unwrap();
        let d = b.build();
        (Vocabulary::build(&d), d.schema().clone())
    }

    #[test]
    fn group_label_renders_tokens() {
        let (vocab, schema) = vocab_fixture();
        let g = Group::new(vec![TokenId::new(0)], MemberSet::from_unsorted(vec![0]));
        assert_eq!(g.label(&vocab, &schema), "gender=female");
        let cluster = Group::new(vec![], MemberSet::from_unsorted(vec![0, 1]));
        assert_eq!(cluster.label(&vocab, &schema), "<cluster>");
    }

    #[test]
    fn new_normalizes_description() {
        let g = Group::new(
            vec![TokenId::new(3), TokenId::new(1), TokenId::new(3)],
            MemberSet::empty(),
        );
        assert_eq!(g.description, vec![TokenId::new(1), TokenId::new(3)]);
        assert!(g.describes(TokenId::new(3)));
        assert!(!g.describes(TokenId::new(2)));
    }

    #[test]
    fn group_set_push_and_index() {
        let mut gs = GroupSet::new();
        let id0 = gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![1, 2])));
        let id1 = gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![2, 3, 4])));
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[id0].size(), 2);
        assert_eq!(gs[id1].size(), 3);
        assert_eq!(id1.to_string(), "g1");
    }

    #[test]
    fn filter_by_size() {
        let mut gs = GroupSet::new();
        gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![1])));
        gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![1, 2])));
        gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![1, 2, 3])));
        let removed = gs.filter_by_size(2, 2);
        assert_eq!(removed, 2);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs.get(GroupId::new(0)).size(), 2);
    }

    #[test]
    fn groups_of_user_and_coverage() {
        let mut gs = GroupSet::new();
        gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![0, 1])));
        gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![1, 2])));
        assert_eq!(gs.groups_of_user(1), vec![GroupId::new(0), GroupId::new(1)]);
        assert_eq!(gs.groups_of_user(9), vec![]);
        assert_eq!(gs.total_memberships(), 4);
        assert_eq!(gs.distinct_users_covered(5), 3);
    }
}
