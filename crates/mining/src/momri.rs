//! α-MOMRI-style multi-objective group discovery (Omidvar-Tehrani et al.,
//! PKDD'16 \[13\]) — the paper's alternative discovery plug-in for user
//! datasets.
//!
//! MOMRI frames group discovery as multi-objective optimization: rather
//! than returning *every* frequent group, return group-sets that are good
//! under several objectives at once. We implement the α-approximation
//! flavor over three objectives the VEXUS paper cares about:
//!
//! * **coverage** — fraction of users appearing in at least one returned
//!   group (maximize),
//! * **diversity** — mean pairwise Jaccard *distance* between returned
//!   groups (maximize),
//! * **conciseness** — mean description length (minimize; short
//!   conjunctions are human-readable).
//!
//! The α parameter relaxes Pareto dominance: a candidate is pruned if some
//! kept solution is at least `(1+α)` times better on every objective. With
//! `α = 0` this is exact Pareto filtering of the explored solutions; larger
//! α keeps fewer, more distinct solutions (and is what makes the original
//! algorithm tractable).
//!
//! Candidates come from the closed-group space ([`crate::lcm`]); solutions
//! are built greedily from seeds spread over the objective extremes, which
//! matches the best-effort greedy spirit the original system used.

use crate::group::{GroupId, GroupSet};
use crate::lcm::{mine_closed_groups, LcmConfig};
use crate::transactions::TransactionDb;

/// Configuration for α-MOMRI discovery.
#[derive(Debug, Clone)]
pub struct MomriConfig {
    /// Groups per solution set.
    pub set_size: usize,
    /// Dominance relaxation α ≥ 0.
    pub alpha: f64,
    /// Number of greedy seeds (solution attempts) to explore.
    pub n_seeds: usize,
    /// Candidate mining configuration.
    pub lcm: LcmConfig,
}

impl Default for MomriConfig {
    fn default() -> Self {
        Self {
            set_size: 5,
            alpha: 0.1,
            n_seeds: 12,
            lcm: LcmConfig {
                min_support: 5,
                ..Default::default()
            },
        }
    }
}

/// One candidate solution with its objective vector.
#[derive(Debug, Clone)]
pub struct MomriSolution {
    /// Indices into the candidate group set.
    pub groups: Vec<GroupId>,
    /// Fraction of users covered by the union of groups.
    pub coverage: f64,
    /// Mean pairwise Jaccard distance between groups.
    pub diversity: f64,
    /// Mean description length (lower is better).
    pub description_cost: f64,
}

/// Result of α-MOMRI: the mined candidate space plus the α-Pareto solutions.
#[derive(Debug)]
pub struct MomriResult {
    /// All candidate groups (the closed-group space).
    pub candidates: GroupSet,
    /// α-Pareto front over explored solutions, best-coverage first.
    pub front: Vec<MomriSolution>,
}

impl MomriResult {
    /// Materialize one solution as a [`GroupSet`] (for feeding into the
    /// exploration pipeline).
    pub fn solution_groups(&self, solution: &MomriSolution) -> GroupSet {
        let mut gs = GroupSet::new();
        for &id in &solution.groups {
            gs.push(self.candidates.get(id).clone());
        }
        gs
    }
}

/// Run α-MOMRI discovery over a transaction database.
pub fn discover(db: &TransactionDb, cfg: &MomriConfig) -> MomriResult {
    let candidates = mine_closed_groups(db, &cfg.lcm);
    let n_users = db.n_transactions();
    let front = pareto_front(&candidates, n_users, cfg);
    MomriResult { candidates, front }
}

fn pareto_front(candidates: &GroupSet, n_users: usize, cfg: &MomriConfig) -> Vec<MomriSolution> {
    if candidates.is_empty() || n_users == 0 || cfg.set_size == 0 {
        return Vec::new();
    }
    // Seed strategies: sort candidates by different priorities and grow a
    // solution greedily from each prefix-seed. Mixing coverage-first,
    // diversity-first and conciseness-first seeds spreads the front.
    let ids: Vec<GroupId> = candidates.ids().collect();
    let mut orders: Vec<Vec<GroupId>> = Vec::new();
    // Coverage-first: biggest groups.
    let mut by_size = ids.clone();
    by_size.sort_by_key(|&id| std::cmp::Reverse(candidates.get(id).size()));
    orders.push(by_size.clone());
    // Conciseness-first: shortest description, then size.
    let mut by_desc = ids.clone();
    by_desc.sort_by_key(|&id| {
        (
            candidates.get(id).description.len(),
            std::cmp::Reverse(candidates.get(id).size()),
        )
    });
    orders.push(by_desc);
    // Rotations of the size ordering provide extra seeds deterministically.
    for s in 1..cfg.n_seeds.saturating_sub(2).max(1) {
        let mut rot = by_size.clone();
        let shift = (s * 7) % rot.len().max(1);
        rot.rotate_left(shift);
        orders.push(rot);
    }

    let mut solutions: Vec<MomriSolution> = Vec::new();
    for order in orders.iter().take(cfg.n_seeds.max(1)) {
        let sol = grow_greedy(candidates, order, n_users, cfg.set_size);
        if !sol.groups.is_empty() {
            solutions.push(sol);
        }
    }

    // α-relaxed Pareto filter.
    let alpha = cfg.alpha.max(0.0);
    let mut front: Vec<MomriSolution> = Vec::new();
    'outer: for s in solutions {
        front.retain(|kept| !alpha_dominates(&s, kept, alpha));
        for kept in &front {
            if alpha_dominates(kept, &s, alpha) || same_solution(kept, &s) {
                continue 'outer;
            }
        }
        front.push(s);
    }
    front.sort_by(|a, b| {
        b.coverage
            .partial_cmp(&a.coverage)
            .expect("finite objectives")
    });
    front
}

/// Greedily grow one solution: repeatedly add the group with the best
/// marginal (new-coverage + diversity − description penalty) score.
fn grow_greedy(
    candidates: &GroupSet,
    order: &[GroupId],
    n_users: usize,
    set_size: usize,
) -> MomriSolution {
    let mut chosen: Vec<GroupId> = Vec::with_capacity(set_size);
    let mut covered = vec![false; n_users];
    // Pool: cap how many candidates each greedy pass scans, for speed.
    let pool: Vec<GroupId> = order.iter().copied().take(512).collect();
    while chosen.len() < set_size {
        let mut best: Option<(f64, GroupId)> = None;
        for &id in &pool {
            if chosen.contains(&id) {
                continue;
            }
            let g = candidates.get(id);
            let new_cov = (g.size() - g.members.count_in_mask(&covered)) as f64 / n_users as f64;
            let min_dist = chosen
                .iter()
                .map(|&c| candidates.get(c).members.jaccard_distance(&g.members))
                .fold(1.0_f64, f64::min);
            let desc_penalty = 0.02 * g.description.len() as f64;
            let score = new_cov + 0.5 * min_dist - desc_penalty;
            if best.is_none_or(|(b, _)| score > b) {
                best = Some((score, id));
            }
        }
        match best {
            None => break,
            Some((_, id)) => {
                candidates.get(id).members.mark_mask(&mut covered);
                chosen.push(id);
            }
        }
    }
    score_solution(candidates, chosen, n_users)
}

fn score_solution(candidates: &GroupSet, groups: Vec<GroupId>, n_users: usize) -> MomriSolution {
    let mut covered = vec![false; n_users];
    let mut desc_total = 0usize;
    for &id in &groups {
        candidates.get(id).members.mark_mask(&mut covered);
        desc_total += candidates.get(id).description.len();
    }
    let coverage = covered.iter().filter(|&&c| c).count() as f64 / n_users.max(1) as f64;
    let diversity = mean_pairwise_distance(candidates, &groups);
    let description_cost = if groups.is_empty() {
        0.0
    } else {
        desc_total as f64 / groups.len() as f64
    };
    MomriSolution {
        groups,
        coverage,
        diversity,
        description_cost,
    }
}

fn mean_pairwise_distance(candidates: &GroupSet, groups: &[GroupId]) -> f64 {
    if groups.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..groups.len() {
        for j in i + 1..groups.len() {
            total += candidates
                .get(groups[i])
                .members
                .jaccard_distance(&candidates.get(groups[j]).members);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// `a` α-dominates `b` iff `a` is at least `(1+α)`× better on every
/// objective (coverage and diversity up, description cost down).
fn alpha_dominates(a: &MomriSolution, b: &MomriSolution, alpha: f64) -> bool {
    let f = 1.0 + alpha;
    a.coverage >= b.coverage * f
        && a.diversity >= b.diversity * f
        && a.description_cost * f <= b.description_cost
}

fn same_solution(a: &MomriSolution, b: &MomriSolution) -> bool {
    let mut x = a.groups.clone();
    let mut y = b.groups.clone();
    x.sort();
    y.sort();
    x == y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::TransactionDb;
    use vexus_data::TokenId;

    fn toks(v: &[u32]) -> Vec<TokenId> {
        v.iter().map(|&t| TokenId::new(t)).collect()
    }

    fn db() -> TransactionDb {
        // Three latent blocks sharing tokens, plus noise.
        let mut txs = Vec::new();
        for _ in 0..10 {
            txs.push(toks(&[0, 1]));
        }
        for _ in 0..8 {
            txs.push(toks(&[2, 3]));
        }
        for _ in 0..6 {
            txs.push(toks(&[4, 5]));
        }
        txs.push(toks(&[0, 2, 4]));
        TransactionDb::from_transactions(txs, 6)
    }

    #[test]
    fn discovers_a_nonempty_front() {
        let result = discover(&db(), &MomriConfig::default());
        assert!(!result.candidates.is_empty());
        assert!(!result.front.is_empty());
        for sol in &result.front {
            assert!(sol.groups.len() <= 5);
            assert!((0.0..=1.0).contains(&sol.coverage));
            assert!((0.0..=1.0).contains(&sol.diversity));
        }
    }

    #[test]
    fn best_solution_covers_the_blocks() {
        let result = discover(
            &db(),
            &MomriConfig {
                set_size: 3,
                ..Default::default()
            },
        );
        let best = &result.front[0];
        // Three disjoint blocks of 10+8+6 users (+1 bridge) = 25 users; a
        // 3-group solution should cover most of them.
        assert!(best.coverage > 0.8, "coverage {}", best.coverage);
        assert!(best.diversity > 0.5, "diversity {}", best.diversity);
    }

    #[test]
    fn front_is_alpha_pareto() {
        let result = discover(
            &db(),
            &MomriConfig {
                alpha: 0.05,
                ..Default::default()
            },
        );
        for (i, a) in result.front.iter().enumerate() {
            for (j, b) in result.front.iter().enumerate() {
                if i != j {
                    assert!(
                        !alpha_dominates(a, b, 0.05),
                        "front member dominated: {a:?} dominates {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn solution_groups_materializes() {
        let result = discover(&db(), &MomriConfig::default());
        let gs = result.solution_groups(&result.front[0]);
        assert_eq!(gs.len(), result.front[0].groups.len());
    }

    #[test]
    fn empty_db_yields_empty_front() {
        let empty = TransactionDb::from_transactions(vec![], 0);
        let result = discover(&empty, &MomriConfig::default());
        assert!(result.front.is_empty());
        assert!(result.candidates.is_empty());
    }

    #[test]
    fn zero_set_size_yields_empty_front() {
        let result = discover(
            &db(),
            &MomriConfig {
                set_size: 0,
                ..Default::default()
            },
        );
        assert!(result.front.is_empty());
    }

    #[test]
    fn larger_alpha_never_grows_the_front() {
        let db = db();
        let tight = discover(
            &db,
            &MomriConfig {
                alpha: 0.0,
                ..Default::default()
            },
        );
        let loose = discover(
            &db,
            &MomriConfig {
                alpha: 0.5,
                ..Default::default()
            },
        );
        assert!(
            loose.front.len() <= tight.front.len(),
            "relaxed dominance prunes more: {} vs {}",
            loose.front.len(),
            tight.front.len()
        );
        assert!(!loose.front.is_empty());
    }

    #[test]
    fn set_size_bounds_every_solution() {
        let db = db();
        for set_size in [1usize, 2, 4] {
            let result = discover(
                &db,
                &MomriConfig {
                    set_size,
                    ..Default::default()
                },
            );
            for sol in &result.front {
                assert!(sol.groups.len() <= set_size);
                // Groups within a solution are distinct.
                let mut ids = sol.groups.clone();
                ids.sort();
                ids.dedup();
                assert_eq!(ids.len(), sol.groups.len());
            }
        }
    }

    #[test]
    fn alpha_dominance_definition() {
        let a = MomriSolution {
            groups: vec![GroupId::new(0)],
            coverage: 0.9,
            diversity: 0.9,
            description_cost: 1.0,
        };
        let b = MomriSolution {
            groups: vec![GroupId::new(1)],
            coverage: 0.5,
            diversity: 0.5,
            description_cost: 2.0,
        };
        assert!(alpha_dominates(&a, &b, 0.1));
        assert!(!alpha_dominates(&b, &a, 0.1));
        // Not dominated when one objective resists.
        let c = MomriSolution {
            description_cost: 0.5,
            ..b.clone()
        };
        assert!(!alpha_dominates(&a, &c, 0.1));
    }
}
