//! User featurization: demographic one-hot + normalized activity vectors
//! for the Focus view's LDA/PCA projection and for BIRCH clustering.

use vexus_data::{AttrId, UserData, UserId};

/// Builds fixed-length feature vectors for users.
#[derive(Debug, Clone)]
pub struct Featurizer {
    /// `(attr, cardinality, offset)` per one-hot encoded attribute.
    layout: Vec<(AttrId, usize, usize)>,
    /// Total one-hot width (activity feature appended after).
    width: usize,
    /// Normalizer for the activity feature.
    max_activity: f64,
}

impl Featurizer {
    /// Build over all schema attributes of `data`.
    pub fn new(data: &UserData) -> Self {
        let mut layout = Vec::new();
        let mut offset = 0usize;
        for (attr, _) in data.schema().iter() {
            let card = data.schema().cardinality(attr);
            layout.push((attr, card, offset));
            offset += card;
        }
        let max_activity = data
            .users()
            .map(|u| data.user_activity(u))
            .max()
            .unwrap_or(0)
            .max(1) as f64;
        Self {
            layout,
            width: offset,
            max_activity,
        }
    }

    /// Feature dimensionality (one-hot width + 1 activity slot).
    pub fn dim(&self) -> usize {
        self.width + 1
    }

    /// The feature vector of one user.
    pub fn features(&self, data: &UserData, user: UserId) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        for &(attr, card, offset) in &self.layout {
            let v = data.value(user, attr);
            if !v.is_missing() && v.index() < card {
                out[offset + v.index()] = 1.0;
            }
        }
        out[self.width] = data.user_activity(user) as f64 / self.max_activity;
        out
    }

    /// Feature vectors for a set of users.
    pub fn features_of(&self, data: &UserData, users: &[UserId]) -> Vec<Vec<f64>> {
        users.iter().map(|&u| self.features(data, u)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexus_data::{Schema, UserDataBuilder};

    fn data() -> UserData {
        let mut s = Schema::new();
        let g = s.add_categorical("gender");
        let c = s.add_categorical("city");
        let mut b = UserDataBuilder::new(s);
        let u0 = b.user("a");
        let u1 = b.user("b");
        b.set_demo(u0, g, "f").unwrap();
        b.set_demo(u1, g, "m").unwrap();
        b.set_demo(u0, c, "paris").unwrap();
        // u1 city missing
        let i = b.item("x", None);
        for _ in 0..4 {
            b.action(u0, i, 1.0);
        }
        b.action(u1, i, 1.0);
        b.build()
    }

    #[test]
    fn one_hot_layout() {
        let d = data();
        let f = Featurizer::new(&d);
        // gender has 2 values, city has 1 value -> width 3, +1 activity.
        assert_eq!(f.dim(), 4);
        let v0 = f.features(&d, UserId::new(0));
        assert_eq!(v0[0], 1.0); // gender=f
        assert_eq!(v0[1], 0.0);
        assert_eq!(v0[2], 1.0); // city=paris
        assert_eq!(v0[3], 1.0); // max activity normalized
        let v1 = f.features(&d, UserId::new(1));
        assert_eq!(v1[0], 0.0);
        assert_eq!(v1[1], 1.0); // gender=m
        assert_eq!(v1[2], 0.0); // city missing
        assert!((v1[3] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn features_of_batches() {
        let d = data();
        let f = Featurizer::new(&d);
        let all = f.features_of(&d, &[UserId::new(0), UserId::new(1)]);
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|v| v.len() == f.dim()));
    }

    #[test]
    fn empty_dataset() {
        let d = UserDataBuilder::new(Schema::new()).build();
        let f = Featurizer::new(&d);
        assert_eq!(f.dim(), 1); // just the activity slot
    }
}
