//! Sorted member sets with fast set algebra.
//!
//! Group member sets are the hot data structure of the whole stack: the
//! inverted index computes Jaccard similarities between every overlapping
//! pair of groups, and the greedy optimizer evaluates coverage unions under
//! a hard 100 ms budget. A sorted `u32` run with galloping intersection is
//! compact (4 bytes/member), cache-friendly, and makes
//! `intersection_size`/`jaccard` allocation-free.
//!
//! Storage is borrowed-or-owned: a built engine owns each set's `Vec<u32>`;
//! a snapshot-loaded engine holds [`WordSlice`] views into the one shared
//! snapshot buffer ([`MemberSet::from_shared`]), so loading N groups costs
//! zero per-group allocations. Every operation routes through
//! [`MemberSet::as_slice`], so the two forms are behaviorally identical
//! (same `Eq`/`Hash`, same algebra).

use std::fmt;
use vexus_data::WordSlice;

#[derive(Clone)]
enum Repr {
    /// Heap-owned members (the built form).
    Owned(Vec<u32>),
    /// View into a loaded snapshot buffer (the zero-copy form).
    Shared(WordSlice),
}

/// An immutable sorted set of dense user indices.
#[derive(Clone)]
pub struct MemberSet {
    repr: Repr,
}

impl Default for MemberSet {
    fn default() -> Self {
        Self {
            repr: Repr::Owned(Vec::new()),
        }
    }
}

impl PartialEq for MemberSet {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for MemberSet {}

impl std::hash::Hash for MemberSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Slice hashing matches Vec hashing, so Owned and Shared forms of
        // the same set collide as required by `Eq`.
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for MemberSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 8 {
            write!(f, "MemberSet{:?}", self.as_slice())
        } else {
            write!(f, "MemberSet[{} members]", self.len())
        }
    }
}

impl MemberSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from an already strictly-sorted vector.
    ///
    /// # Panics
    /// Debug-asserts strict ascending order.
    pub fn from_sorted(sorted: Vec<u32>) -> Self {
        debug_assert!(
            sorted.windows(2).all(|w| w[0] < w[1]),
            "must be strictly sorted"
        );
        Self {
            repr: Repr::Owned(sorted),
        }
    }

    /// Build from arbitrary input: sorts and dedupes.
    pub fn from_unsorted(mut v: Vec<u32>) -> Self {
        v.sort_unstable();
        v.dedup();
        Self {
            repr: Repr::Owned(v),
        }
    }

    /// Build as a zero-copy view over a snapshot buffer. The words must be
    /// strictly ascending — the snapshot decoder validates this before
    /// constructing the view (debug-asserted here as well).
    pub fn from_shared(words: WordSlice) -> Self {
        debug_assert!(
            words.windows(2).all(|w| w[0] < w[1]),
            "must be strictly sorted"
        );
        Self {
            repr: Repr::Shared(words),
        }
    }

    /// The full universe `0..n`.
    pub fn universe(n: u32) -> Self {
        Self {
            repr: Repr::Owned((0..n).collect()),
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, x: u32) -> bool {
        self.as_slice().binary_search(&x).is_ok()
    }

    /// Iterate members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.as_slice().iter().copied()
    }

    /// The members as a sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        match &self.repr {
            Repr::Owned(v) => v,
            Repr::Shared(s) => s.as_slice(),
        }
    }

    /// `|self ∩ other|` without allocating.
    ///
    /// Uses merge-scan for similar sizes and galloping (exponential search)
    /// when one side is much smaller — the common case when comparing a
    /// small group against a large one.
    pub fn intersection_size(&self, other: &MemberSet) -> usize {
        let (a, b) = (self.as_slice(), other.as_slice());
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        if small.is_empty() || large.is_empty() {
            return 0;
        }
        // Galloping pays off when the size ratio is large.
        if large.len() / small.len().max(1) >= 16 {
            let mut count = 0;
            let mut lo = 0usize;
            for &x in small {
                if lo >= large.len() {
                    break;
                }
                // Exponential search from `lo` for a window containing x.
                let mut bound = 1usize;
                while lo + bound < large.len() && large[lo + bound] < x {
                    bound *= 2;
                }
                let hi = (lo + bound + 1).min(large.len());
                match large[lo..hi].binary_search(&x) {
                    Ok(i) => {
                        count += 1;
                        lo += i + 1;
                    }
                    Err(i) => lo += i,
                }
            }
            count
        } else {
            let mut count = 0;
            let (mut i, mut j) = (0, 0);
            while i < small.len() && j < large.len() {
                match small[i].cmp(&large[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            count
        }
    }

    /// `|self ∪ other|` without allocating.
    #[inline]
    pub fn union_size(&self, other: &MemberSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Jaccard **similarity** `|A∩B| / |A∪B|` (1.0 for two empty sets by
    /// convention, matching "identical").
    pub fn jaccard(&self, other: &MemberSet) -> f64 {
        let union = self.union_size(other);
        if union == 0 {
            return 1.0;
        }
        self.intersection_size(other) as f64 / union as f64
    }

    /// Jaccard **distance** `1 - jaccard` — the metric the paper uses to
    /// rank inverted-index neighbors.
    #[inline]
    pub fn jaccard_distance(&self, other: &MemberSet) -> f64 {
        1.0 - self.jaccard(other)
    }

    /// Whether the two sets share at least one member (the paper's group
    /// graph has an edge iff groups "are not disjoint").
    pub fn overlaps(&self, other: &MemberSet) -> bool {
        let (a, b) = (self.as_slice(), other.as_slice());
        // Early-exit merge scan; ranges test first.
        if a.is_empty() || b.is_empty() {
            return false;
        }
        if a[a.len() - 1] < b[0] || b[b.len() - 1] < a[0] {
            return false;
        }
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Materialized intersection.
    pub fn intersect(&self, other: &MemberSet) -> MemberSet {
        let (a, b) = (self.as_slice(), other.as_slice());
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        MemberSet {
            repr: Repr::Owned(out),
        }
    }

    /// Materialized union.
    pub fn union(&self, other: &MemberSet) -> MemberSet {
        let (a, b) = (self.as_slice(), other.as_slice());
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        MemberSet {
            repr: Repr::Owned(out),
        }
    }

    /// Materialized difference `self \ other`.
    pub fn difference(&self, other: &MemberSet) -> MemberSet {
        let (a, b) = (self.as_slice(), other.as_slice());
        let mut out = Vec::with_capacity(a.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() {
            if j >= b.len() {
                out.extend_from_slice(&a[i..]);
                break;
            }
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        MemberSet {
            repr: Repr::Owned(out),
        }
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &MemberSet) -> bool {
        other.contains_all(self)
    }

    /// Whether `other ⊆ self`, with early exit on the first member of
    /// `other` that `self` does not contain. Galloping (exponential search)
    /// advances through `self`, so verifying a small set against a large
    /// one is sublinear in `self` — the hot check of the token-major
    /// [`crate::transactions::TransactionDb::closure`].
    pub fn contains_all(&self, other: &MemberSet) -> bool {
        let (a, b) = (self.as_slice(), other.as_slice());
        if b.len() > a.len() {
            return false;
        }
        let Some(&last) = b.last() else {
            return true;
        };
        if last > a[a.len() - 1] || b[0] < a[0] {
            return false;
        }
        let mut lo = 0usize;
        for &x in b {
            if lo >= a.len() {
                return false;
            }
            // Exponential search from `lo` for a window containing x.
            let mut bound = 1usize;
            while lo + bound < a.len() && a[lo + bound] < x {
                bound *= 2;
            }
            let hi = (lo + bound + 1).min(a.len());
            match a[lo..hi].binary_search(&x) {
                Ok(i) => lo += i + 1,
                Err(_) => return false,
            }
        }
        true
    }

    /// Count of members also present in a boolean mask (indexed by member).
    /// Used by coverage computations against a "covered so far" mask.
    pub fn count_in_mask(&self, mask: &[bool]) -> usize {
        self.as_slice()
            .iter()
            .filter(|&&x| mask.get(x as usize).copied().unwrap_or(false))
            .count()
    }

    /// Set the mask bit for every member; returns how many were newly set.
    pub fn mark_mask(&self, mask: &mut [bool]) -> usize {
        let mut newly = 0;
        for &x in self.as_slice() {
            let slot = &mut mask[x as usize];
            if !*slot {
                *slot = true;
                newly += 1;
            }
        }
        newly
    }

    /// Heap bytes owned by this set. A `Shared` view owns nothing — the
    /// snapshot buffer it borrows from is accounted once, at the engine
    /// level.
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Owned(v) => v.capacity() * std::mem::size_of::<u32>(),
            Repr::Shared(_) => 0,
        }
    }

    /// Whether this set is a zero-copy view over a snapshot buffer.
    pub fn is_shared(&self) -> bool {
        matches!(self.repr, Repr::Shared(_))
    }
}

impl FromIterator<u32> for MemberSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Self::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn ms(v: &[u32]) -> MemberSet {
        MemberSet::from_unsorted(v.to_vec())
    }

    /// The same set in Shared form, views into a scratch snapshot buffer.
    fn shared(v: &[u32]) -> MemberSet {
        let mut w = vexus_data::SnapshotWriter::new();
        w.section_words(0x1, v);
        let buf = w.finish();
        let r = vexus_data::SnapshotReader::load(&buf).unwrap();
        MemberSet::from_shared(r.section_words(0x1).unwrap())
    }

    #[test]
    fn from_unsorted_sorts_and_dedupes() {
        let s = ms(&[3, 1, 2, 3, 1]);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn basic_algebra() {
        let a = ms(&[1, 2, 3, 5, 8]);
        let b = ms(&[2, 3, 4, 8, 9]);
        assert_eq!(a.intersection_size(&b), 3);
        assert_eq!(a.union_size(&b), 7);
        assert_eq!(a.intersect(&b).as_slice(), &[2, 3, 8]);
        assert_eq!(a.union(&b).as_slice(), &[1, 2, 3, 4, 5, 8, 9]);
        assert_eq!(a.difference(&b).as_slice(), &[1, 5]);
        assert!(a.overlaps(&b));
        assert!((a.jaccard(&b) - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_set_conventions() {
        let e = MemberSet::empty();
        let a = ms(&[1]);
        assert_eq!(e.jaccard(&e), 1.0);
        assert_eq!(e.jaccard(&a), 0.0);
        assert!(!e.overlaps(&a));
        assert!(e.is_subset_of(&a));
        assert_eq!(e.union(&a).as_slice(), &[1]);
    }

    #[test]
    fn shared_form_is_behaviorally_identical() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let owned = ms(&[1, 2, 3, 5, 8]);
        let view = shared(&[1, 2, 3, 5, 8]);
        assert!(view.is_shared() && !owned.is_shared());
        assert_eq!(owned, view);
        assert_eq!(view.as_slice(), owned.as_slice());
        assert_eq!(view.heap_bytes(), 0);
        assert!(owned.heap_bytes() >= 20);
        // Eq-consistent hashing across representations.
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        owned.hash(&mut h1);
        view.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
        // Mixed-representation algebra.
        let other = shared(&[2, 3, 4, 8, 9]);
        assert_eq!(owned.intersection_size(&other), 3);
        assert_eq!(other.intersect(&owned).as_slice(), &[2, 3, 8]);
        assert!(!other.intersect(&owned).is_shared());
        assert!(view.contains(5) && !view.contains(4));
        assert_eq!(format!("{view:?}"), "MemberSet[1, 2, 3, 5, 8]");
        // Empty shared view.
        let e = shared(&[]);
        assert!(e.is_empty());
        assert_eq!(e, MemberSet::empty());
    }

    #[test]
    fn galloping_path_matches_merge_path() {
        // Small set vs huge set triggers the galloping branch.
        let small = ms(&[5, 1000, 5000, 99999, 100001]);
        let large = MemberSet::from_sorted((0..100_000).collect());
        assert_eq!(small.intersection_size(&large), 4); // 100001 excluded
        assert_eq!(large.intersection_size(&small), 4);
    }

    #[test]
    fn disjoint_ranges_short_circuit() {
        let a = ms(&[1, 2, 3]);
        let b = ms(&[10, 11]);
        assert!(!a.overlaps(&b));
        assert_eq!(a.intersection_size(&b), 0);
        assert_eq!(a.jaccard(&b), 0.0);
    }

    #[test]
    fn contains_all_matches_subset_semantics() {
        let big = ms(&[1, 2, 3, 5, 8, 13, 21, 34]);
        assert!(big.contains_all(&ms(&[2, 8, 34])));
        assert!(big.contains_all(&MemberSet::empty()));
        assert!(big.contains_all(&big.clone()));
        assert!(!big.contains_all(&ms(&[2, 4])));
        assert!(!big.contains_all(&ms(&[0, 1])));
        assert!(!big.contains_all(&ms(&[34, 35])));
        assert!(!MemberSet::empty().contains_all(&ms(&[1])));
        // Galloping regime: tiny set verified against a huge one.
        let huge = MemberSet::from_sorted((0..100_000).map(|x| x * 2).collect());
        assert!(huge.contains_all(&ms(&[0, 50_000, 199_998])));
        assert!(!huge.contains_all(&ms(&[0, 50_001])));
    }

    #[test]
    fn subset_and_universe() {
        let u = MemberSet::universe(10);
        let s = ms(&[0, 5, 9]);
        assert!(s.is_subset_of(&u));
        assert!(!u.is_subset_of(&s));
        assert_eq!(u.len(), 10);
    }

    #[test]
    fn mask_operations() {
        let s = ms(&[1, 3, 5]);
        let mut mask = vec![false; 6];
        assert_eq!(s.mark_mask(&mut mask), 3);
        assert_eq!(s.mark_mask(&mut mask), 0);
        assert_eq!(s.count_in_mask(&mask), 3);
        assert_eq!(ms(&[0, 1]).count_in_mask(&mask), 1);
    }

    #[test]
    fn debug_is_compact_for_large_sets() {
        let s = MemberSet::universe(100);
        assert_eq!(format!("{s:?}"), "MemberSet[100 members]");
        assert_eq!(format!("{:?}", ms(&[1, 2])), "MemberSet[1, 2]");
    }

    proptest! {
        #[test]
        fn prop_matches_btreeset(a in proptest::collection::vec(0u32..500, 0..80),
                                 b in proptest::collection::vec(0u32..500, 0..80)) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let ma = MemberSet::from_unsorted(a);
            let mb = MemberSet::from_unsorted(b);
            prop_assert_eq!(ma.intersection_size(&mb), sa.intersection(&sb).count());
            prop_assert_eq!(ma.union_size(&mb), sa.union(&sb).count());
            let expect_inter: Vec<u32> = sa.intersection(&sb).copied().collect();
            let expect_union: Vec<u32> = sa.union(&sb).copied().collect();
            let expect_diff: Vec<u32> = sa.difference(&sb).copied().collect();
            let got_inter = ma.intersect(&mb);
            let got_union = ma.union(&mb);
            let got_diff = ma.difference(&mb);
            prop_assert_eq!(got_inter.as_slice(), expect_inter.as_slice());
            prop_assert_eq!(got_union.as_slice(), expect_union.as_slice());
            prop_assert_eq!(got_diff.as_slice(), expect_diff.as_slice());
            prop_assert_eq!(ma.overlaps(&mb), !sa.is_disjoint(&sb));
            prop_assert_eq!(ma.is_subset_of(&mb), sa.is_subset(&sb));
            prop_assert_eq!(ma.contains_all(&mb), sb.is_subset(&sa));
            prop_assert_eq!(mb.contains_all(&ma), sa.is_subset(&sb));
        }

        #[test]
        fn prop_shared_matches_owned(
            a in proptest::collection::vec(0u32..500, 0..80),
            b in proptest::collection::vec(0u32..500, 0..80)
        ) {
            // Every operation must agree between the Owned and Shared forms.
            let (ma, mb) = (MemberSet::from_unsorted(a), MemberSet::from_unsorted(b));
            let (va, vb) = (shared(ma.as_slice()), shared(mb.as_slice()));
            prop_assert_eq!(&ma, &va);
            prop_assert_eq!(va.intersection_size(&vb), ma.intersection_size(&mb));
            prop_assert_eq!(va.union_size(&vb), ma.union_size(&mb));
            prop_assert_eq!(va.intersect(&vb).as_slice(), ma.intersect(&mb).as_slice());
            prop_assert_eq!(va.union(&vb).as_slice(), ma.union(&mb).as_slice());
            prop_assert_eq!(va.difference(&vb).as_slice(), ma.difference(&mb).as_slice());
            prop_assert_eq!(va.overlaps(&vb), ma.overlaps(&mb));
            prop_assert_eq!(va.contains_all(&vb), ma.contains_all(&mb));
            prop_assert!((va.jaccard(&vb) - ma.jaccard(&mb)).abs() < 1e-15);
        }

        #[test]
        fn prop_jaccard_bounds_and_symmetry(
            a in proptest::collection::vec(0u32..200, 0..60),
            b in proptest::collection::vec(0u32..200, 0..60)
        ) {
            let ma = MemberSet::from_unsorted(a);
            let mb = MemberSet::from_unsorted(b);
            let j = ma.jaccard(&mb);
            prop_assert!((0.0..=1.0).contains(&j));
            prop_assert!((j - mb.jaccard(&ma)).abs() < 1e-15);
            prop_assert!((ma.jaccard(&ma) - 1.0).abs() < 1e-15);
            // distance is the complement
            prop_assert!((ma.jaccard_distance(&mb) - (1.0 - j)).abs() < 1e-15);
        }

        #[test]
        fn prop_triangle_inequality_jaccard_distance(
            a in proptest::collection::vec(0u32..60, 1..30),
            b in proptest::collection::vec(0u32..60, 1..30),
            c in proptest::collection::vec(0u32..60, 1..30)
        ) {
            // Jaccard distance is a proper metric.
            let (ma, mb, mc) = (
                MemberSet::from_unsorted(a),
                MemberSet::from_unsorted(b),
                MemberSet::from_unsorted(c),
            );
            let dab = ma.jaccard_distance(&mb);
            let dbc = mb.jaccard_distance(&mc);
            let dac = ma.jaccard_distance(&mc);
            prop_assert!(dac <= dab + dbc + 1e-12);
        }
    }
}
