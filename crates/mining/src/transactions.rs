//! Adapters from `vexus-data` datasets to the transaction form consumed by
//! the itemset miners.
//!
//! Each user becomes one transaction: the sorted set of
//! `(attribute, value)` tokens they carry. A [`TransactionDb`] additionally
//! pre-computes per-token tidlists (which users carry a token), the core
//! lookup of LCM's occurrence-delivery step.

use crate::bitmap::MemberSet;
use vexus_data::{TokenId, UserData, Vocabulary};

/// A vertical transaction database: tokens ↦ users carrying them.
#[derive(Debug, Clone)]
pub struct TransactionDb {
    /// `transactions[user]` = sorted token ids of that user.
    transactions: Vec<Vec<TokenId>>,
    /// `tidlists[token]` = sorted users carrying that token.
    tidlists: Vec<MemberSet>,
    n_tokens: usize,
}

impl TransactionDb {
    /// Build from a dataset and its vocabulary.
    pub fn build(data: &UserData, vocab: &Vocabulary) -> Self {
        let transactions = vocab.all_transactions(data);
        Self::from_transactions(transactions, vocab.len())
    }

    /// Build from raw transactions over a token universe of size `n_tokens`.
    pub fn from_transactions(transactions: Vec<Vec<TokenId>>, n_tokens: usize) -> Self {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n_tokens];
        for (user, toks) in transactions.iter().enumerate() {
            for &t in toks {
                lists[t.index()].push(user as u32);
            }
        }
        let tidlists = lists.into_iter().map(MemberSet::from_sorted).collect();
        Self {
            transactions,
            tidlists,
            n_tokens,
        }
    }

    /// Number of transactions (users).
    pub fn n_transactions(&self) -> usize {
        self.transactions.len()
    }

    /// Size of the token universe.
    pub fn n_tokens(&self) -> usize {
        self.n_tokens
    }

    /// The users carrying `token`.
    pub fn tidlist(&self, token: TokenId) -> &MemberSet {
        &self.tidlists[token.index()]
    }

    /// Support (number of carriers) of a token.
    pub fn support(&self, token: TokenId) -> usize {
        self.tidlists[token.index()].len()
    }

    /// The transaction (sorted tokens) of one user.
    pub fn transaction(&self, user: u32) -> &[TokenId] {
        &self.transactions[user as usize]
    }

    /// All transactions.
    pub fn transactions(&self) -> &[Vec<TokenId>] {
        &self.transactions
    }

    /// Members carrying *all* tokens of `itemset` (intersection of
    /// tidlists). Empty itemset = all users.
    pub fn itemset_members(&self, itemset: &[TokenId]) -> MemberSet {
        match itemset {
            [] => MemberSet::universe(self.transactions.len() as u32),
            [t] => self.tidlist(*t).clone(),
            [first, rest @ ..] => {
                let mut acc = self.tidlist(*first).clone();
                for t in rest {
                    acc = acc.intersect(self.tidlist(*t));
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            }
        }
    }

    /// The closure of a member set: every token carried by *all* members.
    /// This is the "common attributes" the paper says discovery returns per
    /// group, and the closure operator of LCM.
    pub fn closure(&self, members: &MemberSet) -> Vec<TokenId> {
        let mut iter = members.iter();
        let Some(first) = iter.next() else {
            // Empty member set: closed under everything; return empty to
            // keep descriptions meaningful.
            return Vec::new();
        };
        let mut common: Vec<TokenId> = self.transactions[first as usize].clone();
        for user in iter {
            let tx = &self.transactions[user as usize];
            common.retain(|t| tx.binary_search(t).is_ok());
            if common.is_empty() {
                break;
            }
        }
        common
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(v: &[u32]) -> Vec<TokenId> {
        v.iter().map(|&t| TokenId::new(t)).collect()
    }

    fn db() -> TransactionDb {
        // 4 users over 4 tokens.
        TransactionDb::from_transactions(
            vec![toks(&[0, 1]), toks(&[0, 1, 2]), toks(&[1, 2]), toks(&[3])],
            4,
        )
    }

    #[test]
    fn tidlists_are_inverted_transactions() {
        let db = db();
        assert_eq!(db.tidlist(TokenId::new(0)).as_slice(), &[0, 1]);
        assert_eq!(db.tidlist(TokenId::new(1)).as_slice(), &[0, 1, 2]);
        assert_eq!(db.tidlist(TokenId::new(3)).as_slice(), &[3]);
        assert_eq!(db.support(TokenId::new(1)), 3);
        assert_eq!(db.n_transactions(), 4);
        assert_eq!(db.n_tokens(), 4);
    }

    #[test]
    fn itemset_members_intersects() {
        let db = db();
        assert_eq!(db.itemset_members(&toks(&[0, 1])).as_slice(), &[0, 1]);
        assert_eq!(db.itemset_members(&toks(&[1, 2])).as_slice(), &[1, 2]);
        assert_eq!(db.itemset_members(&toks(&[0, 3])).as_slice(), &[] as &[u32]);
        assert_eq!(db.itemset_members(&[]).len(), 4);
    }

    #[test]
    fn closure_finds_common_tokens() {
        let db = db();
        let members = MemberSet::from_unsorted(vec![0, 1]);
        assert_eq!(db.closure(&members), toks(&[0, 1]));
        let all = MemberSet::from_unsorted(vec![0, 1, 2]);
        assert_eq!(db.closure(&all), toks(&[1]));
        let disjoint = MemberSet::from_unsorted(vec![0, 3]);
        assert!(db.closure(&disjoint).is_empty());
        assert!(db.closure(&MemberSet::empty()).is_empty());
    }

    #[test]
    fn closure_of_itemset_members_contains_itemset() {
        let db = db();
        for set in [toks(&[0]), toks(&[1]), toks(&[0, 1]), toks(&[2])] {
            let members = db.itemset_members(&set);
            let closure = db.closure(&members);
            for t in &set {
                assert!(closure.contains(t), "closure must contain original itemset");
            }
        }
    }
}
