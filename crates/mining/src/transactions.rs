//! Adapters from `vexus-data` datasets to the transaction form consumed by
//! the itemset miners.
//!
//! Each user becomes one transaction: the sorted set of
//! `(attribute, value)` tokens they carry. A [`TransactionDb`] additionally
//! pre-computes per-token tidlists (which users carry a token), the core
//! lookup of LCM's occurrence-delivery step.

use crate::bitmap::MemberSet;
use vexus_data::{TokenId, UserData, Vocabulary};

/// A vertical transaction database: tokens ↦ users carrying them.
#[derive(Debug, Clone)]
pub struct TransactionDb {
    /// `transactions[user]` = sorted token ids of that user.
    transactions: Vec<Vec<TokenId>>,
    /// `tidlists[token]` = sorted users carrying that token.
    tidlists: Vec<MemberSet>,
    n_tokens: usize,
}

impl TransactionDb {
    /// Build from a dataset and its vocabulary.
    pub fn build(data: &UserData, vocab: &Vocabulary) -> Self {
        let transactions = vocab.all_transactions(data);
        Self::from_transactions(transactions, vocab.len())
    }

    /// Build the projection-local database of a member subset: the
    /// transactions of `members` (global user ids, in order) over the
    /// *global* token universe, with tidlists rebuilt against the local
    /// dense ids `0..members.len()`. This is the per-shard view the merge
    /// layer's cross-shard closure exchange re-closes candidates against;
    /// token ids stay global, so descriptions move between shard and
    /// global databases unchanged.
    pub fn build_for_members(data: &UserData, vocab: &Vocabulary, members: &[u32]) -> Self {
        Self::from_transactions(vocab.member_transactions(data, members), vocab.len())
    }

    /// Build from raw transactions over a token universe of size `n_tokens`.
    pub fn from_transactions(transactions: Vec<Vec<TokenId>>, n_tokens: usize) -> Self {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n_tokens];
        for (user, toks) in transactions.iter().enumerate() {
            for &t in toks {
                lists[t.index()].push(user as u32);
            }
        }
        let tidlists = lists.into_iter().map(MemberSet::from_sorted).collect();
        Self {
            transactions,
            tidlists,
            n_tokens,
        }
    }

    /// Number of transactions (users).
    pub fn n_transactions(&self) -> usize {
        self.transactions.len()
    }

    /// Size of the token universe.
    pub fn n_tokens(&self) -> usize {
        self.n_tokens
    }

    /// The users carrying `token`.
    pub fn tidlist(&self, token: TokenId) -> &MemberSet {
        &self.tidlists[token.index()]
    }

    /// Support (number of carriers) of a token.
    pub fn support(&self, token: TokenId) -> usize {
        self.tidlists[token.index()].len()
    }

    /// The transaction (sorted tokens) of one user.
    pub fn transaction(&self, user: u32) -> &[TokenId] {
        &self.transactions[user as usize]
    }

    /// All transactions.
    pub fn transactions(&self) -> &[Vec<TokenId>] {
        &self.transactions
    }

    /// Members carrying *all* tokens of `itemset` (intersection of
    /// tidlists). Empty itemset = all users.
    ///
    /// Intersects in ascending-support order: starting from the rarest
    /// token bounds every later intersection by the smallest tidlist, and
    /// the accumulator can only shrink from there. The result is identical
    /// for any order (intersection is commutative).
    pub fn itemset_members(&self, itemset: &[TokenId]) -> MemberSet {
        match itemset {
            [] => MemberSet::universe(self.transactions.len() as u32),
            [t] => self.tidlist(*t).clone(),
            _ => {
                let mut order: Vec<TokenId> = itemset.to_vec();
                order.sort_unstable_by_key(|t| self.tidlists[t.index()].len());
                let mut acc = self.tidlist(order[0]).clone();
                for t in &order[1..] {
                    acc = acc.intersect(self.tidlist(*t));
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            }
        }
    }

    /// The closure of a member set: every token carried by *all* members.
    /// This is the "common attributes" the paper says discovery returns per
    /// group, and the closure operator of LCM.
    ///
    /// Token-major: the candidate tokens are the shortest member
    /// transaction (any common token must appear in every member's
    /// transaction, so the shortest one bounds the candidates), and each
    /// candidate is verified with one galloping
    /// [`MemberSet::contains_all`] subset check against its tidlist —
    /// early-exiting on the first member that does not carry it — instead
    /// of a `retain` scan over every member's transaction.
    pub fn closure(&self, members: &MemberSet) -> Vec<TokenId> {
        let Some(smallest) = members
            .iter()
            .min_by_key(|&u| self.transactions[u as usize].len())
        else {
            // Empty member set: closed under everything; return empty to
            // keep descriptions meaningful.
            return Vec::new();
        };
        self.transactions[smallest as usize]
            .iter()
            .copied()
            .filter(|t| self.tidlists[t.index()].contains_all(members))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(v: &[u32]) -> Vec<TokenId> {
        v.iter().map(|&t| TokenId::new(t)).collect()
    }

    fn db() -> TransactionDb {
        // 4 users over 4 tokens.
        TransactionDb::from_transactions(
            vec![toks(&[0, 1]), toks(&[0, 1, 2]), toks(&[1, 2]), toks(&[3])],
            4,
        )
    }

    #[test]
    fn tidlists_are_inverted_transactions() {
        let db = db();
        assert_eq!(db.tidlist(TokenId::new(0)).as_slice(), &[0, 1]);
        assert_eq!(db.tidlist(TokenId::new(1)).as_slice(), &[0, 1, 2]);
        assert_eq!(db.tidlist(TokenId::new(3)).as_slice(), &[3]);
        assert_eq!(db.support(TokenId::new(1)), 3);
        assert_eq!(db.n_transactions(), 4);
        assert_eq!(db.n_tokens(), 4);
    }

    #[test]
    fn itemset_members_intersects() {
        let db = db();
        assert_eq!(db.itemset_members(&toks(&[0, 1])).as_slice(), &[0, 1]);
        assert_eq!(db.itemset_members(&toks(&[1, 2])).as_slice(), &[1, 2]);
        assert_eq!(db.itemset_members(&toks(&[0, 3])).as_slice(), &[] as &[u32]);
        assert_eq!(db.itemset_members(&[]).len(), 4);
    }

    #[test]
    fn closure_finds_common_tokens() {
        let db = db();
        let members = MemberSet::from_unsorted(vec![0, 1]);
        assert_eq!(db.closure(&members), toks(&[0, 1]));
        let all = MemberSet::from_unsorted(vec![0, 1, 2]);
        assert_eq!(db.closure(&all), toks(&[1]));
        let disjoint = MemberSet::from_unsorted(vec![0, 3]);
        assert!(db.closure(&disjoint).is_empty());
        assert!(db.closure(&MemberSet::empty()).is_empty());
    }

    #[test]
    fn build_for_members_is_the_projection_of_the_global_build() {
        let ds =
            vexus_data::synthetic::bookcrossing(&vexus_data::synthetic::BookCrossingConfig::tiny());
        let vocab = vexus_data::Vocabulary::build(&ds.data);
        let global = TransactionDb::build(&ds.data, &vocab);
        let members: Vec<u32> = vec![3, 17, 42, 99];
        let local = TransactionDb::build_for_members(&ds.data, &vocab, &members);
        // Same token universe, local dense ids, transactions identical to
        // the corresponding global ones.
        assert_eq!(local.n_tokens(), global.n_tokens());
        assert_eq!(local.n_transactions(), members.len());
        for (l, &g) in members.iter().enumerate() {
            assert_eq!(local.transaction(l as u32), global.transaction(g));
        }
        // Tidlists are rebuilt against the local ids.
        for t in 0..local.n_tokens() as u32 {
            let token = TokenId::new(t);
            let expect: Vec<u32> = members
                .iter()
                .enumerate()
                .filter(|&(_, &g)| global.tidlist(token).contains(g))
                .map(|(l, _)| l as u32)
                .collect();
            assert_eq!(local.tidlist(token).as_slice(), expect.as_slice());
        }
    }

    #[test]
    fn closure_of_itemset_members_contains_itemset() {
        let db = db();
        for set in [toks(&[0]), toks(&[1]), toks(&[0, 1]), toks(&[2])] {
            let members = db.itemset_members(&set);
            let closure = db.closure(&members);
            for t in &set {
                assert!(closure.contains(t), "closure must contain original itemset");
            }
        }
    }

    /// The pre-d3 member-major closure: clone the first member's
    /// transaction and `retain`-scan it against every other member's.
    /// Kept as the reference implementation the token-major rewrite is
    /// pinned against.
    fn closure_member_major(db: &TransactionDb, members: &MemberSet) -> Vec<TokenId> {
        let mut iter = members.iter();
        let Some(first) = iter.next() else {
            return Vec::new();
        };
        let mut common: Vec<TokenId> = db.transaction(first).to_vec();
        for user in iter {
            let tx = db.transaction(user);
            common.retain(|t| tx.binary_search(t).is_ok());
            if common.is_empty() {
                break;
            }
        }
        common
    }

    /// Left-to-right tidlist intersection, the pre-d3 `itemset_members`.
    fn itemset_members_in_order(db: &TransactionDb, itemset: &[TokenId]) -> MemberSet {
        match itemset {
            [] => MemberSet::universe(db.n_transactions() as u32),
            [first, rest @ ..] => {
                let mut acc = db.tidlist(*first).clone();
                for t in rest {
                    acc = acc.intersect(db.tidlist(*t));
                }
                acc
            }
        }
    }

    use proptest::prelude::*;

    /// A random transaction database over a `n_tokens` universe; each raw
    /// transaction is reduced mod `n_tokens`, sorted and dedup'd.
    fn db_from_raw(n_tokens: u32, raw_txs: &[Vec<u32>]) -> TransactionDb {
        let transactions: Vec<Vec<TokenId>> = raw_txs
            .iter()
            .map(|tx| {
                let mut v: Vec<u32> = tx.iter().map(|t| t % n_tokens).collect();
                v.sort_unstable();
                v.dedup();
                v.into_iter().map(TokenId::new).collect()
            })
            .collect();
        TransactionDb::from_transactions(transactions, n_tokens as usize)
    }

    proptest! {
        #[test]
        fn prop_token_major_closure_matches_member_major(
            n_tokens in 2u32..24,
            raw_txs in proptest::collection::vec(
                proptest::collection::vec(0u32..1_000, 0..10), 2..40),
            picks in proptest::collection::vec(0u32..10_000, 0..12)
        ) {
            let db = db_from_raw(n_tokens, &raw_txs);
            let n = db.n_transactions() as u32;
            let members = MemberSet::from_unsorted(
                picks.into_iter().map(|p| p % n).collect(),
            );
            prop_assert_eq!(db.closure(&members), closure_member_major(&db, &members));
        }

        #[test]
        fn prop_support_ordered_intersection_matches_in_order(
            n_tokens in 2u32..24,
            raw_txs in proptest::collection::vec(
                proptest::collection::vec(0u32..1_000, 0..10), 2..40),
            picks in proptest::collection::vec(0u32..1_000, 0..6)
        ) {
            let db = db_from_raw(n_tokens, &raw_txs);
            let mut itemset: Vec<TokenId> =
                picks.into_iter().map(|p| TokenId::new(p % n_tokens)).collect();
            itemset.sort_unstable();
            itemset.dedup();
            prop_assert_eq!(
                db.itemset_members(&itemset).as_slice(),
                itemset_members_in_order(&db, &itemset).as_slice()
            );
        }
    }
}
