//! # vexus-mining
//!
//! Group discovery for VEXUS. The paper treats discovery as a pluggable
//! offline stage: "For user datasets, different group discovery algorithms
//! such as LCM \[16\] and α-MOMRI \[13\] can be used. In case of user data
//! streams, STREAMMINING \[9\] and BIRCH \[18\] can be employed. For each group,
//! its members and their common attributes will be returned."
//!
//! This crate implements all four from scratch:
//!
//! * [`lcm`] — LCM-style closed frequent itemset mining over user
//!   demographics-as-transactions (the default discovery path),
//! * [`momri`] — α-MOMRI-style multi-objective group discovery,
//! * [`birch`] — BIRCH CF-tree clustering for numeric user features,
//! * [`stream_fim`] — lossy-counting in-core frequent itemset mining over
//!   action streams,
//!
//! All four are exposed behind one seam: the [`discovery::GroupDiscovery`]
//! trait, whose backends ([`LcmDiscovery`], [`MomriDiscovery`],
//! [`BirchDiscovery`], [`StreamFimDiscovery`]) take `(&UserData,
//! &Vocabulary)` and return a [`GroupSet`] plus discovery statistics. The
//! exploration engine's builder accepts any backend.
//!
//! On top of that seam, [`sharded`] scales discovery out:
//! [`ShardedDiscovery`] runs any backend per member-disjoint shard on
//! worker threads and folds the per-shard group spaces through a
//! [`MergeStrategy`]; [`EnsembleDiscovery`] unions several backends
//! (e.g. LCM ∪ BIRCH) through the same merge layer.
//!
//! For live deployments, [`delta`] gives the stream miner identity across
//! time: [`DeltaDiscovery`] observes users as they arrive on an action
//! stream and cuts canonical, description-sorted epoch group spaces whose
//! pairwise differences are typed [`GroupDelta`]s (added / retired /
//! resized) — the contract the incremental index patch in `vexus-index`
//! consumes.
//!
//! Shared substrate:
//!
//! * [`bitmap`] — sorted-set member bitmaps with fast intersection /
//!   Jaccard,
//! * [`features`] — one-hot + activity featurization (owned by the BIRCH
//!   backend, reusable by the viz layer),
//! * [`group`] — the [`group::Group`] type (members + describing tokens)
//!   and [`group::GroupSet`] collections,
//! * [`transactions`] — adapters from `vexus-data` datasets to token
//!   transactions.

pub mod birch;
pub mod bitmap;
pub mod delta;
pub mod discovery;
pub mod features;
pub mod group;
pub mod lcm;
pub mod momri;
pub mod sharded;
pub mod snapshot;
pub mod stream_fim;
pub mod transactions;

pub use bitmap::MemberSet;
pub use delta::{DeltaDiscovery, GroupDelta};
pub use discovery::{
    BirchDiscovery, DiscoveryOutcome, DiscoverySelection, DiscoveryStats, GroupDiscovery,
    LcmDiscovery, MergeSelection, MomriDiscovery, MomriMaterialize, ShardStats, StreamFimDiscovery,
};
pub use features::Featurizer;
pub use group::{Group, GroupId, GroupSet};
pub use lcm::{mine_closed_groups, LcmConfig};
pub use momri::MomriConfig;
pub use sharded::{
    EnsembleDiscovery, ExchangeRouter, MergeContext, MergeStrategy, MergeTelemetry, ShardScaled,
    ShardedDiscovery,
};
pub use stream_fim::{MinerEntry, MinerState, StreamFimConfig, StreamMiner};
