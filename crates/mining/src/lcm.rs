//! LCM-style closed frequent itemset mining (Uno et al., FIMI'03) — the
//! paper's default group discovery algorithm for user datasets.
//!
//! Every closed frequent itemset over the token universe is exactly one
//! user group: the itemset is the group's description ("common attributes")
//! and its tidlist is the member set. Closedness matters because it
//! collapses the exponential group space onto its unique maximal
//! descriptions: "engineers in MA" and "engineers in MA who work at
//! NextWorth" are one group if the same users match both.
//!
//! Implementation: depth-first **prefix-preserving closure extension**
//! (ppc-extension). For the current closed set `P` with core index `i`, we
//! try every token `e > i` not in `P`, intersect tidlists, take the closure
//! of the result, and keep it only if the closure adds no token smaller
//! than `e` (the ppc test). Every closed set is generated exactly once, in
//! polynomial delay, with no candidate storage — the properties LCM is
//! known for.

use crate::group::{Group, GroupSet};
use crate::transactions::TransactionDb;
use vexus_data::TokenId;

/// Configuration for the closed-group miner.
#[derive(Debug, Clone)]
pub struct LcmConfig {
    /// Minimum members per group (absolute support).
    pub min_support: usize,
    /// Maximum description length (itemset size); caps the depth of the
    /// search. The paper's group descriptions are short conjunctions.
    pub max_description: usize,
    /// Hard cap on emitted groups (safety valve for tiny supports over
    /// wide schemas; the space is exponential).
    pub max_groups: usize,
    /// Whether to emit the root group (closure of the full population —
    /// tokens shared by *everyone*). An empty root closure is never
    /// emitted: a group with no description is a cluster, not a closed
    /// itemset. Sharded drivers turn this on per shard so a shard whose
    /// whole closed family is its own root still emits a merge witness.
    pub emit_root: bool,
}

impl Default for LcmConfig {
    fn default() -> Self {
        Self {
            min_support: 2,
            max_description: 6,
            max_groups: 200_000,
            emit_root: false,
        }
    }
}

/// Mine all closed frequent groups from a transaction database.
pub fn mine_closed_groups(db: &TransactionDb, cfg: &LcmConfig) -> GroupSet {
    let mut miner = Miner {
        db,
        cfg,
        out: GroupSet::new(),
    };
    miner.run();
    miner.out
}

struct Miner<'a> {
    db: &'a TransactionDb,
    cfg: &'a LcmConfig,
    out: GroupSet,
}

impl Miner<'_> {
    fn run(&mut self) {
        let n = self.db.n_transactions();
        if n == 0 || self.db.n_tokens() == 0 {
            return;
        }
        let universe = crate::bitmap::MemberSet::universe(n as u32);
        let root_closure = self.db.closure(&universe);
        if self.cfg.emit_root && n >= self.cfg.min_support && !root_closure.is_empty() {
            self.out
                .push(Group::new(root_closure.clone(), universe.clone()));
        }
        // Recurse from the root with core index "before token 0".
        self.expand(&root_closure, &universe, None);
    }

    /// Try all ppc-extensions of closed set `p` (with tidlist `members` and
    /// core index `core`, `None` meaning "below every token").
    fn expand(&mut self, p: &[TokenId], members: &crate::bitmap::MemberSet, core: Option<TokenId>) {
        if self.out.len() >= self.cfg.max_groups || p.len() >= self.cfg.max_description {
            return;
        }
        let start = core.map_or(0, |c| c.raw() + 1);
        for raw in start..self.db.n_tokens() as u32 {
            if self.out.len() >= self.cfg.max_groups {
                return;
            }
            let e = TokenId::new(raw);
            if p.binary_search(&e).is_ok() {
                continue;
            }
            // Cheap support upper bound before intersecting.
            if self.db.support(e) < self.cfg.min_support {
                continue;
            }
            let extended = members.intersect(self.db.tidlist(e));
            if extended.len() < self.cfg.min_support {
                continue;
            }
            let closure = self.db.closure(&extended);
            // ppc test: the closure must not introduce any token < e that
            // is not already in p. Otherwise this closed set will be (or
            // was) reached via that smaller token.
            let violates = closure
                .iter()
                .any(|&t| t < e && p.binary_search(&t).is_err());
            if violates {
                continue;
            }
            if closure.len() > self.cfg.max_description {
                // A longer closed description than we emit; skip the branch
                // entirely — all ppc-descendants are at least as long.
                continue;
            }
            self.out.push(Group::new(closure.clone(), extended.clone()));
            self.expand(&closure, &extended, Some(e));
        }
    }
}

/// Brute-force closed-itemset enumeration for testing: enumerate all subsets
/// of the token universe, keep frequent ones, filter to closed. Exponential;
/// only usable on tiny universes.
#[cfg(test)]
pub fn brute_force_closed(
    db: &TransactionDb,
    min_support: usize,
    max_description: usize,
) -> Vec<(Vec<TokenId>, Vec<u32>)> {
    let n_tokens = db.n_tokens();
    assert!(n_tokens <= 16, "brute force is exponential");
    let mut out = Vec::new();
    for mask in 1u32..(1 << n_tokens) {
        let itemset: Vec<TokenId> = (0..n_tokens as u32)
            .filter(|i| mask & (1 << i) != 0)
            .map(TokenId::new)
            .collect();
        if itemset.len() > max_description {
            continue;
        }
        let members = db.itemset_members(&itemset);
        if members.len() < min_support {
            continue;
        }
        let closure = db.closure(&members);
        if closure == itemset {
            out.push((itemset, members.iter().collect()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::TransactionDb;
    use proptest::prelude::*;

    fn toks(v: &[u32]) -> Vec<TokenId> {
        v.iter().map(|&t| TokenId::new(t)).collect()
    }

    fn classic_db() -> TransactionDb {
        // Classic FIMI example.
        TransactionDb::from_transactions(
            vec![
                toks(&[0, 1, 2]),
                toks(&[0, 1]),
                toks(&[0, 2]),
                toks(&[1, 2]),
                toks(&[0, 1, 2, 3]),
            ],
            4,
        )
    }

    fn normalize(gs: &GroupSet) -> Vec<(Vec<TokenId>, Vec<u32>)> {
        let mut v: Vec<_> = gs
            .iter()
            .map(|(_, g)| {
                (
                    g.description.clone(),
                    g.members.iter().collect::<Vec<u32>>(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn matches_brute_force_on_classic_example() {
        let db = classic_db();
        let cfg = LcmConfig {
            min_support: 2,
            max_description: 4,
            ..Default::default()
        };
        let mined = normalize(&mine_closed_groups(&db, &cfg));
        let mut brute = brute_force_closed(&db, 2, 4);
        brute.sort();
        assert_eq!(mined, brute);
        assert!(!mined.is_empty());
    }

    #[test]
    fn all_outputs_are_closed_and_frequent() {
        let db = classic_db();
        let cfg = LcmConfig {
            min_support: 2,
            ..Default::default()
        };
        let gs = mine_closed_groups(&db, &cfg);
        for (_, g) in gs.iter() {
            assert!(g.members.len() >= 2, "support violated");
            let closure = db.closure(&g.members);
            assert_eq!(closure, g.description, "not closed");
            // Members really carry the whole description.
            assert_eq!(
                db.itemset_members(&g.description).as_slice(),
                g.members.as_slice()
            );
        }
    }

    #[test]
    fn no_duplicate_groups() {
        let db = classic_db();
        let gs = mine_closed_groups(
            &db,
            &LcmConfig {
                min_support: 1,
                ..Default::default()
            },
        );
        let mut descs: Vec<_> = gs.iter().map(|(_, g)| g.description.clone()).collect();
        let before = descs.len();
        descs.sort();
        descs.dedup();
        assert_eq!(before, descs.len(), "duplicate closed sets emitted");
    }

    #[test]
    fn min_support_prunes() {
        let db = classic_db();
        let lo = mine_closed_groups(
            &db,
            &LcmConfig {
                min_support: 1,
                ..Default::default()
            },
        );
        let hi = mine_closed_groups(
            &db,
            &LcmConfig {
                min_support: 3,
                ..Default::default()
            },
        );
        assert!(hi.len() < lo.len());
        assert!(hi.iter().all(|(_, g)| g.size() >= 3));
    }

    #[test]
    fn max_groups_caps_output() {
        let db = classic_db();
        let gs = mine_closed_groups(
            &db,
            &LcmConfig {
                min_support: 1,
                max_groups: 3,
                ..Default::default()
            },
        );
        assert_eq!(gs.len(), 3);
    }

    #[test]
    fn max_description_limits_depth() {
        let db = classic_db();
        let gs = mine_closed_groups(
            &db,
            &LcmConfig {
                min_support: 1,
                max_description: 1,
                ..Default::default()
            },
        );
        assert!(gs.iter().all(|(_, g)| g.description.len() <= 1));
    }

    #[test]
    fn empty_db_yields_nothing() {
        let db = TransactionDb::from_transactions(vec![], 0);
        let gs = mine_closed_groups(&db, &LcmConfig::default());
        assert!(gs.is_empty());
    }

    #[test]
    fn root_emission_toggle() {
        // All users share token 0 -> root closure non-empty.
        let db =
            TransactionDb::from_transactions(vec![toks(&[0, 1]), toks(&[0, 2]), toks(&[0])], 3);
        let without = mine_closed_groups(
            &db,
            &LcmConfig {
                min_support: 3,
                ..Default::default()
            },
        );
        let with = mine_closed_groups(
            &db,
            &LcmConfig {
                min_support: 3,
                emit_root: true,
                ..Default::default()
            },
        );
        assert_eq!(with.len(), without.len() + 1);
        let (_, root) = with.iter().next().unwrap();
        assert_eq!(root.description, toks(&[0]));
        assert_eq!(root.size(), 3);
    }

    #[test]
    fn empty_root_closure_is_never_emitted() {
        // No token is shared by everyone, so the root closure is empty —
        // `emit_root: true` must not fabricate a description-less group
        // (the merge layer would mistake it for a cluster).
        let db = TransactionDb::from_transactions(vec![toks(&[0]), toks(&[1])], 2);
        let gs = mine_closed_groups(
            &db,
            &LcmConfig {
                min_support: 1,
                emit_root: true,
                ..Default::default()
            },
        );
        assert!(gs.iter().all(|(_, g)| !g.description.is_empty()));
    }

    #[test]
    fn mines_real_synthetic_data() {
        let ds =
            vexus_data::synthetic::bookcrossing(&vexus_data::synthetic::BookCrossingConfig::tiny());
        let vocab = vexus_data::Vocabulary::build(&ds.data);
        let db = TransactionDb::build(&ds.data, &vocab);
        let gs = mine_closed_groups(
            &db,
            &LcmConfig {
                min_support: 10,
                ..Default::default()
            },
        );
        assert!(
            gs.len() > 20,
            "expected a rich group space, got {}",
            gs.len()
        );
        // Spot-check group semantics on the first ten groups.
        for (_, g) in gs.iter().take(10) {
            assert_eq!(
                db.itemset_members(&g.description).as_slice(),
                g.members.as_slice()
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_brute_force(
            txs in proptest::collection::vec(
                proptest::collection::btree_set(0u32..8, 0..6), 1..14),
            min_support in 1usize..4
        ) {
            let transactions: Vec<Vec<TokenId>> = txs
                .iter()
                .map(|s| s.iter().map(|&t| TokenId::new(t)).collect())
                .collect();
            let db = TransactionDb::from_transactions(transactions, 8);
            let cfg = LcmConfig {
                min_support,
                max_description: 8,
                max_groups: usize::MAX,
                emit_root: false,
            };
            let mut mined = normalize(&mine_closed_groups(&db, &cfg));
            let mut brute = brute_force_closed(&db, min_support, 8);
            brute.sort();
            // The miner skips the root closure; brute force includes any
            // non-empty closed set. Add the root back when it qualifies.
            let universe = crate::bitmap::MemberSet::universe(db.n_transactions() as u32);
            let root = db.closure(&universe);
            if !root.is_empty() && db.n_transactions() >= min_support {
                let entry = (root, universe.iter().collect::<Vec<u32>>());
                if !mined.contains(&entry) {
                    mined.push(entry);
                    mined.sort();
                }
            }
            prop_assert_eq!(mined, brute);
        }
    }
}
