//! The pluggable group-discovery stage of the offline pipeline.
//!
//! The paper treats discovery as swappable: "For user datasets, different
//! group discovery algorithms such as LCM \[16\] and α-MOMRI \[13\] can be
//! used. In case of user data streams, STREAMMINING \[9\] and BIRCH \[18\]
//! can be employed." This module is that seam as a first-class trait:
//! every algorithm in the crate is exposed as a [`GroupDiscovery`] backend
//! taking `(&UserData, &Vocabulary)` and returning a [`DiscoveryOutcome`]
//! (a [`GroupSet`] plus [`DiscoveryStats`]), so the engine, the experiment
//! harness and future scaling work (sharded discovery, async refresh,
//! remote backends) all plug in behind one interface.
//!
//! * [`LcmDiscovery`] — closed frequent itemsets over demographics (the
//!   default),
//! * [`MomriDiscovery`] — α-MOMRI multi-objective discovery,
//! * [`BirchDiscovery`] — CF-tree clustering; owns the featurization step
//!   (one-hot demographics + activity) end to end,
//! * [`StreamFimDiscovery`] — lossy-counting FIM over user arrivals.
//!
//! [`DiscoverySelection`] is the plain-data configuration mirror of the
//! four backends, suitable for embedding in engine configs.

use crate::birch::{BirchConfig, BirchTree};
use crate::features::Featurizer;
use crate::group::GroupSet;
use crate::lcm::{mine_closed_groups, LcmConfig};
use crate::momri::{discover as momri_discover, MomriConfig};
use crate::sharded::{EnsembleDiscovery, MergeStrategy, ShardedDiscovery};
use crate::stream_fim::{StreamFimConfig, StreamMiner};
use crate::transactions::TransactionDb;
use std::time::{Duration, Instant};
use vexus_data::{ShardStrategy, UserData, Vocabulary};

/// One shard's (or one ensemble member's) contribution to a composite
/// discovery run.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index within the plan (or member index within the ensemble).
    pub shard: usize,
    /// Backend that ran on this shard.
    pub algorithm: &'static str,
    /// Members (transactions) the shard covered.
    pub members: usize,
    /// Wall-clock of this shard's discovery run.
    pub elapsed: Duration,
    /// Groups the shard contributed before merging.
    pub groups_discovered: usize,
}

/// Timings and counts reported by one discovery run.
#[derive(Debug, Clone, Default)]
pub struct DiscoveryStats {
    /// Backend name (`"lcm"`, `"momri"`, `"birch"`, `"stream-fim"`,
    /// `"sharded"`, `"ensemble"`).
    pub algorithm: &'static str,
    /// Wall-clock of the discovery stage.
    pub elapsed: Duration,
    /// Groups returned (before any engine-side size filtering).
    pub groups_discovered: usize,
    /// Internal candidates examined, where the algorithm counts them
    /// (closed sets for LCM/MOMRI, tracked itemsets for stream FIM, CF
    /// leaf entries for BIRCH; pre-merge groups for sharded/ensemble runs).
    pub candidates_considered: usize,
    /// Per-shard (or per-ensemble-member) breakdown; empty for plain
    /// single-pass runs.
    pub shards: Vec<ShardStats>,
    /// Wall-clock of the merge stage folding shard outcomes into one group
    /// space (zero for plain runs).
    pub merge_elapsed: Duration,
    /// Cross-shard closure exchange rounds actually run inside the merge
    /// (zero for plain runs, when the exchange is disabled, or when it is
    /// skipped because at most one part contributed descriptions).
    pub exchange_rounds_run: usize,
    /// Candidate descriptions the closure exchange added to the global
    /// recount worklist.
    pub exchange_candidates: usize,
    /// Wall-clock of the closure exchange rounds (a sub-interval of
    /// `merge_elapsed`).
    pub exchange_elapsed: Duration,
    /// Candidate broadcasts the merge's dedup stage saved: frontier
    /// candidates collapsing onto an already-broadcast frequency-pruned
    /// form (or pruning down to a broadcast-free singleton). Zero when
    /// the exchange runs in its pre-dedup reference mode.
    pub exchange_deduped: usize,
    /// Per-candidate shard scans the exchange's candidate→shard routing
    /// skipped (shards with no carrier of any candidate token).
    pub exchange_shards_skipped: usize,
    /// Stream-miner transactions observed over the miner's lifetime
    /// (zero for non-stream backends). For live refreshes this is
    /// cumulative across epochs, so batch and incremental runs report the
    /// same telemetry surface.
    pub stream_n_seen: u64,
    /// Itemset entries the stream miner held in-core when the group space
    /// was materialized (zero for non-stream backends).
    pub stream_table_size: usize,
    /// Itemset entries evicted by the stream miner's bucket-boundary
    /// pruning over its lifetime (zero for non-stream backends).
    pub stream_evictions: u64,
}

/// The result of one discovery run.
#[derive(Debug)]
pub struct DiscoveryOutcome {
    /// The discovered group space.
    pub groups: GroupSet,
    /// Run statistics.
    pub stats: DiscoveryStats,
}

/// A pluggable offline group-discovery algorithm.
pub trait GroupDiscovery {
    /// Stable backend name for stats and reports.
    fn name(&self) -> &'static str;

    /// Discover groups over a dataset. Implementations must be
    /// deterministic for a given input (the engine's reproducibility tests
    /// rely on it).
    fn discover(&self, data: &UserData, vocab: &Vocabulary) -> DiscoveryOutcome;
}

/// LCM-style closed frequent itemset mining (the paper's default path).
#[derive(Debug, Clone, Default)]
pub struct LcmDiscovery {
    /// Miner configuration.
    pub config: LcmConfig,
}

impl LcmDiscovery {
    /// Backend with the given miner configuration.
    pub fn new(config: LcmConfig) -> Self {
        Self { config }
    }
}

impl GroupDiscovery for LcmDiscovery {
    fn name(&self) -> &'static str {
        "lcm"
    }

    fn discover(&self, data: &UserData, vocab: &Vocabulary) -> DiscoveryOutcome {
        let t0 = Instant::now();
        let db = TransactionDb::build(data, vocab);
        let groups = mine_closed_groups(&db, &self.config);
        let stats = DiscoveryStats {
            algorithm: self.name(),
            elapsed: t0.elapsed(),
            groups_discovered: groups.len(),
            candidates_considered: groups.len(),
            ..Default::default()
        };
        DiscoveryOutcome { groups, stats }
    }
}

/// Which part of the α-MOMRI result becomes the engine's group space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MomriMaterialize {
    /// The full closed-group candidate space (richest navigation surface).
    #[default]
    Candidates,
    /// Only the best front solution's groups (a curated, small space).
    BestSolution,
    /// The union of all front solutions' groups.
    FrontUnion,
}

/// α-MOMRI multi-objective discovery.
#[derive(Debug, Clone, Default)]
pub struct MomriDiscovery {
    /// Optimizer configuration.
    pub config: MomriConfig,
    /// Result materialization policy.
    pub materialize: MomriMaterialize,
}

impl MomriDiscovery {
    /// Backend with the given optimizer configuration.
    pub fn new(config: MomriConfig) -> Self {
        Self {
            config,
            materialize: MomriMaterialize::default(),
        }
    }
}

impl GroupDiscovery for MomriDiscovery {
    fn name(&self) -> &'static str {
        "momri"
    }

    fn discover(&self, data: &UserData, vocab: &Vocabulary) -> DiscoveryOutcome {
        let t0 = Instant::now();
        let db = TransactionDb::build(data, vocab);
        let result = momri_discover(&db, &self.config);
        let candidates_considered = result.candidates.len();
        let groups = match self.materialize {
            MomriMaterialize::Candidates => result.candidates,
            MomriMaterialize::BestSolution => result
                .front
                .first()
                .map(|best| result.solution_groups(best))
                .unwrap_or_default(),
            MomriMaterialize::FrontUnion => {
                let mut out = GroupSet::new();
                let mut seen = std::collections::BTreeSet::new();
                for sol in &result.front {
                    for &id in &sol.groups {
                        if seen.insert(id) {
                            out.push(result.candidates.get(id).clone());
                        }
                    }
                }
                out
            }
        };
        let stats = DiscoveryStats {
            algorithm: self.name(),
            elapsed: t0.elapsed(),
            groups_discovered: groups.len(),
            candidates_considered,
            ..Default::default()
        };
        DiscoveryOutcome { groups, stats }
    }
}

/// BIRCH CF-tree clustering over numeric user features.
///
/// Owns the full featurization step: builds the one-hot + activity
/// [`Featurizer`] over the dataset and streams every user through the
/// CF-tree, so callers no longer hand-wire features at each call site.
#[derive(Debug, Clone)]
pub struct BirchDiscovery {
    /// CF-tree branching factor.
    pub branching: usize,
    /// Absorption threshold on leaf-entry radius. One-hot demographics
    /// live on a hypercube (users differing in `d` attributes sit at
    /// distance `sqrt(2d)`), so thresholds around `1.5` admit a couple of
    /// differing attributes per cluster.
    pub threshold: f64,
    /// Minimum cluster size kept as a group.
    pub min_cluster_size: usize,
}

impl Default for BirchDiscovery {
    fn default() -> Self {
        Self {
            branching: 10,
            threshold: 1.6,
            min_cluster_size: 5,
        }
    }
}

impl GroupDiscovery for BirchDiscovery {
    fn name(&self) -> &'static str {
        "birch"
    }

    fn discover(&self, data: &UserData, _vocab: &Vocabulary) -> DiscoveryOutcome {
        let t0 = Instant::now();
        let featurizer = Featurizer::new(data);
        let mut tree = BirchTree::new(BirchConfig {
            branching: self.branching,
            threshold: self.threshold,
            dim: featurizer.dim(),
        });
        for u in data.users() {
            tree.insert(u.raw(), &featurizer.features(data, u));
        }
        let candidates_considered = tree.clusters().len();
        let groups = tree.into_groups(self.min_cluster_size);
        let stats = DiscoveryStats {
            algorithm: self.name(),
            elapsed: t0.elapsed(),
            groups_discovered: groups.len(),
            candidates_considered,
            ..Default::default()
        };
        DiscoveryOutcome { groups, stats }
    }
}

/// Lossy-counting frequent itemset mining over the stream of user
/// arrivals (each user's demographic transaction observed once).
#[derive(Debug, Clone, Default)]
pub struct StreamFimDiscovery {
    /// Miner configuration.
    pub config: StreamFimConfig,
}

impl StreamFimDiscovery {
    /// Backend with the given miner configuration.
    pub fn new(config: StreamFimConfig) -> Self {
        Self { config }
    }
}

impl GroupDiscovery for StreamFimDiscovery {
    fn name(&self) -> &'static str {
        "stream-fim"
    }

    fn discover(&self, data: &UserData, vocab: &Vocabulary) -> DiscoveryOutcome {
        let t0 = Instant::now();
        let mut miner = StreamMiner::new(self.config.clone());
        for u in data.users() {
            miner.observe(u.raw(), &vocab.user_tokens(data, u));
        }
        let candidates_considered = miner.table_size();
        let groups = miner.groups();
        let stats = DiscoveryStats {
            algorithm: self.name(),
            elapsed: t0.elapsed(),
            groups_discovered: groups.len(),
            candidates_considered,
            stream_n_seen: miner.n_seen(),
            stream_table_size: miner.table_size(),
            stream_evictions: miner.evictions(),
            ..Default::default()
        };
        DiscoveryOutcome { groups, stats }
    }
}

/// Plain-data selection of a merge layer, embeddable in engine
/// configuration. The engine supplies the support floor (its
/// `min_group_size`) where a strategy needs one; see
/// [`crate::sharded::MergeStrategy`] for the semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeSelection {
    /// Concatenate every part's groups unchanged.
    Union,
    /// Merge groups sharing a description by unioning their members.
    DedupByDescription,
    /// Re-evaluate each description globally (members, closure, support).
    #[default]
    SupportRecount,
}

impl MergeSelection {
    /// Materialize the strategy, supplying `min_support` where needed.
    pub fn strategy(self, min_support: usize) -> MergeStrategy {
        match self {
            Self::Union => MergeStrategy::Union,
            Self::DedupByDescription => MergeStrategy::DedupByDescription,
            Self::SupportRecount => MergeStrategy::SupportRecount { min_support },
        }
    }
}

/// Plain-data selection of a discovery backend, embeddable in engine
/// configuration (the engine derives support floors from its own
/// `min_group_size` where a variant leaves them implicit).
#[derive(Debug, Clone)]
pub enum DiscoverySelection {
    /// Closed frequent itemsets (the default offline path).
    Lcm {
        /// Maximum description length mined.
        max_description: usize,
        /// Hard cap on the discovered group space.
        max_groups: usize,
    },
    /// α-MOMRI multi-objective discovery.
    Momri {
        /// Optimizer configuration.
        config: MomriConfig,
        /// Result materialization policy.
        materialize: MomriMaterialize,
    },
    /// BIRCH CF-tree clustering.
    Birch {
        /// Branching factor.
        branching: usize,
        /// Absorption threshold.
        threshold: f64,
    },
    /// Lossy-counting stream FIM.
    StreamFim {
        /// Support threshold σ (fraction of the stream).
        support: f64,
        /// Error bound ε (< σ).
        epsilon: f64,
        /// Maximum itemset length.
        max_len: usize,
    },
    /// Run a base backend per member-disjoint shard on worker threads and
    /// fold the per-shard group spaces through a merge layer. `inner` must
    /// be one of the four base variants — shard an ensemble by sharding its
    /// members instead.
    Sharded {
        /// The base backend to run on every shard.
        inner: Box<DiscoverySelection>,
        /// Number of shards (workers).
        shards: usize,
        /// How members are assigned to shards.
        strategy: ShardStrategy,
        /// How per-shard group spaces fold into one.
        merge: MergeSelection,
    },
    /// Union several backends' group spaces behind one merge layer
    /// (e.g. LCM ∪ BIRCH: described and clustered groups side by side).
    Ensemble {
        /// The member backends, each itself any selection.
        members: Vec<DiscoverySelection>,
        /// How the member group spaces fold into one.
        merge: MergeSelection,
    },
}

impl Default for DiscoverySelection {
    fn default() -> Self {
        Self::Lcm {
            max_description: 4,
            max_groups: 100_000,
        }
    }
}

impl DiscoverySelection {
    /// Wrap this selection in a sharded driver with the default strategy
    /// (hash sharding, support-recount merge).
    pub fn sharded(self, shards: usize) -> Self {
        self.sharded_with(shards, ShardStrategy::Hash, MergeSelection::SupportRecount)
    }

    /// Wrap this selection in a sharded driver with explicit strategy and
    /// merge choices.
    pub fn sharded_with(
        self,
        shards: usize,
        strategy: ShardStrategy,
        merge: MergeSelection,
    ) -> Self {
        Self::Sharded {
            inner: Box::new(self),
            shards,
            strategy,
            merge,
        }
    }

    /// Combine several selections into an ensemble behind `merge`.
    pub fn ensemble(members: Vec<DiscoverySelection>, merge: MergeSelection) -> Self {
        Self::Ensemble { members, merge }
    }

    /// Materialize a base (non-composite) variant's concrete backend —
    /// the single place each variant's configuration becomes a backend
    /// value, shared by the plain and sharded paths of
    /// [`DiscoverySelection::backend`]. `None` for composite variants.
    fn base_backend(&self, min_group_size: usize) -> Option<BaseBackend> {
        Some(match self.clone() {
            Self::Lcm {
                max_description,
                max_groups,
            } => BaseBackend::Lcm(LcmDiscovery::new(LcmConfig {
                min_support: min_group_size,
                max_description,
                max_groups,
                emit_root: false,
            })),
            Self::Momri {
                config,
                materialize,
            } => BaseBackend::Momri(MomriDiscovery {
                config,
                materialize,
            }),
            Self::Birch {
                branching,
                threshold,
            } => BaseBackend::Birch(BirchDiscovery {
                branching,
                threshold,
                min_cluster_size: min_group_size,
            }),
            Self::StreamFim {
                support,
                epsilon,
                max_len,
            } => BaseBackend::StreamFim(StreamFimDiscovery::new(StreamFimConfig {
                support,
                epsilon,
                max_len,
            })),
            Self::Sharded { .. } | Self::Ensemble { .. } => return None,
        })
    }

    /// Materialize the selected backend. `min_group_size` supplies support
    /// floors for variants that key off group size. Composite variants
    /// merge with auto-sized recount parallelism and one closure exchange
    /// round (the exactness default); see
    /// [`DiscoverySelection::backend_with`] for explicit knobs.
    ///
    /// # Panics
    /// If a [`DiscoverySelection::Sharded`] wraps anything but the four
    /// base variants (nest the other way round: ensemble of sharded).
    pub fn backend(&self, min_group_size: usize) -> Box<dyn GroupDiscovery> {
        self.backend_with(min_group_size, 0, 1)
    }

    /// As [`DiscoverySelection::backend`], with an explicit worker count
    /// for the composite variants' merge recount (`0` = available
    /// parallelism — purely a performance knob: the merged group space is
    /// byte-identical at any count) and an explicit cross-shard closure
    /// exchange round count (`0` disables the exchange and with it the
    /// oversharded-regime exactness guarantee; see
    /// [`crate::sharded::MergeContext::exchange_rounds`]).
    ///
    /// # Panics
    /// As [`DiscoverySelection::backend`].
    pub fn backend_with(
        &self,
        min_group_size: usize,
        merge_threads: usize,
        exchange_rounds: usize,
    ) -> Box<dyn GroupDiscovery> {
        match self {
            Self::Sharded {
                inner,
                shards,
                strategy,
                merge,
            } => {
                let merge = merge.strategy(min_group_size);
                // `ShardedDiscovery` is generic over a concrete, clonable
                // backend (each shard runs an adapted copy), so the base
                // variants are wrapped per concrete type.
                let base = inner.base_backend(min_group_size).unwrap_or_else(|| {
                    panic!(
                        "DiscoverySelection::Sharded composes over a base backend; \
                         to shard an ensemble, shard its members instead"
                    )
                });
                fn wrap<B: GroupDiscovery + crate::sharded::ShardScaled + Sync + 'static>(
                    backend: B,
                    shards: usize,
                    strategy: ShardStrategy,
                    merge: MergeStrategy,
                    merge_threads: usize,
                    exchange_rounds: usize,
                ) -> Box<dyn GroupDiscovery> {
                    Box::new(
                        ShardedDiscovery::new(backend, shards)
                            .with_strategy(strategy)
                            .with_merge(merge)
                            .with_merge_threads(merge_threads)
                            .with_exchange_rounds(exchange_rounds),
                    )
                }
                match base {
                    BaseBackend::Lcm(b) => {
                        wrap(b, *shards, *strategy, merge, merge_threads, exchange_rounds)
                    }
                    BaseBackend::Momri(b) => {
                        wrap(b, *shards, *strategy, merge, merge_threads, exchange_rounds)
                    }
                    BaseBackend::Birch(b) => {
                        wrap(b, *shards, *strategy, merge, merge_threads, exchange_rounds)
                    }
                    BaseBackend::StreamFim(b) => {
                        wrap(b, *shards, *strategy, merge, merge_threads, exchange_rounds)
                    }
                }
            }
            Self::Ensemble { members, merge } => {
                let mut ensemble = EnsembleDiscovery::new(merge.strategy(min_group_size))
                    .with_merge_threads(merge_threads)
                    .with_exchange_rounds(exchange_rounds);
                for member in members {
                    ensemble.push(member.backend_with(
                        min_group_size,
                        merge_threads,
                        exchange_rounds,
                    ));
                }
                Box::new(ensemble)
            }
            base => match base.base_backend(min_group_size).expect("base variant") {
                BaseBackend::Lcm(b) => Box::new(b),
                BaseBackend::Momri(b) => Box::new(b),
                BaseBackend::Birch(b) => Box::new(b),
                BaseBackend::StreamFim(b) => Box::new(b),
            },
        }
    }
}

/// A materialized base-variant backend (see
/// [`DiscoverySelection::base_backend`]).
enum BaseBackend {
    Lcm(LcmDiscovery),
    Momri(MomriDiscovery),
    Birch(BirchDiscovery),
    StreamFim(StreamFimDiscovery),
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexus_data::synthetic::{bookcrossing, BookCrossingConfig};

    fn fixture() -> (vexus_data::UserData, Vocabulary) {
        let ds = bookcrossing(&BookCrossingConfig::tiny());
        let vocab = Vocabulary::build(&ds.data);
        (ds.data, vocab)
    }

    #[test]
    fn lcm_backend_mines_a_rich_space() {
        let (data, vocab) = fixture();
        let out = LcmDiscovery::new(LcmConfig {
            min_support: 10,
            ..Default::default()
        })
        .discover(&data, &vocab);
        assert!(out.groups.len() > 20, "got {}", out.groups.len());
        assert_eq!(out.stats.algorithm, "lcm");
        assert_eq!(out.stats.groups_discovered, out.groups.len());
    }

    #[test]
    fn momri_materialization_modes_nest() {
        let (data, vocab) = fixture();
        let base = MomriDiscovery::default();
        let candidates = base.discover(&data, &vocab);
        let best = MomriDiscovery {
            materialize: MomriMaterialize::BestSolution,
            ..base.clone()
        }
        .discover(&data, &vocab);
        let union = MomriDiscovery {
            materialize: MomriMaterialize::FrontUnion,
            ..base
        }
        .discover(&data, &vocab);
        assert!(!best.groups.is_empty());
        assert!(best.groups.len() <= union.groups.len());
        assert!(union.groups.len() <= candidates.groups.len());
        assert_eq!(
            candidates.stats.candidates_considered,
            candidates.groups.len()
        );
    }

    #[test]
    fn birch_backend_owns_featurization() {
        let (data, vocab) = fixture();
        let out = BirchDiscovery::default().discover(&data, &vocab);
        assert!(!out.groups.is_empty());
        // Cluster groups carry no token description.
        assert!(out.groups.iter().all(|(_, g)| g.description.is_empty()));
        // No group smaller than the floor.
        assert!(out.groups.iter().all(|(_, g)| g.size() >= 5));
        assert_eq!(out.stats.algorithm, "birch");
    }

    #[test]
    fn stream_backend_observes_every_user_once() {
        let (data, vocab) = fixture();
        let out = StreamFimDiscovery::new(StreamFimConfig {
            support: 0.05,
            epsilon: 0.01,
            max_len: 3,
        })
        .discover(&data, &vocab);
        assert!(!out.groups.is_empty());
        assert!(out.groups.iter().all(|(_, g)| !g.description.is_empty()));
        // Stream telemetry surfaces in the stats.
        assert_eq!(out.stats.stream_n_seen, data.n_users() as u64);
        assert_eq!(out.stats.stream_table_size, out.stats.candidates_considered);
    }

    #[test]
    fn non_stream_backends_report_zero_stream_telemetry() {
        let (data, vocab) = fixture();
        let out = LcmDiscovery::default().discover(&data, &vocab);
        assert_eq!(out.stats.stream_n_seen, 0);
        assert_eq!(out.stats.stream_table_size, 0);
        assert_eq!(out.stats.stream_evictions, 0);
    }

    #[test]
    fn selection_builds_every_backend() {
        let (data, vocab) = fixture();
        let selections = [
            DiscoverySelection::default(),
            DiscoverySelection::Momri {
                config: MomriConfig::default(),
                materialize: MomriMaterialize::Candidates,
            },
            DiscoverySelection::Birch {
                branching: 10,
                threshold: 1.6,
            },
            DiscoverySelection::StreamFim {
                support: 0.05,
                epsilon: 0.01,
                max_len: 3,
            },
        ];
        for sel in selections {
            let backend = sel.backend(5);
            let out = backend.discover(&data, &vocab);
            assert!(
                !out.groups.is_empty(),
                "backend {} produced no groups",
                backend.name()
            );
            assert_eq!(out.stats.algorithm, backend.name());
        }
    }

    #[test]
    fn discovery_is_deterministic() {
        let (data, vocab) = fixture();
        for backend in [
            DiscoverySelection::default().backend(5),
            DiscoverySelection::Birch {
                branching: 10,
                threshold: 1.6,
            }
            .backend(5),
        ] {
            let a = backend.discover(&data, &vocab);
            let b = backend.discover(&data, &vocab);
            assert_eq!(a.groups.len(), b.groups.len());
            for ((_, ga), (_, gb)) in a.groups.iter().zip(b.groups.iter()) {
                assert_eq!(ga.description, gb.description);
                assert_eq!(ga.members.as_slice(), gb.members.as_slice());
            }
        }
    }
}
