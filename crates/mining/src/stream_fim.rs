//! In-core frequent itemset mining over streams (Jin & Agrawal, ICDM'05
//! \[9\]) — the paper's STREAMMINING plug-in for user-data streams.
//!
//! We implement the **lossy counting** family the original algorithm builds
//! on: the stream of user transactions is processed in buckets of width
//! `⌈1/ε⌉`; an in-core table maps each tracked itemset to `(count, Δ)`
//! where Δ is the bucket at insertion (the maximum undercount). At every
//! bucket boundary, entries with `count + Δ ≤ current_bucket` are evicted.
//! The guarantees are the classic ones:
//!
//! * no false negatives for true frequency ≥ `σ·N`,
//! * reported counts undercount by at most `ε·N`,
//! * memory is `O((1/ε)·log(εN))` table entries per itemset length.
//!
//! Itemsets are enumerated per transaction up to `max_len`. VEXUS
//! transactions are short (one token per demographic attribute), so the
//! subset enumeration is small and bounded.
//!
//! Because a one-pass stream cannot retroactively list members of an
//! itemset observed before the itemset was tracked, each entry accumulates
//! its members *since insertion*; reported member sets are therefore
//! subsets of the true extent with the same ε guarantee. The engine treats
//! stream groups as approximate by construction.

use crate::bitmap::MemberSet;
use crate::group::{Group, GroupSet};
use std::collections::HashMap;
use vexus_data::TokenId;

/// Configuration for the lossy-counting stream miner.
#[derive(Debug, Clone)]
pub struct StreamFimConfig {
    /// Support threshold σ as a fraction of the stream length.
    pub support: f64,
    /// Error bound ε (< σ); bucket width is `⌈1/ε⌉`.
    pub epsilon: f64,
    /// Maximum itemset length enumerated per transaction.
    pub max_len: usize,
}

impl Default for StreamFimConfig {
    fn default() -> Self {
        Self {
            support: 0.05,
            epsilon: 0.01,
            max_len: 3,
        }
    }
}

#[derive(Debug)]
struct Entry {
    count: u64,
    delta: u64,
    members: Vec<u32>,
}

/// One tracked itemset in a [`MinerState`] export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinerEntry {
    /// The itemset (sorted ascending, as observed).
    pub itemset: Vec<TokenId>,
    /// Occurrences since the entry was (last) inserted.
    pub count: u64,
    /// Lossy-counting insertion delta (maximum undercount).
    pub delta: u64,
    /// Users observed carrying the itemset since insertion, sorted.
    pub members: Vec<u32>,
}

/// The miner's complete mutable state in canonical order — what a live
/// checkpoint embeds (see [`StreamMiner::export_state`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MinerState {
    /// Tracked entries, sorted by itemset.
    pub entries: Vec<MinerEntry>,
    /// Transactions processed so far.
    pub n_seen: u64,
    /// Lifetime evictions.
    pub evictions: u64,
}

/// One-pass lossy-counting miner over a stream of `(user, tokens)`
/// transactions.
#[derive(Debug)]
pub struct StreamMiner {
    cfg: StreamFimConfig,
    table: HashMap<Vec<TokenId>, Entry>,
    bucket_width: u64,
    n_seen: u64,
    evictions: u64,
}

impl StreamMiner {
    /// New miner.
    ///
    /// # Panics
    /// Panics unless `0 < ε ≤ σ ≤ 1` and `max_len ≥ 1`.
    pub fn new(cfg: StreamFimConfig) -> Self {
        assert!(cfg.epsilon > 0.0 && cfg.epsilon <= cfg.support && cfg.support <= 1.0);
        assert!(cfg.max_len >= 1);
        let bucket_width = (1.0 / cfg.epsilon).ceil() as u64;
        Self {
            cfg,
            table: HashMap::new(),
            bucket_width,
            n_seen: 0,
            evictions: 0,
        }
    }

    /// Transactions processed so far.
    pub fn n_seen(&self) -> u64 {
        self.n_seen
    }

    /// Entries currently held in-core.
    pub fn table_size(&self) -> usize {
        self.table.len()
    }

    /// Itemset entries evicted by bucket-boundary pruning over the miner's
    /// lifetime — the telemetry counterpart of the memory bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Process one transaction. `tokens` must be sorted ascending.
    pub fn observe(&mut self, user: u32, tokens: &[TokenId]) {
        debug_assert!(
            tokens.windows(2).all(|w| w[0] < w[1]),
            "tokens must be sorted"
        );
        self.n_seen += 1;
        let bucket = self.current_bucket();
        let mut subset = Vec::with_capacity(self.cfg.max_len);
        Self::enumerate(
            tokens,
            &mut subset,
            self.cfg.max_len,
            &mut |itemset: &Vec<TokenId>| match self.table.get_mut(itemset) {
                Some(e) => {
                    e.count += 1;
                    e.members.push(user);
                }
                None => {
                    self.table.insert(
                        itemset.clone(),
                        Entry {
                            count: 1,
                            delta: bucket - 1,
                            members: vec![user],
                        },
                    );
                }
            },
        );
        if self.n_seen.is_multiple_of(self.bucket_width) {
            self.prune(bucket);
        }
    }

    fn current_bucket(&self) -> u64 {
        self.n_seen.div_ceil(self.bucket_width).max(1)
    }

    fn prune(&mut self, bucket: u64) {
        let before = self.table.len();
        self.table.retain(|_, e| e.count + e.delta > bucket);
        self.evictions += (before - self.table.len()) as u64;
    }

    fn enumerate(
        tokens: &[TokenId],
        current: &mut Vec<TokenId>,
        max_len: usize,
        emit: &mut impl FnMut(&Vec<TokenId>),
    ) {
        for (i, &t) in tokens.iter().enumerate() {
            current.push(t);
            emit(current);
            if current.len() < max_len {
                Self::enumerate(&tokens[i + 1..], current, max_len, emit);
            }
            current.pop();
        }
    }

    /// Export the miner's complete mutable state in canonical order, for
    /// checkpointing. Entries are sorted by itemset (ascending) and each
    /// entry's members are sorted — safe because member order never
    /// reaches any output: every user is observed at most once per entry,
    /// and [`StreamMiner::groups`] sorts members into a [`MemberSet`]
    /// anyway. Canonical ordering makes the export (and hence a checkpoint
    /// embedding it) a pure function of the logical miner state.
    pub fn export_state(&self) -> MinerState {
        let mut entries: Vec<MinerEntry> = self
            .table
            .iter()
            .map(|(itemset, e)| {
                let mut members = e.members.clone();
                members.sort_unstable();
                MinerEntry {
                    itemset: itemset.clone(),
                    count: e.count,
                    delta: e.delta,
                    members,
                }
            })
            .collect();
        entries.sort_by(|a, b| a.itemset.cmp(&b.itemset));
        MinerState {
            entries,
            n_seen: self.n_seen,
            evictions: self.evictions,
        }
    }

    /// Rebuild a miner from exported state. The reconstruction is
    /// observation-equivalent to the original: counts, insertion deltas,
    /// bucket position (`n_seen`) and eviction telemetry all resume
    /// exactly, so feeding both miners the same subsequent transactions
    /// yields identical [`StreamMiner::groups`] output.
    ///
    /// # Panics
    /// Panics on an invalid `cfg`, exactly like [`StreamMiner::new`] —
    /// state decoding validates file contents, but the configuration comes
    /// from the caller.
    pub fn from_state(cfg: StreamFimConfig, state: MinerState) -> Self {
        let mut miner = Self::new(cfg);
        miner.n_seen = state.n_seen;
        miner.evictions = state.evictions;
        miner.table = state
            .entries
            .into_iter()
            .map(|e| {
                (
                    e.itemset,
                    Entry {
                        count: e.count,
                        delta: e.delta,
                        members: e.members,
                    },
                )
            })
            .collect();
        miner
    }

    /// Itemsets whose *guaranteed* frequency clears `(σ − ε)·N`, with their
    /// tracked counts — the standard lossy-counting query.
    pub fn frequent_itemsets(&self) -> Vec<(Vec<TokenId>, u64)> {
        let n = self.n_seen as f64;
        let threshold = ((self.cfg.support - self.cfg.epsilon) * n).max(0.0);
        let mut out: Vec<(Vec<TokenId>, u64)> = self
            .table
            .iter()
            .filter(|(_, e)| e.count as f64 >= threshold)
            .map(|(k, e)| (k.clone(), e.count))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Materialize the frequent itemsets as groups (members are the users
    /// observed carrying the itemset since it was tracked).
    pub fn groups(&self) -> GroupSet {
        let n = self.n_seen as f64;
        let threshold = ((self.cfg.support - self.cfg.epsilon) * n).max(0.0);
        let mut entries: Vec<(&Vec<TokenId>, &Entry)> = self
            .table
            .iter()
            .filter(|(_, e)| e.count as f64 >= threshold)
            .collect();
        entries.sort_by(|a, b| b.1.count.cmp(&a.1.count).then_with(|| a.0.cmp(b.0)));
        let mut gs = GroupSet::new();
        for (itemset, e) in entries {
            gs.push(Group::new(
                itemset.clone(),
                MemberSet::from_unsorted(e.members.clone()),
            ));
        }
        gs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn toks(v: &[u32]) -> Vec<TokenId> {
        v.iter().map(|&t| TokenId::new(t)).collect()
    }

    /// Exact counts of all itemsets up to `max_len` (test oracle).
    fn exact_counts(stream: &[Vec<TokenId>], max_len: usize) -> HashMap<Vec<TokenId>, u64> {
        let mut counts = HashMap::new();
        for tx in stream {
            let mut cur = Vec::new();
            StreamMiner::enumerate(tx, &mut cur, max_len, &mut |s: &Vec<TokenId>| {
                *counts.entry(s.clone()).or_insert(0) += 1;
            });
        }
        counts
    }

    fn synthetic_stream(n: usize) -> Vec<Vec<TokenId>> {
        // Tokens 0,1 co-occur in 40% of transactions; token 2 in 30%;
        // tokens 3.. are rare noise.
        (0..n)
            .map(|i| {
                let mut t = Vec::new();
                if i % 5 < 2 {
                    t.extend_from_slice(&[0, 1]);
                }
                if i % 10 < 3 {
                    t.push(2);
                }
                t.push(3 + (i % 37) as u32);
                toks(
                    &t.into_iter()
                        .collect::<std::collections::BTreeSet<_>>()
                        .into_iter()
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    #[test]
    fn no_false_negatives() {
        let stream = synthetic_stream(5_000);
        let cfg = StreamFimConfig {
            support: 0.2,
            epsilon: 0.02,
            max_len: 2,
        };
        let mut miner = StreamMiner::new(cfg.clone());
        for (u, tx) in stream.iter().enumerate() {
            miner.observe(u as u32, tx);
        }
        let exact = exact_counts(&stream, 2);
        let reported: std::collections::HashSet<Vec<TokenId>> = miner
            .frequent_itemsets()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let n = stream.len() as f64;
        for (itemset, count) in &exact {
            if *count as f64 >= cfg.support * n {
                assert!(
                    reported.contains(itemset),
                    "missed truly frequent itemset {itemset:?} (count {count})"
                );
            }
        }
    }

    #[test]
    fn counts_undercount_by_at_most_epsilon_n() {
        let stream = synthetic_stream(3_000);
        let cfg = StreamFimConfig {
            support: 0.2,
            epsilon: 0.02,
            max_len: 2,
        };
        let mut miner = StreamMiner::new(cfg.clone());
        for (u, tx) in stream.iter().enumerate() {
            miner.observe(u as u32, tx);
        }
        let exact = exact_counts(&stream, 2);
        let slack = cfg.epsilon * stream.len() as f64;
        for (itemset, count) in miner.frequent_itemsets() {
            let truth = exact[&itemset];
            assert!(count <= truth, "overcounted {itemset:?}");
            assert!(
                (truth - count) as f64 <= slack,
                "undercounted {itemset:?} by {} > εN {slack}",
                truth - count
            );
        }
    }

    #[test]
    fn memory_stays_bounded() {
        let stream = synthetic_stream(20_000);
        let mut miner = StreamMiner::new(StreamFimConfig {
            support: 0.1,
            epsilon: 0.05,
            max_len: 2,
        });
        let mut peak = 0;
        for (u, tx) in stream.iter().enumerate() {
            miner.observe(u as u32, tx);
            peak = peak.max(miner.table_size());
        }
        // The noise universe alone has 37 singleton tokens + pairs; lossy
        // counting must keep the table well below the exact-table size.
        let exact_table = exact_counts(&stream, 2).len();
        assert!(
            peak < exact_table,
            "peak table {peak} should undercut exact table {exact_table}"
        );
        assert_eq!(miner.n_seen(), 20_000);
        // The bound is enforced by eviction, and the counter sees it.
        assert!(miner.evictions() > 0, "pruning must have evicted entries");
        assert!(miner.evictions() as usize >= exact_table - miner.table_size());
    }

    #[test]
    fn evictions_start_at_zero_and_count_pruned_entries() {
        let mut miner = StreamMiner::new(StreamFimConfig {
            support: 0.5,
            epsilon: 0.5, // bucket width 2: prune every other transaction
            max_len: 1,
        });
        assert_eq!(miner.evictions(), 0);
        // Two distinct singletons, each seen once: at the first bucket
        // boundary both have count + Δ = 1 ≤ 1 → evicted.
        miner.observe(0, &toks(&[0]));
        miner.observe(1, &toks(&[1]));
        assert_eq!(miner.evictions(), 2);
        assert_eq!(miner.table_size(), 0);
    }

    #[test]
    fn groups_carry_members_and_descriptions() {
        let stream = synthetic_stream(1_000);
        let mut miner = StreamMiner::new(StreamFimConfig {
            support: 0.25,
            epsilon: 0.05,
            max_len: 2,
        });
        for (u, tx) in stream.iter().enumerate() {
            miner.observe(u as u32, tx);
        }
        let gs = miner.groups();
        assert!(!gs.is_empty());
        for (_, g) in gs.iter() {
            assert!(!g.description.is_empty());
            assert!(!g.members.is_empty());
        }
        // The heavy pair {0,1} must surface as a group.
        assert!(
            gs.iter().any(|(_, g)| g.description == toks(&[0, 1])),
            "pair group missing"
        );
    }

    /// The checkpoint contract: export → import resumes the stream
    /// exactly — after observing the same suffix, the rebuilt miner's
    /// groups, telemetry, and re-export all match the uninterrupted run.
    #[test]
    fn exported_state_resumes_byte_equivalently() {
        let stream = synthetic_stream(2_000);
        let cfg = StreamFimConfig {
            support: 0.2,
            epsilon: 0.02,
            max_len: 2,
        };
        let split = 1_234;
        let mut uninterrupted = StreamMiner::new(cfg.clone());
        let mut prefix = StreamMiner::new(cfg.clone());
        for (u, tx) in stream[..split].iter().enumerate() {
            uninterrupted.observe(u as u32, tx);
            prefix.observe(u as u32, tx);
        }
        let state = prefix.export_state();
        // Export is canonical: entries strictly ascending by itemset.
        assert!(state
            .entries
            .windows(2)
            .all(|w| w[0].itemset < w[1].itemset));
        let mut resumed = StreamMiner::from_state(cfg, state.clone());
        for (u, tx) in stream.iter().enumerate().skip(split) {
            uninterrupted.observe(u as u32, tx);
            resumed.observe(u as u32, tx);
        }
        assert_eq!(resumed.n_seen(), uninterrupted.n_seen());
        assert_eq!(resumed.evictions(), uninterrupted.evictions());
        assert_eq!(resumed.table_size(), uninterrupted.table_size());
        assert_eq!(resumed.groups(), uninterrupted.groups());
        assert_eq!(
            resumed.frequent_itemsets(),
            uninterrupted.frequent_itemsets()
        );
        // And the next export is canonical-equal, so a checkpoint of a
        // recovered run is byte-identical to one of an uninterrupted run.
        assert_eq!(resumed.export_state(), uninterrupted.export_state());
        // Idempotence without further observations.
        let again = StreamMiner::from_state(
            StreamFimConfig {
                support: 0.2,
                epsilon: 0.02,
                max_len: 2,
            },
            state.clone(),
        );
        assert_eq!(again.export_state(), state);
    }

    #[test]
    fn empty_stream_reports_nothing() {
        let miner = StreamMiner::new(StreamFimConfig::default());
        assert!(miner.frequent_itemsets().is_empty());
        assert!(miner.groups().is_empty());
    }

    #[test]
    #[should_panic]
    fn epsilon_above_support_panics() {
        StreamMiner::new(StreamFimConfig {
            support: 0.01,
            epsilon: 0.1,
            max_len: 2,
        });
    }

    #[test]
    fn max_len_bounds_enumeration() {
        let mut miner = StreamMiner::new(StreamFimConfig {
            support: 0.01,
            epsilon: 0.01,
            max_len: 2,
        });
        miner.observe(0, &toks(&[0, 1, 2, 3]));
        // 4 singletons + 6 pairs = 10 itemsets, no triples.
        assert_eq!(miner.table_size(), 10);
    }
}
