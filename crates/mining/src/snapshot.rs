//! Snapshot codec for the group space (`0x1x` section tags) and the live
//! stream-miner state (`0x7x` tags).
//!
//! A [`GroupSet`] flattens into four `u32` arrays — description offsets +
//! tokens, member offsets + member ids — the same offsets-plus-payload
//! shape the CSR index already uses. Decoding hands every group's member
//! set back as a zero-copy [`MemberSet::from_shared`] view into the loaded
//! buffer: the dominant payload (member ids) costs no per-group
//! allocations. Descriptions are short (a handful of tokens) and live in
//! `HashMap` keys and move-heavy merge paths, so they are rebuilt as owned
//! `Vec<TokenId>`s.
//!
//! The stream-state codec persists a [`DeltaDiscovery`] driver — the
//! lossy-counting table in canonical order, the stream clock, and the
//! per-user arrival bits — so a live-engine checkpoint can resume
//! discovery observation-equivalent to an uninterrupted run (the crash
//! -recovery byte-identity oracle rests on this).

use crate::bitmap::MemberSet;
use crate::delta::DeltaDiscovery;
use crate::group::{Group, GroupSet};
use crate::stream_fim::{MinerEntry, MinerState, StreamFimConfig, StreamMiner};
use vexus_data::snapshot::{all_bounded, runs_sorted, validate_offsets};
use vexus_data::{SnapshotError, SnapshotReader, SnapshotWriter, TokenId};

/// Group-description offsets: `n_groups + 1` token offsets.
pub const TAG_GROUP_DESC_OFFSETS: u32 = 0x10;
/// Concatenated description tokens, group-major.
pub const TAG_GROUP_DESC_TOKENS: u32 = 0x11;
/// Group-member offsets: `n_groups + 1` member offsets.
pub const TAG_GROUP_MEMBER_OFFSETS: u32 = 0x12;
/// Concatenated sorted member ids, group-major.
pub const TAG_GROUP_MEMBERS: u32 = 0x13;

/// Encode the group space into its `0x1x` sections.
pub fn encode_group_set(groups: &GroupSet, w: &mut SnapshotWriter) {
    let mut desc_offsets = Vec::with_capacity(groups.len() + 1);
    let mut member_offsets = Vec::with_capacity(groups.len() + 1);
    let mut tokens = Vec::new();
    let mut members = Vec::new();
    desc_offsets.push(0u32);
    member_offsets.push(0u32);
    for (_, g) in groups.iter() {
        tokens.extend(g.description.iter().map(|t| t.raw()));
        desc_offsets.push(tokens.len() as u32);
        members.extend_from_slice(g.members.as_slice());
        member_offsets.push(members.len() as u32);
    }
    w.section_words(TAG_GROUP_DESC_OFFSETS, &desc_offsets);
    w.section_words(TAG_GROUP_DESC_TOKENS, &tokens);
    w.section_words(TAG_GROUP_MEMBER_OFFSETS, &member_offsets);
    w.section_words(TAG_GROUP_MEMBERS, &members);
}

/// Decode the group space written by [`encode_group_set`], validating every
/// structural invariant the engine relies on: offset tables monotone and
/// exactly covering their payloads, descriptions strictly ascending token
/// ids below `n_tokens`, member lists strictly ascending user indices below
/// `n_users`.
pub fn decode_group_set(
    r: &SnapshotReader,
    n_users: usize,
    n_tokens: usize,
) -> Result<GroupSet, SnapshotError> {
    let desc_offsets = r.section_words(TAG_GROUP_DESC_OFFSETS)?;
    let tokens = r.section_words(TAG_GROUP_DESC_TOKENS)?;
    let member_offsets = r.section_words(TAG_GROUP_MEMBER_OFFSETS)?;
    let members = r.section_words(TAG_GROUP_MEMBERS)?;
    validate_offsets(
        TAG_GROUP_DESC_OFFSETS,
        &desc_offsets,
        tokens.len(),
        "bad description offsets",
    )?;
    validate_offsets(
        TAG_GROUP_MEMBER_OFFSETS,
        &member_offsets,
        members.len(),
        "bad member offsets",
    )?;
    if desc_offsets.len() != member_offsets.len() {
        return Err(SnapshotError::Malformed {
            tag: TAG_GROUP_MEMBER_OFFSETS,
            what: "description/member group counts disagree",
        });
    }
    // Array-global validation: bounds are one vectorized `max` reduction
    // per payload, per-list strict ascent is one flat violation-counting
    // pass ([`runs_sorted`]) — the construction loop below stays pure.
    if !all_bounded(tokens.as_slice(), n_tokens)
        || !runs_sorted(tokens.as_slice(), desc_offsets.as_slice(), |a, b| a >= b)
    {
        return Err(SnapshotError::Malformed {
            tag: TAG_GROUP_DESC_TOKENS,
            what: "description tokens not strictly ascending in vocabulary",
        });
    }
    if !all_bounded(members.as_slice(), n_users)
        || !runs_sorted(members.as_slice(), member_offsets.as_slice(), |a, b| a >= b)
    {
        return Err(SnapshotError::Malformed {
            tag: TAG_GROUP_MEMBERS,
            what: "member ids not strictly ascending below the user count",
        });
    }
    let n_groups = desc_offsets.len() - 1;
    let mut out = Vec::with_capacity(n_groups);
    for i in 0..n_groups {
        let (dlo, dhi) = (desc_offsets[i] as usize, desc_offsets[i + 1] as usize);
        let desc = &tokens.as_slice()[dlo..dhi];
        let (mlo, mhi) = (member_offsets[i] as usize, member_offsets[i + 1] as usize);
        out.push(Group {
            description: desc.iter().map(|&t| TokenId::new(t)).collect(),
            members: MemberSet::from_shared(
                members
                    .slice(mlo, mhi - mlo)
                    .expect("validated member range"),
            ),
        });
    }
    Ok(GroupSet::from_groups(out))
}

/// Stream-state META: `[n_seen_lo, n_seen_hi, evictions_lo, evictions_hi,
/// arrivals_lo, arrivals_hi, n_entries, n_users]`.
pub const TAG_STREAM_META: u32 = 0x70;
/// Miner-table itemset offsets: `n_entries + 1` token offsets.
pub const TAG_STREAM_KEY_OFFSETS: u32 = 0x71;
/// Concatenated itemset tokens, entry-major (entries in canonical —
/// itemset-ascending — order).
pub const TAG_STREAM_KEY_TOKENS: u32 = 0x72;
/// Per-entry counts, two words each (`lo, hi`).
pub const TAG_STREAM_COUNTS: u32 = 0x73;
/// Per-entry lossy-counting insertion deltas, two words each.
pub const TAG_STREAM_DELTAS: u32 = 0x74;
/// Miner-table member offsets: `n_entries + 1` member offsets.
pub const TAG_STREAM_MEMBER_OFFSETS: u32 = 0x75;
/// Concatenated sorted member ids, entry-major.
pub const TAG_STREAM_MEMBERS: u32 = 0x76;
/// Per-user arrival bits, packed 32 per word (bit `u % 32` of word
/// `u / 32`); trailing bits past `n_users` are zero.
pub const TAG_STREAM_SEEN: u32 = 0x77;

fn split(v: u64) -> [u32; 2] {
    [v as u32, (v >> 32) as u32]
}

fn join(lo: u32, hi: u32) -> u64 {
    lo as u64 | ((hi as u64) << 32)
}

/// Encode a [`DeltaDiscovery`] driver's mutable state into its `0x7x`
/// sections. The encoding is canonical — a pure function of the logical
/// state (see [`StreamMiner::export_state`]) — so two drivers in the same
/// state encode byte-identically regardless of history.
pub fn encode_stream_state(dd: &DeltaDiscovery, w: &mut SnapshotWriter) {
    let state = dd.miner().export_state();
    let seen = dd.seen();
    let mut meta = Vec::with_capacity(8);
    meta.extend(split(state.n_seen));
    meta.extend(split(state.evictions));
    meta.extend(split(dd.arrivals()));
    meta.push(state.entries.len() as u32);
    meta.push(seen.len() as u32);
    w.section_words(TAG_STREAM_META, &meta);

    let mut key_offsets = Vec::with_capacity(state.entries.len() + 1);
    let mut member_offsets = Vec::with_capacity(state.entries.len() + 1);
    let mut keys = Vec::new();
    let mut members = Vec::new();
    let mut counts = Vec::with_capacity(state.entries.len() * 2);
    let mut deltas = Vec::with_capacity(state.entries.len() * 2);
    key_offsets.push(0u32);
    member_offsets.push(0u32);
    for e in &state.entries {
        keys.extend(e.itemset.iter().map(|t| t.raw()));
        key_offsets.push(keys.len() as u32);
        members.extend_from_slice(&e.members);
        member_offsets.push(members.len() as u32);
        counts.extend(split(e.count));
        deltas.extend(split(e.delta));
    }
    w.section_words(TAG_STREAM_KEY_OFFSETS, &key_offsets);
    w.section_words(TAG_STREAM_KEY_TOKENS, &keys);
    w.section_words(TAG_STREAM_COUNTS, &counts);
    w.section_words(TAG_STREAM_DELTAS, &deltas);
    w.section_words(TAG_STREAM_MEMBER_OFFSETS, &member_offsets);
    w.section_words(TAG_STREAM_MEMBERS, &members);

    let mut packed = vec![0u32; seen.len().div_ceil(32)];
    for (u, &s) in seen.iter().enumerate() {
        if s {
            packed[u / 32] |= 1 << (u % 32);
        }
    }
    w.section_words(TAG_STREAM_SEEN, &packed);
}

/// Decode the stream state written by [`encode_stream_state`] and
/// reassemble the driver. `cfg` and `min_group_size` come from the
/// caller's engine configuration (a checkpoint loader cross-checks them
/// against its own META before calling); `prev` is the group space the
/// next epoch cut must diff against (the checkpoint's engine space);
/// `epochs_cut` restores the cut counter. Every structural invariant the
/// miner relies on is validated — offsets, canonical entry order, sorted
/// itemsets and member lists, bit padding — so restamped corruption
/// surfaces as a typed error, never a panic or silent wrong state.
#[allow(clippy::too_many_arguments)]
pub fn decode_stream_state(
    r: &SnapshotReader,
    cfg: StreamFimConfig,
    min_group_size: usize,
    n_users: usize,
    n_tokens: usize,
    prev: GroupSet,
    epochs_cut: u64,
) -> Result<DeltaDiscovery, SnapshotError> {
    let meta = r.section_words(TAG_STREAM_META)?;
    let meta = meta.as_slice();
    if meta.len() != 8 {
        return Err(SnapshotError::Malformed {
            tag: TAG_STREAM_META,
            what: "stream META is not eight words",
        });
    }
    let n_seen = join(meta[0], meta[1]);
    let evictions = join(meta[2], meta[3]);
    let arrivals = join(meta[4], meta[5]);
    let n_entries = meta[6] as usize;
    if meta[7] as usize != n_users {
        return Err(SnapshotError::Malformed {
            tag: TAG_STREAM_META,
            what: "stream user universe does not match the dataset",
        });
    }

    let key_offsets = r.section_words(TAG_STREAM_KEY_OFFSETS)?;
    let keys = r.section_words(TAG_STREAM_KEY_TOKENS)?;
    let counts = r.section_words(TAG_STREAM_COUNTS)?;
    let deltas = r.section_words(TAG_STREAM_DELTAS)?;
    let member_offsets = r.section_words(TAG_STREAM_MEMBER_OFFSETS)?;
    let members = r.section_words(TAG_STREAM_MEMBERS)?;
    if key_offsets.len() != n_entries + 1 || member_offsets.len() != n_entries + 1 {
        return Err(SnapshotError::Malformed {
            tag: TAG_STREAM_KEY_OFFSETS,
            what: "offset tables disagree with the META entry count",
        });
    }
    if counts.len() != n_entries * 2 || deltas.len() != n_entries * 2 {
        return Err(SnapshotError::Malformed {
            tag: TAG_STREAM_COUNTS,
            what: "count/delta tables disagree with the META entry count",
        });
    }
    validate_offsets(
        TAG_STREAM_KEY_OFFSETS,
        &key_offsets,
        keys.len(),
        "bad itemset offsets",
    )?;
    validate_offsets(
        TAG_STREAM_MEMBER_OFFSETS,
        &member_offsets,
        members.len(),
        "bad member offsets",
    )?;
    if !all_bounded(keys.as_slice(), n_tokens)
        || !runs_sorted(keys.as_slice(), key_offsets.as_slice(), |a, b| a >= b)
    {
        return Err(SnapshotError::Malformed {
            tag: TAG_STREAM_KEY_TOKENS,
            what: "itemset tokens not strictly ascending in vocabulary",
        });
    }
    if !all_bounded(members.as_slice(), n_users)
        || !runs_sorted(members.as_slice(), member_offsets.as_slice(), |a, b| a >= b)
    {
        return Err(SnapshotError::Malformed {
            tag: TAG_STREAM_MEMBERS,
            what: "member ids not strictly ascending below the user count",
        });
    }

    let packed = r.section_words(TAG_STREAM_SEEN)?;
    if packed.len() != n_users.div_ceil(32) {
        return Err(SnapshotError::Malformed {
            tag: TAG_STREAM_SEEN,
            what: "arrival bitmap length disagrees with the user count",
        });
    }
    let packed = packed.as_slice();
    let mut seen = vec![false; n_users];
    let mut popcount = 0u64;
    for (u, s) in seen.iter_mut().enumerate() {
        *s = packed[u / 32] & (1 << (u % 32)) != 0;
        popcount += *s as u64;
    }
    if !n_users.is_multiple_of(32)
        && !packed.is_empty()
        && packed[packed.len() - 1] >> (n_users % 32) != 0
    {
        return Err(SnapshotError::Malformed {
            tag: TAG_STREAM_SEEN,
            what: "arrival bitmap has bits past the user universe",
        });
    }
    if popcount != arrivals {
        return Err(SnapshotError::Malformed {
            tag: TAG_STREAM_SEEN,
            what: "arrival count disagrees with the arrival bitmap",
        });
    }

    let mut entries = Vec::with_capacity(n_entries);
    let counts = counts.as_slice();
    let deltas = deltas.as_slice();
    for i in 0..n_entries {
        let (klo, khi) = (key_offsets[i] as usize, key_offsets[i + 1] as usize);
        let itemset: Vec<TokenId> = keys.as_slice()[klo..khi]
            .iter()
            .map(|&t| TokenId::new(t))
            .collect();
        if itemset.is_empty() {
            return Err(SnapshotError::Malformed {
                tag: TAG_STREAM_KEY_TOKENS,
                what: "empty itemset in the miner table",
            });
        }
        let count = join(counts[2 * i], counts[2 * i + 1]);
        if count == 0 {
            return Err(SnapshotError::Malformed {
                tag: TAG_STREAM_COUNTS,
                what: "zero-count entry in the miner table",
            });
        }
        let (mlo, mhi) = (member_offsets[i] as usize, member_offsets[i + 1] as usize);
        entries.push(MinerEntry {
            itemset,
            count,
            delta: join(deltas[2 * i], deltas[2 * i + 1]),
            members: members.as_slice()[mlo..mhi].to_vec(),
        });
    }
    if !entries.windows(2).all(|w| w[0].itemset < w[1].itemset) {
        return Err(SnapshotError::Malformed {
            tag: TAG_STREAM_KEY_TOKENS,
            what: "miner entries not in canonical itemset order",
        });
    }
    let miner = StreamMiner::from_state(
        cfg,
        MinerState {
            entries,
            n_seen,
            evictions,
        },
    );
    Ok(DeltaDiscovery::from_parts(
        miner,
        seen,
        arrivals,
        min_group_size,
        prev,
        epochs_cut,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroupSet {
        let mut gs = GroupSet::new();
        gs.push(Group::new(
            vec![TokenId::new(0), TokenId::new(2)],
            MemberSet::from_unsorted(vec![0, 3, 5]),
        ));
        gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![1, 2])));
        gs.push(Group::new(
            vec![TokenId::new(1)],
            MemberSet::from_unsorted(vec![5]),
        ));
        gs
    }

    fn round_trip(gs: &GroupSet, n_users: usize, n_tokens: usize) -> GroupSet {
        let mut w = SnapshotWriter::new();
        encode_group_set(gs, &mut w);
        let buf = w.finish();
        let r = SnapshotReader::load(&buf).unwrap();
        decode_group_set(&r, n_users, n_tokens).unwrap()
    }

    #[test]
    fn group_set_round_trips() {
        let gs = sample();
        let back = round_trip(&gs, 6, 3);
        assert_eq!(back, gs);
        // Members come back as zero-copy views owning no heap; only the
        // (small, owned) descriptions count against the loaded form.
        assert!(back.iter().all(|(_, g)| g.members.is_shared()));
        assert!(back.iter().all(|(_, g)| g.members.heap_bytes() == 0));
        assert!(back.heap_bytes() < gs.heap_bytes());
        // Empty group space round-trips too.
        let empty = round_trip(&GroupSet::new(), 0, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn decode_validates_bounds() {
        let gs = sample();
        let mut w = SnapshotWriter::new();
        encode_group_set(&gs, &mut w);
        let buf = w.finish();
        let r = SnapshotReader::load(&buf).unwrap();
        // Member id 5 is out of range for a 5-user universe.
        assert!(matches!(
            decode_group_set(&r, 5, 3).unwrap_err(),
            SnapshotError::Malformed {
                tag: TAG_GROUP_MEMBERS,
                ..
            }
        ));
        // Token id 2 is out of range for a 2-token vocabulary.
        assert!(matches!(
            decode_group_set(&r, 6, 2).unwrap_err(),
            SnapshotError::Malformed {
                tag: TAG_GROUP_DESC_TOKENS,
                ..
            }
        ));
    }

    #[test]
    fn decode_rejects_unsorted_members() {
        let mut w = SnapshotWriter::new();
        w.section_words(TAG_GROUP_DESC_OFFSETS, &[0, 0]);
        w.section_words(TAG_GROUP_DESC_TOKENS, &[]);
        w.section_words(TAG_GROUP_MEMBER_OFFSETS, &[0, 2]);
        w.section_words(TAG_GROUP_MEMBERS, &[3, 1]);
        let buf = w.finish();
        let r = SnapshotReader::load(&buf).unwrap();
        assert!(matches!(
            decode_group_set(&r, 9, 9).unwrap_err(),
            SnapshotError::Malformed {
                tag: TAG_GROUP_MEMBERS,
                ..
            }
        ));
    }

    #[test]
    fn decode_rejects_mismatched_offset_tables() {
        let mut w = SnapshotWriter::new();
        w.section_words(TAG_GROUP_DESC_OFFSETS, &[0, 0, 0]);
        w.section_words(TAG_GROUP_DESC_TOKENS, &[]);
        w.section_words(TAG_GROUP_MEMBER_OFFSETS, &[0, 1]);
        w.section_words(TAG_GROUP_MEMBERS, &[0]);
        let buf = w.finish();
        let r = SnapshotReader::load(&buf).unwrap();
        assert!(matches!(
            decode_group_set(&r, 9, 9).unwrap_err(),
            SnapshotError::Malformed {
                tag: TAG_GROUP_MEMBER_OFFSETS,
                ..
            }
        ));
    }

    fn sample_discovery() -> DeltaDiscovery {
        let entries = vec![
            MinerEntry {
                itemset: vec![TokenId::new(0)],
                count: u64::from(u32::MAX) + 7,
                delta: 3,
                members: vec![0, 2, 40],
            },
            MinerEntry {
                itemset: vec![TokenId::new(0), TokenId::new(4)],
                count: 2,
                delta: u64::from(u32::MAX) + 1,
                members: vec![2],
            },
            MinerEntry {
                itemset: vec![TokenId::new(3)],
                count: 1,
                delta: 0,
                members: vec![40],
            },
        ];
        let miner = StreamMiner::from_state(
            StreamFimConfig::default(),
            MinerState {
                entries,
                n_seen: u64::from(u32::MAX) + 11,
                evictions: 5,
            },
        );
        let mut seen = vec![false; 41];
        for u in [0usize, 2, 7, 40] {
            seen[u] = true;
        }
        DeltaDiscovery::from_parts(miner, seen, 4, 2, sample(), 9)
    }

    fn encode_to_buf(dd: &DeltaDiscovery) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        encode_stream_state(dd, &mut w);
        w.finish()
    }

    fn decode_from_buf(buf: &[u8], n_users: usize) -> Result<DeltaDiscovery, SnapshotError> {
        let r = SnapshotReader::load(buf)?;
        decode_stream_state(&r, StreamFimConfig::default(), 2, n_users, 9, sample(), 9)
    }

    #[test]
    fn stream_state_round_trips() {
        let dd = sample_discovery();
        let buf = encode_to_buf(&dd);
        let back = decode_from_buf(&buf, 41).unwrap();
        assert_eq!(back.miner().export_state(), dd.miner().export_state());
        assert_eq!(back.seen(), dd.seen());
        assert_eq!(back.arrivals(), dd.arrivals());
        assert_eq!(back.epochs_cut(), dd.epochs_cut());
        assert_eq!(back.groups(), dd.groups());
        // The encoding is canonical: re-encoding the decoded driver is
        // byte-identical.
        assert_eq!(encode_to_buf(&back), buf);
    }

    #[test]
    fn stream_state_empty_round_trips() {
        let dd = DeltaDiscovery::new(StreamFimConfig::default(), 2, 0);
        let buf = encode_to_buf(&dd);
        let back = decode_from_buf(&buf, 0).unwrap();
        assert_eq!(back.miner().export_state(), MinerState::default());
        assert!(back.seen().is_empty());
    }

    #[test]
    fn stream_decode_rejects_wrong_universe() {
        let buf = encode_to_buf(&sample_discovery());
        assert!(matches!(
            decode_from_buf(&buf, 40).unwrap_err(),
            SnapshotError::Malformed {
                tag: TAG_STREAM_META,
                ..
            }
        ));
    }

    fn tampered(mutate: impl FnOnce(&mut SnapshotWriter)) -> Result<DeltaDiscovery, SnapshotError> {
        let mut w = SnapshotWriter::new();
        mutate(&mut w);
        decode_from_buf(&w.finish(), 64)
    }

    fn base_sections(w: &mut SnapshotWriter, meta: &[u32], seen_words: &[u32]) {
        w.section_words(TAG_STREAM_META, meta);
        w.section_words(TAG_STREAM_KEY_OFFSETS, &[0, 1]);
        w.section_words(TAG_STREAM_KEY_TOKENS, &[0]);
        w.section_words(TAG_STREAM_COUNTS, &[1, 0]);
        w.section_words(TAG_STREAM_DELTAS, &[0, 0]);
        w.section_words(TAG_STREAM_MEMBER_OFFSETS, &[0, 1]);
        w.section_words(TAG_STREAM_MEMBERS, &[0]);
        w.section_words(TAG_STREAM_SEEN, seen_words);
    }

    #[test]
    fn stream_decode_rejects_structural_damage() {
        // Arrival count disagrees with the bitmap popcount.
        let err = tampered(|w| base_sections(w, &[1, 0, 0, 0, 2, 0, 1, 64], &[1, 0])).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::Malformed {
                tag: TAG_STREAM_SEEN,
                ..
            }
        ));
        // Zero-count miner entry.
        let err = tampered(|w| {
            w.section_words(TAG_STREAM_META, &[1, 0, 0, 0, 1, 0, 1, 64]);
            w.section_words(TAG_STREAM_KEY_OFFSETS, &[0, 1]);
            w.section_words(TAG_STREAM_KEY_TOKENS, &[0]);
            w.section_words(TAG_STREAM_COUNTS, &[0, 0]);
            w.section_words(TAG_STREAM_DELTAS, &[0, 0]);
            w.section_words(TAG_STREAM_MEMBER_OFFSETS, &[0, 1]);
            w.section_words(TAG_STREAM_MEMBERS, &[0]);
            w.section_words(TAG_STREAM_SEEN, &[1, 0]);
        })
        .unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::Malformed {
                tag: TAG_STREAM_COUNTS,
                ..
            }
        ));
        // Entries out of canonical (itemset-ascending) order.
        let err = tampered(|w| {
            w.section_words(TAG_STREAM_META, &[2, 0, 0, 0, 1, 0, 2, 64]);
            w.section_words(TAG_STREAM_KEY_OFFSETS, &[0, 1, 2]);
            w.section_words(TAG_STREAM_KEY_TOKENS, &[3, 1]);
            w.section_words(TAG_STREAM_COUNTS, &[1, 0, 1, 0]);
            w.section_words(TAG_STREAM_DELTAS, &[0, 0, 0, 0]);
            w.section_words(TAG_STREAM_MEMBER_OFFSETS, &[0, 1, 2]);
            w.section_words(TAG_STREAM_MEMBERS, &[0, 1]);
            w.section_words(TAG_STREAM_SEEN, &[1, 0]);
        })
        .unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::Malformed {
                tag: TAG_STREAM_KEY_TOKENS,
                ..
            }
        ));
        // Arrival bits past the user universe (bit 33 in a 33-user world).
        let mut w = SnapshotWriter::new();
        base_sections(&mut w, &[1, 0, 0, 0, 1, 0, 1, 33], &[1, 2]);
        let err = decode_from_buf(&w.finish(), 33).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::Malformed {
                tag: TAG_STREAM_SEEN,
                ..
            }
        ));
    }
}
