//! Snapshot codec for the group space (`0x1x` section tags).
//!
//! A [`GroupSet`] flattens into four `u32` arrays — description offsets +
//! tokens, member offsets + member ids — the same offsets-plus-payload
//! shape the CSR index already uses. Decoding hands every group's member
//! set back as a zero-copy [`MemberSet::from_shared`] view into the loaded
//! buffer: the dominant payload (member ids) costs no per-group
//! allocations. Descriptions are short (a handful of tokens) and live in
//! `HashMap` keys and move-heavy merge paths, so they are rebuilt as owned
//! `Vec<TokenId>`s.

use crate::bitmap::MemberSet;
use crate::group::{Group, GroupSet};
use vexus_data::snapshot::{all_bounded, runs_sorted, validate_offsets};
use vexus_data::{SnapshotError, SnapshotReader, SnapshotWriter, TokenId};

/// Group-description offsets: `n_groups + 1` token offsets.
pub const TAG_GROUP_DESC_OFFSETS: u32 = 0x10;
/// Concatenated description tokens, group-major.
pub const TAG_GROUP_DESC_TOKENS: u32 = 0x11;
/// Group-member offsets: `n_groups + 1` member offsets.
pub const TAG_GROUP_MEMBER_OFFSETS: u32 = 0x12;
/// Concatenated sorted member ids, group-major.
pub const TAG_GROUP_MEMBERS: u32 = 0x13;

/// Encode the group space into its `0x1x` sections.
pub fn encode_group_set(groups: &GroupSet, w: &mut SnapshotWriter) {
    let mut desc_offsets = Vec::with_capacity(groups.len() + 1);
    let mut member_offsets = Vec::with_capacity(groups.len() + 1);
    let mut tokens = Vec::new();
    let mut members = Vec::new();
    desc_offsets.push(0u32);
    member_offsets.push(0u32);
    for (_, g) in groups.iter() {
        tokens.extend(g.description.iter().map(|t| t.raw()));
        desc_offsets.push(tokens.len() as u32);
        members.extend_from_slice(g.members.as_slice());
        member_offsets.push(members.len() as u32);
    }
    w.section_words(TAG_GROUP_DESC_OFFSETS, &desc_offsets);
    w.section_words(TAG_GROUP_DESC_TOKENS, &tokens);
    w.section_words(TAG_GROUP_MEMBER_OFFSETS, &member_offsets);
    w.section_words(TAG_GROUP_MEMBERS, &members);
}

/// Decode the group space written by [`encode_group_set`], validating every
/// structural invariant the engine relies on: offset tables monotone and
/// exactly covering their payloads, descriptions strictly ascending token
/// ids below `n_tokens`, member lists strictly ascending user indices below
/// `n_users`.
pub fn decode_group_set(
    r: &SnapshotReader,
    n_users: usize,
    n_tokens: usize,
) -> Result<GroupSet, SnapshotError> {
    let desc_offsets = r.section_words(TAG_GROUP_DESC_OFFSETS)?;
    let tokens = r.section_words(TAG_GROUP_DESC_TOKENS)?;
    let member_offsets = r.section_words(TAG_GROUP_MEMBER_OFFSETS)?;
    let members = r.section_words(TAG_GROUP_MEMBERS)?;
    validate_offsets(
        TAG_GROUP_DESC_OFFSETS,
        &desc_offsets,
        tokens.len(),
        "bad description offsets",
    )?;
    validate_offsets(
        TAG_GROUP_MEMBER_OFFSETS,
        &member_offsets,
        members.len(),
        "bad member offsets",
    )?;
    if desc_offsets.len() != member_offsets.len() {
        return Err(SnapshotError::Malformed {
            tag: TAG_GROUP_MEMBER_OFFSETS,
            what: "description/member group counts disagree",
        });
    }
    // Array-global validation: bounds are one vectorized `max` reduction
    // per payload, per-list strict ascent is one flat violation-counting
    // pass ([`runs_sorted`]) — the construction loop below stays pure.
    if !all_bounded(tokens.as_slice(), n_tokens)
        || !runs_sorted(tokens.as_slice(), desc_offsets.as_slice(), |a, b| a >= b)
    {
        return Err(SnapshotError::Malformed {
            tag: TAG_GROUP_DESC_TOKENS,
            what: "description tokens not strictly ascending in vocabulary",
        });
    }
    if !all_bounded(members.as_slice(), n_users)
        || !runs_sorted(members.as_slice(), member_offsets.as_slice(), |a, b| a >= b)
    {
        return Err(SnapshotError::Malformed {
            tag: TAG_GROUP_MEMBERS,
            what: "member ids not strictly ascending below the user count",
        });
    }
    let n_groups = desc_offsets.len() - 1;
    let mut out = Vec::with_capacity(n_groups);
    for i in 0..n_groups {
        let (dlo, dhi) = (desc_offsets[i] as usize, desc_offsets[i + 1] as usize);
        let desc = &tokens.as_slice()[dlo..dhi];
        let (mlo, mhi) = (member_offsets[i] as usize, member_offsets[i + 1] as usize);
        out.push(Group {
            description: desc.iter().map(|&t| TokenId::new(t)).collect(),
            members: MemberSet::from_shared(
                members
                    .slice(mlo, mhi - mlo)
                    .expect("validated member range"),
            ),
        });
    }
    Ok(GroupSet::from_groups(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroupSet {
        let mut gs = GroupSet::new();
        gs.push(Group::new(
            vec![TokenId::new(0), TokenId::new(2)],
            MemberSet::from_unsorted(vec![0, 3, 5]),
        ));
        gs.push(Group::new(vec![], MemberSet::from_unsorted(vec![1, 2])));
        gs.push(Group::new(
            vec![TokenId::new(1)],
            MemberSet::from_unsorted(vec![5]),
        ));
        gs
    }

    fn round_trip(gs: &GroupSet, n_users: usize, n_tokens: usize) -> GroupSet {
        let mut w = SnapshotWriter::new();
        encode_group_set(gs, &mut w);
        let buf = w.finish();
        let r = SnapshotReader::load(&buf).unwrap();
        decode_group_set(&r, n_users, n_tokens).unwrap()
    }

    #[test]
    fn group_set_round_trips() {
        let gs = sample();
        let back = round_trip(&gs, 6, 3);
        assert_eq!(back, gs);
        // Members come back as zero-copy views owning no heap; only the
        // (small, owned) descriptions count against the loaded form.
        assert!(back.iter().all(|(_, g)| g.members.is_shared()));
        assert!(back.iter().all(|(_, g)| g.members.heap_bytes() == 0));
        assert!(back.heap_bytes() < gs.heap_bytes());
        // Empty group space round-trips too.
        let empty = round_trip(&GroupSet::new(), 0, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn decode_validates_bounds() {
        let gs = sample();
        let mut w = SnapshotWriter::new();
        encode_group_set(&gs, &mut w);
        let buf = w.finish();
        let r = SnapshotReader::load(&buf).unwrap();
        // Member id 5 is out of range for a 5-user universe.
        assert!(matches!(
            decode_group_set(&r, 5, 3).unwrap_err(),
            SnapshotError::Malformed {
                tag: TAG_GROUP_MEMBERS,
                ..
            }
        ));
        // Token id 2 is out of range for a 2-token vocabulary.
        assert!(matches!(
            decode_group_set(&r, 6, 2).unwrap_err(),
            SnapshotError::Malformed {
                tag: TAG_GROUP_DESC_TOKENS,
                ..
            }
        ));
    }

    #[test]
    fn decode_rejects_unsorted_members() {
        let mut w = SnapshotWriter::new();
        w.section_words(TAG_GROUP_DESC_OFFSETS, &[0, 0]);
        w.section_words(TAG_GROUP_DESC_TOKENS, &[]);
        w.section_words(TAG_GROUP_MEMBER_OFFSETS, &[0, 2]);
        w.section_words(TAG_GROUP_MEMBERS, &[3, 1]);
        let buf = w.finish();
        let r = SnapshotReader::load(&buf).unwrap();
        assert!(matches!(
            decode_group_set(&r, 9, 9).unwrap_err(),
            SnapshotError::Malformed {
                tag: TAG_GROUP_MEMBERS,
                ..
            }
        ));
    }

    #[test]
    fn decode_rejects_mismatched_offset_tables() {
        let mut w = SnapshotWriter::new();
        w.section_words(TAG_GROUP_DESC_OFFSETS, &[0, 0, 0]);
        w.section_words(TAG_GROUP_DESC_TOKENS, &[]);
        w.section_words(TAG_GROUP_MEMBER_OFFSETS, &[0, 1]);
        w.section_words(TAG_GROUP_MEMBERS, &[0]);
        let buf = w.finish();
        let r = SnapshotReader::load(&buf).unwrap();
        assert!(matches!(
            decode_group_set(&r, 9, 9).unwrap_err(),
            SnapshotError::Malformed {
                tag: TAG_GROUP_MEMBER_OFFSETS,
                ..
            }
        ));
    }
}
