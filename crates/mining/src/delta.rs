//! Epoch-to-epoch group-space deltas for the live engine.
//!
//! The lossy-counting [`StreamMiner`] answers "what are the frequent
//! groups *now*?", but its natural output order (count-descending) makes
//! group ids shuffle between queries, so nothing downstream can tell
//! "group 7 grew" from "group 7 is a different group now". This module
//! fixes identity across epochs:
//!
//! * a group's **identity is its description** (the itemset). The miner's
//!   table is keyed by itemset, so descriptions are unique;
//! * every epoch's group space is **canonicalized** — sorted by
//!   description, lexicographically ascending — before ids are assigned.
//!   Surviving groups therefore keep their *relative* order between
//!   epochs, which makes the old→new id remap **monotone**: downstream
//!   consumers (the incremental index patch) can copy untouched neighbor
//!   lists with a pure id rewrite and stay byte-identical to a full
//!   rebuild, because the index's similarity-then-id tie-break order is
//!   preserved under any monotone remap.
//!
//! [`DeltaDiscovery`] drives the miner over action deltas (each user is
//! observed once, on arrival — the first action mentioning them) and cuts
//! epochs: each [`DeltaDiscovery::epoch`] call materializes the canonical
//! filtered group space and diffs it against the previous epoch into a
//! [`GroupDelta`] of added / retired / resized groups.

use crate::discovery::DiscoveryStats;
use crate::group::{GroupId, GroupSet};
use crate::stream_fim::{StreamFimConfig, StreamMiner};
use std::time::Duration;
use vexus_data::{Action, UserData, Vocabulary};

/// The difference between two consecutive epochs' group spaces.
///
/// Both spaces must be canonical (description-sorted; see the module
/// docs). Survivors — groups in both epochs — are exactly the old ids not
/// in `retired` zipped, in order, with the new ids not in `added`; the
/// monotone map that zip induces is the id remap for everything the delta
/// does not touch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupDelta {
    /// Groups present only in the new epoch (new-space ids, ascending).
    pub added: Vec<GroupId>,
    /// Groups present only in the old epoch (old-space ids, ascending).
    pub retired: Vec<GroupId>,
    /// Groups in both epochs whose member set changed, as `(old id, new
    /// id)` pairs (ascending in both coordinates).
    pub resized: Vec<(GroupId, GroupId)>,
}

impl GroupDelta {
    /// Whether the two epochs have identical group spaces.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.retired.is_empty() && self.resized.is_empty()
    }

    /// Number of groups the delta touches (in either space).
    pub fn touched(&self) -> usize {
        self.added.len() + self.retired.len() + self.resized.len()
    }
}

/// Sort a group space into its canonical epoch order: by description,
/// lexicographically ascending. Ids are re-assigned densely in the new
/// order.
///
/// # Panics
/// In debug builds, if two groups share a description (identity across
/// epochs is the description, so it must be unique — true for any
/// itemset-keyed miner, not for descriptionless cluster backends).
pub fn canonicalize(groups: GroupSet) -> GroupSet {
    let mut v = groups.into_vec();
    v.sort_by(|a, b| a.description.cmp(&b.description));
    debug_assert!(
        v.windows(2).all(|w| w[0].description < w[1].description),
        "canonical group spaces need unique descriptions"
    );
    GroupSet::from_groups(v)
}

/// Diff two canonical group spaces into a [`GroupDelta`]. Both inputs
/// must be description-sorted (as produced by [`canonicalize`]); a group
/// is a survivor iff its description appears in both spaces, and resized
/// iff its member set changed.
pub fn diff(old: &GroupSet, new: &GroupSet) -> GroupDelta {
    let mut delta = GroupDelta::default();
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        let oid = GroupId::new(i as u32);
        let nid = GroupId::new(j as u32);
        if i == old.len() {
            delta.added.push(nid);
            j += 1;
            continue;
        }
        if j == new.len() {
            delta.retired.push(oid);
            i += 1;
            continue;
        }
        let (og, ng) = (old.get(oid), new.get(nid));
        match og.description.cmp(&ng.description) {
            std::cmp::Ordering::Less => {
                delta.retired.push(oid);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                delta.added.push(nid);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if og.members != ng.members {
                    delta.resized.push((oid, nid));
                }
                i += 1;
                j += 1;
            }
        }
    }
    delta
}

/// Drives a [`StreamMiner`] over action deltas and cuts epoch-to-epoch
/// [`GroupDelta`]s (see the module docs for the identity model).
#[derive(Debug)]
pub struct DeltaDiscovery {
    miner: StreamMiner,
    /// Per-user arrival bit: a user is observed once, with their first
    /// action (demographics do not change with actions, so one
    /// transaction per user is the stream semantics — the same convention
    /// the batch [`crate::StreamFimDiscovery`] uses, per arrival order
    /// instead of id order).
    seen: Vec<bool>,
    arrivals: u64,
    min_group_size: usize,
    prev: GroupSet,
    epochs_cut: u64,
}

impl DeltaDiscovery {
    /// New driver over `n_users` possible arrivals. `min_group_size`
    /// filters each epoch's space before diffing, exactly like the
    /// engine's builder filters a batch space — so a group crossing the
    /// size floor surfaces as added, and one shrinking below it as
    /// retired.
    pub fn new(cfg: StreamFimConfig, min_group_size: usize, n_users: usize) -> Self {
        Self {
            miner: StreamMiner::new(cfg),
            seen: vec![false; n_users],
            arrivals: 0,
            min_group_size,
            prev: GroupSet::new(),
            epochs_cut: 0,
        }
    }

    /// Feed one action delta: every user making their first appearance is
    /// observed with their demographic transaction. Actions referencing
    /// users outside the known universe are ignored (the data layer skips
    /// them too). Returns the number of new arrivals.
    pub fn observe_arrivals(
        &mut self,
        data: &UserData,
        vocab: &Vocabulary,
        actions: &[Action],
    ) -> usize {
        let mut new = 0;
        for a in actions {
            let u = a.user.index();
            if u < self.seen.len() && !self.seen[u] {
                self.seen[u] = true;
                self.miner
                    .observe(a.user.raw(), &vocab.user_tokens(data, a.user));
                new += 1;
            }
        }
        self.arrivals += new as u64;
        new
    }

    /// Observe every not-yet-seen user in id order — the batch-parity
    /// bootstrap (a fresh driver over a complete dataset then mines the
    /// same space as [`crate::StreamFimDiscovery`]). Returns the number
    /// observed.
    pub fn observe_all(&mut self, data: &UserData, vocab: &Vocabulary) -> usize {
        let mut new = 0;
        for u in data.users() {
            if !self.seen[u.index()] {
                self.seen[u.index()] = true;
                self.miner.observe(u.raw(), &vocab.user_tokens(data, u));
                new += 1;
            }
        }
        self.arrivals += new as u64;
        new
    }

    /// Users that have arrived so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Per-user arrival bits (index = user id). Checkpoints persist this
    /// verbatim: it is *not* derivable from the applied action tape,
    /// because the data layer drops unknown-item actions that the miner
    /// still observed arrivals from.
    pub fn seen(&self) -> &[bool] {
        &self.seen
    }

    /// Epochs cut so far (one per [`DeltaDiscovery::epoch`] call).
    pub fn epochs_cut(&self) -> u64 {
        self.epochs_cut
    }

    /// Reassemble a driver from checkpointed parts: the rebuilt miner
    /// ([`StreamMiner::from_state`]), the arrival bits, and the previous
    /// epoch's canonical space (`prev` — the group space of the engine
    /// published at checkpoint time, which is exactly what the next
    /// [`DeltaDiscovery::epoch`] must diff against). Resumes
    /// observation-equivalent to the uninterrupted driver.
    pub fn from_parts(
        miner: StreamMiner,
        seen: Vec<bool>,
        arrivals: u64,
        min_group_size: usize,
        prev: GroupSet,
        epochs_cut: u64,
    ) -> Self {
        Self {
            miner,
            seen,
            arrivals,
            min_group_size,
            prev,
            epochs_cut,
        }
    }

    /// The underlying miner (telemetry: `n_seen`, `table_size`,
    /// `evictions`).
    pub fn miner(&self) -> &StreamMiner {
        &self.miner
    }

    /// The previous epoch's canonical group space.
    pub fn groups(&self) -> &GroupSet {
        &self.prev
    }

    /// Cut an epoch: materialize the canonical, size-filtered group space
    /// as of now, diff it against the previous epoch, and make it the new
    /// baseline. Returns the space and the delta that turns the previous
    /// epoch's space into it.
    pub fn epoch(&mut self) -> (GroupSet, GroupDelta) {
        let mut groups = self.miner.groups();
        groups.filter_by_size(self.min_group_size, usize::MAX);
        let groups = canonicalize(groups);
        let delta = diff(&self.prev, &groups);
        self.prev = groups.clone();
        self.epochs_cut += 1;
        (groups, delta)
    }

    /// Discovery stats for the space cut by the last [`DeltaDiscovery::epoch`]
    /// call, with the miner's stream telemetry filled in — the same
    /// observability surface a batch run reports.
    pub fn stats(&self, elapsed: Duration) -> DiscoveryStats {
        DiscoveryStats {
            algorithm: "stream-fim-delta",
            elapsed,
            groups_discovered: self.prev.len(),
            candidates_considered: self.miner.table_size(),
            stream_n_seen: self.miner.n_seen(),
            stream_table_size: self.miner.table_size(),
            stream_evictions: self.miner.evictions(),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::MemberSet;
    use crate::group::Group;
    use vexus_data::TokenId;

    fn toks(v: &[u32]) -> Vec<TokenId> {
        v.iter().map(|&t| TokenId::new(t)).collect()
    }

    fn space(defs: &[(&[u32], &[u32])]) -> GroupSet {
        let mut gs = GroupSet::new();
        for (desc, members) in defs {
            gs.push(Group::new(
                toks(desc),
                MemberSet::from_unsorted(members.to_vec()),
            ));
        }
        canonicalize(gs)
    }

    #[test]
    fn canonicalize_sorts_by_description() {
        let gs = space(&[(&[3], &[0]), (&[1, 2], &[1]), (&[1], &[2])]);
        let descs: Vec<_> = gs.iter().map(|(_, g)| g.description.clone()).collect();
        assert_eq!(descs, vec![toks(&[1]), toks(&[1, 2]), toks(&[3])]);
    }

    #[test]
    fn diff_of_identical_spaces_is_empty() {
        let a = space(&[(&[1], &[0, 1]), (&[2], &[1, 2])]);
        let d = diff(&a, &a.clone());
        assert!(d.is_empty());
        assert_eq!(d.touched(), 0);
    }

    #[test]
    fn diff_detects_added_retired_resized() {
        // Old: {1}=[0,1]  {2}=[1,2]  {5}=[4]
        // New: {1}=[0,1]  {2}=[1,2,3]  {4}=[0]
        let old = space(&[(&[1], &[0, 1]), (&[2], &[1, 2]), (&[5], &[4])]);
        let new = space(&[(&[1], &[0, 1]), (&[2], &[1, 2, 3]), (&[4], &[0])]);
        let d = diff(&old, &new);
        // {4} is new id 2 in the canonical order, {5} was old id 2.
        assert_eq!(d.added, vec![GroupId::new(2)]);
        assert_eq!(d.retired, vec![GroupId::new(2)]);
        assert_eq!(d.resized, vec![(GroupId::new(1), GroupId::new(1))]);
        assert_eq!(d.touched(), 3);
    }

    #[test]
    fn survivor_map_is_monotone_by_construction() {
        let old = space(&[(&[0], &[0]), (&[2], &[0]), (&[4], &[0]), (&[6], &[0])]);
        let new = space(&[(&[2], &[0]), (&[3], &[0]), (&[6], &[0])]);
        let d = diff(&old, &new);
        // Survivors: {2} (old 1 → new 0), {6} (old 3 → new 2).
        let old_survivors: Vec<u32> = (0..old.len() as u32)
            .filter(|&i| !d.retired.contains(&GroupId::new(i)))
            .collect();
        let new_survivors: Vec<u32> = (0..new.len() as u32)
            .filter(|&j| !d.added.contains(&GroupId::new(j)))
            .collect();
        assert_eq!(old_survivors.len(), new_survivors.len());
        assert_eq!(old_survivors, vec![1, 3]);
        assert_eq!(new_survivors, vec![0, 2]);
        for (o, n) in old_survivors.iter().zip(&new_survivors) {
            assert_eq!(
                old.get(GroupId::new(*o)).description,
                new.get(GroupId::new(*n)).description
            );
        }
    }

    #[test]
    fn delta_discovery_observes_each_user_once_on_arrival() {
        use vexus_data::{Schema, UserDataBuilder, UserId};
        let mut s = Schema::new();
        let g = s.add_categorical("gender");
        let mut b = UserDataBuilder::new(s);
        for i in 0..6 {
            let u = b.user(&format!("u{i}"));
            b.set_demo(u, g, if i < 4 { "female" } else { "male" })
                .unwrap();
        }
        let i0 = b.item("x", None);
        let data = b.build();
        let vocab = Vocabulary::build(&data);
        let mut dd = DeltaDiscovery::new(
            StreamFimConfig {
                support: 0.01,
                epsilon: 0.005,
                max_len: 2,
            },
            2,
            data.n_users(),
        );

        let act = |u: u32| Action {
            user: UserId::new(u),
            item: i0,
            value: 1.0,
        };
        // First wave: three "female" users arrive (one twice — observed once).
        assert_eq!(
            dd.observe_arrivals(&data, &vocab, &[act(0), act(1), act(0), act(2)]),
            3
        );
        let (first, d0) = dd.epoch();
        assert_eq!(first.len(), 1, "one frequent group: gender=female");
        assert_eq!(d0.added.len(), 1);
        assert!(d0.retired.is_empty() && d0.resized.is_empty());

        // Second wave: another female (resizes) and two males (add a group).
        assert_eq!(
            dd.observe_arrivals(&data, &vocab, &[act(3), act(4), act(5), act(99)]),
            3
        );
        let (second, d1) = dd.epoch();
        assert_eq!(second.len(), 2);
        assert_eq!(d1.added.len(), 1, "gender=male crosses the floor");
        assert_eq!(d1.resized.len(), 1, "gender=female grew");
        assert!(d1.retired.is_empty());
        assert_eq!(dd.arrivals(), 6);

        // Nothing new → empty delta, identical space.
        let (third, d2) = dd.epoch();
        assert!(d2.is_empty());
        assert_eq!(third, second);

        // Telemetry mirrors the miner.
        let stats = dd.stats(Duration::ZERO);
        assert_eq!(stats.algorithm, "stream-fim-delta");
        assert_eq!(stats.stream_n_seen, 6);
        assert_eq!(stats.groups_discovered, 2);
    }

    #[test]
    fn observe_all_matches_batch_discovery() {
        use crate::discovery::{GroupDiscovery, StreamFimDiscovery};
        use vexus_data::synthetic::{bookcrossing, BookCrossingConfig};
        let ds = bookcrossing(&BookCrossingConfig::tiny());
        let vocab = Vocabulary::build(&ds.data);
        let cfg = StreamFimConfig {
            support: 0.05,
            epsilon: 0.01,
            max_len: 3,
        };
        let batch = StreamFimDiscovery::new(cfg.clone()).discover(&ds.data, &vocab);
        let mut dd = DeltaDiscovery::new(cfg, 1, ds.data.n_users());
        assert_eq!(dd.observe_all(&ds.data, &vocab), ds.data.n_users());
        let (live, delta) = dd.epoch();
        // Same space, canonical order (the batch space re-sorted).
        assert_eq!(live.len(), batch.groups.len());
        assert_eq!(live, canonicalize(batch.groups));
        assert_eq!(delta.added.len(), live.len());
    }
}
