//! Durability for the live engine: checkpoint files, the on-disk layout,
//! and the retention policy.
//!
//! A durable live engine directory holds exactly two kinds of files, both
//! named by the epoch they start at (zero-padded so lexicographic order is
//! numeric order):
//!
//! * `ckpt-<watermark>.vxck` — a full checkpoint: the published engine's
//!   snapshot sections, the stream-miner state, and the action tape
//!   appended since bootstrap, all behind one checkpoint META section. The
//!   watermark is the published epoch the checkpoint captures; every WAL
//!   frame stamped below it is already folded in.
//! * `wal-<first_epoch>.vxwl` — a write-ahead-log segment (see
//!   [`vexus_data::wal`]). Each refresh appends its delta as one frame
//!   *before* applying it; a checkpoint rotates to a fresh segment named
//!   by the new watermark.
//!
//! Checkpoints are written atomically (temp file, fsync, rename, directory
//! fsync), so a crash at any byte leaves either the old file set or the
//! new one — never a half-written checkpoint under a final name. The
//! retention policy keeps the newest [`DurabilityConfig::retain`]
//! checkpoints and every WAL segment any retained checkpoint still needs;
//! because WAL frames are only dropped by whole-segment deletion *after* a
//! newer checkpoint is durable, a crash between the snapshot landing and
//! the prune is safe — recovery simply skips frames at or below the
//! watermark it loads.

use crate::config::EngineConfig;
use crate::engine::{BuildStats, Vexus};
use crate::error::CoreError;
use crate::snapshot::{decode_engine_sections, encode_engine_sections};
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;
use vexus_data::wal::{action_words, actions_from_words};
use vexus_data::{SnapshotError, SnapshotReader, SnapshotWriter, UserData, WalError, WalSync};
use vexus_index::NeighborCache;
use vexus_mining::snapshot::{decode_stream_state, encode_stream_state};
use vexus_mining::{DeltaDiscovery, DiscoverySelection, DiscoveryStats, StreamFimConfig};

/// Checkpoint META: `[format_version, watermark_lo, watermark_hi,
/// n_base_actions, n_appended, support_bits_lo, support_bits_hi,
/// epsilon_bits_lo, epsilon_bits_hi, max_len, min_group_size]`. The
/// discovery fingerprint (support/epsilon/max_len/min_group_size) is
/// cross-checked at recovery so a checkpoint replayed under a different
/// mining configuration fails loudly instead of silently diverging from
/// the uninterrupted run.
pub const TAG_CKPT_META: u32 = 0x78;
/// The action tape appended since bootstrap (post-filter, exactly the
/// actions the dataset absorbed), as `[user, item, value_bits]` triples.
pub const TAG_CKPT_ACTIONS: u32 = 0x79;

const CKPT_FORMAT_VERSION: u32 = 1;
const CKPT_META_WORDS: usize = 11;

const CKPT_PREFIX: &str = "ckpt-";
const CKPT_SUFFIX: &str = ".vxck";
const WAL_PREFIX: &str = "wal-";
const WAL_SUFFIX: &str = ".vxwl";

/// How a durable live engine checkpoints and syncs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Directory holding the checkpoint and WAL files.
    pub dir: PathBuf,
    /// Write a checkpoint every this many advancing refreshes (`0` means
    /// never — the WAL grows unbounded and recovery replays everything).
    pub checkpoint_every: u64,
    /// WAL flush discipline (per-frame `fdatasync` vs batched).
    pub sync: WalSync,
    /// Checkpoints to keep on disk. At least one older checkpoint is
    /// worth retaining: recovery falls back to it when the newest file is
    /// corrupt.
    pub retain: usize,
}

impl DurabilityConfig {
    /// Defaults: checkpoint every 8 refreshes, per-frame sync, retain 2.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_every: 8,
            sync: WalSync::PerFrame,
            retain: 2,
        }
    }
}

/// What the checkpoint phase of one refresh did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CheckpointOutcome {
    /// The cadence has not elapsed (or the engine is not durable).
    #[default]
    NotDue,
    /// A checkpoint landed and the retention policy ran.
    Written,
    /// The checkpoint failed (injected fault, I/O error, or a panic in
    /// the checkpoint phase). The refresh itself still succeeded — the
    /// epoch was already published — and the WAL keeps every frame, so
    /// nothing is lost: the next refresh retries the checkpoint.
    Failed,
}

/// What [`crate::LiveEngine::recover`] reconstructed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Watermark of the checkpoint recovery loaded.
    pub checkpoint_watermark: u64,
    /// Newer checkpoint files that failed to decode and were discarded.
    pub checkpoints_skipped: usize,
    /// WAL frames replayed through the normal ingest/refresh path.
    pub frames_replayed: usize,
    /// Frames at or below the watermark (already inside the checkpoint).
    pub frames_skipped: usize,
    /// Whether any segment ended in a torn tail (crash mid-append); the
    /// torn bytes were unreachable and are truncated on reopen.
    pub torn_tail: bool,
    /// The epoch the recovered engine serves.
    pub final_epoch: u64,
    /// `Some(cause)` when replay re-hit the halt the uninterrupted run
    /// died on (e.g. an empty epoch group space): the engine serves the
    /// last good epoch but refuses ingestion, exactly like the original.
    pub halted: Option<&'static str>,
}

/// The live engine's handle on its durable directory: the open WAL
/// segment plus the checkpoint cadence counters.
pub(crate) struct DurableSink {
    pub config: DurabilityConfig,
    pub wal: vexus_data::WalWriter,
    /// Actions in the bootstrap dataset (the tape before the live phase);
    /// checkpoints store only what came after.
    pub n_base_actions: usize,
    /// Advancing refreshes since the last durable checkpoint.
    pub since_checkpoint: u64,
    /// Lifetime frames committed (telemetry).
    pub wal_frames: u64,
    /// Lifetime checkpoints written (telemetry).
    pub checkpoints: u64,
}

fn io_core(op: &'static str) -> impl Fn(std::io::Error) -> CoreError {
    move |e| CoreError::Wal(WalError::Io { op, kind: e.kind() })
}

/// `ckpt-<watermark>.vxck`, zero-padded for lexicographic order.
pub(crate) fn ckpt_path(dir: &Path, watermark: u64) -> PathBuf {
    dir.join(format!("{CKPT_PREFIX}{watermark:020}{CKPT_SUFFIX}"))
}

/// `wal-<first_epoch>.vxwl`, zero-padded for lexicographic order.
pub(crate) fn wal_path(dir: &Path, first_epoch: u64) -> PathBuf {
    dir.join(format!("{WAL_PREFIX}{first_epoch:020}{WAL_SUFFIX}"))
}

fn parse_stamp(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let stamp = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    (stamp.len() == 20).then(|| stamp.parse().ok())?
}

fn list_stamped(dir: &Path, prefix: &str, suffix: &str) -> Result<Vec<(u64, PathBuf)>, CoreError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir).map_err(io_core("read durable dir"))? {
        let entry = entry.map_err(io_core("read durable dir"))?;
        let name = entry.file_name();
        if let Some(stamp) = name.to_str().and_then(|n| parse_stamp(n, prefix, suffix)) {
            out.push((stamp, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(stamp, _)| stamp);
    Ok(out)
}

/// Checkpoint files, ascending by watermark.
pub(crate) fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, CoreError> {
    list_stamped(dir, CKPT_PREFIX, CKPT_SUFFIX)
}

/// WAL segments, ascending by first epoch.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, CoreError> {
    list_stamped(dir, WAL_PREFIX, WAL_SUFFIX)
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the final name, fsync the directory. A crash at any
/// point leaves either no file or the whole file under `path`.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CoreError> {
    let dir = path
        .parent()
        .ok_or(CoreError::Recovery("durable path has no parent directory"))?;
    let tmp = path.with_extension("tmp");
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(io_core("checkpoint create"))?;
    f.write_all(bytes).map_err(io_core("checkpoint write"))?;
    f.sync_all().map_err(io_core("checkpoint sync"))?;
    drop(f);
    fs::rename(&tmp, path).map_err(io_core("checkpoint rename"))?;
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(io_core("durable dir sync"))?;
    Ok(())
}

/// Apply the retention policy: keep the newest `retain` checkpoints
/// (always at least one), then delete every WAL segment entirely covered
/// by the oldest retained watermark — segment `i` is covered when the
/// *next* segment starts at or below it (so every frame in `i` is below
/// the watermark too). The newest segment is never deleted.
pub(crate) fn prune(dir: &Path, retain: usize) -> Result<(), CoreError> {
    let ckpts = list_checkpoints(dir)?;
    let keep = retain.max(1);
    if ckpts.len() <= keep {
        return Ok(());
    }
    let cut = ckpts.len() - keep;
    for (_, path) in &ckpts[..cut] {
        fs::remove_file(path).map_err(io_core("checkpoint prune"))?;
    }
    let oldest_retained = ckpts[cut].0;
    let segments = list_segments(dir)?;
    for i in 0..segments.len().saturating_sub(1) {
        if segments[i + 1].0 <= oldest_retained {
            fs::remove_file(&segments[i].1).map_err(io_core("wal prune"))?;
        }
    }
    Ok(())
}

fn split(v: u64) -> [u32; 2] {
    [v as u32, (v >> 32) as u32]
}

fn join(lo: u32, hi: u32) -> u64 {
    lo as u64 | ((hi as u64) << 32)
}

fn stream_fingerprint(config: &EngineConfig) -> Result<(StreamFimConfig, usize), CoreError> {
    let DiscoverySelection::StreamFim {
        support,
        epsilon,
        max_len,
    } = config.discovery
    else {
        return Err(CoreError::NotLive(
            "durable engines require DiscoverySelection::StreamFim",
        ));
    };
    Ok((
        StreamFimConfig {
            support,
            epsilon,
            max_len,
        },
        config.min_group_size,
    ))
}

/// Encode a checkpoint of the published engine at `watermark`: checkpoint
/// META, the appended action tape, the engine's snapshot sections
/// (unchanged bytes, same tags as a standalone snapshot), and the
/// stream-miner state.
pub(crate) fn encode_checkpoint(
    engine: &Vexus,
    discovery: &DeltaDiscovery,
    watermark: u64,
    n_base_actions: usize,
) -> Result<Vec<u8>, CoreError> {
    let (fim, min_group_size) = stream_fingerprint(engine.config())?;
    let appended = &engine.data().actions()[n_base_actions..];
    let mut meta = Vec::with_capacity(CKPT_META_WORDS);
    meta.push(CKPT_FORMAT_VERSION);
    meta.extend(split(watermark));
    meta.push(n_base_actions as u32);
    meta.push(appended.len() as u32);
    meta.extend(split(fim.support.to_bits()));
    meta.extend(split(fim.epsilon.to_bits()));
    meta.push(fim.max_len as u32);
    meta.push(min_group_size as u32);
    let mut w = SnapshotWriter::new();
    w.section_words(TAG_CKPT_META, &meta);
    let tape: Vec<u32> = action_words(appended).collect();
    w.section_words(TAG_CKPT_ACTIONS, &tape);
    encode_engine_sections(engine, &mut w);
    encode_stream_state(discovery, &mut w);
    Ok(w.finish())
}

/// Everything [`decode_checkpoint`] reconstructs.
pub(crate) struct DecodedCheckpoint {
    /// The published engine at the watermark, ready to serve.
    pub engine: Vexus,
    /// The discovery driver, resumed observation-equivalent.
    pub discovery: DeltaDiscovery,
    /// The published epoch the checkpoint captures.
    pub watermark: u64,
}

fn ckpt_malformed(what: &'static str) -> CoreError {
    CoreError::Snapshot(SnapshotError::Malformed {
        tag: TAG_CKPT_META,
        what,
    })
}

/// Decode a checkpoint against the bootstrap dataset `base` and the
/// caller's engine configuration. Corruption surfaces as
/// [`CoreError::Snapshot`] (recovery falls back to an older checkpoint);
/// a base dataset or configuration that disagrees with the checkpoint's
/// fingerprint is [`CoreError::Recovery`] (falling back cannot help).
pub(crate) fn decode_checkpoint(
    base: &UserData,
    bytes: &[u8],
    config: &EngineConfig,
) -> Result<DecodedCheckpoint, CoreError> {
    let (fim, min_group_size) = stream_fingerprint(config)?;
    let r = SnapshotReader::load(bytes).map_err(CoreError::Snapshot)?;
    let meta = r
        .section_words(TAG_CKPT_META)
        .map_err(CoreError::Snapshot)?;
    if meta.len() != CKPT_META_WORDS {
        return Err(ckpt_malformed("checkpoint META is not eleven words"));
    }
    if meta[0] != CKPT_FORMAT_VERSION {
        return Err(ckpt_malformed("unsupported checkpoint format version"));
    }
    let watermark = join(meta[1], meta[2]);
    let (n_base, n_appended) = (meta[3] as usize, meta[4] as usize);
    if n_base != base.actions().len() {
        return Err(CoreError::Recovery(
            "checkpoint was written against a different bootstrap dataset",
        ));
    }
    if join(meta[5], meta[6]) != fim.support.to_bits()
        || join(meta[7], meta[8]) != fim.epsilon.to_bits()
        || meta[9] as usize != fim.max_len
        || meta[10] as usize != min_group_size
    {
        return Err(CoreError::Recovery(
            "checkpoint discovery fingerprint does not match the supplied configuration",
        ));
    }
    let tape = r
        .section_words(TAG_CKPT_ACTIONS)
        .map_err(CoreError::Snapshot)?;
    let appended =
        actions_from_words(TAG_CKPT_ACTIONS, tape.as_slice()).map_err(CoreError::Snapshot)?;
    if appended.len() != n_appended {
        return Err(ckpt_malformed(
            "checkpoint action tape disagrees with its META",
        ));
    }
    let mut data = base.clone();
    if data.append_actions(&appended) != appended.len() {
        return Err(CoreError::Recovery(
            "checkpoint action tape references users or items unknown to the base dataset",
        ));
    }
    let decoded = decode_engine_sections(data, &r).map_err(CoreError::Snapshot)?;
    if decoded.groups.is_empty() {
        return Err(CoreError::Recovery("checkpoint has an empty group space"));
    }
    let discovery = decode_stream_state(
        &r,
        fim,
        min_group_size,
        decoded.data.n_users(),
        decoded.vocab.len(),
        decoded.groups.clone(),
        watermark + 1,
    )
    .map_err(CoreError::Snapshot)?;
    let stats = BuildStats {
        discovery: DiscoveryStats {
            algorithm: "checkpoint",
            elapsed: Duration::ZERO,
            groups_discovered: decoded.groups.len(),
            candidates_considered: decoded.groups.len(),
            ..Default::default()
        },
        index_time: Duration::ZERO,
        filtered_out: 0,
        n_groups: decoded.groups.len(),
        index_entries: decoded.index.stats().materialized_entries,
        index_bytes: decoded.index.stats().heap_bytes,
    };
    let cache = if config.neighbor_cache_capacity > 0 {
        Some(NeighborCache::new(config.neighbor_cache_capacity))
    } else {
        None
    };
    let engine = Vexus::from_live_parts(
        decoded.data,
        decoded.vocab,
        decoded.groups,
        decoded.index,
        cache,
        config.clone(),
        stats,
    );
    Ok(DecodedCheckpoint {
        engine,
        discovery,
        watermark,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamped_names_sort_and_parse() {
        let dir = Path::new("/d");
        let p = ckpt_path(dir, 42);
        assert_eq!(
            p.file_name().unwrap().to_str().unwrap(),
            "ckpt-00000000000000000042.vxck"
        );
        assert_eq!(
            parse_stamp("ckpt-00000000000000000042.vxck", CKPT_PREFIX, CKPT_SUFFIX),
            Some(42)
        );
        assert_eq!(
            parse_stamp("wal-00000000000000000007.vxwl", WAL_PREFIX, WAL_SUFFIX),
            Some(7)
        );
        // Non-durable names and malformed stamps are ignored.
        assert_eq!(parse_stamp("ckpt-7.vxck", CKPT_PREFIX, CKPT_SUFFIX), None);
        assert_eq!(parse_stamp("notes.txt", CKPT_PREFIX, CKPT_SUFFIX), None);
        assert_eq!(
            parse_stamp("ckpt-000000000000000000xx.vxck", CKPT_PREFIX, CKPT_SUFFIX),
            None
        );
        // Zero-padded names sort numerically as strings.
        let a = wal_path(dir, 9);
        let b = wal_path(dir, 10);
        assert!(a.to_str().unwrap() < b.to_str().unwrap());
    }
}
