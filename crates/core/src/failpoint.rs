//! Fail-point sites compiled into the serving stack behind the
//! `failpoints` cargo feature.
//!
//! Production code calls the crate-private `inject` at each named site;
//! without the
//! feature the call is a `const false` the optimizer deletes, with it the
//! call forwards to the seeded registry in `vexus-failpoint` (one relaxed
//! atomic load when no scenario is active). Sites either return an
//! injected typed error (`FailAction::Error` ⇒ `inject` returns `true`)
//! or panic at the site (`FailAction::Panic`) to exercise the
//! `catch_unwind` quarantine path.
//!
//! Site catalog (see README "Robustness"):
//!
//! | site            | key          | effect when fired (Error action)              |
//! |-----------------|--------------|-----------------------------------------------|
//! | `serve.open`    | session id   | open rejected with `ServeError::Injected`     |
//! | `serve.step`    | session id   | verb fails with `ServeError::Injected`        |
//! | `snapshot.load` | 0            | `Vexus::from_snapshot` reports `Malformed`    |
//! | `cache.shard`   | shard index  | neighbor insert skipped (permanent cache miss)|
//! | `ingest.apply`  | epoch        | refresh fails with `CoreError::Injected` before
//!   any state mutation; a `Panic` action halts the live state while the old
//!   epoch stays published and serving                                          |

/// Injected fault at session open.
pub const SERVE_OPEN: &str = "serve.open";
/// Injected fault inside verb execution (under the quarantine guard).
pub const SERVE_STEP: &str = "serve.step";
/// Injected fault while decoding an engine snapshot.
pub const SNAPSHOT_LOAD: &str = "snapshot.load";
/// Injected fault at the head of a live refresh (before any mutation).
pub const INGEST_APPLY: &str = "ingest.apply";

#[cfg(feature = "failpoints")]
pub use vexus_failpoint::{
    clear, clear_all, configure, fired, key_selected, FailAction, FailScenario, Trigger,
};

/// Evaluate the fail point at `site` for `key`: `true` means the site
/// must fail with its injected error. Compiles to `false` without the
/// `failpoints` feature.
#[cfg(feature = "failpoints")]
#[inline(always)]
pub(crate) fn inject(site: &str, key: u64) -> bool {
    vexus_failpoint::hit_key(site, key)
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub(crate) fn inject(_site: &str, _key: u64) -> bool {
    false
}
