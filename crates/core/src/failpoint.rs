//! Fail-point sites compiled into the serving stack behind the
//! `failpoints` cargo feature.
//!
//! Production code calls the crate-private `inject` at each named site;
//! without the
//! feature the call is a `const false` the optimizer deletes, with it the
//! call forwards to the seeded registry in `vexus-failpoint` (one relaxed
//! atomic load when no scenario is active). Sites either return an
//! injected typed error (`FailAction::Error` ⇒ `inject` returns `true`)
//! or panic at the site (`FailAction::Panic`) to exercise the
//! `catch_unwind` quarantine path.
//!
//! Site catalog (see README "Robustness"):
//!
//! | site            | key          | effect when fired (Error action)              |
//! |-----------------|--------------|-----------------------------------------------|
//! | `serve.open`    | session id   | open rejected with `ServeError::Injected`     |
//! | `serve.step`    | session id   | verb fails with `ServeError::Injected`        |
//! | `snapshot.load` | 0            | `Vexus::from_snapshot` reports `Malformed`    |
//! | `cache.shard`   | shard index  | neighbor insert skipped (permanent cache miss)|
//! | `ingest.apply`  | epoch        | refresh fails with `CoreError::Injected` before
//!   any state mutation; a `Panic` action halts the live state while the old
//!   epoch stays published and serving                                          |
//! | `wal.append`    | epoch        | refresh fails with `CoreError::Injected` before
//!   the frame is staged; nothing reaches the log, the pending delta stays
//!   buffered, and a plain retry succeeds                                       |
//! | `wal.sync`      | epoch        | the staged frame is rolled back to the last
//!   committed byte and the refresh fails with `CoreError::Injected`; a retry
//!   appends the frame once (no duplicates)                                     |
//! | `checkpoint.write` | watermark | the checkpoint phase reports
//!   `CheckpointOutcome::Failed` while the refresh itself still succeeds (the
//!   epoch already published); the WAL is retained and the next refresh
//!   retries the checkpoint                                                     |
//! | `recover.replay` | frame epoch | `LiveEngine::recover` fails with
//!   `CoreError::Injected` mid-replay; the durable directory is untouched and
//!   a retry without the scenario recovers fully                                |

/// Injected fault at session open.
pub const SERVE_OPEN: &str = "serve.open";
/// Injected fault inside verb execution (under the quarantine guard).
pub const SERVE_STEP: &str = "serve.step";
/// Injected fault while decoding an engine snapshot.
pub const SNAPSHOT_LOAD: &str = "snapshot.load";
/// Injected fault at the head of a live refresh (before any mutation).
pub const INGEST_APPLY: &str = "ingest.apply";
/// Injected fault before a WAL frame is staged (keyed by delta epoch).
pub const WAL_APPEND: &str = "wal.append";
/// Injected fault at WAL commit time: the staged frame is rolled back
/// (keyed by delta epoch).
pub const WAL_SYNC: &str = "wal.sync";
/// Injected fault inside the checkpoint phase (keyed by watermark).
pub const CHECKPOINT_WRITE: &str = "checkpoint.write";
/// Injected fault while replaying a WAL frame during recovery (keyed by
/// the frame's epoch).
pub const RECOVER_REPLAY: &str = "recover.replay";

#[cfg(feature = "failpoints")]
pub use vexus_failpoint::{
    clear, clear_all, configure, fired, key_selected, FailAction, FailScenario, Trigger,
};

/// Evaluate the fail point at `site` for `key`: `true` means the site
/// must fail with its injected error. Compiles to `false` without the
/// `failpoints` feature.
#[cfg(feature = "failpoints")]
#[inline(always)]
pub(crate) fn inject(site: &str, key: u64) -> bool {
    vexus_failpoint::hit_key(site, key)
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub(crate) fn inject(_site: &str, _key: u64) -> bool {
    false
}
