//! Engine configuration: the knobs the paper fixes and the experiments
//! sweep.

use std::time::Duration;
use vexus_mining::DiscoverySelection;

/// Configuration of the exploration engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Groups per GroupViz step — principle P1. "It is shown in previous
    /// research that k ≤ 7 is an ideal match for human perception
    /// capacity."
    pub k: usize,
    /// Time budget for the greedy optimizer — principle P3. "We safely set
    /// the time limit to 100 ms (i.e., continuity preserving latency)."
    pub time_budget: Duration,
    /// Lower bound on (unweighted) similarity between the clicked group and
    /// any offered next group.
    pub min_similarity: f64,
    /// How many index neighbors feed the candidate pool per step.
    pub candidate_pool: usize,
    /// Objective weight of diversity in the greedy score.
    pub diversity_weight: f64,
    /// Objective weight of coverage in the greedy score.
    pub coverage_weight: f64,
    /// Strength of feedback bias in weighted similarity (`0` disables
    /// feedback — the NoFeedback ablation baseline of C7).
    pub feedback_weight: f64,
    /// Fraction of each inverted index materialized offline (paper: 0.10).
    pub materialize_fraction: f64,
    /// Minimum group size kept after discovery (the size-filter stage,
    /// applied to every backend's output).
    pub min_group_size: usize,
    /// Which discovery backend the offline pipeline runs (LCM, α-MOMRI,
    /// BIRCH or stream FIM) and its per-algorithm knobs.
    pub discovery: DiscoverySelection,
    /// Worker threads for the merge layer's support recount when
    /// `discovery` is a sharded or ensemble composite (`0` = available
    /// parallelism). Purely a performance knob: the merged group space is
    /// byte-identical at any count.
    pub merge_threads: usize,
    /// Cross-shard closure exchange rounds for composite discovery's
    /// support-recount merge. The default `1` makes sharded LCM reproduce
    /// the unsharded closed-group space exactly at any shard count; `0`
    /// disables the exchange (sound, but oversharded runs may lose a
    /// sub-percent recall tail to shard-local closure growth). The
    /// broadcast is frequency-pruned and deduplicated (and, with per-shard
    /// projections, candidate→shard routed) — cost trims only, the merged
    /// space is unchanged; see `vexus_mining::MergeContext`.
    pub exchange_rounds: usize,
    /// Capacity (entries) of the engine's shared read-through cache over
    /// index neighbor queries. The index is immutable post-build, so a
    /// cached neighbor list serves *every* session on the engine; `0`
    /// builds no cache. Purely a performance knob: cached and uncached
    /// answers are byte-identical.
    pub neighbor_cache_capacity: usize,
    /// Whether this session reads neighbor lists through the engine's
    /// shared cache (when one exists). Per-session switch so cache-on and
    /// cache-off sessions can run side by side on one engine — the d5
    /// ablation and the cache-equality tests rely on it.
    pub neighbor_cache: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            k: 5,
            time_budget: Duration::from_millis(100),
            min_similarity: 0.01,
            candidate_pool: 256,
            diversity_weight: 1.0,
            coverage_weight: 1.0,
            feedback_weight: 0.5,
            materialize_fraction: 0.10,
            min_group_size: 5,
            discovery: DiscoverySelection::default(),
            merge_threads: 0,
            exchange_rounds: 1,
            neighbor_cache_capacity: 4096,
            neighbor_cache: true,
        }
    }
}

impl EngineConfig {
    /// The paper's fixed setting (k = 5 circles, 100 ms budget, 10 %
    /// materialization).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Ablation: disable feedback learning (uniform weights).
    pub fn without_feedback(mut self) -> Self {
        self.feedback_weight = 0.0;
        self
    }

    /// Builder-style: change `k`, clamped to `1..=12` (beyond the paper's
    /// perception bound but useful for the C5 sweep).
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k.clamp(1, 12);
        self
    }

    /// Builder-style: change the greedy time budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.time_budget = budget;
        self
    }

    /// Builder-style: select the discovery backend.
    pub fn with_discovery(mut self, discovery: DiscoverySelection) -> Self {
        self.discovery = discovery;
        self
    }

    /// Builder-style: set the merge recount worker count (`0` = auto).
    pub fn with_merge_threads(mut self, merge_threads: usize) -> Self {
        self.merge_threads = merge_threads;
        self
    }

    /// Builder-style: set the closure exchange round count (`0` = off).
    pub fn with_exchange_rounds(mut self, exchange_rounds: usize) -> Self {
        self.exchange_rounds = exchange_rounds;
        self
    }

    /// Builder-style: set the shared neighbor cache capacity (`0` = build
    /// no cache).
    pub fn with_neighbor_cache_capacity(mut self, capacity: usize) -> Self {
        self.neighbor_cache_capacity = capacity;
        self
    }

    /// Builder-style: toggle this session's use of the engine's shared
    /// neighbor cache.
    pub fn with_neighbor_cache(mut self, enabled: bool) -> Self {
        self.neighbor_cache = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_the_text() {
        let c = EngineConfig::paper();
        assert!(c.k <= 7, "P1: limited options");
        assert_eq!(c.time_budget, Duration::from_millis(100));
        assert!((c.materialize_fraction - 0.10).abs() < 1e-12);
    }

    #[test]
    fn builders() {
        let c = EngineConfig::default()
            .with_k(100)
            .with_budget(Duration::from_millis(5));
        assert_eq!(c.k, 12);
        assert_eq!(c.time_budget, Duration::from_millis(5));
        let nf = EngineConfig::default().without_feedback();
        assert_eq!(nf.feedback_weight, 0.0);
        // Merge parallelism defaults to auto (0) and is a plain knob.
        assert_eq!(EngineConfig::default().merge_threads, 0);
        assert_eq!(
            EngineConfig::default().with_merge_threads(4).merge_threads,
            4
        );
        // The closure exchange defaults to one round (the exactness
        // guarantee) and can be disabled.
        assert_eq!(EngineConfig::default().exchange_rounds, 1);
        assert_eq!(
            EngineConfig::default()
                .with_exchange_rounds(0)
                .exchange_rounds,
            0
        );
        // Neighbor caching defaults on with a bounded capacity; both are
        // plain knobs.
        let d = EngineConfig::default();
        assert!(d.neighbor_cache);
        assert!(d.neighbor_cache_capacity > 0);
        assert!(!d.with_neighbor_cache(false).neighbor_cache);
        assert_eq!(
            EngineConfig::default()
                .with_neighbor_cache_capacity(0)
                .neighbor_cache_capacity,
            0
        );
    }

    #[test]
    fn sharded_and_ensemble_selections_embed_in_config() {
        use vexus_mining::{DiscoverySelection, MergeSelection};
        let c = EngineConfig::default().with_discovery(DiscoverySelection::default().sharded(8));
        assert!(matches!(
            c.discovery,
            DiscoverySelection::Sharded { shards: 8, .. }
        ));
        let e = EngineConfig::default().with_discovery(DiscoverySelection::ensemble(
            vec![
                DiscoverySelection::default(),
                DiscoverySelection::Birch {
                    branching: 10,
                    threshold: 1.6,
                },
            ],
            MergeSelection::Union,
        ));
        assert!(matches!(
            e.discovery,
            DiscoverySelection::Ensemble { ref members, .. } if members.len() == 2
        ));
    }

    #[test]
    fn discovery_selection_is_swappable() {
        let c = EngineConfig::default().with_discovery(vexus_mining::DiscoverySelection::Birch {
            branching: 8,
            threshold: 1.5,
        });
        assert!(matches!(
            c.discovery,
            vexus_mining::DiscoverySelection::Birch { branching: 8, .. }
        ));
        // The default remains the paper's LCM path.
        assert!(matches!(
            EngineConfig::default().discovery,
            vexus_mining::DiscoverySelection::Lcm { .. }
        ));
    }
}
