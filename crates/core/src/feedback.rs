//! Feedback learning — the CONTEXT view's state.
//!
//! "Feedback is considered as a probability vector over all users and
//! demographic values. Once the explorer decides to explore a group g,
//! VEXUS interprets this choice as a positive feedback and increases the
//! score of g's members and their common activities described in g inside
//! the feedback vector. The vector is always kept normalized, i.e., all
//! scores in the vector add up to 1.0. … She can easily unlearn (i.e.,
//! make VEXUS forget about a user or a demographic value) by deleting it
//! from CONTEXT."
//!
//! Representation: sparse maps over [`UserId`]s and [`TokenId`]s whose
//! values always sum to 1 (when non-empty). Rewarding multiplies mass into
//! the rewarded entries and renormalizes, so un-rewarded entries decay
//! geometrically toward zero — exactly the "gradually end up with a lower
//! score tending to zero" behaviour the paper describes.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use vexus_data::{TokenId, UserId};
use vexus_mining::Group;

/// Fixed-seed 64-bit multiply/xor hasher (FxHash-style). `std`'s default
/// `RandomState` seeds each map differently, which permutes iteration
/// order per *instance*; the floating-point sums in
/// [`FeedbackVector::group_affinity`] and `prune_and_normalize` then
/// differ by a few ulps between two sessions replaying the same clicks,
/// and an ulp is enough to flip a greedy tie. A deterministic hasher
/// makes every replay of a click sequence bit-identical — the property
/// the `d5` concurrency gate pins.
#[derive(Debug, Default, Clone, Copy)]
pub struct DetHasher(u64);

impl Hasher for DetHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517C_C1B7_2722_0A95);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type DetMap<K> = HashMap<K, f64, BuildHasherDefault<DetHasher>>;

/// The normalized feedback vector over users and demographic values.
#[derive(Debug, Clone, Default)]
pub struct FeedbackVector {
    users: DetMap<UserId>,
    tokens: DetMap<TokenId>,
    /// Fraction of new mass granted per positive feedback event.
    learning_rate: f64,
}

impl FeedbackVector {
    /// Fresh, empty vector (uniform/no bias) with the default learning
    /// rate.
    pub fn new() -> Self {
        Self {
            users: DetMap::default(),
            tokens: DetMap::default(),
            learning_rate: 0.3,
        }
    }

    /// Override the learning rate (`0 < rate < 1`).
    pub fn with_learning_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0 && rate < 1.0, "learning rate must be in (0,1)");
        self.learning_rate = rate;
        self
    }

    /// Whether no feedback has been recorded (or everything was unlearned).
    pub fn is_empty(&self) -> bool {
        self.users.is_empty() && self.tokens.is_empty()
    }

    /// Total mass (1.0 when non-empty, 0.0 when empty) — the invariant the
    /// property tests pin down.
    pub fn total_mass(&self) -> f64 {
        self.users.values().sum::<f64>() + self.tokens.values().sum::<f64>()
    }

    /// Record positive feedback for a clicked group: reward its members and
    /// the demographic values in its description, then renormalize.
    pub fn reward_group(&mut self, group: &Group) {
        let member_count = group.members.len();
        let token_count = group.description.len();
        if member_count + token_count == 0 {
            return;
        }
        let new_mass = if self.is_empty() {
            1.0
        } else {
            self.learning_rate
        };
        // Existing mass shrinks to (1 - new_mass).
        if !self.is_empty() {
            let keep = 1.0 - new_mass;
            for v in self.users.values_mut() {
                *v *= keep;
            }
            for v in self.tokens.values_mut() {
                *v *= keep;
            }
        }
        // Half the new mass to members, half to described values (or all of
        // it to whichever side is non-empty).
        let (user_share, token_share) = match (member_count, token_count) {
            (0, _) => (0.0, new_mass),
            (_, 0) => (new_mass, 0.0),
            _ => (new_mass / 2.0, new_mass / 2.0),
        };
        if member_count > 0 {
            let per_user = user_share / member_count as f64;
            for u in group.members.iter() {
                *self.users.entry(UserId::new(u)).or_insert(0.0) += per_user;
            }
        }
        if token_count > 0 {
            let per_token = token_share / token_count as f64;
            for &t in &group.description {
                *self.tokens.entry(t).or_insert(0.0) += per_token;
            }
        }
        self.prune_and_normalize();
    }

    /// Unlearn a demographic value: delete it from CONTEXT and renormalize.
    pub fn unlearn_token(&mut self, token: TokenId) {
        self.tokens.remove(&token);
        self.prune_and_normalize();
    }

    /// Unlearn a user.
    pub fn unlearn_user(&mut self, user: UserId) {
        self.users.remove(&user);
        self.prune_and_normalize();
    }

    /// Forget everything.
    pub fn clear(&mut self) {
        self.users.clear();
        self.tokens.clear();
    }

    /// Score of a user (0 if never rewarded).
    pub fn user_score(&self, user: UserId) -> f64 {
        self.users.get(&user).copied().unwrap_or(0.0)
    }

    /// Score of a demographic value.
    pub fn token_score(&self, token: TokenId) -> f64 {
        self.tokens.get(&token).copied().unwrap_or(0.0)
    }

    /// Affinity of a candidate group with the current feedback: the mass of
    /// its members plus the mass of its describing values, normalized to
    /// `[0, 1]`. This is what weights similarity in the greedy selector:
    /// "a group which is highly in line with the feedback received so far
    /// gets a higher weight".
    pub fn group_affinity(&self, group: &Group) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mut mass = 0.0;
        // Iterate the smaller side: sparse feedback vs group members.
        if self.users.len() <= group.members.len() {
            for (u, v) in &self.users {
                if group.members.contains(u.raw()) {
                    mass += v;
                }
            }
        } else {
            for u in group.members.iter() {
                mass += self.user_score(UserId::new(u));
            }
        }
        for &t in &group.description {
            mass += self.token_score(t);
        }
        mass.clamp(0.0, 1.0)
    }

    /// The CONTEXT display: top-`n` entries, highest score first, as
    /// `(entry, score)` with entries described by the caller-supplied
    /// labelers.
    pub fn context_view(&self, n: usize) -> ContextView {
        let mut users: Vec<(UserId, f64)> = self.users.iter().map(|(&u, &s)| (u, s)).collect();
        users.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        users.truncate(n);
        let mut tokens: Vec<(TokenId, f64)> = self.tokens.iter().map(|(&t, &s)| (t, s)).collect();
        tokens.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        tokens.truncate(n);
        ContextView { users, tokens }
    }

    fn prune_and_normalize(&mut self) {
        // Drop entries that have decayed to numerically-zero mass; the
        // paper's "tending to zero" made concrete.
        self.users.retain(|_, v| *v > 1e-12);
        self.tokens.retain(|_, v| *v > 1e-12);
        let total = self.total_mass();
        if total <= 0.0 {
            self.clear();
            return;
        }
        for v in self.users.values_mut() {
            *v /= total;
        }
        for v in self.tokens.values_mut() {
            *v /= total;
        }
    }
}

/// Snapshot of the CONTEXT module: the current bias, visible to the
/// explorer.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextView {
    /// Top users by feedback score.
    pub users: Vec<(UserId, f64)>,
    /// Top demographic values by feedback score.
    pub tokens: Vec<(TokenId, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vexus_mining::MemberSet;

    fn group(members: &[u32], tokens: &[u32]) -> Group {
        Group::new(
            tokens.iter().map(|&t| TokenId::new(t)).collect(),
            MemberSet::from_unsorted(members.to_vec()),
        )
    }

    #[test]
    fn reward_normalizes_to_one() {
        let mut fb = FeedbackVector::new();
        assert_eq!(fb.total_mass(), 0.0);
        fb.reward_group(&group(&[1, 2, 3], &[0, 1]));
        assert!((fb.total_mass() - 1.0).abs() < 1e-12);
        fb.reward_group(&group(&[3, 4], &[1]));
        assert!((fb.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rewarded_entries_gain_unrewarded_decay() {
        let mut fb = FeedbackVector::new();
        fb.reward_group(&group(&[1], &[0]));
        let before_u1 = fb.user_score(UserId::new(1));
        // Reward a different group repeatedly.
        for _ in 0..10 {
            fb.reward_group(&group(&[2], &[1]));
        }
        let after_u1 = fb.user_score(UserId::new(1));
        assert!(after_u1 < before_u1);
        assert!(
            after_u1 < 0.02,
            "old feedback should tend to zero, got {after_u1}"
        );
        assert!(fb.user_score(UserId::new(2)) > 0.2);
    }

    #[test]
    fn unlearn_removes_and_renormalizes() {
        let mut fb = FeedbackVector::new();
        fb.reward_group(&group(&[1, 2], &[0, 1]));
        fb.unlearn_token(TokenId::new(0));
        assert_eq!(fb.token_score(TokenId::new(0)), 0.0);
        assert!((fb.total_mass() - 1.0).abs() < 1e-12);
        fb.unlearn_user(UserId::new(1));
        fb.unlearn_user(UserId::new(2));
        fb.unlearn_token(TokenId::new(1));
        assert!(fb.is_empty());
        assert_eq!(fb.total_mass(), 0.0);
    }

    #[test]
    fn affinity_favors_in_feedback_groups() {
        let mut fb = FeedbackVector::new();
        fb.reward_group(&group(&[1, 2, 3], &[0]));
        let aligned = fb.group_affinity(&group(&[1, 2, 3], &[0]));
        let disjoint = fb.group_affinity(&group(&[9, 10], &[5]));
        assert!(aligned > 0.9, "aligned affinity {aligned}");
        assert_eq!(disjoint, 0.0);
        // Partial overlap in between.
        let partial = fb.group_affinity(&group(&[1, 9], &[5]));
        assert!(partial > 0.0 && partial < aligned);
    }

    #[test]
    fn affinity_of_empty_feedback_is_zero() {
        let fb = FeedbackVector::new();
        assert_eq!(fb.group_affinity(&group(&[1], &[0])), 0.0);
    }

    #[test]
    fn context_view_is_sorted_and_truncated() {
        let mut fb = FeedbackVector::new();
        fb.reward_group(&group(&[1], &[0]));
        fb.reward_group(&group(&[2], &[1]));
        fb.reward_group(&group(&[2], &[1]));
        let ctx = fb.context_view(1);
        assert_eq!(ctx.users.len(), 1);
        assert_eq!(ctx.users[0].0, UserId::new(2));
        assert_eq!(ctx.tokens[0].0, TokenId::new(1));
        let full = fb.context_view(10);
        assert_eq!(full.users.len(), 2);
        assert!(full.users[0].1 >= full.users[1].1);
    }

    #[test]
    fn empty_group_reward_is_noop() {
        let mut fb = FeedbackVector::new();
        fb.reward_group(&group(&[], &[]));
        assert!(fb.is_empty());
    }

    #[test]
    fn description_only_group_rewards_tokens() {
        let mut fb = FeedbackVector::new();
        fb.reward_group(&group(&[], &[3, 4]));
        assert!((fb.token_score(TokenId::new(3)) - 0.5).abs() < 1e-12);
        assert!((fb.total_mass() - 1.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_mass_invariant_under_any_op_sequence(
            ops in proptest::collection::vec(
                (0usize..3,
                 proptest::collection::vec(0u32..20, 0..6),
                 proptest::collection::vec(0u32..10, 0..4)), 1..30)
        ) {
            let mut fb = FeedbackVector::new();
            for (kind, members, tokens) in ops {
                match kind {
                    0 => fb.reward_group(&group(&members, &tokens)),
                    1 => {
                        if let Some(&t) = tokens.first() {
                            fb.unlearn_token(TokenId::new(t));
                        }
                    }
                    _ => {
                        if let Some(&u) = members.first() {
                            fb.unlearn_user(UserId::new(u));
                        }
                    }
                }
                let mass = fb.total_mass();
                prop_assert!(
                    fb.is_empty() && mass == 0.0 || (mass - 1.0).abs() < 1e-9,
                    "mass invariant broken: {mass}"
                );
                // Scores are all non-negative.
                let ctx = fb.context_view(usize::MAX);
                prop_assert!(ctx.users.iter().all(|(_, s)| *s >= 0.0));
                prop_assert!(ctx.tokens.iter().all(|(_, s)| *s >= 0.0));
            }
        }

        #[test]
        fn prop_affinity_bounded(
            members in proptest::collection::vec(0u32..30, 1..10),
            tokens in proptest::collection::vec(0u32..10, 0..4),
            probe_members in proptest::collection::vec(0u32..30, 0..10),
            probe_tokens in proptest::collection::vec(0u32..10, 0..4)
        ) {
            let mut fb = FeedbackVector::new();
            fb.reward_group(&group(&members, &tokens));
            let a = fb.group_affinity(&group(&probe_members, &probe_tokens));
            prop_assert!((0.0..=1.0).contains(&a));
        }
    }
}
